//! Annotation-cost curves: alignment quality as a function of questions
//! asked (Sect. 7.4's cost-effectiveness evaluation).
//!
//! An active-learning run produces one [`CostPoint`] per round; the
//! resulting [`CostCurve`] supports the two comparisons the paper makes
//! between question-selection strategies: quality at equal budget
//! ([`CostCurve::final_h1`]) and quality integrated over the whole budget
//! ([`CostCurve::auc_h1`]).

use crate::report::{fmt3, TextTable};

/// One measurement of the active loop: cumulative cost and quality after a
/// round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPoint {
    /// Total oracle questions asked so far.
    pub questions: usize,
    /// Labeled positive matches accumulated so far.
    pub labeled: usize,
    /// Inferred matches credited in this round (no questions spent).
    pub inferred: usize,
    /// `H@1` over the evaluation alignment.
    pub h1: f64,
    /// MRR over the evaluation alignment.
    pub mrr: f64,
}

/// The annotation-cost curve of one active-learning run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostCurve {
    points: Vec<CostPoint>,
}

impl CostCurve {
    /// An empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a measurement. Points must arrive in non-decreasing question
    /// order (the loop only ever adds questions).
    pub fn push(&mut self, point: CostPoint) {
        if let Some(last) = self.points.last() {
            assert!(
                point.questions >= last.questions,
                "cost curve must be monotone in questions: {} after {}",
                point.questions,
                last.questions
            );
        }
        self.points.push(point);
    }

    /// The recorded points, in question order.
    pub fn points(&self) -> &[CostPoint] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `H@1` at the end of the run (0.0 for an empty curve).
    pub fn final_h1(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.h1)
    }

    /// MRR at the end of the run (0.0 for an empty curve).
    pub fn final_mrr(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.mrr)
    }

    /// Total questions asked.
    pub fn total_questions(&self) -> usize {
        self.points.last().map_or(0, |p| p.questions)
    }

    /// Area under the `H@1`-vs-questions curve, trapezoidal, normalized by
    /// the question span so the result lives in `[0, 1]` and is comparable
    /// across strategies at equal budget. With fewer than two points (or a
    /// zero span) this degrades to the final `H@1`.
    pub fn auc_h1(&self) -> f64 {
        self.auc_of(|p| p.h1)
    }

    /// Area under the MRR curve, same normalization as [`CostCurve::auc_h1`].
    pub fn auc_mrr(&self) -> f64 {
        self.auc_of(|p| p.mrr)
    }

    fn auc_of(&self, f: impl Fn(&CostPoint) -> f64) -> f64 {
        let span = match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) if b.questions > a.questions => (b.questions - a.questions) as f64,
            (_, Some(b)) => return f(b),
            _ => return 0.0,
        };
        let mut area = 0.0;
        for w in self.points.windows(2) {
            let dx = (w[1].questions - w[0].questions) as f64;
            area += 0.5 * (f(&w[0]) + f(&w[1])) * dx;
        }
        area / span
    }

    /// Render the curve as a fixed-width text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(&["questions", "labeled", "inferred", "H@1", "MRR"]);
        for p in &self.points {
            table.row(&[
                p.questions.to_string(),
                p.labeled.to_string(),
                p.inferred.to_string(),
                fmt3(p.h1),
                fmt3(p.mrr),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(questions: usize, h1: f64) -> CostPoint {
        CostPoint {
            questions,
            labeled: questions / 2,
            inferred: 0,
            h1,
            mrr: h1 * 0.9,
        }
    }

    #[test]
    fn empty_curve_is_zero() {
        let c = CostCurve::new();
        assert!(c.is_empty());
        assert_eq!(c.final_h1(), 0.0);
        assert_eq!(c.auc_h1(), 0.0);
        assert_eq!(c.total_questions(), 0);
    }

    #[test]
    fn final_values_track_last_point() {
        let mut c = CostCurve::new();
        c.push(pt(0, 0.2));
        c.push(pt(10, 0.5));
        assert_eq!(c.final_h1(), 0.5);
        assert!((c.final_mrr() - 0.45).abs() < 1e-12);
        assert_eq!(c.total_questions(), 10);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn auc_is_the_trapezoid_mean() {
        let mut c = CostCurve::new();
        c.push(pt(0, 0.0));
        c.push(pt(10, 1.0));
        // Linear ramp: AUC = 0.5.
        assert!((c.auc_h1() - 0.5).abs() < 1e-12);
        // Uneven spacing weights segments by width.
        let mut c = CostCurve::new();
        c.push(pt(0, 0.0));
        c.push(pt(2, 1.0));
        c.push(pt(10, 1.0));
        let expected = (0.5 * 1.0 * 2.0 + 1.0 * 8.0) / 10.0;
        assert!((c.auc_h1() - expected).abs() < 1e-12);
    }

    #[test]
    fn single_point_auc_degrades_to_final() {
        let mut c = CostCurve::new();
        c.push(pt(5, 0.7));
        assert!((c.auc_h1() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn dominating_curve_has_higher_auc() {
        let mut better = CostCurve::new();
        let mut worse = CostCurve::new();
        for (q, hb, hw) in [(0, 0.2, 0.2), (5, 0.6, 0.3), (10, 0.8, 0.5)] {
            better.push(pt(q, hb));
            worse.push(pt(q, hw));
        }
        assert!(better.auc_h1() > worse.auc_h1());
        assert!(better.final_h1() > worse.final_h1());
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_questions_rejected() {
        let mut c = CostCurve::new();
        c.push(pt(5, 0.1));
        c.push(pt(3, 0.2));
    }

    #[test]
    fn renders_a_table() {
        let mut c = CostCurve::new();
        c.push(CostPoint {
            questions: 4,
            labeled: 3,
            inferred: 2,
            h1: 0.5,
            mrr: 0.4,
        });
        let s = c.render();
        assert!(s.contains("questions"));
        assert!(s.contains("0.500"));
    }
}

//! Fixed-width text tables for the experiment binaries.
//!
//! The bench binaries print the same rows and columns as the paper's tables;
//! this helper keeps the formatting in one place (no external table crates,
//! per the workspace dependency policy).

use std::fmt::Write as _;

/// A simple left-aligned text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of already-formatted cells. Short rows are padded.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Append a row from string slices.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with column padding and a separator rule.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing padding for clean diffs.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Format a metric in the paper's 3-decimal style (`0.654`).
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a duration in seconds with adaptive units (`7.12s`, `2.37h`),
/// mirroring Table 4's mixed second/hour formatting.
pub fn fmt_duration(seconds: f64) -> String {
    if seconds >= 3600.0 {
        format!("{:.2}h", seconds / 3600.0)
    } else if seconds >= 60.0 {
        format!("{:.1}m", seconds / 60.0)
    } else if seconds >= 1.0 {
        format!("{seconds:.2}s")
    } else {
        format!("{:.1}ms", seconds * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut t = TextTable::new(&["method", "H@1", "F1"]);
        t.row_strs(&["DAAKG", "0.654", "0.741"]);
        t.row_strs(&["KECG", "0.632", "0.692"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("DAAKG"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row_strs(&["only"]);
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(0.65432), "0.654");
        assert_eq!(fmt_duration(7.123), "7.12s");
        assert_eq!(fmt_duration(8532.0), "2.37h");
        assert_eq!(fmt_duration(0.0042), "4.2ms");
        assert_eq!(fmt_duration(90.0), "1.5m");
    }
}

//! # daakg-eval
//!
//! Evaluation metrics for KG alignment, matching Sect. 7.1 of the paper:
//!
//! * **Ranking metrics** ([`ranking`]): `H@k` (the proportion of true
//!   matches within the top-k nearest neighbours of each element; `H@1` is
//!   accuracy) and Mean Reciprocal Rank (MRR).
//! * **Set metrics** ([`matching`]): precision, recall and F1-score computed
//!   with the *greedy matching strategy* of Leone et al. (2022), which
//!   resolves the 1:1 restriction globally by similarity order.
//! * **Cost curves** ([`cost`]): annotation-budget curves (`H@1` / MRR vs.
//!   questions asked) produced by the active-learning loop, with the
//!   equal-budget AUC comparison of Sect. 7.4.
//! * **Report helpers** ([`report`]): fixed-width text tables used by the
//!   experiment binaries to print paper-style rows.

pub mod cost;
pub mod matching;
pub mod ranking;
pub mod report;

pub use cost::{CostCurve, CostPoint};
pub use matching::{greedy_matching, MatchingScores};
pub use ranking::{hits_at_k, mean_reciprocal_rank, RankingScores};
pub use report::TextTable;

//! Ranking metrics: `H@k` and MRR.
//!
//! Both are computed over *rankings*: for each left element with a gold
//! counterpart, a descending-similarity candidate list. Elements without a
//! gold counterpart (dangling) are skipped, matching the OpenEA evaluation
//! protocol used by the paper.

/// A generic ranking: for each evaluated element, the 0-based rank of its
/// gold counterpart, or `None` if the counterpart is absent from the list.
#[derive(Debug, Clone, Default)]
pub struct RankingScores {
    ranks: Vec<Option<usize>>,
}

impl RankingScores {
    /// Empty scores.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the rank of one element's gold counterpart (0-based), or
    /// `None` when it is missing from the candidate list.
    pub fn push(&mut self, rank: Option<usize>) {
        self.ranks.push(rank);
    }

    /// Build from a list of candidate rankings and a gold-lookup closure.
    ///
    /// `items` yields `(gold_target, ranked_candidates)` per evaluated
    /// element; candidates must be in descending-similarity order.
    pub fn from_rankings<T: PartialEq + Copy>(
        items: impl IntoIterator<Item = (T, Vec<T>)>,
    ) -> Self {
        let mut scores = Self::new();
        for (gold, candidates) in items {
            scores.push(candidates.iter().position(|c| *c == gold));
        }
        scores
    }

    /// Parallel variant of [`RankingScores::from_rankings`]: the per-query
    /// rank search (a linear scan of each candidate list) is spread over
    /// worker threads in chunks. Results are identical to the sequential
    /// path — per-query ranks are independent and order is preserved.
    ///
    /// Worth it when candidate lists are long (full-KG rankings of 10⁴–10⁶
    /// entities); for short lists the sequential path is already free.
    pub fn from_rankings_parallel<T: PartialEq + Copy + Sync>(items: &[(T, Vec<T>)]) -> Self {
        let ranks = daakg_parallel::par_map(items.len(), |i| {
            let (gold, candidates) = &items[i];
            candidates.iter().position(|c| *c == *gold)
        });
        Self { ranks }
    }

    /// Number of evaluated elements.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True if nothing was evaluated.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// `H@k`: fraction of elements whose gold counterpart ranks within the
    /// top `k` (1-based cut-off).
    pub fn hits_at(&self, k: usize) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let hits = self
            .ranks
            .iter()
            .filter(|r| matches!(r, Some(rank) if *rank < k))
            .count();
        hits as f64 / self.ranks.len() as f64
    }

    /// Mean Reciprocal Rank: average of `1/(rank+1)`; absent counterparts
    /// contribute zero.
    pub fn mrr(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .ranks
            .iter()
            .map(|r| match r {
                Some(rank) => 1.0 / (*rank as f64 + 1.0),
                None => 0.0,
            })
            .sum();
        total / self.ranks.len() as f64
    }
}

/// Convenience: `H@k` over `(gold, candidates)` pairs.
pub fn hits_at_k<T: PartialEq + Copy>(
    items: impl IntoIterator<Item = (T, Vec<T>)>,
    k: usize,
) -> f64 {
    RankingScores::from_rankings(items).hits_at(k)
}

/// Convenience: MRR over `(gold, candidates)` pairs.
pub fn mean_reciprocal_rank<T: PartialEq + Copy>(
    items: impl IntoIterator<Item = (T, Vec<T>)>,
) -> f64 {
    RankingScores::from_rankings(items).mrr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let items = vec![(1u32, vec![1, 2, 3]), (5, vec![5, 6])];
        assert_eq!(hits_at_k(items.clone(), 1), 1.0);
        assert_eq!(mean_reciprocal_rank(items), 1.0);
    }

    #[test]
    fn mixed_ranking() {
        // gold at rank 0, rank 1, and absent.
        let items = vec![(1u32, vec![1, 2]), (3, vec![4, 3]), (9, vec![7, 8])];
        let s = RankingScores::from_rankings(items);
        assert!((s.hits_at(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.hits_at(2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.mrr() - (1.0 + 0.5 + 0.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_scores_match_sequential() {
        // 300 queries with 1000 candidates each, gold scattered.
        let items: Vec<(u32, Vec<u32>)> = (0..300u32)
            .map(|q| {
                let candidates: Vec<u32> = (0..1000).collect();
                let gold = if q % 7 == 0 { 5000 } else { (q * 13) % 1000 };
                (gold, candidates)
            })
            .collect();
        let seq = RankingScores::from_rankings(items.clone());
        let par = RankingScores::from_rankings_parallel(&items);
        assert_eq!(seq.len(), par.len());
        for k in [1, 5, 10, 100] {
            assert_eq!(seq.hits_at(k), par.hits_at(k), "H@{k} diverged");
        }
        assert_eq!(seq.mrr(), par.mrr());
    }

    #[test]
    fn empty_is_zero() {
        let s = RankingScores::new();
        assert_eq!(s.hits_at(1), 0.0);
        assert_eq!(s.mrr(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn hits_is_monotone_in_k() {
        let items: Vec<(u32, Vec<u32>)> = (0..10).map(|i| (i, (0..10).rev().collect())).collect();
        let s = RankingScores::from_rankings(items);
        let mut prev = 0.0;
        for k in 1..=10 {
            let h = s.hits_at(k);
            assert!(h >= prev);
            prev = h;
        }
        assert_eq!(s.hits_at(10), 1.0);
    }
}

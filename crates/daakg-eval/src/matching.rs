//! Set-based precision / recall / F1 with the greedy matching strategy.
//!
//! Following Leone et al. (2022), which the paper adopts for its F1 figures:
//! all scored candidate pairs are sorted by descending similarity, then pairs
//! are accepted greedily while both sides are still unmatched (global 1:1
//! resolution). Precision and recall are then computed against the gold
//! match set.

use std::collections::HashSet;
use std::hash::Hash;

/// Precision / recall / F1 of a predicted match set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MatchingScores {
    /// |predicted ∩ gold| / |predicted|.
    pub precision: f64,
    /// |predicted ∩ gold| / |gold|.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Number of predicted pairs after greedy resolution.
    pub predicted: usize,
    /// Number of correct predictions.
    pub correct: usize,
    /// Size of the gold set.
    pub gold: usize,
}

impl MatchingScores {
    fn compute(predicted: usize, correct: usize, gold: usize) -> Self {
        let precision = if predicted == 0 {
            0.0
        } else {
            correct as f64 / predicted as f64
        };
        let recall = if gold == 0 {
            0.0
        } else {
            correct as f64 / gold as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
            predicted,
            correct,
            gold,
        }
    }
}

/// Resolve scored candidates `(left, right, score)` into a 1:1 match set by
/// global greedy selection, then score against `gold` pairs.
///
/// `min_score` discards candidates below the threshold *before* greedy
/// resolution (pass `f32::NEG_INFINITY` to keep everything).
pub fn greedy_matching<L, R>(
    mut candidates: Vec<(L, R, f32)>,
    gold: &[(L, R)],
    min_score: f32,
) -> MatchingScores
where
    L: Eq + Hash + Copy + Send,
    R: Eq + Hash + Copy + Send,
{
    candidates.retain(|(_, _, s)| *s >= min_score);
    // Descending by score. The pre-sort dominates the pass on realistic
    // candidate pools (|pool| ≫ |gold|), so it runs through the parallel
    // merge sort; like `sort_by` it is stable, so ties are still broken by
    // input order and results stay deterministic.
    daakg_parallel::par_sort_by(&mut candidates, |a, b| b.2.total_cmp(&a.2));

    let mut used_left: HashSet<L> = HashSet::new();
    let mut used_right: HashSet<R> = HashSet::new();
    let mut predicted: Vec<(L, R)> = Vec::new();
    for (l, r, _) in candidates {
        if used_left.contains(&l) || used_right.contains(&r) {
            continue;
        }
        used_left.insert(l);
        used_right.insert(r);
        predicted.push((l, r));
    }

    let gold_set: HashSet<(L, R)> = gold.iter().copied().collect();
    let correct = predicted.iter().filter(|p| gold_set.contains(p)).count();
    MatchingScores::compute(predicted.len(), correct, gold_set.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let cands = vec![(0u32, 10u32, 0.9), (1, 11, 0.8)];
        let gold = vec![(0, 10), (1, 11)];
        let s = greedy_matching(cands, &gold, f32::NEG_INFINITY);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
        assert_eq!(s.correct, 2);
    }

    #[test]
    fn greedy_resolves_conflicts_by_score() {
        // Both left 0 and left 1 want right 10; the higher-scored wins.
        let cands = vec![(0u32, 10u32, 0.9), (1, 10, 0.8), (1, 11, 0.5)];
        let gold = vec![(0, 10), (1, 11)];
        let s = greedy_matching(cands, &gold, f32::NEG_INFINITY);
        assert_eq!(s.predicted, 2);
        assert_eq!(s.correct, 2);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn threshold_filters_low_scores() {
        let cands = vec![(0u32, 10u32, 0.9), (1, 11, 0.1)];
        let gold = vec![(0, 10), (1, 11)];
        let s = greedy_matching(cands, &gold, 0.5);
        assert_eq!(s.predicted, 1);
        assert_eq!(s.correct, 1);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.5);
    }

    #[test]
    fn wrong_predictions_hurt_precision() {
        let cands = vec![(0u32, 11u32, 0.9), (1, 10, 0.8)];
        let gold = vec![(0, 10), (1, 11)];
        let s = greedy_matching(cands, &gold, f32::NEG_INFINITY);
        assert_eq!(s.correct, 0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn large_pool_resolution_is_deterministic() {
        // A pool big enough to exercise the parallel pre-sort path, with
        // deterministic pseudo-random scores.
        let make = || {
            let cands: Vec<(u32, u32, f32)> = (0..30_000u32)
                .map(|i| {
                    let score = ((i.wrapping_mul(2654435761)) % 1000) as f32 / 1000.0;
                    (i % 500, i / 500, score)
                })
                .collect();
            let gold: Vec<(u32, u32)> = (0..500).map(|i| (i, i % 60)).collect();
            greedy_matching(cands, &gold, 0.2)
        };
        let a = make();
        let b = make();
        assert_eq!(a, b, "greedy matching must be run-to-run deterministic");
        assert!(a.predicted > 0);
        assert!(a.predicted <= 60);
    }

    #[test]
    fn empty_inputs() {
        let s = greedy_matching::<u32, u32>(vec![], &[], f32::NEG_INFINITY);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);

        let s = greedy_matching::<u32, u32>(vec![(0, 0, 1.0)], &[], f32::NEG_INFINITY);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.gold, 0);
    }
}

//! CompGCN: a composition-based multi-relational graph convolution encoder
//! with a translational decoder.
//!
//! Following Vashishth et al. (2020), entity representations are produced by
//! aggregating composed neighbour messages `φ(x_u, r) = x_u − r` over all
//! incident edges (reverse edges use the synthetic reverse relations), then
//! passing through a nonlinearity:
//!
//! ```text
//! h_v = tanh( x_v · W_self + mean_{(u,r,v)}(x_u − r) · W_msg )
//! ```
//!
//! Triples are scored TransE-style over the *encoded* entities, which is the
//! single-layer simplification of CompGCN's scoring used here (the paper
//! only requires "a sophisticated deep neural model" whose tail solutions
//! are non-unique — exactly what the encoder nonlinearity provides, and why
//! CompGCN's inference bounds are the loosest in Table 6).

use crate::model::{names, KgEmbedding, ModelKind, RelationBound};
use daakg_autograd::{init, Graph, ParamStore, TapeSession, Tensor, Var};
use daakg_graph::KnowledgeGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// The CompGCN model.
pub struct CompGcn {
    num_entities: usize,
    num_base_relations: usize,
    dim: usize,
    /// Edge arrays including reverse edges: `edge_heads[i] -r-> edge_tails[i]`.
    edge_heads: Vec<u32>,
    edge_rels: Vec<u32>,
    edge_tails: Vec<u32>,
    /// Observed (head, tail) pairs per base relation, for bound estimation.
    rel_examples: Vec<Vec<(u32, u32)>>,
}

impl CompGcn {
    /// Build a CompGCN model over the structure of `kg`.
    pub fn new(kg: &KnowledgeGraph, dim: usize) -> Self {
        let nr = kg.num_relations();
        let nt = kg.num_triples();
        let mut edge_heads = Vec::with_capacity(2 * nt);
        let mut edge_rels = Vec::with_capacity(2 * nt);
        let mut edge_tails = Vec::with_capacity(2 * nt);
        let mut rel_examples = vec![Vec::new(); nr.max(1)];
        for t in kg.triples() {
            // Forward edge: message flows to the tail.
            edge_heads.push(t.head.raw());
            edge_rels.push(t.rel.raw());
            edge_tails.push(t.tail.raw());
            // Reverse edge with synthetic reverse relation id.
            edge_heads.push(t.tail.raw());
            edge_rels.push(t.rel.raw() + nr as u32);
            edge_tails.push(t.head.raw());
            rel_examples[t.rel.index()].push((t.head.raw(), t.tail.raw()));
        }
        Self {
            num_entities: kg.num_entities(),
            num_base_relations: nr,
            dim,
            edge_heads,
            edge_rels,
            edge_tails,
            rel_examples,
        }
    }

    /// Snapshot (tape-free) encoding of all entities.
    fn encode_snapshot(&self, store: &ParamStore, prefix: &str) -> Tensor {
        let x = store.get(&names::qualified(prefix, names::ENT));
        let rel = store.get(&names::qualified(prefix, names::REL));
        let w_self = store.get(&names::qualified(prefix, names::W_SELF));
        let w_msg = store.get(&names::qualified(prefix, names::W_MSG));

        // Aggregate composed messages.
        let mut agg = Tensor::zeros(self.num_entities, self.dim);
        let mut counts = vec![0u32; self.num_entities];
        for i in 0..self.edge_heads.len() {
            let h = self.edge_heads[i] as usize;
            let r = self.edge_rels[i] as usize;
            let t = self.edge_tails[i] as usize;
            counts[t] += 1;
            let hrow = x.row(h);
            let rrow = rel.row(r);
            let dst = agg.row_mut(t);
            for c in 0..self.dim {
                dst[c] += hrow[c] - rrow[c];
            }
        }
        for (t, &c) in counts.iter().enumerate() {
            if c > 1 {
                let inv = 1.0 / c as f32;
                for v in agg.row_mut(t) {
                    *v *= inv;
                }
            }
        }
        let mut enc = x.matmul(w_self);
        enc.add_assign(&agg.matmul(w_msg));
        enc.map(f32::tanh)
    }
}

impl KgEmbedding for CompGcn {
    fn kind(&self) -> ModelKind {
        ModelKind::CompGcn
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn relation_dim(&self) -> usize {
        self.dim
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn num_base_relations(&self) -> usize {
        self.num_base_relations
    }

    fn init_params(&self, rng: &mut StdRng, store: &mut ParamStore, prefix: &str) {
        store.insert(
            names::qualified(prefix, names::ENT),
            init::uniform_embedding(rng, self.num_entities, self.dim),
        );
        store.insert(
            names::qualified(prefix, names::REL),
            init::uniform_embedding(rng, 2 * self.num_base_relations.max(1), self.dim),
        );
        store.insert(
            names::qualified(prefix, names::W_SELF),
            init::near_identity(rng, self.dim, 0.05),
        );
        store.insert(
            names::qualified(prefix, names::W_MSG),
            init::xavier_uniform(rng, self.dim, self.dim),
        );
    }

    fn encode_entities(&self, s: &mut TapeSession, store: &ParamStore, prefix: &str) -> Var {
        let x = s.param(store, &names::qualified(prefix, names::ENT));
        let rel = s.param(store, &names::qualified(prefix, names::REL));
        let w_self = s.param(store, &names::qualified(prefix, names::W_SELF));
        let w_msg = s.param(store, &names::qualified(prefix, names::W_MSG));

        if self.edge_heads.is_empty() {
            let xs = s.graph.matmul(x, w_self);
            return s.graph.tanh(xs);
        }

        let h = s.graph.gather_rows(x, &self.edge_heads);
        let r = s.graph.gather_rows(rel, &self.edge_rels);
        let msgs = s.graph.sub(h, r);
        let agg = s
            .graph
            .scatter_mean(msgs, &self.edge_tails, self.num_entities);
        let xs = s.graph.matmul(x, w_self);
        let am = s.graph.matmul(agg, w_msg);
        let pre = s.graph.add(xs, am);
        s.graph.tanh(pre)
    }

    fn encode_relations(&self, s: &mut TapeSession, store: &ParamStore, prefix: &str) -> Var {
        s.param(store, &names::qualified(prefix, names::REL))
    }

    fn score_triples(
        &self,
        g: &mut Graph,
        ents: Var,
        rels: Var,
        heads: &[u32],
        rel_ids: &[u32],
        tails: &[u32],
    ) -> Var {
        let h = g.gather_rows(ents, heads);
        let r = g.gather_rows(rels, rel_ids);
        let t = g.gather_rows(ents, tails);
        let hr = g.add(h, r);
        let diff = g.sub(hr, t);
        g.rows_l2norm(diff)
    }

    fn entity_matrix(&self, store: &ParamStore, prefix: &str) -> Tensor {
        self.encode_snapshot(store, prefix)
    }

    fn relation_matrix(&self, store: &ParamStore, prefix: &str) -> Tensor {
        let full = store.get(&names::qualified(prefix, names::REL));
        let indices: Vec<u32> = (0..self.num_base_relations as u32).collect();
        full.gather_rows(&indices)
    }

    fn score_one(&self, ents: &Tensor, rels_full: &Tensor, h: u32, r: u32, t: u32) -> f32 {
        let hrow = ents.row(h as usize);
        let rrow = rels_full.row(r as usize);
        let trow = ents.row(t as usize);
        hrow.iter()
            .zip(rrow)
            .zip(trow)
            .map(|((hv, rv), tv)| {
                let d = hv + rv - tv;
                d * d
            })
            .sum::<f32>()
            .sqrt()
    }

    fn relation_bound(
        &self,
        store: &ParamStore,
        prefix: &str,
        r: u32,
        rng: &mut StdRng,
        m_samples: usize,
    ) -> RelationBound {
        // The encoder is nonlinear, so tail solutions are not unique
        // (Sect. 5.2). Approximate with observed (h, t) pairs: the empirical
        // difference vectors enc(t) − enc(h) sampled m times.
        let enc = self.encode_snapshot(store, prefix);
        let examples = &self.rel_examples[r as usize];
        if examples.is_empty() {
            let rels = store.get(&names::qualified(prefix, names::REL));
            return RelationBound {
                diff: rels.row(r as usize).to_vec(),
                bound: 1.0, // no evidence: maximally loose unit bound
            };
        }
        let m = m_samples.max(1).min(examples.len());
        // Sample WITHOUT replacement: with few examples, replacement could
        // draw the same pair repeatedly and collapse the bound to zero.
        let mut order: Vec<usize> = (0..examples.len()).collect();
        order.shuffle(rng);
        let mut samples = Vec::with_capacity(m);
        for &ix in order.iter().take(m) {
            let (h, t) = examples[ix];
            let diff: Vec<f32> = enc
                .row(t as usize)
                .iter()
                .zip(enc.row(h as usize))
                .map(|(a, b)| a - b)
                .collect();
            samples.push(diff);
        }
        RelationBound::from_samples(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daakg_graph::kg::example_dbpedia;
    use rand::SeedableRng;

    fn tiny() -> (CompGcn, ParamStore) {
        let kg = example_dbpedia();
        let model = CompGcn::new(&kg, 8);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        model.init_params(&mut rng, &mut store, "g.");
        (model, store)
    }

    #[test]
    fn reverse_edges_are_built() {
        let kg = example_dbpedia();
        let model = CompGcn::new(&kg, 8);
        assert_eq!(model.edge_heads.len(), 2 * kg.num_triples());
        // Reverse relation ids are offset by the base count.
        let max_rel = *model.edge_rels.iter().max().unwrap();
        assert!(max_rel >= kg.num_relations() as u32);
        assert!(max_rel < 2 * kg.num_relations() as u32);
    }

    #[test]
    fn tape_encoding_matches_snapshot() {
        let (model, store) = tiny();
        let mut g = TapeSession::new();
        let enc_var = model.encode_entities(&mut g, &store, "g.");
        let snap = model.entity_matrix(&store, "g.");
        let tape = g.value(enc_var);
        assert_eq!(tape.shape(), snap.shape());
        for (a, b) in tape.as_slice().iter().zip(snap.as_slice()) {
            assert!((a - b).abs() < 1e-5, "tape {a} vs snapshot {b}");
        }
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let (model, store) = tiny();
        let mut g = TapeSession::new();
        let ents = model.encode_entities(&mut g, &store, "g.");
        let rels = model.encode_relations(&mut g, &store, "g.");
        let s = model.score_triples(&mut g.graph, ents, rels, &[0], &[0], &[1]);
        let loss = g.sum_all(s);
        g.backward(loss);
        // The encoder touches ent, rel, w_self, w_msg leaves — all four
        // leaf nodes must receive gradients through the GNN.
        let grads: Vec<bool> = (0..4)
            .map(|i| {
                // Leaves are the first four nodes pushed by encode_entities.
                g.grad(g.var_at(i))
                    .map(|t| t.as_slice().iter().any(|v| v.abs() > 0.0))
                    .unwrap_or(false)
            })
            .collect();
        assert!(grads.iter().all(|&b| b), "grads missing: {grads:?}");
    }

    #[test]
    fn relation_bound_is_loose() {
        let (model, store) = tiny();
        let mut rng = StdRng::seed_from_u64(1);
        let kg = example_dbpedia();
        let spouse = kg.relation_by_name("spouse").unwrap();
        let b = model.relation_bound(&store, "g.", spouse.raw(), &mut rng, 8);
        // spouse has two example pairs with different tails: bound > 0.
        assert!(b.bound > 0.0);
        assert_eq!(b.diff.len(), 8);
    }

    #[test]
    fn empty_relation_gets_unit_bound() {
        let (model, store) = tiny();
        let mut rng = StdRng::seed_from_u64(1);
        // Fabricate query for a relation id with no examples by using a
        // relation that exists but scanning rel_examples directly.
        let empty_rel = model
            .rel_examples
            .iter()
            .position(|v| v.is_empty())
            .map(|i| i as u32);
        if let Some(r) = empty_rel {
            let b = model.relation_bound(&store, "g.", r, &mut rng, 4);
            assert_eq!(b.bound, 1.0);
        }
    }
}

//! Trainer for the standalone embedding objective: the margin losses
//! `O_er(T)` (Eq. 1) and `O_ec(T_type)` (Eq. 3).
//!
//! The joint alignment objective (Sect. 4.2) builds on these and lives in
//! `daakg-align`; this trainer is also reused there to warm up the
//! embedding tables before alignment learning.
//!
//! Two execution modes ([`TrainMode`]) share identical sampling and loss
//! structure:
//!
//! * **Dense** — the retained verification oracle: one tape per batch with
//!   full parameter tables as leaves, dense gradients, dense Adam.
//! * **Sparse** — the fast path: each batch shards across scoped threads,
//!   every shard builds its own tape over the shared read-only store via
//!   external gathers ([`TapeSession::gather_param`]), shard gradients
//!   merge as sparse row-maps, and one lazy sparse Adam step applies them.
//!   Rows a batch will read are refreshed first
//!   ([`Adam::refresh_rows`]), and the store is flushed at the end of
//!   training, so the trajectory matches the dense oracle up to
//!   floating-point reassociation.

use crate::config::{EmbedConfig, TrainMode};
use crate::entity_class::EntityClassModel;
use crate::model::KgEmbedding;
use crate::sampling::{ClassNegativeSampler, NegativeSampler, TripleArrays};
use daakg_autograd::{unique_rows, Adam, NamedGrads, ParamStore, TapeSession};
use daakg_graph::{DaakgError, KnowledgeGraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Summary of one training run.
#[derive(Debug, Clone, Default)]
pub struct TrainStats {
    /// Mean margin loss per epoch (entity–relation objective).
    pub er_losses: Vec<f32>,
    /// Mean margin loss per epoch (entity–class objective).
    pub ec_losses: Vec<f32>,
}

impl TrainStats {
    /// Final entity–relation loss, if any epoch ran.
    pub fn final_er_loss(&self) -> Option<f32> {
        self.er_losses.last().copied()
    }

    /// Whether the loss decreased from the first to the last epoch.
    pub fn improved(&self) -> bool {
        match (self.er_losses.first(), self.er_losses.last()) {
            (Some(first), Some(last)) => last <= first,
            _ => false,
        }
    }
}

/// Trainer executing the embedding objectives for one KG.
pub struct EmbedTrainer {
    cfg: EmbedConfig,
}

impl EmbedTrainer {
    /// A trainer with the given configuration; rejects invalid configs
    /// with a typed [`DaakgError`] instead of panicking.
    pub fn new(cfg: EmbedConfig) -> Result<Self, DaakgError> {
        cfg.validate()?;
        Ok(Self { cfg })
    }

    /// The configuration in use.
    pub fn config(&self) -> &EmbedConfig {
        &self.cfg
    }

    /// Train the entity–relation objective `O_er` (Eq. 1) and, when the KG
    /// has classes, the entity–class objective `O_ec` (Eq. 3).
    ///
    /// Parameters must already be initialized in `store` under `prefix`
    /// (including the [`EntityClassModel`] parameters when `ec` is given).
    pub fn train(
        &self,
        model: &dyn KgEmbedding,
        ec: Option<&EntityClassModel>,
        kg: &KnowledgeGraph,
        store: &mut ParamStore,
        prefix: &str,
        opt: &mut Adam,
    ) -> TrainStats {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let arrays = TripleArrays::with_reverses(kg);
        let neg_sampler = NegativeSampler::new(kg.num_entities(), &arrays);
        let cls_sampler = ClassNegativeSampler::new(kg);
        let mut stats = TrainStats::default();

        if arrays.is_empty() {
            return stats;
        }

        let mut order: Vec<usize> = (0..arrays.len()).collect();
        for _epoch in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(self.cfg.batch_size) {
                let batch = arrays.select(chunk);
                let loss = self.er_step(model, &batch, &neg_sampler, store, prefix, opt, &mut rng);
                epoch_loss += loss as f64;
                batches += 1;
            }
            stats
                .er_losses
                .push((epoch_loss / batches.max(1) as f64) as f32);

            if let Some(ec_model) = ec {
                if kg.num_type_assertions() > 0 {
                    let loss = self.ec_step(
                        model,
                        ec_model,
                        kg,
                        &cls_sampler,
                        store,
                        prefix,
                        opt,
                        &mut rng,
                    );
                    stats.ec_losses.push(loss);
                }
            }
        }
        // Lazily-deferred sparse Adam rows catch up here, so callers always
        // see the parameters the dense oracle would have produced.
        if self.cfg.mode == TrainMode::Sparse {
            opt.flush(store);
        }
        stats
    }

    /// One mini-batch step of `O_er` (Eq. 1):
    /// `Σ |λ_er + f_er(pos) − f_er(neg)|₊`.
    ///
    /// Negative sampling happens before mode dispatch, so dense and sparse
    /// runs consume the RNG identically and stay comparable.
    #[allow(clippy::too_many_arguments)]
    fn er_step(
        &self,
        model: &dyn KgEmbedding,
        batch: &TripleArrays,
        sampler: &NegativeSampler,
        store: &mut ParamStore,
        prefix: &str,
        opt: &mut Adam,
        rng: &mut StdRng,
    ) -> f32 {
        let neg = sampler.corrupt_tails(rng, batch, self.cfg.neg_samples);
        match self.cfg.mode {
            TrainMode::Dense => self.er_step_dense(model, batch, &neg, store, prefix, opt),
            TrainMode::Sparse => self.er_step_sparse(model, batch, &neg, store, prefix, opt),
        }
    }

    /// The retained dense oracle: full tables bound as tape leaves.
    fn er_step_dense(
        &self,
        model: &dyn KgEmbedding,
        batch: &TripleArrays,
        neg: &TripleArrays,
        store: &mut ParamStore,
        prefix: &str,
        opt: &mut Adam,
    ) -> f32 {
        let mut s = TapeSession::new();
        let ents = model.encode_entities(&mut s, store, prefix);
        let rels = model.encode_relations(&mut s, store, prefix);

        let pos_scores = model.score_triples(
            &mut s.graph,
            ents,
            rels,
            &batch.heads,
            &batch.rels,
            &batch.tails,
        );
        let neg_scores =
            model.score_triples(&mut s.graph, ents, rels, &neg.heads, &neg.rels, &neg.tails);

        let loss = self.hinge_loss(&mut s, pos_scores, neg_scores, batch.len(), 1.0);
        let loss_val = s.graph.value(loss).item();
        s.backward(loss);
        s.step(store, opt);
        loss_val
    }

    /// The sparse/parallel fast path: the batch shards across scoped
    /// threads, each shard scores its slice through external gathers over
    /// the shared read-only store, shard gradients merge, and one (lazy)
    /// optimizer step applies them.
    fn er_step_sparse(
        &self,
        model: &dyn KgEmbedding,
        batch: &TripleArrays,
        neg: &TripleArrays,
        store: &mut ParamStore,
        prefix: &str,
        opt: &mut Adam,
    ) -> f32 {
        let k = self.cfg.neg_samples;
        let table = model.table_params(prefix);
        // Rows the forward pass will read must be current (see the Adam
        // deferred-decay contract). Encoder models read whole tables.
        match &table {
            Some(tp) => {
                // `refresh_rows` is idempotent per row (a refreshed row is
                // skipped on re-visit), so raw index slices with duplicates
                // are fine — no sort/dedup on the hot path.
                opt.refresh_rows(store, &tp.ent, &batch.heads);
                opt.refresh_rows(store, &tp.ent, &batch.tails);
                opt.refresh_rows(store, &tp.ent, &neg.tails);
                opt.refresh_rows(store, &tp.rel, &batch.rels);
            }
            None => opt.flush(store),
        }
        // Encoder models (CompGCN) re-encode the whole graph per tape, so
        // sharding would multiply encoder work; they run as one shard.
        let shards = if table.is_some() {
            self.cfg.effective_threads().min(batch.len()).max(1)
        } else {
            1
        };
        let total = batch.len();
        let store_ref = &*store;
        let results = daakg_parallel::par_map_ranges(total, shards, |r| {
            let mut s = TapeSession::new();
            let pos_scores = model.score_triples_sparse(
                &mut s,
                store_ref,
                prefix,
                &batch.heads[r.clone()],
                &batch.rels[r.clone()],
                &batch.tails[r.clone()],
            );
            let nr = r.start * k..r.end * k;
            let neg_scores = model.score_triples_sparse(
                &mut s,
                store_ref,
                prefix,
                &neg.heads[nr.clone()],
                &neg.rels[nr.clone()],
                &neg.tails[nr],
            );
            let weight = r.len() as f32 / total as f32;
            let loss = self.hinge_loss(&mut s, pos_scores, neg_scores, r.len(), weight);
            let loss_val = s.graph.value(loss).item();
            s.backward(loss);
            (loss_val, s.take_grads())
        });
        let mut loss_total = 0.0;
        let mut grads = NamedGrads::default();
        for (loss, shard_grads) in results {
            loss_total += loss;
            grads.merge(shard_grads);
        }
        grads.apply(store, opt);
        loss_total
    }

    /// The shared margin-ranking loss tail: repeat each positive score `k`
    /// times against its negatives, hinge, average, and scale by `weight`
    /// (a shard's share of the batch; `1.0` leaves the tape identical to
    /// the dense construction).
    fn hinge_loss(
        &self,
        s: &mut TapeSession,
        pos_scores: daakg_autograd::Var,
        neg_scores: daakg_autograd::Var,
        positives: usize,
        weight: f32,
    ) -> daakg_autograd::Var {
        let k = self.cfg.neg_samples;
        let rep_idx: Vec<u32> = (0..positives as u32)
            .flat_map(|i| std::iter::repeat_n(i, k))
            .collect();
        let pos_rep = s.graph.gather_rows(pos_scores, &rep_idx);
        let margin_pos = s.graph.add_scalar(pos_rep, self.cfg.margin_er);
        let diff = s.graph.sub(margin_pos, neg_scores);
        let hinge = s.graph.relu(diff);
        let mean = s.graph.mean_all(hinge);
        if weight == 1.0 {
            mean
        } else {
            s.graph.mul_scalar(mean, weight)
        }
    }

    /// One full pass of `O_ec` (Eq. 3) over the KG's type assertions:
    /// `Σ |λ_ec + f_ec(e, c) − f_ec(e', c)|₊` with `e' ∉ c`.
    #[allow(clippy::too_many_arguments)]
    fn ec_step(
        &self,
        model: &dyn KgEmbedding,
        ec_model: &EntityClassModel,
        kg: &KnowledgeGraph,
        sampler: &ClassNegativeSampler,
        store: &mut ParamStore,
        prefix: &str,
        opt: &mut Adam,
        rng: &mut StdRng,
    ) -> f32 {
        let assertions = kg.type_assertions();
        let mut pos_entities = Vec::with_capacity(assertions.len());
        let mut neg_entities = Vec::with_capacity(assertions.len());
        let mut classes = Vec::with_capacity(assertions.len());
        for a in assertions {
            pos_entities.push(a.entity.raw());
            classes.push(a.class.raw());
            neg_entities.push(sampler.sample_non_member(rng, a.class.raw()));
        }

        // The entity table may carry deferred sparse-Adam rows from the
        // `O_er` batches; the rows this pass gathers must be current. The
        // class/FFNN parameters only ever take dense steps, so they never
        // lag. The dense gradient this step produces for the entity table
        // flushes the remaining rows inside `Adam::step`.
        if self.cfg.mode == TrainMode::Sparse {
            match model.table_params(prefix) {
                Some(tp) => {
                    let ent_rows = unique_rows(&[&pos_entities, &neg_entities]);
                    opt.refresh_rows(store, &tp.ent, &ent_rows);
                }
                None => opt.flush(store),
            }
        }

        let mut s = TapeSession::new();
        let ents = model.encode_entities(&mut s, store, prefix);
        let pos_rows = s.graph.gather_rows(ents, &pos_entities);
        let neg_rows = s.graph.gather_rows(ents, &neg_entities);
        let pos_mapped = ec_model.map_entities(&mut s, store, prefix, pos_rows);
        let neg_mapped = ec_model.map_entities(&mut s, store, prefix, neg_rows);
        let pos_scores = ec_model.score(&mut s, store, prefix, pos_mapped, &classes);
        let neg_scores = ec_model.score(&mut s, store, prefix, neg_mapped, &classes);

        let margin_pos = s.graph.add_scalar(pos_scores, self.cfg.margin_ec);
        let diff = s.graph.sub(margin_pos, neg_scores);
        let hinge = s.graph.relu(diff);
        let loss = s.graph.mean_all(hinge);
        let loss_val = s.graph.value(loss).item();
        s.backward(loss);
        s.step(store, opt);
        loss_val
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use crate::transe::TransE;
    use daakg_graph::KgBuilder;

    /// A small chain KG with enough structure to train on.
    fn chain_kg(n: usize) -> KnowledgeGraph {
        let mut b = KgBuilder::new("chain");
        for i in 0..n {
            let a = format!("e{i}");
            let c = format!("e{}", (i + 1) % n);
            b.triple_by_name(&a, "next", &c);
            if i % 2 == 0 {
                b.typing_by_name(&a, "Even");
            } else {
                b.typing_by_name(&a, "Odd");
            }
        }
        b.build()
    }

    #[test]
    fn transe_loss_decreases() {
        let kg = chain_kg(20);
        let model = TransE::new(&kg, 8);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        model.init_params(&mut rng, &mut store, "g.");
        let cfg = EmbedConfig {
            epochs: 10,
            batch_size: 16,
            lr: 0.05,
            dim: 8,
            ..EmbedConfig::default()
        };
        let trainer = EmbedTrainer::new(cfg).unwrap();
        let mut opt = Adam::with_lr(cfg.lr);
        let stats = trainer.train(&model, None, &kg, &mut store, "g.", &mut opt);
        assert_eq!(stats.er_losses.len(), 10);
        assert!(
            stats.improved(),
            "loss did not improve: {:?}",
            stats.er_losses
        );
    }

    #[test]
    fn entity_class_objective_trains() {
        let kg = chain_kg(16);
        let model = TransE::new(&kg, 8);
        let ec = EntityClassModel::new(kg.num_classes(), 8, 4);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        model.init_params(&mut rng, &mut store, "g.");
        ec.init_params(&mut rng, &mut store, "g.");
        let cfg = EmbedConfig {
            epochs: 8,
            batch_size: 16,
            dim: 8,
            class_dim: 4,
            ..EmbedConfig::default()
        };
        let trainer = EmbedTrainer::new(cfg).unwrap();
        let mut opt = Adam::with_lr(cfg.lr);
        let stats = trainer.train(&model, Some(&ec), &kg, &mut store, "g.", &mut opt);
        assert_eq!(stats.ec_losses.len(), 8);
        let first = stats.ec_losses[0];
        let last = *stats.ec_losses.last().unwrap();
        assert!(last <= first, "ec loss did not improve: {first} -> {last}");
        // After training, a member entity should score lower against its
        // class than a non-member.
        let ents = model.entity_matrix(&store, "g.");
        let even = kg.class_by_name("Even").unwrap().raw();
        let member = kg.entity_by_name("e0").unwrap().index();
        let non_member = kg.entity_by_name("e1").unwrap().index();
        let s_member = ec.score_one(&store, "g.", ents.row(member), even);
        let s_non = ec.score_one(&store, "g.", ents.row(non_member), even);
        assert!(
            s_member < s_non,
            "member {s_member} not closer than non-member {s_non}"
        );
    }

    /// Train one model per mode from identical init and return
    /// `(er_losses, final entity table)` for each.
    #[allow(clippy::type_complexity)]
    fn train_both_modes(
        kind: ModelKind,
        threads: usize,
        epochs: usize,
        with_ec: bool,
    ) -> ((Vec<f32>, Vec<f32>), (Vec<f32>, Vec<f32>)) {
        let kg = chain_kg(24);
        let run = |mode: TrainMode| {
            let model = crate::build_model(kind, &kg, 8);
            let ec = with_ec.then(|| EntityClassModel::new(kg.num_classes(), 8, 4));
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(9);
            model.init_params(&mut rng, &mut store, "g.");
            if let Some(ec) = &ec {
                ec.init_params(&mut rng, &mut store, "g.");
            }
            let cfg = EmbedConfig {
                model: kind,
                epochs,
                batch_size: 8,
                dim: 8,
                class_dim: 4,
                mode,
                threads,
                ..EmbedConfig::default()
            };
            let trainer = EmbedTrainer::new(cfg).unwrap();
            let mut opt = Adam::with_lr(cfg.lr);
            let stats = trainer.train(model.as_ref(), ec.as_ref(), &kg, &mut store, "g.", &mut opt);
            (
                stats.er_losses,
                model.entity_matrix(&store, "g.").as_slice().to_vec(),
            )
        };
        (run(TrainMode::Dense), run(TrainMode::Sparse))
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol,
                "{what}[{i}]: dense={x} sparse={y} (tol {tol})"
            );
        }
    }

    #[test]
    fn sparse_training_matches_dense_oracle_single_shard() {
        // One shard keeps the tape op-for-op identical to the dense path,
        // so losses and final parameters agree to float precision.
        let (dense, sparse) = train_both_modes(ModelKind::TransE, 1, 4, false);
        assert_close(&dense.0, &sparse.0, 1e-6, "er loss trajectory");
        assert_close(&dense.1, &sparse.1, 1e-5, "final entity table");
    }

    #[test]
    fn sparse_training_matches_dense_oracle_multi_shard() {
        // Several shards reassociate the gradient sums; trajectories agree
        // within floating-point accumulation tolerance.
        let (dense, sparse) = train_both_modes(ModelKind::TransE, 3, 4, false);
        assert_close(&dense.0, &sparse.0, 1e-4, "er loss trajectory");
        assert_close(&dense.1, &sparse.1, 1e-3, "final entity table");
    }

    #[test]
    fn sparse_training_matches_dense_with_entity_class_objective() {
        // Interleaves sparse er-steps with the dense-gradient ec-step:
        // exercises refresh-before-read and dense-step flushing.
        let (dense, sparse) = train_both_modes(ModelKind::TransE, 2, 3, true);
        assert_close(&dense.0, &sparse.0, 1e-4, "er loss trajectory");
        assert_close(&dense.1, &sparse.1, 1e-3, "final entity table");
    }

    #[test]
    fn sparse_training_matches_dense_for_rotate() {
        let (dense, sparse) = train_both_modes(ModelKind::RotatE, 2, 3, false);
        assert_close(&dense.0, &sparse.0, 1e-4, "er loss trajectory");
        assert_close(&dense.1, &sparse.1, 1e-3, "final entity table");
    }

    #[test]
    fn sparse_mode_falls_back_cleanly_for_encoder_models() {
        // CompGCN reports no table params: the sparse path must still
        // train (single shard, dense gradients) and match the oracle.
        let (dense, sparse) = train_both_modes(ModelKind::CompGcn, 4, 2, false);
        assert_close(&dense.0, &sparse.0, 1e-5, "er loss trajectory");
        assert_close(&dense.1, &sparse.1, 1e-4, "final entity table");
    }

    #[test]
    fn empty_kg_is_a_noop() {
        let kg = KgBuilder::new("empty").build();
        let model = TransE::new(&kg, 8);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        model.init_params(&mut rng, &mut store, "g.");
        let trainer = EmbedTrainer::new(EmbedConfig::default().with_dim(8)).unwrap();
        let mut opt = Adam::with_lr(0.01);
        let stats = trainer.train(&model, None, &kg, &mut store, "g.", &mut opt);
        assert!(stats.er_losses.is_empty());
    }

    #[test]
    fn all_model_kinds_train_one_epoch() {
        let kg = chain_kg(10);
        for kind in ModelKind::ALL {
            let model = crate::build_model(kind, &kg, 8);
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(0);
            model.init_params(&mut rng, &mut store, "g.");
            let cfg = EmbedConfig {
                model: kind,
                epochs: 2,
                batch_size: 8,
                dim: 8,
                ..EmbedConfig::default()
            };
            let trainer = EmbedTrainer::new(cfg).unwrap();
            let mut opt = Adam::with_lr(0.02);
            let stats = trainer.train(model.as_ref(), None, &kg, &mut store, "g.", &mut opt);
            assert_eq!(stats.er_losses.len(), 2, "{kind} failed to train");
            assert!(stats.er_losses.iter().all(|l| l.is_finite()));
        }
    }
}

//! Trainer for the standalone embedding objective: the margin losses
//! `O_er(T)` (Eq. 1) and `O_ec(T_type)` (Eq. 3).
//!
//! The joint alignment objective (Sect. 4.2) builds on these and lives in
//! `daakg-align`; this trainer is also reused there to warm up the
//! embedding tables before alignment learning.

use crate::config::EmbedConfig;
use crate::entity_class::EntityClassModel;
use crate::model::KgEmbedding;
use crate::sampling::{ClassNegativeSampler, NegativeSampler, TripleArrays};
use daakg_autograd::{Adam, ParamStore, TapeSession};
use daakg_graph::KnowledgeGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Summary of one training run.
#[derive(Debug, Clone, Default)]
pub struct TrainStats {
    /// Mean margin loss per epoch (entity–relation objective).
    pub er_losses: Vec<f32>,
    /// Mean margin loss per epoch (entity–class objective).
    pub ec_losses: Vec<f32>,
}

impl TrainStats {
    /// Final entity–relation loss, if any epoch ran.
    pub fn final_er_loss(&self) -> Option<f32> {
        self.er_losses.last().copied()
    }

    /// Whether the loss decreased from the first to the last epoch.
    pub fn improved(&self) -> bool {
        match (self.er_losses.first(), self.er_losses.last()) {
            (Some(first), Some(last)) => last <= first,
            _ => false,
        }
    }
}

/// Trainer executing the embedding objectives for one KG.
pub struct EmbedTrainer {
    cfg: EmbedConfig,
}

impl EmbedTrainer {
    /// A trainer with the given configuration.
    pub fn new(cfg: EmbedConfig) -> Self {
        cfg.validate().expect("invalid EmbedConfig");
        Self { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EmbedConfig {
        &self.cfg
    }

    /// Train the entity–relation objective `O_er` (Eq. 1) and, when the KG
    /// has classes, the entity–class objective `O_ec` (Eq. 3).
    ///
    /// Parameters must already be initialized in `store` under `prefix`
    /// (including the [`EntityClassModel`] parameters when `ec` is given).
    pub fn train(
        &self,
        model: &dyn KgEmbedding,
        ec: Option<&EntityClassModel>,
        kg: &KnowledgeGraph,
        store: &mut ParamStore,
        prefix: &str,
        opt: &mut Adam,
    ) -> TrainStats {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let arrays = TripleArrays::with_reverses(kg);
        let neg_sampler = NegativeSampler::new(kg.num_entities(), &arrays);
        let cls_sampler = ClassNegativeSampler::new(kg);
        let mut stats = TrainStats::default();

        if arrays.is_empty() {
            return stats;
        }

        let mut order: Vec<usize> = (0..arrays.len()).collect();
        for _epoch in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(self.cfg.batch_size) {
                let batch = arrays.select(chunk);
                let loss = self.er_step(model, &batch, &neg_sampler, store, prefix, opt, &mut rng);
                epoch_loss += loss as f64;
                batches += 1;
            }
            stats
                .er_losses
                .push((epoch_loss / batches.max(1) as f64) as f32);

            if let Some(ec_model) = ec {
                if kg.num_type_assertions() > 0 {
                    let loss = self.ec_step(
                        model,
                        ec_model,
                        kg,
                        &cls_sampler,
                        store,
                        prefix,
                        opt,
                        &mut rng,
                    );
                    stats.ec_losses.push(loss);
                }
            }
        }
        stats
    }

    /// One mini-batch step of `O_er` (Eq. 1):
    /// `Σ |λ_er + f_er(pos) − f_er(neg)|₊`.
    #[allow(clippy::too_many_arguments)]
    fn er_step(
        &self,
        model: &dyn KgEmbedding,
        batch: &TripleArrays,
        sampler: &NegativeSampler,
        store: &mut ParamStore,
        prefix: &str,
        opt: &mut Adam,
        rng: &mut StdRng,
    ) -> f32 {
        let k = self.cfg.neg_samples;
        let neg = sampler.corrupt_tails(rng, batch, k);

        let mut s = TapeSession::new();
        let ents = model.encode_entities(&mut s, store, prefix);
        let rels = model.encode_relations(&mut s, store, prefix);

        let pos_scores = model.score_triples(
            &mut s.graph,
            ents,
            rels,
            &batch.heads,
            &batch.rels,
            &batch.tails,
        );
        let neg_scores =
            model.score_triples(&mut s.graph, ents, rels, &neg.heads, &neg.rels, &neg.tails);

        // Repeat each positive score k times to align with its negatives.
        let rep_idx: Vec<u32> = (0..batch.len() as u32)
            .flat_map(|i| std::iter::repeat_n(i, k))
            .collect();
        let pos_rep = s.graph.gather_rows(pos_scores, &rep_idx);
        let margin_pos = s.graph.add_scalar(pos_rep, self.cfg.margin_er);
        let diff = s.graph.sub(margin_pos, neg_scores);
        let hinge = s.graph.relu(diff);
        let loss = s.graph.mean_all(hinge);
        let loss_val = s.graph.value(loss).item();
        s.backward(loss);
        s.step(store, opt);
        loss_val
    }

    /// One full pass of `O_ec` (Eq. 3) over the KG's type assertions:
    /// `Σ |λ_ec + f_ec(e, c) − f_ec(e', c)|₊` with `e' ∉ c`.
    #[allow(clippy::too_many_arguments)]
    fn ec_step(
        &self,
        model: &dyn KgEmbedding,
        ec_model: &EntityClassModel,
        kg: &KnowledgeGraph,
        sampler: &ClassNegativeSampler,
        store: &mut ParamStore,
        prefix: &str,
        opt: &mut Adam,
        rng: &mut StdRng,
    ) -> f32 {
        let assertions = kg.type_assertions();
        let mut pos_entities = Vec::with_capacity(assertions.len());
        let mut neg_entities = Vec::with_capacity(assertions.len());
        let mut classes = Vec::with_capacity(assertions.len());
        for a in assertions {
            pos_entities.push(a.entity.raw());
            classes.push(a.class.raw());
            neg_entities.push(sampler.sample_non_member(rng, a.class.raw()));
        }

        let mut s = TapeSession::new();
        let ents = model.encode_entities(&mut s, store, prefix);
        let pos_rows = s.graph.gather_rows(ents, &pos_entities);
        let neg_rows = s.graph.gather_rows(ents, &neg_entities);
        let pos_mapped = ec_model.map_entities(&mut s, store, prefix, pos_rows);
        let neg_mapped = ec_model.map_entities(&mut s, store, prefix, neg_rows);
        let pos_scores = ec_model.score(&mut s, store, prefix, pos_mapped, &classes);
        let neg_scores = ec_model.score(&mut s, store, prefix, neg_mapped, &classes);

        let margin_pos = s.graph.add_scalar(pos_scores, self.cfg.margin_ec);
        let diff = s.graph.sub(margin_pos, neg_scores);
        let hinge = s.graph.relu(diff);
        let loss = s.graph.mean_all(hinge);
        let loss_val = s.graph.value(loss).item();
        s.backward(loss);
        s.step(store, opt);
        loss_val
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use crate::transe::TransE;
    use daakg_graph::KgBuilder;

    /// A small chain KG with enough structure to train on.
    fn chain_kg(n: usize) -> KnowledgeGraph {
        let mut b = KgBuilder::new("chain");
        for i in 0..n {
            let a = format!("e{i}");
            let c = format!("e{}", (i + 1) % n);
            b.triple_by_name(&a, "next", &c);
            if i % 2 == 0 {
                b.typing_by_name(&a, "Even");
            } else {
                b.typing_by_name(&a, "Odd");
            }
        }
        b.build()
    }

    #[test]
    fn transe_loss_decreases() {
        let kg = chain_kg(20);
        let model = TransE::new(&kg, 8);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        model.init_params(&mut rng, &mut store, "g.");
        let cfg = EmbedConfig {
            epochs: 10,
            batch_size: 16,
            lr: 0.05,
            dim: 8,
            ..EmbedConfig::default()
        };
        let trainer = EmbedTrainer::new(cfg);
        let mut opt = Adam::with_lr(cfg.lr);
        let stats = trainer.train(&model, None, &kg, &mut store, "g.", &mut opt);
        assert_eq!(stats.er_losses.len(), 10);
        assert!(
            stats.improved(),
            "loss did not improve: {:?}",
            stats.er_losses
        );
    }

    #[test]
    fn entity_class_objective_trains() {
        let kg = chain_kg(16);
        let model = TransE::new(&kg, 8);
        let ec = EntityClassModel::new(kg.num_classes(), 8, 4);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        model.init_params(&mut rng, &mut store, "g.");
        ec.init_params(&mut rng, &mut store, "g.");
        let cfg = EmbedConfig {
            epochs: 8,
            batch_size: 16,
            dim: 8,
            class_dim: 4,
            ..EmbedConfig::default()
        };
        let trainer = EmbedTrainer::new(cfg);
        let mut opt = Adam::with_lr(cfg.lr);
        let stats = trainer.train(&model, Some(&ec), &kg, &mut store, "g.", &mut opt);
        assert_eq!(stats.ec_losses.len(), 8);
        let first = stats.ec_losses[0];
        let last = *stats.ec_losses.last().unwrap();
        assert!(last <= first, "ec loss did not improve: {first} -> {last}");
        // After training, a member entity should score lower against its
        // class than a non-member.
        let ents = model.entity_matrix(&store, "g.");
        let even = kg.class_by_name("Even").unwrap().raw();
        let member = kg.entity_by_name("e0").unwrap().index();
        let non_member = kg.entity_by_name("e1").unwrap().index();
        let s_member = ec.score_one(&store, "g.", ents.row(member), even);
        let s_non = ec.score_one(&store, "g.", ents.row(non_member), even);
        assert!(
            s_member < s_non,
            "member {s_member} not closer than non-member {s_non}"
        );
    }

    #[test]
    fn empty_kg_is_a_noop() {
        let kg = KgBuilder::new("empty").build();
        let model = TransE::new(&kg, 8);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        model.init_params(&mut rng, &mut store, "g.");
        let trainer = EmbedTrainer::new(EmbedConfig::default().with_dim(8));
        let mut opt = Adam::with_lr(0.01);
        let stats = trainer.train(&model, None, &kg, &mut store, "g.", &mut opt);
        assert!(stats.er_losses.is_empty());
    }

    #[test]
    fn all_model_kinds_train_one_epoch() {
        let kg = chain_kg(10);
        for kind in ModelKind::ALL {
            let model = crate::build_model(kind, &kg, 8);
            let mut store = ParamStore::new();
            let mut rng = StdRng::seed_from_u64(0);
            model.init_params(&mut rng, &mut store, "g.");
            let cfg = EmbedConfig {
                model: kind,
                epochs: 2,
                batch_size: 8,
                dim: 8,
                ..EmbedConfig::default()
            };
            let trainer = EmbedTrainer::new(cfg);
            let mut opt = Adam::with_lr(0.02);
            let stats = trainer.train(model.as_ref(), None, &kg, &mut store, "g.", &mut opt);
            assert_eq!(stats.er_losses.len(), 2, "{kind} failed to train");
            assert!(stats.er_losses.iter().all(|l| l.is_finite()));
        }
    }
}

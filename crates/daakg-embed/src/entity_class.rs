//! The entity–class embedding model of Eq. (2)–(3).
//!
//! Each class `c` is modelled as a *linear subspace* of a mapped entity
//! space: a shared feed-forward network maps entity embeddings into a
//! `d_c`-dimensional linear space, and each class carries an elementwise
//! weight `w_c` and offset `b_c` defining the subspace
//! `{ e | w_c ⊙ FFNN(e) − b_c ≈ 0 }`. Dimensions where `w_c` is (near) zero
//! are unconstrained, so many entities can satisfy the constraint at once —
//! the paper's resolution of the many-to-one problem.
//!
//! Scoring function (Eq. 2): `f_ec(e, c) = ‖ w_c ⊙ FFNN(e) − b_c ‖`.
//! Loss (Eq. 3): margin ranking between member and non-member entities.

use crate::model::names;
use daakg_autograd::{init, ParamStore, TapeSession, Tensor, Var};
use rand::rngs::StdRng;

/// Parameter names used by the entity-class model.
pub mod ec_names {
    /// Shared FFNN weight matrix (`d_e × d_c`).
    pub const FFNN_W: &str = "ec_ffnn_w";
    /// Shared FFNN bias (`1 × d_c`).
    pub const FFNN_B: &str = "ec_ffnn_b";
    /// Per-class elementwise weight table (`|C| × d_c`).
    pub const CLS_W: &str = "ec_cls_w";
    /// Per-class offset table (`|C| × d_c`).
    pub const CLS_B: &str = "ec_cls_b";
}

/// The entity–class scoring model (shared FFNN + per-class subspace).
pub struct EntityClassModel {
    num_classes: usize,
    entity_dim: usize,
    class_dim: usize,
}

impl EntityClassModel {
    /// Build a model for `num_classes` classes over entity embeddings of
    /// dimension `entity_dim`, mapping into a `class_dim` linear space.
    pub fn new(num_classes: usize, entity_dim: usize, class_dim: usize) -> Self {
        Self {
            num_classes,
            entity_dim,
            class_dim,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Class-space dimension `d_c`.
    pub fn class_dim(&self) -> usize {
        self.class_dim
    }

    /// Initialize parameters into `store` under `prefix`.
    pub fn init_params(&self, rng: &mut StdRng, store: &mut ParamStore, prefix: &str) {
        store.insert(
            names::qualified(prefix, ec_names::FFNN_W),
            init::xavier_uniform(rng, self.entity_dim, self.class_dim),
        );
        store.insert(
            names::qualified(prefix, ec_names::FFNN_B),
            Tensor::zeros(1, self.class_dim),
        );
        store.insert(
            names::qualified(prefix, ec_names::CLS_W),
            Tensor::full(self.num_classes.max(1), self.class_dim, 1.0),
        );
        store.insert(
            names::qualified(prefix, ec_names::CLS_B),
            init::xavier_uniform(rng, self.num_classes.max(1), self.class_dim),
        );
    }

    /// Map a batch of entity representations (`m × d_e`, already on tape)
    /// through the shared FFNN: `tanh(E·W + b)` (`m × d_c`).
    pub fn map_entities(
        &self,
        s: &mut TapeSession,
        store: &ParamStore,
        prefix: &str,
        ents: Var,
    ) -> Var {
        let w = s.param(store, &names::qualified(prefix, ec_names::FFNN_W));
        let b = s.param(store, &names::qualified(prefix, ec_names::FFNN_B));
        let lin = s.graph.matmul(ents, w);
        let biased = s.graph.add_rowvec(lin, b);
        s.graph.tanh(biased)
    }

    /// Scores `f_ec` (`m × 1`) for a batch of (entity row in `mapped`,
    /// class id) pairs. `mapped` must come from [`Self::map_entities`] and
    /// have exactly one row per element of `class_ids`.
    pub fn score(
        &self,
        s: &mut TapeSession,
        store: &ParamStore,
        prefix: &str,
        mapped: Var,
        class_ids: &[u32],
    ) -> Var {
        let w_table = s.param(store, &names::qualified(prefix, ec_names::CLS_W));
        let b_table = s.param(store, &names::qualified(prefix, ec_names::CLS_B));
        let w = s.graph.gather_rows(w_table, class_ids);
        let b = s.graph.gather_rows(b_table, class_ids);
        let weighted = s.graph.mul(w, mapped);
        let diff = s.graph.sub(weighted, b);
        s.graph.rows_l2norm(diff)
    }

    /// Tape-free `f_ec(e, c)` over snapshot tensors.
    pub fn score_one(
        &self,
        store: &ParamStore,
        prefix: &str,
        entity_row: &[f32],
        class: u32,
    ) -> f32 {
        let w = store.get(&names::qualified(prefix, ec_names::FFNN_W));
        let b = store.get(&names::qualified(prefix, ec_names::FFNN_B));
        let cw = store.get(&names::qualified(prefix, ec_names::CLS_W));
        let cb = store.get(&names::qualified(prefix, ec_names::CLS_B));
        // mapped = tanh(e·W + b)
        let mut mapped = vec![0.0f32; self.class_dim];
        for (c, m) in mapped.iter_mut().enumerate() {
            let mut acc = b.get(0, c);
            for (i, &ev) in entity_row.iter().enumerate() {
                acc += ev * w.get(i, c);
            }
            *m = acc.tanh();
        }
        let wrow = cw.row(class as usize);
        let brow = cb.row(class as usize);
        mapped
            .iter()
            .zip(wrow)
            .zip(brow)
            .map(|((m, w), b)| {
                let d = m * w - b;
                d * d
            })
            .sum::<f32>()
            .sqrt()
    }

    /// The *class embedding* used for schema alignment: the concatenation
    /// `[w_c | b_c]` describing the subspace, mirroring how the paper
    /// compares classes through their learned representations.
    pub fn class_embedding(&self, store: &ParamStore, prefix: &str, class: u32) -> Vec<f32> {
        let cw = store.get(&names::qualified(prefix, ec_names::CLS_W));
        let cb = store.get(&names::qualified(prefix, ec_names::CLS_B));
        let mut v = Vec::with_capacity(2 * self.class_dim);
        v.extend_from_slice(cw.row(class as usize));
        v.extend_from_slice(cb.row(class as usize));
        v
    }

    /// All class embeddings stacked (`|C| × 2d_c`).
    pub fn class_matrix(&self, store: &ParamStore, prefix: &str) -> Tensor {
        let mut out = Tensor::zeros(self.num_classes, 2 * self.class_dim);
        for c in 0..self.num_classes {
            let emb = self.class_embedding(store, prefix, c as u32);
            out.row_mut(c).copy_from_slice(&emb);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny() -> (EntityClassModel, ParamStore) {
        let m = EntityClassModel::new(3, 8, 4);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        m.init_params(&mut rng, &mut store, "g.");
        (m, store)
    }

    #[test]
    fn shapes() {
        let (m, store) = tiny();
        assert_eq!(store.get("g.ec_ffnn_w").shape(), (8, 4));
        assert_eq!(store.get("g.ec_cls_w").shape(), (3, 4));
        assert_eq!(m.class_matrix(&store, "g.").shape(), (3, 8));
        assert_eq!(m.class_embedding(&store, "g.", 1).len(), 8);
    }

    #[test]
    fn tape_score_matches_snapshot() {
        let (m, store) = tiny();
        let ent_row: Vec<f32> = (0..8).map(|i| 0.1 * i as f32 - 0.3).collect();
        let mut g = TapeSession::new();
        let ents = g.leaf(Tensor::row_vector(&ent_row));
        let mapped = m.map_entities(&mut g, &store, "g.", ents);
        let s = m.score(&mut g, &store, "g.", mapped, &[2]);
        let snap = m.score_one(&store, "g.", &ent_row, 2);
        assert!((g.value(s).item() - snap).abs() < 1e-5);
    }

    #[test]
    fn member_entity_can_reach_zero_score() {
        // If b_c = w_c ⊙ FFNN(e) exactly, the score is zero.
        let (m, mut store) = tiny();
        let ent_row: Vec<f32> = (0..8).map(|i| 0.05 * i as f32).collect();
        // Compute mapped vector with current FFNN.
        let mut g = TapeSession::new();
        let ents = g.leaf(Tensor::row_vector(&ent_row));
        let mapped_var = m.map_entities(&mut g, &store, "g.", ents);
        let mapped = g.value(mapped_var).row(0).to_vec();
        let mut cb = store.get("g.ec_cls_b").clone();
        // w_c is all-ones initially, so set b_c = mapped.
        cb.row_mut(0).copy_from_slice(&mapped);
        store.insert("g.ec_cls_b", cb);
        assert!(m.score_one(&store, "g.", &ent_row, 0) < 1e-6);
        // Another entity should not be at zero.
        let other: Vec<f32> = (0..8).map(|i| -0.2 * i as f32 + 0.7).collect();
        assert!(m.score_one(&store, "g.", &other, 0) > 1e-4);
    }

    #[test]
    fn many_entities_can_share_a_subspace() {
        // Zero out w_c: every entity lies in the subspace (score = ||b_c||
        // constant); with b_c = 0 too, f_ec = 0 for *all* entities — the
        // many-to-one resolution in the limit.
        let (m, mut store) = tiny();
        let mut cw = store.get("g.ec_cls_w").clone();
        for v in cw.row_mut(0) {
            *v = 0.0;
        }
        store.insert("g.ec_cls_w", cw);
        let mut cb = store.get("g.ec_cls_b").clone();
        for v in cb.row_mut(0) {
            *v = 0.0;
        }
        store.insert("g.ec_cls_b", cb);
        for k in 0..5 {
            let e: Vec<f32> = (0..8).map(|i| (i as f32) * 0.1 + k as f32).collect();
            assert!(m.score_one(&store, "g.", &e, 0) < 1e-6);
        }
    }

    #[test]
    fn gradients_flow_through_ffnn_and_class_tables() {
        let (m, store) = tiny();
        let mut g = TapeSession::new();
        let ents = g.leaf(Tensor::from_rows(&[
            &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            &[-0.1, -0.2, -0.3, -0.4, -0.5, -0.6, -0.7, -0.8],
        ]));
        let mapped = m.map_entities(&mut g, &store, "g.", ents);
        let s = m.score(&mut g, &store, "g.", mapped, &[0, 1]);
        let loss = g.sum_all(s);
        g.backward(loss);
        assert!(g
            .grad(ents)
            .unwrap()
            .as_slice()
            .iter()
            .any(|v| v.abs() > 0.0));
    }
}

//! Warm-start fine-tuning for live upserts: train *one new embedding row*
//! against frozen base tables.
//!
//! A live `upsert_entity` cannot afford a full retrain — the published
//! snapshot is immutable and the trainer owns the parameter store. What it
//! can afford is a few dozen optimizer steps over a **single trainable
//! row**, pulled toward the (frozen) embeddings of the entities its triples
//! connect it to and pushed away from sampled negatives:
//!
//! ```text
//! loss = relu(margin − mean(cos(x, positives)) + mean(cos(x, negatives)))
//! ```
//!
//! The row lives in its own one-table [`ParamStore`] and trains through the
//! same lazy sparse [`Adam`] path the joint trainer uses (refresh-before-
//! read, flush-before-handoff), so the optimizer state machinery is shared
//! rather than reimplemented. Every negative is presampled from a
//! [`StdRng`] seeded by `cfg.seed` mixed with the caller-supplied salt
//! *before* any training step, and the whole optimization is a sequential
//! scalar loop over one row — the result is bit-for-bit deterministic at
//! any thread count, on any machine with IEEE-754 f32.

use daakg_autograd::{Adam, ParamStore, TapeSession, Tensor};
use daakg_graph::DaakgError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Name of the single trainable row inside the throwaway store.
const ROW: &str = "warm.row";

/// Typed configuration of the warm-start path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmStartConfig {
    /// Optimizer steps over the new row.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Negatives sampled (per step) from the frozen base table.
    pub negatives: usize,
    /// Hinge margin between mean positive and mean negative cosine.
    pub margin: f32,
    /// Base RNG seed; mixed with the per-entity salt so every row draws an
    /// independent, reproducible negative stream.
    pub seed: u64,
}

impl Default for WarmStartConfig {
    fn default() -> Self {
        Self {
            epochs: 20,
            lr: 0.05,
            negatives: 8,
            margin: 0.5,
            seed: 0x57A2,
        }
    }
}

impl WarmStartConfig {
    /// Reject unusable configurations with a typed error.
    pub fn validate(&self) -> Result<(), DaakgError> {
        let fail = |reason: String| DaakgError::InvalidConfig {
            context: "WarmStartConfig",
            reason,
        };
        if self.epochs == 0 {
            return Err(fail("epochs must be at least 1".into()));
        }
        if !(self.lr.is_finite() && self.lr > 0.0) {
            return Err(fail(format!(
                "lr must be finite and positive, got {}",
                self.lr
            )));
        }
        if self.negatives == 0 {
            return Err(fail("negatives must be at least 1".into()));
        }
        if !self.margin.is_finite() || self.margin < 0.0 {
            return Err(fail(format!(
                "margin must be finite and non-negative, got {}",
                self.margin
            )));
        }
        Ok(())
    }
}

/// Train one new embedding row against frozen tables.
///
/// * `base` — the frozen corpus negatives are drawn from (`n × d`, `n ≥ 1`);
/// * `positives` — the frozen target rows the new entity's triples point at
///   (`p × d`, `p ≥ 1`), already gathered by the caller (they may come from
///   the base table or from earlier delta rows);
/// * `salt` — a per-entity value (e.g. the new global id) mixed into the
///   seed so distinct upserts draw distinct negative streams while staying
///   reproducible.
///
/// The row initializes to the mean of the positives and returns **raw**
/// (un-normalized) — callers normalize exactly once, the same way snapshot
/// construction normalizes its slabs.
pub fn warm_start_row(
    base: &Tensor,
    positives: &Tensor,
    salt: u64,
    cfg: &WarmStartConfig,
) -> Result<Vec<f32>, DaakgError> {
    warm_start_row_observed(
        base,
        positives,
        salt,
        cfg,
        &daakg_telemetry::HistogramHandle::noop(),
    )
}

/// [`warm_start_row`] with a latency histogram: the full fine-tune
/// (validation, negative presampling, every epoch) is recorded as one
/// duration into `hist`. A no-op handle costs nothing.
pub fn warm_start_row_observed(
    base: &Tensor,
    positives: &Tensor,
    salt: u64,
    cfg: &WarmStartConfig,
    hist: &daakg_telemetry::HistogramHandle,
) -> Result<Vec<f32>, DaakgError> {
    let _span = hist.span();
    cfg.validate()?;
    let d = base.cols();
    if d == 0 || base.rows() == 0 {
        return Err(DaakgError::InvalidConfig {
            context: "WarmStartConfig",
            reason: format!(
                "base table is {}×{d}; need at least one row and column",
                base.rows()
            ),
        });
    }
    if positives.rows() == 0 {
        return Err(DaakgError::InvalidConfig {
            context: "WarmStartConfig",
            reason: "at least one positive row is required".into(),
        });
    }
    if positives.cols() != d {
        return Err(DaakgError::DimensionMismatch {
            context: "warm_start_row positives",
            expected: d,
            got: positives.cols(),
        });
    }

    // Init: mean of the positive rows.
    let p = positives.rows();
    let mut init = vec![0.0f32; d];
    for r in 0..p {
        for (acc, &v) in init.iter_mut().zip(positives.row(r)) {
            *acc += v;
        }
    }
    let inv = 1.0 / p as f32;
    for v in init.iter_mut() {
        *v *= inv;
    }

    // Presample every negative for every epoch before training starts, so
    // the RNG consumption is independent of the optimization path.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ salt.rotate_left(17));
    let n = base.rows() as u32;
    let neg_rows: Vec<Vec<u32>> = (0..cfg.epochs)
        .map(|_| (0..cfg.negatives).map(|_| rng.gen_range(0..n)).collect())
        .collect();

    let mut store = ParamStore::new();
    store.insert(ROW, Tensor::from_vec(1, d, init));
    let mut opt = Adam::with_lr(cfg.lr);
    let pos_rep: Vec<u32> = vec![0; p];
    let neg_rep: Vec<u32> = vec![0; cfg.negatives];

    for negs in &neg_rows {
        // Lazy sparse Adam: rows the tape reads must be current first.
        opt.refresh_rows(&mut store, ROW, &[0]);
        let mut s = TapeSession::new();
        let xp = s.gather_param(&store, ROW, &pos_rep);
        let pos_t = s.graph.leaf(positives.clone());
        let pos_sims = s.graph.cosine_rows(xp, pos_t);
        let pos_mean = s.graph.mean_all(pos_sims);

        let xn = s.gather_param(&store, ROW, &neg_rep);
        let neg_t = s.graph.leaf(base.gather_rows(negs));
        let neg_sims = s.graph.cosine_rows(xn, neg_t);
        let neg_mean = s.graph.mean_all(neg_sims);

        let gap = s.graph.sub(neg_mean, pos_mean);
        let shifted = s.graph.add_scalar(gap, cfg.margin);
        let loss = s.graph.relu(shifted);
        s.backward(loss);
        s.step(&mut store, &mut opt);
    }
    // Flush-before-handoff: materialize any lazily deferred update.
    opt.flush(&mut store);
    Ok(store.get(ROW).as_slice().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use daakg_autograd::tensor::cosine;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn config_validation_is_typed() {
        assert!(WarmStartConfig::default().validate().is_ok());
        for bad in [
            WarmStartConfig {
                epochs: 0,
                ..Default::default()
            },
            WarmStartConfig {
                lr: 0.0,
                ..Default::default()
            },
            WarmStartConfig {
                lr: f32::NAN,
                ..Default::default()
            },
            WarmStartConfig {
                negatives: 0,
                ..Default::default()
            },
            WarmStartConfig {
                margin: -1.0,
                ..Default::default()
            },
        ] {
            let err = bad.validate().unwrap_err();
            assert!(matches!(err, DaakgError::InvalidConfig { .. }), "{err}");
        }
    }

    #[test]
    fn shape_errors_are_typed() {
        let base = random_matrix(5, 8, 1);
        let cfg = WarmStartConfig::default();
        let empty = Tensor::zeros(0, 8);
        assert!(warm_start_row(&base, &empty, 0, &cfg).is_err());
        let wrong = random_matrix(2, 4, 2);
        let err = warm_start_row(&base, &wrong, 0, &cfg).unwrap_err();
        assert!(matches!(err, DaakgError::DimensionMismatch { .. }), "{err}");
        let no_base = Tensor::zeros(0, 8);
        assert!(warm_start_row(&no_base, &base, 0, &cfg).is_err());
    }

    #[test]
    fn trained_row_moves_toward_positives() {
        let base = random_matrix(60, 16, 3);
        let positives = base.gather_rows(&[7, 8]);
        let cfg = WarmStartConfig::default();
        let row = warm_start_row(&base, &positives, 42, &cfg).unwrap();
        assert_eq!(row.len(), 16);
        // The trained row must be closer (in cosine) to its positives than
        // to the average sampled candidate.
        let pos_sim: f32 = (0..2).map(|r| cosine(&row, positives.row(r))).sum::<f32>() / 2.0;
        let mean_sim: f32 = (0..60).map(|r| cosine(&row, base.row(r))).sum::<f32>() / 60.0;
        assert!(
            pos_sim > mean_sim,
            "warm start did not attract the row: pos {pos_sim} vs mean {mean_sim}"
        );
        assert!(row.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn result_is_bitwise_deterministic() {
        let base = random_matrix(40, 12, 9);
        let positives = base.gather_rows(&[1, 2, 3]);
        let cfg = WarmStartConfig::default();
        let a = warm_start_row(&base, &positives, 5, &cfg).unwrap();
        let b = warm_start_row(&base, &positives, 5, &cfg).unwrap();
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // A different salt draws a different negative stream.
        let c = warm_start_row(&base, &positives, 6, &cfg).unwrap();
        assert_ne!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            c.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}

//! RotatE: rotation in complex space, `f_er(h, r, t) = ‖h ∘ r − t‖`.
//!
//! Entity embeddings are complex vectors stored as `[re | im]` halves of a
//! real vector of even dimension `d`; relation embeddings are phase vectors
//! `θ ∈ [0, 2π)^{d/2}` acting as unit rotations `e^{iθ}`.

use crate::model::{names, KgEmbedding, ModelKind, RelationBound, TableParams};
use daakg_autograd::{init, Graph, ParamStore, TapeSession, Tensor, Var};
use daakg_graph::KnowledgeGraph;
use rand::rngs::StdRng;
use rand::Rng;

/// The RotatE model (Sun et al., 2019).
pub struct RotatE {
    num_entities: usize,
    num_base_relations: usize,
    dim: usize,
}

impl RotatE {
    /// Build a RotatE model for the shape of `kg`. `dim` must be even.
    pub fn new(kg: &KnowledgeGraph, dim: usize) -> Self {
        Self::with_shape(kg.num_entities(), kg.num_relations(), dim)
    }

    /// Build from explicit counts.
    pub fn with_shape(num_entities: usize, num_base_relations: usize, dim: usize) -> Self {
        assert!(dim.is_multiple_of(2), "RotatE requires an even dimension");
        Self {
            num_entities,
            num_base_relations,
            dim,
        }
    }

    /// `‖h ∘ e^{iθ} − t‖` over already-gathered batch rows (`h`, `t` are
    /// `[re|im]` complex rows, `theta` the gathered phase rows).
    fn score_from_vars(&self, g: &mut Graph, h: Var, theta: Var, t: Var) -> Var {
        let half = self.dim / 2;
        let h_re = g.slice_cols(h, 0, half);
        let h_im = g.slice_cols(h, half, self.dim);
        let cos = g.cos(theta);
        let sin = g.sin(theta);

        // (re + i·im)(cosθ + i·sinθ) = (re·cos − im·sin) + i(re·sin + im·cos)
        let rc = g.mul(h_re, cos);
        let is = g.mul(h_im, sin);
        let out_re = g.sub(rc, is);
        let rs = g.mul(h_re, sin);
        let ic = g.mul(h_im, cos);
        let out_im = g.add(rs, ic);

        let rotated = g.concat_cols(out_re, out_im);
        let diff = g.sub(rotated, t);
        g.rows_l2norm(diff)
    }

    /// Rotate the complex vector `e = [re|im]` by phases `theta`.
    fn rotate_vec(e: &[f32], theta: &[f32]) -> Vec<f32> {
        let half = e.len() / 2;
        debug_assert_eq!(theta.len(), half);
        let mut out = vec![0.0f32; e.len()];
        for i in 0..half {
            let (s, c) = theta[i].sin_cos();
            let re = e[i];
            let im = e[half + i];
            out[i] = re * c - im * s;
            out[half + i] = re * s + im * c;
        }
        out
    }
}

impl KgEmbedding for RotatE {
    fn kind(&self) -> ModelKind {
        ModelKind::RotatE
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn relation_dim(&self) -> usize {
        self.dim / 2
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn num_base_relations(&self) -> usize {
        self.num_base_relations
    }

    fn init_params(&self, rng: &mut StdRng, store: &mut ParamStore, prefix: &str) {
        store.insert(
            names::qualified(prefix, names::ENT),
            init::uniform_embedding(rng, self.num_entities, self.dim),
        );
        // Phases for base relations; the reverse of a rotation by θ is a
        // rotation by −θ, but we learn reverse phases freely like the base
        // ones (they are initialized independently).
        store.insert(
            names::qualified(prefix, names::REL),
            init::uniform_phases(rng, 2 * self.num_base_relations, self.dim / 2),
        );
    }

    fn encode_entities(&self, s: &mut TapeSession, store: &ParamStore, prefix: &str) -> Var {
        s.param(store, &names::qualified(prefix, names::ENT))
    }

    fn encode_relations(&self, s: &mut TapeSession, store: &ParamStore, prefix: &str) -> Var {
        s.param(store, &names::qualified(prefix, names::REL))
    }

    fn score_triples(
        &self,
        g: &mut Graph,
        ents: Var,
        rels: Var,
        heads: &[u32],
        rel_ids: &[u32],
        tails: &[u32],
    ) -> Var {
        let h = g.gather_rows(ents, heads);
        let theta = g.gather_rows(rels, rel_ids);
        let t = g.gather_rows(ents, tails);
        self.score_from_vars(g, h, theta, t)
    }

    fn table_params(&self, prefix: &str) -> Option<TableParams> {
        Some(TableParams {
            ent: names::qualified(prefix, names::ENT),
            rel: names::qualified(prefix, names::REL),
        })
    }

    fn score_triples_sparse(
        &self,
        s: &mut TapeSession,
        store: &ParamStore,
        prefix: &str,
        heads: &[u32],
        rel_ids: &[u32],
        tails: &[u32],
    ) -> Var {
        let tp = self.table_params(prefix).expect("RotatE is a table model");
        let h = s.gather_param(store, &tp.ent, heads);
        let theta = s.gather_param(store, &tp.rel, rel_ids);
        let t = s.gather_param(store, &tp.ent, tails);
        self.score_from_vars(&mut s.graph, h, theta, t)
    }

    fn entity_matrix(&self, store: &ParamStore, prefix: &str) -> Tensor {
        store.get(&names::qualified(prefix, names::ENT)).clone()
    }

    fn relation_matrix(&self, store: &ParamStore, prefix: &str) -> Tensor {
        let full = store.get(&names::qualified(prefix, names::REL));
        let indices: Vec<u32> = (0..self.num_base_relations as u32).collect();
        full.gather_rows(&indices)
    }

    fn score_one(&self, ents: &Tensor, rels_full: &Tensor, h: u32, r: u32, t: u32) -> f32 {
        let rotated = Self::rotate_vec(ents.row(h as usize), rels_full.row(r as usize));
        rotated
            .iter()
            .zip(ents.row(t as usize))
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
    }

    fn relation_bound(
        &self,
        store: &ParamStore,
        prefix: &str,
        r: u32,
        rng: &mut StdRng,
        m_samples: usize,
    ) -> RelationBound {
        // The exact tail for a head e is e∘r, so the difference vector
        // e∘r − e *depends on the head*: sample m heads and aggregate per
        // Eq. (14). This is why RotatE's inference bounds are looser than
        // TransE's (Table 6 ordering).
        let ents = store.get(&names::qualified(prefix, names::ENT));
        let theta = store
            .get(&names::qualified(prefix, names::REL))
            .row(r as usize)
            .to_vec();
        let m = m_samples.max(1);
        let mut samples = Vec::with_capacity(m);
        for _ in 0..m {
            let e = rng.gen_range(0..self.num_entities);
            let erow = ents.row(e);
            let rotated = Self::rotate_vec(erow, &theta);
            let diff: Vec<f32> = rotated.iter().zip(erow).map(|(a, b)| a - b).collect();
            samples.push(diff);
        }
        RelationBound::from_samples(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_model() -> (RotatE, ParamStore) {
        let model = RotatE::with_shape(5, 2, 8);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        model.init_params(&mut rng, &mut store, "x.");
        (model, store)
    }

    #[test]
    fn rotation_preserves_norm() {
        let e = vec![0.3, -0.4, 0.5, 0.1]; // re=[0.3,-0.4] im=[0.5,0.1]
        let theta = vec![0.7, -1.2];
        let out = RotatE::rotate_vec(&e, &theta);
        let n_in: f32 = e.iter().map(|v| v * v).sum();
        let n_out: f32 = out.iter().map(|v| v * v).sum();
        assert!((n_in - n_out).abs() < 1e-5);
    }

    #[test]
    fn zero_phase_is_identity() {
        let e = vec![1.0, 2.0, 3.0, 4.0];
        let out = RotatE::rotate_vec(&e, &[0.0, 0.0]);
        assert_eq!(out, e);
    }

    #[test]
    fn tape_score_matches_snapshot_score() {
        let (model, store) = tiny_model();
        let mut g = TapeSession::new();
        let ents = model.encode_entities(&mut g, &store, "x.");
        let rels = model.encode_relations(&mut g, &store, "x.");
        let s = model.score_triples(&mut g.graph, ents, rels, &[0, 2], &[0, 3], &[1, 4]);
        let snap_e = model.entity_matrix(&store, "x.");
        let snap_r = store.get("x.rel").clone();
        assert!((g.value(s).get(0, 0) - model.score_one(&snap_e, &snap_r, 0, 0, 1)).abs() < 1e-5);
        assert!((g.value(s).get(1, 0) - model.score_one(&snap_e, &snap_r, 2, 3, 4)).abs() < 1e-5);
    }

    #[test]
    fn exact_rotation_scores_zero() {
        let (model, mut store) = tiny_model();
        let mut ents = store.get("x.ent").clone();
        let theta = store.get("x.rel").row(1).to_vec();
        let rotated = RotatE::rotate_vec(ents.row(0), &theta);
        ents.row_mut(1).copy_from_slice(&rotated);
        store.insert("x.ent", ents);
        let snap_e = model.entity_matrix(&store, "x.");
        let snap_r = store.get("x.rel").clone();
        assert!(model.score_one(&snap_e, &snap_r, 0, 1, 1) < 1e-6);
    }

    #[test]
    fn relation_bound_is_positive_for_rotation() {
        let (model, store) = tiny_model();
        let mut rng = StdRng::seed_from_u64(3);
        let b = model.relation_bound(&store, "x.", 0, &mut rng, 8);
        // Differences vary with the head, so the bound is nonzero (unlike
        // TransE).
        assert!(b.bound > 0.0);
        assert_eq!(b.diff.len(), 8);
    }

    #[test]
    fn shapes() {
        let (model, store) = tiny_model();
        assert_eq!(model.relation_dim(), 4);
        assert_eq!(store.get("x.rel").shape(), (4, 4));
        assert_eq!(model.relation_matrix(&store, "x.").shape(), (2, 4));
    }
}

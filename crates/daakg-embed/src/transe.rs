//! TransE: translation-based embedding, `f_er(h, r, t) = ‖h + r − t‖`.

use crate::model::{names, KgEmbedding, ModelKind, RelationBound, TableParams};
use daakg_autograd::{init, Graph, ParamStore, TapeSession, Tensor, Var};
use daakg_graph::KnowledgeGraph;
use rand::rngs::StdRng;

/// The TransE model (Bordes et al., 2013).
///
/// The simplest geometric scorer and — per Table 6 of the paper — the one
/// with the *most accurate* inference-power bounds, because the tail of a
/// triple is determined exactly: `t = h + r`, so the difference vector is
/// the relation embedding itself and the bound `d` is zero.
pub struct TransE {
    num_entities: usize,
    num_base_relations: usize,
    dim: usize,
}

impl TransE {
    /// Build a TransE model for the shape of `kg`.
    pub fn new(kg: &KnowledgeGraph, dim: usize) -> Self {
        Self {
            num_entities: kg.num_entities(),
            num_base_relations: kg.num_relations(),
            dim,
        }
    }

    /// Build from explicit counts (used by tests and synthetic setups).
    pub fn with_shape(num_entities: usize, num_base_relations: usize, dim: usize) -> Self {
        Self {
            num_entities,
            num_base_relations,
            dim,
        }
    }

    /// `‖h + r − t‖` over already-gathered batch rows.
    fn score_from_vars(g: &mut Graph, h: Var, r: Var, t: Var) -> Var {
        let hr = g.add(h, r);
        let diff = g.sub(hr, t);
        g.rows_l2norm(diff)
    }
}

impl KgEmbedding for TransE {
    fn kind(&self) -> ModelKind {
        ModelKind::TransE
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn relation_dim(&self) -> usize {
        self.dim
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn num_base_relations(&self) -> usize {
        self.num_base_relations
    }

    fn init_params(&self, rng: &mut StdRng, store: &mut ParamStore, prefix: &str) {
        store.insert(
            names::qualified(prefix, names::ENT),
            init::uniform_embedding(rng, self.num_entities, self.dim),
        );
        store.insert(
            names::qualified(prefix, names::REL),
            init::uniform_embedding(rng, 2 * self.num_base_relations, self.dim),
        );
    }

    fn encode_entities(&self, s: &mut TapeSession, store: &ParamStore, prefix: &str) -> Var {
        s.param(store, &names::qualified(prefix, names::ENT))
    }

    fn encode_relations(&self, s: &mut TapeSession, store: &ParamStore, prefix: &str) -> Var {
        s.param(store, &names::qualified(prefix, names::REL))
    }

    fn score_triples(
        &self,
        g: &mut Graph,
        ents: Var,
        rels: Var,
        heads: &[u32],
        rel_ids: &[u32],
        tails: &[u32],
    ) -> Var {
        let h = g.gather_rows(ents, heads);
        let r = g.gather_rows(rels, rel_ids);
        let t = g.gather_rows(ents, tails);
        Self::score_from_vars(g, h, r, t)
    }

    fn table_params(&self, prefix: &str) -> Option<TableParams> {
        Some(TableParams {
            ent: names::qualified(prefix, names::ENT),
            rel: names::qualified(prefix, names::REL),
        })
    }

    fn score_triples_sparse(
        &self,
        s: &mut TapeSession,
        store: &ParamStore,
        prefix: &str,
        heads: &[u32],
        rel_ids: &[u32],
        tails: &[u32],
    ) -> Var {
        // The whole score `‖h + r − t‖` is one fused tape node: no
        // batch×dim intermediates, and backward scatters straight into the
        // sparse row-gradients of the two tables.
        let tp = self.table_params(prefix).expect("TransE is a table model");
        s.gather_l2_param(
            store,
            &[
                (&tp.ent, heads, 1.0),
                (&tp.rel, rel_ids, 1.0),
                (&tp.ent, tails, -1.0),
            ],
        )
    }

    fn entity_matrix(&self, store: &ParamStore, prefix: &str) -> Tensor {
        store.get(&names::qualified(prefix, names::ENT)).clone()
    }

    fn relation_matrix(&self, store: &ParamStore, prefix: &str) -> Tensor {
        let full = store.get(&names::qualified(prefix, names::REL));
        let indices: Vec<u32> = (0..self.num_base_relations as u32).collect();
        full.gather_rows(&indices)
    }

    fn score_one(&self, ents: &Tensor, rels_full: &Tensor, h: u32, r: u32, t: u32) -> f32 {
        let hrow = ents.row(h as usize);
        let rrow = rels_full.row(r as usize);
        let trow = ents.row(t as usize);
        hrow.iter()
            .zip(rrow)
            .zip(trow)
            .map(|((hv, rv), tv)| {
                let d = hv + rv - tv;
                d * d
            })
            .sum::<f32>()
            .sqrt()
    }

    fn relation_bound(
        &self,
        store: &ParamStore,
        prefix: &str,
        r: u32,
        _rng: &mut StdRng,
        _m_samples: usize,
    ) -> RelationBound {
        // Closed form (Sect. 5.2): solving f_er(e1, r, e2) = 0 gives the
        // unique e2 = e1 + r, so r̃ = r and d = 0.
        let rels = store.get(&names::qualified(prefix, names::REL));
        RelationBound::exact(rels.row(r as usize).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_model() -> (TransE, ParamStore) {
        let model = TransE::with_shape(4, 2, 8);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        model.init_params(&mut rng, &mut store, "g1.");
        (model, store)
    }

    #[test]
    fn init_shapes() {
        let (model, store) = tiny_model();
        assert_eq!(store.get("g1.ent").shape(), (4, 8));
        // Reverse relations double the table.
        assert_eq!(store.get("g1.rel").shape(), (4, 8));
        assert_eq!(model.relation_matrix(&store, "g1.").shape(), (2, 8));
    }

    #[test]
    fn perfect_translation_scores_zero() {
        let (model, mut store) = tiny_model();
        // Force e0 + r0 = e1 exactly.
        let mut ents = store.get("g1.ent").clone();
        let h: Vec<f32> = ents.row(0).to_vec();
        let r: Vec<f32> = store.get("g1.rel").row(0).to_vec();
        for (i, v) in ents.row_mut(1).iter_mut().enumerate() {
            *v = h[i] + r[i];
        }
        store.insert("g1.ent", ents);
        let ents = model.entity_matrix(&store, "g1.");
        let rels = store.get("g1.rel").clone();
        assert!(model.score_one(&ents, &rels, 0, 0, 1) < 1e-6);
        assert!(model.score_one(&ents, &rels, 0, 0, 2) > 1e-3);
    }

    #[test]
    fn tape_score_matches_snapshot_score() {
        let (model, store) = tiny_model();
        let mut g = TapeSession::new();
        let ents = model.encode_entities(&mut g, &store, "g1.");
        let rels = model.encode_relations(&mut g, &store, "g1.");
        let s = model.score_triples(&mut g.graph, ents, rels, &[0, 1], &[0, 1], &[2, 3]);
        let snap_e = model.entity_matrix(&store, "g1.");
        let snap_r = store.get("g1.rel").clone();
        let s0 = model.score_one(&snap_e, &snap_r, 0, 0, 2);
        let s1 = model.score_one(&snap_e, &snap_r, 1, 1, 3);
        assert!((g.value(s).get(0, 0) - s0).abs() < 1e-5);
        assert!((g.value(s).get(1, 0) - s1).abs() < 1e-5);
    }

    #[test]
    fn relation_bound_is_exact() {
        let (model, store) = tiny_model();
        let mut rng = StdRng::seed_from_u64(1);
        let b = model.relation_bound(&store, "g1.", 1, &mut rng, 5);
        assert_eq!(b.bound, 0.0);
        assert_eq!(b.diff, store.get("g1.rel").row(1).to_vec());
    }

    #[test]
    fn gradients_flow_to_tables() {
        let (model, store) = tiny_model();
        let mut g = TapeSession::new();
        let ents = model.encode_entities(&mut g, &store, "g1.");
        let rels = model.encode_relations(&mut g, &store, "g1.");
        let s = model.score_triples(&mut g.graph, ents, rels, &[0], &[0], &[1]);
        let loss = g.sum_all(s);
        g.backward(loss);
        assert!(g.grad(ents).is_some());
        assert!(g.grad(rels).is_some());
        // Only rows 0 and 1 of the entity table receive gradient.
        let ge = g.grad(ents).unwrap();
        assert!(ge.row(0).iter().any(|v| v.abs() > 0.0));
        assert!(ge.row(1).iter().any(|v| v.abs() > 0.0));
        assert!(ge.row(3).iter().all(|v| *v == 0.0));
    }
}

//! Hyper-parameters for embedding training.

use crate::model::ModelKind;
use daakg_graph::DaakgError;

/// How the trainer executes a mini-batch step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrainMode {
    /// The retained reference path: one tape per batch with full parameter
    /// tables bound as leaves, dense gradients, dense Adam. This is the
    /// verification oracle the sparse path is checked against.
    Dense,
    /// The fast path: batches shard across scoped threads, each shard
    /// builds its own tape over shared read-only parameters via external
    /// gathers, shard gradients merge as sparse row-maps, and Adam applies
    /// lazy per-row updates with deferred decay. Numerically equivalent to
    /// [`TrainMode::Dense`] up to floating-point reassociation.
    #[default]
    Sparse,
}

/// Hyper-parameters for a KG embedding model and its trainer.
///
/// Defaults are the scaled-down analogues of the paper's settings (Sect. 7.1:
/// dim 100/200, margin-based losses, 𝜆 margins): we use a smaller dimension
/// so the full experiment grid runs on a laptop-scale machine; the relative
/// comparisons the paper makes are preserved.
#[derive(Debug, Clone, Copy)]
pub struct EmbedConfig {
    /// Which entity–relation scoring model to use.
    pub model: ModelKind,
    /// Entity embedding dimension `d_e` (must be even for RotatE).
    pub dim: usize,
    /// Class embedding dimension `d_c` (paper picks 50 after search).
    pub class_dim: usize,
    /// Margin `λ_er` of the entity–relation loss, Eq. (1).
    pub margin_er: f32,
    /// Margin `λ_ec` of the entity–class loss, Eq. (3).
    pub margin_ec: f32,
    /// Number of negative samples per positive triple.
    pub neg_samples: usize,
    /// Mini-batch size (number of positive triples).
    pub batch_size: usize,
    /// Training epochs for the embedding objective.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed controlling init and sampling.
    pub seed: u64,
    /// Mini-batch execution mode (sparse/parallel fast path vs the dense
    /// oracle). Sampling is identical in both modes, so the loss
    /// trajectories agree up to floating-point reassociation.
    pub mode: TrainMode,
    /// Worker threads for sharded gradient computation; `0` defers to
    /// [`daakg_parallel::num_threads`]. Ignored in [`TrainMode::Dense`].
    pub threads: usize,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::TransE,
            dim: 32,
            class_dim: 16,
            margin_er: 1.0,
            margin_ec: 0.5,
            neg_samples: 4,
            batch_size: 256,
            epochs: 30,
            lr: 5e-2,
            seed: 42,
            mode: TrainMode::default(),
            threads: 0,
        }
    }
}

impl EmbedConfig {
    /// Config with the given model kind and otherwise default settings.
    pub fn for_model(model: ModelKind) -> Self {
        Self {
            model,
            ..Self::default()
        }
    }

    /// Builder-style override of the dimension.
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Builder-style override of the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the execution mode.
    pub fn with_mode(mut self, mode: TrainMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder-style override of the worker-thread count (0 = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The effective shard count for parallel gradient computation.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            daakg_parallel::num_threads()
        } else {
            self.threads
        }
    }

    /// Validate internal consistency (e.g. even dim for RotatE).
    pub fn validate(&self) -> Result<(), DaakgError> {
        let invalid = |reason| DaakgError::invalid("EmbedConfig", reason);
        if self.dim == 0 {
            return Err(invalid("dim must be positive".into()));
        }
        if self.model == ModelKind::RotatE && !self.dim.is_multiple_of(2) {
            return Err(invalid(format!(
                "RotatE requires an even dim, got {}",
                self.dim
            )));
        }
        if self.neg_samples == 0 {
            return Err(invalid("neg_samples must be positive".into()));
        }
        if self.lr.is_nan() || self.lr <= 0.0 {
            return Err(invalid("lr must be positive".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(EmbedConfig::default().validate().is_ok());
    }

    #[test]
    fn rotate_requires_even_dim() {
        let cfg = EmbedConfig::for_model(ModelKind::RotatE).with_dim(33);
        assert!(cfg.validate().is_err());
        let cfg = EmbedConfig::for_model(ModelKind::RotatE).with_dim(32);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builders_chain() {
        let cfg = EmbedConfig::default()
            .with_dim(8)
            .with_epochs(3)
            .with_seed(7)
            .with_mode(TrainMode::Dense)
            .with_threads(2);
        assert_eq!(cfg.dim, 8);
        assert_eq!(cfg.epochs, 3);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.mode, TrainMode::Dense);
        assert_eq!(cfg.effective_threads(), 2);
    }

    #[test]
    fn sparse_is_the_default_mode_and_threads_auto_resolve() {
        let cfg = EmbedConfig::default();
        assert_eq!(cfg.mode, TrainMode::Sparse);
        assert_eq!(cfg.threads, 0);
        assert!(cfg.effective_threads() >= 1);
    }

    #[test]
    fn degenerate_configs_rejected() {
        let cfg = EmbedConfig {
            dim: 0,
            ..EmbedConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = EmbedConfig {
            neg_samples: 0,
            ..EmbedConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = EmbedConfig {
            lr: 0.0,
            ..EmbedConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}

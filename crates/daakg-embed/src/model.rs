//! The [`KgEmbedding`] trait implemented by all entity–relation models.

use daakg_autograd::{Graph, ParamStore, TapeSession, Tensor, Var};
use rand::rngs::StdRng;

/// The entity–relation embedding model families evaluated in the paper
/// (Sect. 7.1 chooses TransE, RotatE and CompGCN as base models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Translation in real space (Bordes et al., 2013).
    TransE,
    /// Rotation in complex space (Sun et al., 2019).
    RotatE,
    /// Composition-based multi-relational GCN (Vashishth et al., 2020).
    CompGcn,
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelKind::TransE => write!(f, "TransE"),
            ModelKind::RotatE => write!(f, "RotatE"),
            ModelKind::CompGcn => write!(f, "CompGCN"),
        }
    }
}

impl ModelKind {
    /// All three kinds, in the order used by the paper's tables.
    pub const ALL: [ModelKind; 3] = [ModelKind::TransE, ModelKind::RotatE, ModelKind::CompGcn];
}

/// The relation difference vector `r̃` and error bound `d` of Eq. (13)–(14).
///
/// For a labeled entity match connected to a neighbouring pair through
/// relation `r`, the tail embedding is approximated as `e₁ + r̃` with error
/// at most `d`. TransE yields `d = 0` exactly (Sect. 5.2); other models
/// estimate `r̃, d` from `m` sampled solutions.
#[derive(Debug, Clone)]
pub struct RelationBound {
    /// The mean difference vector `r̃`.
    pub diff: Vec<f32>,
    /// The error bound `d = max_i ‖e₂,ᵢ − ẽ₂‖`.
    pub bound: f32,
}

impl RelationBound {
    /// A zero bound around the given difference vector (exact solution).
    pub fn exact(diff: Vec<f32>) -> Self {
        Self { diff, bound: 0.0 }
    }

    /// Compute `(r̃, d)` from a set of sampled difference vectors
    /// (Eq. (14)): the mean vector and the largest distance from it.
    pub fn from_samples(samples: &[Vec<f32>]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let dim = samples[0].len();
        let mut mean = vec![0.0f32; dim];
        for s in samples {
            for (m, v) in mean.iter_mut().zip(s) {
                *m += v;
            }
        }
        let inv = 1.0 / samples.len() as f32;
        for m in mean.iter_mut() {
            *m *= inv;
        }
        let mut bound = 0.0f32;
        for s in samples {
            let d: f32 = s
                .iter()
                .zip(&mean)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt();
            bound = bound.max(d);
        }
        Self { diff: mean, bound }
    }
}

/// The raw embedding-table parameter names of a model whose encoders are
/// plain table lookups (no cross-row computation in the forward pass).
///
/// When a model reports these, the trainer may use the sparse/lazy path:
/// batches read only the gathered rows, so deferred per-row optimizer
/// updates ([`daakg_autograd::Adam::refresh_rows`]) stay sound.
#[derive(Debug, Clone)]
pub struct TableParams {
    /// Qualified name of the entity table.
    pub ent: String,
    /// Qualified name of the relation table (including synthetic reverses).
    pub rel: String,
}

/// A KG entity–relation embedding model over a [`ParamStore`].
///
/// Parameter names are namespaced by a `prefix` (`"g1."` / `"g2."`) so two
/// KGs can share one store. Models internally double the relation vocabulary
/// with synthetic reverse relations: relation `r + num_base_relations` is
/// `r⁻¹`.
pub trait KgEmbedding: Send + Sync {
    /// The model family.
    fn kind(&self) -> ModelKind;

    /// Entity embedding dimension (output of the encoder).
    fn dim(&self) -> usize;

    /// Dimension of the relation representation used for schema alignment.
    fn relation_dim(&self) -> usize;

    /// Number of entities.
    fn num_entities(&self) -> usize;

    /// Number of base (asserted) relations, excluding synthetic reverses.
    fn num_base_relations(&self) -> usize;

    /// Initialize all model parameters into `store` under `prefix`.
    fn init_params(&self, rng: &mut StdRng, store: &mut ParamStore, prefix: &str);

    /// Build the encoded entity matrix (`n×d`) on the tape.
    ///
    /// For table models this is the raw embedding leaf; for GNN models the
    /// message-passing layers run here, so gradients flow through the
    /// aggregation.
    fn encode_entities(&self, s: &mut TapeSession, store: &ParamStore, prefix: &str) -> Var;

    /// Build the relation representation matrix (`2·nr × d_r`) on the tape.
    fn encode_relations(&self, s: &mut TapeSession, store: &ParamStore, prefix: &str) -> Var;

    /// Triple scores `f_er` (`m×1`, lower is better) for index triples over
    /// the encoded matrices.
    fn score_triples(
        &self,
        g: &mut Graph,
        ents: Var,
        rels: Var,
        heads: &[u32],
        rel_ids: &[u32],
        tails: &[u32],
    ) -> Var;

    /// The raw table parameter names, when the encoders are plain table
    /// lookups — enables the sparse/lazy training path. `None` (the
    /// default) for encoder models whose forward pass mixes rows (CompGCN
    /// message passing), which must read and update whole tables.
    fn table_params(&self, _prefix: &str) -> Option<TableParams> {
        None
    }

    /// Triple scores built **without** binding full tables onto the tape:
    /// table models gather the batch rows straight from the store
    /// ([`TapeSession::gather_param`]), so backward yields sparse
    /// row-gradients and no table-sized tensor is ever allocated.
    ///
    /// The default falls back to the dense construction (encode + score),
    /// which is always correct; models reporting [`KgEmbedding::table_params`]
    /// override it with the sparse construction.
    fn score_triples_sparse(
        &self,
        s: &mut TapeSession,
        store: &ParamStore,
        prefix: &str,
        heads: &[u32],
        rel_ids: &[u32],
        tails: &[u32],
    ) -> Var {
        let ents = self.encode_entities(s, store, prefix);
        let rels = self.encode_relations(s, store, prefix);
        self.score_triples(&mut s.graph, ents, rels, heads, rel_ids, tails)
    }

    /// A tape-free snapshot of the encoded entity matrix.
    fn entity_matrix(&self, store: &ParamStore, prefix: &str) -> Tensor;

    /// A tape-free snapshot of the relation representation matrix (base
    /// relations only, `nr × d_r`).
    fn relation_matrix(&self, store: &ParamStore, prefix: &str) -> Tensor;

    /// Tape-free score of a single triple over snapshot matrices.
    fn score_one(&self, ents: &Tensor, rels_full: &Tensor, h: u32, r: u32, t: u32) -> f32;

    /// The relation difference vector `r̃` and bound `d` of Eq. (13)–(14)
    /// for base relation `r`, estimated from `m_samples` solutions.
    fn relation_bound(
        &self,
        store: &ParamStore,
        prefix: &str,
        r: u32,
        rng: &mut StdRng,
        m_samples: usize,
    ) -> RelationBound;
}

/// Shared naming convention for parameters.
pub mod names {
    /// Entity embedding table.
    pub const ENT: &str = "ent";
    /// Relation embedding table (includes synthetic reverses).
    pub const REL: &str = "rel";
    /// GNN self-transform weight.
    pub const W_SELF: &str = "w_self";
    /// GNN message-transform weight.
    pub const W_MSG: &str = "w_msg";

    /// Join a prefix and a base name: `"g1." + "ent"`.
    pub fn qualified(prefix: &str, base: &str) -> String {
        let mut s = String::with_capacity(prefix.len() + base.len());
        s.push_str(prefix);
        s.push_str(base);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_bound_from_identical_samples_is_exact() {
        let b = RelationBound::from_samples(&[vec![1.0, 2.0], vec![1.0, 2.0]]);
        assert_eq!(b.diff, vec![1.0, 2.0]);
        assert_eq!(b.bound, 0.0);
    }

    #[test]
    fn relation_bound_from_spread_samples() {
        let b = RelationBound::from_samples(&[vec![0.0, 0.0], vec![2.0, 0.0]]);
        assert_eq!(b.diff, vec![1.0, 0.0]);
        assert!((b.bound - 1.0).abs() < 1e-6);
    }

    #[test]
    fn model_kind_display() {
        assert_eq!(ModelKind::TransE.to_string(), "TransE");
        assert_eq!(ModelKind::RotatE.to_string(), "RotatE");
        assert_eq!(ModelKind::CompGcn.to_string(), "CompGCN");
        assert_eq!(ModelKind::ALL.len(), 3);
    }

    #[test]
    fn qualified_names() {
        assert_eq!(names::qualified("g1.", names::ENT), "g1.ent");
    }
}

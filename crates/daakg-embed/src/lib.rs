//! # daakg-embed
//!
//! Knowledge-graph embedding models for the DAAKG reproduction (Sect. 4.1 of
//! the paper).
//!
//! Three entity–relation embedding models are provided, matching the paper's
//! experimental setup:
//!
//! * [`TransE`] — translation: `f_er = ‖h + r − t‖`,
//! * [`RotatE`] — complex rotation: `f_er = ‖h ∘ r − t‖`,
//! * [`CompGcn`] — a composition-based graph convolution
//!   encoder scored with a translational decoder.
//!
//! All models implement the [`KgEmbedding`] trait, which
//! exposes (a) tape-based scoring for training, (b) tape-free snapshots for
//! inference, and (c) the *relation difference vectors* `r̃` and error bounds
//! `d` of Eq. (13)–(14) that drive the inference-power measurement.
//!
//! The [`entity_class`] module implements the dedicated entity–class scoring
//! function of Eq. (2) (class-specific linear subspaces reached through a
//! shared FFNN), and [`trainer`] implements the margin losses of Eq. (1) and
//! Eq. (3) with negative [`sampling`].

pub mod compgcn;
pub mod config;
pub mod entity_class;
pub mod model;
pub mod rotate;
pub mod sampling;
pub mod trainer;
pub mod transe;
pub mod warm;

pub use compgcn::CompGcn;
pub use config::{EmbedConfig, TrainMode};
pub use entity_class::EntityClassModel;
pub use model::{KgEmbedding, ModelKind, RelationBound, TableParams};
pub use rotate::RotatE;
pub use trainer::{EmbedTrainer, TrainStats};
pub use transe::TransE;
pub use warm::{warm_start_row, warm_start_row_observed, WarmStartConfig};

/// Construct a boxed model of the given kind for a KG shape.
///
/// `num_relations` is the count of *asserted* relations; each model
/// internally doubles it with synthetic reverse relations `r⁻¹` as described
/// under Eq. (1).
pub fn build_model(
    kind: ModelKind,
    kg: &daakg_graph::KnowledgeGraph,
    dim: usize,
) -> Box<dyn KgEmbedding> {
    match kind {
        ModelKind::TransE => Box::new(TransE::new(kg, dim)),
        ModelKind::RotatE => Box::new(RotatE::new(kg, dim)),
        ModelKind::CompGcn => Box::new(CompGcn::new(kg, dim)),
    }
}

//! Parameter initialization schemes.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Xavier/Glorot uniform initialization: `U(−a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The standard choice for the linear
/// layers and mapping matrices in the joint model.
pub fn xavier_uniform(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Uniform initialization in a fixed range; used by TransE-style embedding
/// tables (`U(−6/√d, 6/√d)` as in Bordes et al.).
pub fn uniform_embedding(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    let a = 6.0 / (cols as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
    let mut t = Tensor::from_vec(rows, cols, data);
    t.normalize_rows(1e-12);
    t
}

/// Uniform phases in `[0, 2π)` for RotatE relation embeddings.
pub fn uniform_phases(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    let two_pi = 2.0 * std::f32::consts::PI;
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(0.0..two_pi))
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Near-identity initialization for alignment mapping matrices: identity
/// plus small uniform noise, as is customary for transform-based alignment
/// (MTransE-style) so training starts close to the identity map.
pub fn near_identity(rng: &mut StdRng, n: usize, noise: f32) -> Tensor {
    let mut t = Tensor::identity(n);
    for v in t.as_mut_slice() {
        *v += rng.gen_range(-noise..noise);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier_uniform(&mut rng, 16, 48);
        let a = (6.0 / 64.0f32).sqrt();
        for &v in t.as_slice() {
            assert!(v.abs() <= a);
        }
    }

    #[test]
    fn embedding_rows_are_unit_norm() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = uniform_embedding(&mut rng, 10, 8);
        for r in 0..t.rows() {
            let n: f32 = t.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn phases_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = uniform_phases(&mut rng, 5, 7);
        for &v in t.as_slice() {
            assert!((0.0..2.0 * std::f32::consts::PI + 1e-6).contains(&v));
        }
    }

    #[test]
    fn near_identity_is_near_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = near_identity(&mut rng, 4, 0.01);
        for r in 0..4 {
            for c in 0..4 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((t.get(r, c) - expect).abs() <= 0.01);
            }
        }
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(7), 3, 3);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(7), 3, 3);
        assert_eq!(a, b);
    }
}

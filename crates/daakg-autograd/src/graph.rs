//! The reverse-mode tape.
//!
//! Every operation eagerly computes its forward value and records the op on
//! the tape; [`Graph::backward`] then walks the tape in reverse, accumulating
//! gradients into each node. Nodes are addressed by the copy-able [`Var`]
//! handle, which avoids self-referential lifetimes entirely (index-based
//! arena, a standard Rust graph pattern).

use crate::sparse::SparseGrad;
use crate::tensor::Tensor;

/// Handle to a node on a [`Graph`] tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(u32);

impl Var {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug)]
enum Op {
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    AddScalar(Var),
    MulScalar(Var, f32),
    MatMul(Var, Var),
    Transpose(Var),
    Gather(Var, Vec<u32>),
    /// Gather from an *external* parameter (not a tape node): the table
    /// never enters the tape, and its gradient accumulates as a
    /// [`SparseGrad`] over the touched rows only.
    GatherExternal(u32, Vec<u32>),
    /// Fused external gather-combine-norm: output row `i` is the L2 norm
    /// of `Σ_t sign_t · table_t[indices_t[i]]`. One tape node replaces the
    /// gather/add/sub/norm chain of translational scoring — no
    /// intermediate batch tensors on either pass. `diff` caches the signed
    /// row sums for the backward.
    GatherL2External {
        terms: Vec<(u32, Vec<u32>, f32)>,
        diff: Tensor,
    },
    ScatterMean {
        src: Var,
        targets: Vec<u32>,
        counts: Vec<u32>,
    },
    SumAll(Var),
    MeanAll(Var),
    SumRows(Var),
    Relu(Var),
    Tanh(Var),
    Sigmoid(Var),
    Exp(Var),
    Log(Var),
    Neg(Var),
    PowScalar(Var, f32),
    Sin(Var),
    Cos(Var),
    SliceCols(Var, usize, usize),
    ConcatCols(Var, Var),
    MulColVec(Var, Var),
    AddRowVec(Var, Var),
    RowsL2Norm(Var),
    CosineRows(Var, Var),
    SoftmaxRows(Var),
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
}

/// An external parameter referenced by [`Graph::gather_external`]: the
/// table stays owned by the caller; the graph only tracks its name, width
/// and the sparse gradient accumulated during backward.
struct ExternalParam {
    name: String,
    cols: usize,
    rows: usize,
    grad: Option<SparseGrad>,
}

/// One term of a fused external gather-combine
/// ([`Graph::gather_l2_external`]): contributes
/// `sign · table[indices[i]]` to batch row `i`.
pub struct GatherTerm<'a> {
    /// External parameter name (the optimizer key).
    pub name: &'a str,
    /// The parameter table (stays owned by the caller).
    pub table: &'a Tensor,
    /// One table row per batch row.
    pub indices: &'a [u32],
    /// Coefficient of this term (`+1.0` / `-1.0` for `h + r − t`).
    pub sign: f32,
}

/// A dynamic computation graph (tape).
///
/// Graphs are cheap to create; the training loops build a fresh graph per
/// mini-batch, exactly like dynamic frameworks do.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    externals: Vec<ExternalParam>,
}

const NORM_EPS: f32 = 1e-12;

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        let idx = self.nodes.len();
        assert!(idx <= u32::MAX as usize, "tape overflow");
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(idx as u32)
    }

    /// Record an input / parameter node.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Re-create a handle to the `index`-th node on the tape.
    ///
    /// Useful when inspecting nodes created inside another function (e.g.
    /// asserting that all leaves of an encoder received gradients).
    pub fn var_at(&self, index: usize) -> Var {
        assert!(index < self.nodes.len(), "node index out of range");
        Var(index as u32)
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.index()].value
    }

    /// The accumulated gradient of a node, available after
    /// [`Graph::backward`]. `None` if the node did not participate.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.index()].grad.as_ref()
    }

    // ------------------------------------------------------------------
    // Elementwise binary ops
    // ------------------------------------------------------------------

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.shape(), tb.shape(), "add shape mismatch");
        let mut out = ta.clone();
        out.add_assign(tb);
        self.push(out, Op::Add(a, b))
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.shape(), tb.shape(), "sub shape mismatch");
        let mut out = ta.clone();
        out.add_scaled(tb, -1.0);
        self.push(out, Op::Sub(a, b))
    }

    /// Elementwise (Hadamard) `a * b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.shape(), tb.shape(), "mul shape mismatch");
        let data: Vec<f32> = ta
            .as_slice()
            .iter()
            .zip(tb.as_slice())
            .map(|(x, y)| x * y)
            .collect();
        let out = Tensor::from_vec(ta.rows(), ta.cols(), data);
        self.push(out, Op::Mul(a, b))
    }

    /// `a + s` for a scalar `s`.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let out = self.value(a).map(|x| x + s);
        self.push(out, Op::AddScalar(a))
    }

    /// `a * s` for a scalar `s`.
    pub fn mul_scalar(&mut self, a: Var, s: f32) -> Var {
        let out = self.value(a).map(|x| x * s);
        self.push(out, Op::MulScalar(a, s))
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let out = self.value(a).matmul(self.value(b));
        self.push(out, Op::MatMul(a, b))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let out = self.value(a).transpose();
        self.push(out, Op::Transpose(a))
    }

    /// Gather rows of `table` by index: output row `i` is
    /// `table.row(indices[i])`. The backward pass scatter-adds, which is the
    /// sparse embedding-table update.
    pub fn gather_rows(&mut self, table: Var, indices: &[u32]) -> Var {
        let out = self.value(table).gather_rows(indices);
        self.push(out, Op::Gather(table, indices.to_vec()))
    }

    /// Gather rows of an **external** parameter table by index, without
    /// putting the table itself on the tape: output row `i` is
    /// `table.row(indices[i])`.
    ///
    /// This is the sparse training hot path. The backward pass accumulates
    /// a [`SparseGrad`] holding only the touched rows — no dense gradient
    /// the size of the table is ever allocated — retrievable after
    /// [`Graph::backward`] via [`Graph::external_grad`] /
    /// [`Graph::take_external_grads`]. Repeated calls with the same `name`
    /// accumulate into the same sparse gradient; the caller guarantees the
    /// same tensor is passed for a given name within one tape.
    pub fn gather_external(&mut self, name: &str, table: &Tensor, indices: &[u32]) -> Var {
        let slot = self.register_external(name, table);
        let out = table.gather_rows(indices);
        self.push(out, Op::GatherExternal(slot as u32, indices.to_vec()))
    }

    /// Fused sparse scoring: output row `i` is the **L2 norm** of the
    /// signed sum `Σ_t sign_t · table_t[indices_t[i]]` over external
    /// parameter tables — the whole translational score `‖h + r − t‖` as
    /// one tape node. Arithmetic matches the decomposed
    /// gather/add/sub/[`Graph::rows_l2norm`] chain exactly (same element
    /// order), but neither pass materializes a batch×dim intermediate per
    /// op, which is what makes the sparse training path fast.
    pub fn gather_l2_external(&mut self, terms: &[GatherTerm]) -> Var {
        assert!(!terms.is_empty(), "at least one gather term");
        let cols = terms[0].table.cols();
        let m = terms[0].indices.len();
        let mut op_terms = Vec::with_capacity(terms.len());
        for t in terms {
            assert_eq!(t.table.cols(), cols, "gather term width mismatch");
            assert_eq!(t.indices.len(), m, "gather term length mismatch");
            let slot = self.register_external(t.name, t.table);
            op_terms.push((slot as u32, t.indices.to_vec(), t.sign));
        }
        let mut diff = Tensor::zeros(m, cols);
        for (term, op_term) in terms.iter().zip(&op_terms) {
            let sign = op_term.2;
            for (i, &idx) in op_term.1.iter().enumerate() {
                let src = term.table.row(idx as usize);
                for (d, v) in diff.row_mut(i).iter_mut().zip(src) {
                    *d += sign * v;
                }
            }
        }
        let mut out = Tensor::zeros(m, 1);
        for i in 0..m {
            let n = diff.row(i).iter().map(|x| x * x).sum::<f32>().sqrt();
            out.set(i, 0, n);
        }
        self.push(
            out,
            Op::GatherL2External {
                terms: op_terms,
                diff,
            },
        )
    }

    fn register_external(&mut self, name: &str, table: &Tensor) -> usize {
        match self.externals.iter().position(|e| e.name == name) {
            Some(i) => {
                assert_eq!(
                    self.externals[i].cols,
                    table.cols(),
                    "external parameter {name:?} re-registered with a different width"
                );
                i
            }
            None => {
                self.externals.push(ExternalParam {
                    name: name.to_owned(),
                    cols: table.cols(),
                    rows: table.rows(),
                    grad: None,
                });
                self.externals.len() - 1
            }
        }
    }

    /// The sparse gradient accumulated for the named external parameter,
    /// available after [`Graph::backward`].
    pub fn external_grad(&self, name: &str) -> Option<&SparseGrad> {
        self.externals
            .iter()
            .find(|e| e.name == name)
            .and_then(|e| e.grad.as_ref())
    }

    /// Names of all external parameters registered on this tape.
    pub fn external_names(&self) -> impl Iterator<Item = &str> {
        self.externals.iter().map(|e| e.name.as_str())
    }

    /// Take ownership of every accumulated external sparse gradient as
    /// `(name, grad)` pairs, leaving the registrations in place.
    pub fn take_external_grads(&mut self) -> Vec<(String, SparseGrad)> {
        self.externals
            .iter_mut()
            .filter_map(|e| e.grad.take().map(|g| (e.name.clone(), g)))
            .collect()
    }

    /// Scatter rows of `src` into `out_rows` buckets and average: output row
    /// `t` is the mean of `src` rows `i` with `targets[i] == t` (zero when a
    /// bucket is empty). This is the GNN neighbourhood-mean aggregator.
    pub fn scatter_mean(&mut self, src: Var, targets: &[u32], out_rows: usize) -> Var {
        let s = self.value(src);
        assert_eq!(targets.len(), s.rows(), "one target per source row");
        let cols = s.cols();
        let mut out = Tensor::zeros(out_rows, cols);
        let mut counts = vec![0u32; out_rows];
        for (i, &t) in targets.iter().enumerate() {
            let t = t as usize;
            assert!(t < out_rows, "scatter target out of range");
            counts[t] += 1;
            let src_row = s.row(i).to_vec();
            let out_row = out.row_mut(t);
            for (o, v) in out_row.iter_mut().zip(src_row) {
                *o += v;
            }
        }
        for (t, &c) in counts.iter().enumerate() {
            if c > 1 {
                let inv = 1.0 / c as f32;
                for v in out.row_mut(t) {
                    *v *= inv;
                }
            }
        }
        self.push(
            out,
            Op::ScatterMean {
                src,
                targets: targets.to_vec(),
                counts,
            },
        )
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements, yielding a `1×1` scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let out = Tensor::scalar(self.value(a).sum());
        self.push(out, Op::SumAll(a))
    }

    /// Mean of all elements, yielding a `1×1` scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let out = Tensor::scalar(t.sum() / t.len() as f32);
        self.push(out, Op::MeanAll(a))
    }

    /// Row sums: `m×n → m×1`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let mut out = Tensor::zeros(t.rows(), 1);
        for r in 0..t.rows() {
            out.set(r, 0, t.row(r).iter().sum());
        }
        self.push(out, Op::SumRows(a))
    }

    // ------------------------------------------------------------------
    // Elementwise unary ops
    // ------------------------------------------------------------------

    /// Rectified linear unit; also the paper's hinge `|x|₊ = max(x, 0)`.
    pub fn relu(&mut self, a: Var) -> Var {
        let out = self.value(a).map(|x| x.max(0.0));
        self.push(out, Op::Relu(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let out = self.value(a).map(f32::tanh);
        self.push(out, Op::Tanh(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let out = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(out, Op::Sigmoid(a))
    }

    /// Elementwise `exp`.
    pub fn exp(&mut self, a: Var) -> Var {
        let out = self.value(a).map(f32::exp);
        self.push(out, Op::Exp(a))
    }

    /// Elementwise natural log (inputs must be positive).
    pub fn log(&mut self, a: Var) -> Var {
        let out = self.value(a).map(f32::ln);
        self.push(out, Op::Log(a))
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let out = self.value(a).map(|x| -x);
        self.push(out, Op::Neg(a))
    }

    /// Elementwise `x^p` (used by the focal loss `(1-p)^γ`). Inputs should
    /// be non-negative for non-integer `p`.
    pub fn pow_scalar(&mut self, a: Var, p: f32) -> Var {
        let out = self.value(a).map(|x| x.powf(p));
        self.push(out, Op::PowScalar(a, p))
    }

    /// Elementwise sine (RotatE phases).
    pub fn sin(&mut self, a: Var) -> Var {
        let out = self.value(a).map(f32::sin);
        self.push(out, Op::Sin(a))
    }

    /// Elementwise cosine (RotatE phases).
    pub fn cos(&mut self, a: Var) -> Var {
        let out = self.value(a).map(f32::cos);
        self.push(out, Op::Cos(a))
    }

    // ------------------------------------------------------------------
    // Shape ops
    // ------------------------------------------------------------------

    /// Columns `[start, end)` of `a`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let t = self.value(a);
        assert!(start < end && end <= t.cols(), "slice_cols out of range");
        let mut out = Tensor::zeros(t.rows(), end - start);
        for r in 0..t.rows() {
            let src_row = t.row(r)[start..end].to_vec();
            out.row_mut(r).copy_from_slice(&src_row);
        }
        self.push(out, Op::SliceCols(a, start, end))
    }

    /// Horizontal concatenation `[a | b]` (same row count).
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.rows(), tb.rows(), "concat_cols row mismatch");
        let mut out = Tensor::zeros(ta.rows(), ta.cols() + tb.cols());
        for r in 0..ta.rows() {
            let left = ta.row(r).to_vec();
            let right = tb.row(r).to_vec();
            let dst = out.row_mut(r);
            dst[..left.len()].copy_from_slice(&left);
            dst[left.len()..].copy_from_slice(&right);
        }
        self.push(out, Op::ConcatCols(a, b))
    }

    // ------------------------------------------------------------------
    // Broadcasting ops
    // ------------------------------------------------------------------

    /// Multiply each row `r` of `a` (m×n) by the scalar `c[r]` (m×1).
    pub fn mul_colvec(&mut self, a: Var, c: Var) -> Var {
        let (ta, tc) = (self.value(a), self.value(c));
        assert_eq!(tc.shape(), (ta.rows(), 1), "mul_colvec shape mismatch");
        let mut out = ta.clone();
        for r in 0..out.rows() {
            let s = tc.get(r, 0);
            for v in out.row_mut(r) {
                *v *= s;
            }
        }
        self.push(out, Op::MulColVec(a, c))
    }

    /// Add the row vector `v` (1×n) to every row of `a` (m×n): the bias add.
    pub fn add_rowvec(&mut self, a: Var, v: Var) -> Var {
        let (ta, tv) = (self.value(a), self.value(v));
        assert_eq!(tv.shape(), (1, ta.cols()), "add_rowvec shape mismatch");
        let mut out = ta.clone();
        let bias = tv.row(0).to_vec();
        for r in 0..out.rows() {
            for (o, b) in out.row_mut(r).iter_mut().zip(bias.iter()) {
                *o += b;
            }
        }
        self.push(out, Op::AddRowVec(a, v))
    }

    // ------------------------------------------------------------------
    // Row-wise geometry
    // ------------------------------------------------------------------

    /// Per-row Euclidean norm: `m×n → m×1`.
    pub fn rows_l2norm(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let mut out = Tensor::zeros(t.rows(), 1);
        for r in 0..t.rows() {
            out.set(r, 0, t.row(r).iter().map(|x| x * x).sum::<f32>().sqrt());
        }
        self.push(out, Op::RowsL2Norm(a))
    }

    /// Per-row cosine similarity of two equal-shape matrices: `m×n → m×1`.
    pub fn cosine_rows(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.shape(), tb.shape(), "cosine_rows shape mismatch");
        let mut out = Tensor::zeros(ta.rows(), 1);
        for r in 0..ta.rows() {
            out.set(r, 0, crate::tensor::cosine(ta.row(r), tb.row(r)));
        }
        self.push(out, Op::CosineRows(a, b))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let mut out = t.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                z += *v;
            }
            for v in row.iter_mut() {
                *v /= z;
            }
        }
        self.push(out, Op::SoftmaxRows(a))
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Run reverse-mode differentiation from the scalar node `loss`.
    ///
    /// Gradients accumulate into every node reachable from `loss`; query
    /// them with [`Graph::grad`].
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward requires a scalar loss"
        );
        for n in self.nodes.iter_mut() {
            n.grad = None;
        }
        for e in self.externals.iter_mut() {
            e.grad = None;
        }
        self.nodes[loss.index()].grad = Some(Tensor::scalar(1.0));

        for i in (0..self.nodes.len()).rev() {
            // Take the gradient out so propagate can borrow self mutably
            // (it only touches parents, which have smaller indices), then
            // put it back: the node keeps its gradient for inspection.
            let g = match self.nodes[i].grad.take() {
                Some(g) => g,
                None => continue,
            };
            self.propagate(i, &g);
            self.nodes[i].grad = Some(g);
        }
    }

    fn accumulate(&mut self, v: Var, delta: Tensor) {
        let node = &mut self.nodes[v.index()];
        match &mut node.grad {
            Some(g) => g.add_assign(&delta),
            None => node.grad = Some(delta),
        }
    }

    fn propagate(&mut self, idx: usize, g: &Tensor) {
        // External ops only touch `self.externals`; handle them first with
        // split field borrows so their payloads need no cloning.
        match &self.nodes[idx].op {
            Op::GatherExternal(slot, indices) => {
                let e = &mut self.externals[*slot as usize];
                let (cols, rows) = (e.cols, e.rows);
                let sg = e
                    .grad
                    .get_or_insert_with(|| SparseGrad::with_rows(cols, rows));
                sg.add_gathered(indices, g);
                return;
            }
            Op::GatherL2External { terms, diff } => {
                // ∂‖x‖/∂x = x/‖x‖ per row; each term scatters
                // `sign · g/‖x‖ · diff[row]` into its table's sparse grad.
                // Terms run in reverse so accumulation order matches the
                // decomposed chain's reverse-tape walk.
                let norms = &self.nodes[idx].value;
                for &(slot, ref indices, sign) in terms.iter().rev() {
                    let e = &mut self.externals[slot as usize];
                    let (cols, rows) = (e.cols, e.rows);
                    let sg = e
                        .grad
                        .get_or_insert_with(|| SparseGrad::with_rows(cols, rows));
                    for (i, &idx_row) in indices.iter().enumerate() {
                        let n = norms.get(i, 0);
                        if n <= NORM_EPS {
                            continue;
                        }
                        let scale = sign * (g.get(i, 0) / n);
                        sg.add_row_scaled(idx_row, diff.row(i), scale);
                    }
                }
                return;
            }
            _ => {}
        }
        // Clone the small bits of op metadata we need, to end the borrow.
        match &self.nodes[idx].op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                let (a, b) = (*a, *b);
                self.accumulate(a, g.clone());
                self.accumulate(b, g.clone());
            }
            Op::Sub(a, b) => {
                let (a, b) = (*a, *b);
                self.accumulate(a, g.clone());
                self.accumulate(b, g.map(|x| -x));
            }
            Op::Mul(a, b) => {
                let (a, b) = (*a, *b);
                let ga = {
                    let tb = self.value(b);
                    let data = g
                        .as_slice()
                        .iter()
                        .zip(tb.as_slice())
                        .map(|(x, y)| x * y)
                        .collect();
                    Tensor::from_vec(g.rows(), g.cols(), data)
                };
                let gb = {
                    let ta = self.value(a);
                    let data = g
                        .as_slice()
                        .iter()
                        .zip(ta.as_slice())
                        .map(|(x, y)| x * y)
                        .collect();
                    Tensor::from_vec(g.rows(), g.cols(), data)
                };
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::AddScalar(a) => {
                let a = *a;
                self.accumulate(a, g.clone());
            }
            Op::MulScalar(a, s) => {
                let (a, s) = (*a, *s);
                self.accumulate(a, g.map(|x| x * s));
            }
            Op::MatMul(a, b) => {
                let (a, b) = (*a, *b);
                // Fused kernels: ∇A = g·Bᵀ and ∇B = Aᵀ·g without
                // materializing either transpose.
                let ga = g.matmul_transpose(self.value(b));
                let gb = self.value(a).tr_matmul(g);
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Transpose(a) => {
                let a = *a;
                self.accumulate(a, g.transpose());
            }
            Op::Gather(table, indices) => {
                let table = *table;
                let indices = indices.clone();
                let t = self.value(table);
                let mut gt = Tensor::zeros(t.rows(), t.cols());
                for (o, &i) in indices.iter().enumerate() {
                    let src = g.row(o).to_vec();
                    let dst = gt.row_mut(i as usize);
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d += s;
                    }
                }
                self.accumulate(table, gt);
            }
            Op::GatherExternal(..) | Op::GatherL2External { .. } => {
                unreachable!("handled by the split-borrow fast path above")
            }
            Op::ScatterMean {
                src,
                targets,
                counts,
            } => {
                let src = *src;
                let targets = targets.clone();
                let counts = counts.clone();
                let s = self.value(src);
                let mut gs = Tensor::zeros(s.rows(), s.cols());
                for (i, &t) in targets.iter().enumerate() {
                    let c = counts[t as usize].max(1) as f32;
                    let grow = g.row(t as usize).to_vec();
                    let dst = gs.row_mut(i);
                    for (d, v) in dst.iter_mut().zip(grow) {
                        *d += v / c;
                    }
                }
                self.accumulate(src, gs);
            }
            Op::SumAll(a) => {
                let a = *a;
                let s = g.item();
                let t = self.value(a);
                self.accumulate(a, Tensor::full(t.rows(), t.cols(), s));
            }
            Op::MeanAll(a) => {
                let a = *a;
                let t = self.value(a);
                let s = g.item() / t.len() as f32;
                self.accumulate(a, Tensor::full(t.rows(), t.cols(), s));
            }
            Op::SumRows(a) => {
                let a = *a;
                let t = self.value(a);
                let mut ga = Tensor::zeros(t.rows(), t.cols());
                for r in 0..t.rows() {
                    let s = g.get(r, 0);
                    for v in ga.row_mut(r) {
                        *v = s;
                    }
                }
                self.accumulate(a, ga);
            }
            Op::Relu(a) => {
                let a = *a;
                let ta = self.value(a);
                let data = g
                    .as_slice()
                    .iter()
                    .zip(ta.as_slice())
                    .map(|(gv, x)| if *x > 0.0 { *gv } else { 0.0 })
                    .collect();
                self.accumulate(a, Tensor::from_vec(g.rows(), g.cols(), data));
            }
            Op::Tanh(a) => {
                let a = *a;
                let y = self.nodes[idx].value.clone();
                let data = g
                    .as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .map(|(gv, yv)| gv * (1.0 - yv * yv))
                    .collect();
                self.accumulate(a, Tensor::from_vec(g.rows(), g.cols(), data));
            }
            Op::Sigmoid(a) => {
                let a = *a;
                let y = self.nodes[idx].value.clone();
                let data = g
                    .as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .map(|(gv, yv)| gv * yv * (1.0 - yv))
                    .collect();
                self.accumulate(a, Tensor::from_vec(g.rows(), g.cols(), data));
            }
            Op::Exp(a) => {
                let a = *a;
                let y = self.nodes[idx].value.clone();
                let data = g
                    .as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .map(|(gv, yv)| gv * yv)
                    .collect();
                self.accumulate(a, Tensor::from_vec(g.rows(), g.cols(), data));
            }
            Op::Log(a) => {
                let a = *a;
                let ta = self.value(a);
                let data = g
                    .as_slice()
                    .iter()
                    .zip(ta.as_slice())
                    .map(|(gv, x)| gv / x)
                    .collect();
                self.accumulate(a, Tensor::from_vec(g.rows(), g.cols(), data));
            }
            Op::Neg(a) => {
                let a = *a;
                self.accumulate(a, g.map(|x| -x));
            }
            Op::PowScalar(a, p) => {
                let (a, p) = (*a, *p);
                let ta = self.value(a);
                let data = g
                    .as_slice()
                    .iter()
                    .zip(ta.as_slice())
                    .map(|(gv, x)| gv * p * x.powf(p - 1.0))
                    .collect();
                self.accumulate(a, Tensor::from_vec(g.rows(), g.cols(), data));
            }
            Op::Sin(a) => {
                let a = *a;
                let ta = self.value(a);
                let data = g
                    .as_slice()
                    .iter()
                    .zip(ta.as_slice())
                    .map(|(gv, x)| gv * x.cos())
                    .collect();
                self.accumulate(a, Tensor::from_vec(g.rows(), g.cols(), data));
            }
            Op::Cos(a) => {
                let a = *a;
                let ta = self.value(a);
                let data = g
                    .as_slice()
                    .iter()
                    .zip(ta.as_slice())
                    .map(|(gv, x)| -gv * x.sin())
                    .collect();
                self.accumulate(a, Tensor::from_vec(g.rows(), g.cols(), data));
            }
            Op::SliceCols(a, start, end) => {
                let (a, start, end) = (*a, *start, *end);
                let ta = self.value(a);
                let mut ga = Tensor::zeros(ta.rows(), ta.cols());
                for r in 0..ta.rows() {
                    let src = g.row(r).to_vec();
                    ga.row_mut(r)[start..end].copy_from_slice(&src);
                }
                self.accumulate(a, ga);
            }
            Op::ConcatCols(a, b) => {
                let (a, b) = (*a, *b);
                let ca = self.value(a).cols();
                let cb = self.value(b).cols();
                let rows = g.rows();
                let mut ga = Tensor::zeros(rows, ca);
                let mut gb = Tensor::zeros(rows, cb);
                for r in 0..rows {
                    let src = g.row(r).to_vec();
                    ga.row_mut(r).copy_from_slice(&src[..ca]);
                    gb.row_mut(r).copy_from_slice(&src[ca..]);
                }
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::MulColVec(a, c) => {
                let (a, c) = (*a, *c);
                let ta = self.value(a).clone();
                let tc = self.value(c).clone();
                let mut ga = g.clone();
                let mut gc = Tensor::zeros(ta.rows(), 1);
                for r in 0..ta.rows() {
                    let s = tc.get(r, 0);
                    let mut dot = 0.0;
                    let arow = ta.row(r);
                    for (i, v) in ga.row_mut(r).iter_mut().enumerate() {
                        dot += *v * arow[i];
                        *v *= s;
                    }
                    gc.set(r, 0, dot);
                }
                self.accumulate(a, ga);
                self.accumulate(c, gc);
            }
            Op::AddRowVec(a, v) => {
                let (a, v) = (*a, *v);
                let cols = self.value(v).cols();
                let mut gv = Tensor::zeros(1, cols);
                for r in 0..g.rows() {
                    let src = g.row(r).to_vec();
                    for (d, s) in gv.row_mut(0).iter_mut().zip(src) {
                        *d += s;
                    }
                }
                self.accumulate(a, g.clone());
                self.accumulate(v, gv);
            }
            Op::RowsL2Norm(a) => {
                let a = *a;
                let ta = self.value(a).clone();
                let y = self.nodes[idx].value.clone();
                let mut ga = Tensor::zeros(ta.rows(), ta.cols());
                for r in 0..ta.rows() {
                    let n = y.get(r, 0);
                    if n <= NORM_EPS {
                        continue;
                    }
                    let s = g.get(r, 0) / n;
                    let arow = ta.row(r).to_vec();
                    for (d, x) in ga.row_mut(r).iter_mut().zip(arow) {
                        *d = s * x;
                    }
                }
                self.accumulate(a, ga);
            }
            Op::CosineRows(a, b) => {
                let (a, b) = (*a, *b);
                let ta = self.value(a).clone();
                let tb = self.value(b).clone();
                let mut ga = Tensor::zeros(ta.rows(), ta.cols());
                let mut gb = Tensor::zeros(tb.rows(), tb.cols());
                for r in 0..ta.rows() {
                    let x = ta.row(r);
                    let y = tb.row(r);
                    let nx = x.iter().map(|v| v * v).sum::<f32>().sqrt();
                    let ny = y.iter().map(|v| v * v).sum::<f32>().sqrt();
                    if nx <= NORM_EPS || ny <= NORM_EPS {
                        continue;
                    }
                    let dot: f32 = x.iter().zip(y).map(|(p, q)| p * q).sum();
                    let cosv = dot / (nx * ny);
                    let s = g.get(r, 0);
                    for c in 0..ta.cols() {
                        ga.set(r, c, s * (y[c] / (nx * ny) - cosv * x[c] / (nx * nx)));
                        gb.set(r, c, s * (x[c] / (nx * ny) - cosv * y[c] / (ny * ny)));
                    }
                }
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::SoftmaxRows(a) => {
                let a = *a;
                let y = self.nodes[idx].value.clone();
                let mut ga = Tensor::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let yr = y.row(r);
                    let gr = g.row(r);
                    let dot: f32 = yr.iter().zip(gr).map(|(p, q)| p * q).sum();
                    for c in 0..y.cols() {
                        ga.set(r, c, yr[c] * (gr[c] - dot));
                    }
                }
                self.accumulate(a, ga);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_graph(f: impl Fn(&mut Graph, Var) -> Var, x: Tensor) -> (Tensor, Tensor) {
        let mut g = Graph::new();
        let v = g.leaf(x);
        let out = f(&mut g, v);
        let loss = g.sum_all(out);
        g.backward(loss);
        (g.value(loss).clone(), g.grad(v).unwrap().clone())
    }

    #[test]
    fn add_and_sub_gradients() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::row_vector(&[1.0, 2.0]));
        let b = g.leaf(Tensor::row_vector(&[3.0, 5.0]));
        let s = g.sub(a, b);
        let s2 = g.mul(s, s);
        let loss = g.sum_all(s2); // (a-b)^2 summed
        g.backward(loss);
        assert_eq!(g.value(loss).item(), 4.0 + 9.0);
        assert_eq!(g.grad(a).unwrap().as_slice(), &[-4.0, -6.0]); // 2(a-b)
        assert_eq!(g.grad(b).unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn matmul_gradients() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = g.leaf(Tensor::from_rows(&[&[5.0], &[6.0]]));
        let c = g.matmul(a, b);
        let loss = g.sum_all(c);
        g.backward(loss);
        // dL/dA = 1 · B^T broadcast over rows.
        assert_eq!(g.grad(a).unwrap().as_slice(), &[5.0, 6.0, 5.0, 6.0]);
        // dL/dB = A^T · 1.
        assert_eq!(g.grad(b).unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn relu_masks_gradient() {
        let (_, grad) = scalar_graph(|g, v| g.relu(v), Tensor::row_vector(&[-1.0, 0.5]));
        assert_eq!(grad.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn gather_scatters_gradient() {
        let mut g = Graph::new();
        let table = g.leaf(Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]));
        let picked = g.gather_rows(table, &[1, 1, 2]);
        let loss = g.sum_all(picked);
        g.backward(loss);
        // Row 1 picked twice, row 2 once, row 0 never.
        assert_eq!(
            g.grad(table).unwrap().as_slice(),
            &[0.0, 0.0, 2.0, 2.0, 1.0, 1.0]
        );
    }

    #[test]
    fn gather_external_accumulates_sparse_rows_only() {
        let table = Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let mut g = Graph::new();
        let picked = g.gather_external("tbl", &table, &[1, 1, 2]);
        let loss = g.sum_all(picked);
        g.backward(loss);
        let sg = g.external_grad("tbl").expect("sparse grad accumulated");
        // Row 1 picked twice, row 2 once, row 0 untouched (not stored).
        assert_eq!(sg.nnz_rows(), 2);
        assert_eq!(sg.row(1), Some(&[2.0, 2.0][..]));
        assert_eq!(sg.row(2), Some(&[1.0, 1.0][..]));
        assert_eq!(sg.row(0), None);
        // The densified sparse grad matches the tape-leaf gather backward.
        let mut g2 = Graph::new();
        let leaf = g2.leaf(table.clone());
        let picked2 = g2.gather_rows(leaf, &[1, 1, 2]);
        let loss2 = g2.sum_all(picked2);
        g2.backward(loss2);
        assert_eq!(&sg.to_dense(3), g2.grad(leaf).unwrap());
    }

    #[test]
    fn fused_gather_l2_matches_decomposed_chain() {
        // ‖h + r − t‖ fused vs gather/add/sub/rows_l2norm, forward and
        // backward, including a repeated index (head row 1 is also a tail).
        let ents = Tensor::from_rows(&[&[1.0, 2.0], &[0.5, -1.0], &[3.0, 0.0]]);
        let rels = Tensor::from_rows(&[&[0.1, 0.2], &[-0.3, 0.4]]);
        let heads = [0u32, 1];
        let rids = [1u32, 0];
        let tails = [2u32, 1];

        let mut fused = Graph::new();
        let score = fused.gather_l2_external(&[
            GatherTerm {
                name: "ent",
                table: &ents,
                indices: &heads,
                sign: 1.0,
            },
            GatherTerm {
                name: "rel",
                table: &rels,
                indices: &rids,
                sign: 1.0,
            },
            GatherTerm {
                name: "ent",
                table: &ents,
                indices: &tails,
                sign: -1.0,
            },
        ]);
        let loss = fused.sum_all(score);
        fused.backward(loss);

        let mut chain = Graph::new();
        let e = chain.leaf(ents.clone());
        let r = chain.leaf(rels.clone());
        let h = chain.gather_rows(e, &heads);
        let rr = chain.gather_rows(r, &rids);
        let t = chain.gather_rows(e, &tails);
        let hr = chain.add(h, rr);
        let d = chain.sub(hr, t);
        let n = chain.rows_l2norm(d);
        let loss2 = chain.sum_all(n);
        chain.backward(loss2);

        assert_eq!(fused.value(score), chain.value(n), "forward mismatch");
        let ge = chain.grad(e).unwrap();
        let gr = chain.grad(r).unwrap();
        assert_eq!(
            &fused.external_grad("ent").unwrap().to_dense(3),
            ge,
            "entity grad mismatch"
        );
        assert_eq!(
            &fused.external_grad("rel").unwrap().to_dense(2),
            gr,
            "relation grad mismatch"
        );
    }

    #[test]
    fn gather_external_same_name_merges_across_calls() {
        let table = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let mut g = Graph::new();
        let a = g.gather_external("tbl", &table, &[0, 1]);
        let b = g.gather_external("tbl", &table, &[1, 2]);
        let s = g.add(a, b);
        let loss = g.sum_all(s);
        g.backward(loss);
        let sg = g.external_grad("tbl").unwrap();
        assert_eq!(sg.to_dense(3).as_slice(), &[1.0, 2.0, 1.0]);
        let taken = g.take_external_grads();
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].0, "tbl");
        assert!(g.external_grad("tbl").is_none());
    }

    #[test]
    fn scatter_mean_averages_and_backprops() {
        let mut g = Graph::new();
        let src = g.leaf(Tensor::from_rows(&[&[2.0], &[4.0], &[10.0]]));
        let agg = g.scatter_mean(src, &[0, 0, 1], 3);
        assert_eq!(g.value(agg).as_slice(), &[3.0, 10.0, 0.0]);
        let loss = g.sum_all(agg);
        g.backward(loss);
        assert_eq!(g.grad(src).unwrap().as_slice(), &[0.5, 0.5, 1.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one_and_grad_balances() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::row_vector(&[1.0, 2.0, 3.0]));
        let y = g.softmax_rows(x);
        let total: f32 = g.value(y).as_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        // Loss = first prob; softmax grads sum to zero per row.
        let probe = g.leaf(Tensor::row_vector(&[1.0, 0.0, 0.0]));
        let picked = g.mul(y, probe);
        let loss = g.sum_all(picked);
        g.backward(loss);
        let gx = g.grad(x).unwrap();
        let s: f32 = gx.as_slice().iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn rows_l2norm_gradient_is_unit_direction() {
        let (val, grad) = scalar_graph(|g, v| g.rows_l2norm(v), Tensor::row_vector(&[3.0, 4.0]));
        assert!((val.item() - 5.0).abs() < 1e-6);
        assert!((grad.as_slice()[0] - 0.6).abs() < 1e-6);
        assert!((grad.as_slice()[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn cosine_rows_of_identical_vectors_has_zero_grad() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::row_vector(&[1.0, 2.0]));
        let b = g.leaf(Tensor::row_vector(&[1.0, 2.0]));
        let c = g.cosine_rows(a, b);
        assert!((g.value(c).item() - 1.0).abs() < 1e-6);
        let loss = g.sum_all(c);
        g.backward(loss);
        // cos(x, x) = 1 is a maximum: gradient ~ 0.
        for v in g.grad(a).unwrap().as_slice() {
            assert!(v.abs() < 1e-5);
        }
    }

    #[test]
    fn slice_and_concat_roundtrip_gradient() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::row_vector(&[1.0, 2.0, 3.0, 4.0]));
        let a = g.slice_cols(x, 0, 2);
        let b = g.slice_cols(x, 2, 4);
        let y = g.concat_cols(a, b);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().as_slice(), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(g.value(y).as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn broadcast_ops() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let c = g.leaf(Tensor::from_rows(&[&[2.0], &[10.0]]));
        let y = g.mul_colvec(a, c);
        assert_eq!(g.value(y).as_slice(), &[2.0, 4.0, 30.0, 40.0]);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().as_slice(), &[2.0, 2.0, 10.0, 10.0]);
        assert_eq!(g.grad(c).unwrap().as_slice(), &[3.0, 7.0]);

        let mut g2 = Graph::new();
        let a2 = g2.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let v = g2.leaf(Tensor::row_vector(&[10.0, 20.0]));
        let y2 = g2.add_rowvec(a2, v);
        assert_eq!(g2.value(y2).as_slice(), &[11.0, 22.0, 13.0, 24.0]);
        let loss2 = g2.sum_all(y2);
        g2.backward(loss2);
        assert_eq!(g2.grad(v).unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn chain_through_many_ops() {
        // loss = mean(sigmoid(tanh(x) * 2 + 1))
        let (_, grad) = scalar_graph(
            |g, v| {
                let t = g.tanh(v);
                let m = g.mul_scalar(t, 2.0);
                let a = g.add_scalar(m, 1.0);
                let s = g.sigmoid(a);
                g.mean_all(s)
            },
            Tensor::row_vector(&[0.3, -0.7]),
        );
        // Smoke-test: gradient exists and is finite (exact values checked by
        // the finite-difference property tests in grad_check).
        for v in grad.as_slice() {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn backward_twice_resets_gradients() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::row_vector(&[2.0]));
        let y = g.mul(x, x);
        let loss = g.sum_all(y);
        g.backward(loss);
        let g1 = g.grad(x).unwrap().clone();
        g.backward(loss);
        let g2 = g.grad(x).unwrap().clone();
        assert_eq!(g1, g2); // no double accumulation
        assert_eq!(g1.as_slice(), &[4.0]);
    }
}

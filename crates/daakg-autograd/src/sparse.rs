//! Sparse row-gradients for embedding tables.
//!
//! A mini-batch touches only the sampled rows of an embedding table, so the
//! backward pass of a gather need not materialize a gradient the size of the
//! whole table. [`SparseGrad`] stores exactly the touched rows as a
//! `{row index → gradient row}` map; the training stack accumulates, merges
//! (across parallel batch shards) and hands these to
//! [`Optimizer::step_sparse`](crate::optim::Optimizer::step_sparse) without
//! ever allocating a dense table-shaped tensor.

use crate::tensor::Tensor;
use std::collections::HashMap;

/// Row id → slot lookup. When the row universe is known
/// ([`SparseGrad::with_rows`]) a direct-index table avoids per-row hashing
/// on the training hot path; the hash map handles unbounded universes.
#[derive(Debug, Clone)]
enum Slots {
    Map(HashMap<u32, u32>),
    /// `u32::MAX` marks an untouched row.
    Direct(Vec<u32>),
}

impl Slots {
    fn get(&self, id: u32) -> Option<u32> {
        match self {
            Slots::Map(m) => m.get(&id).copied(),
            Slots::Direct(v) => match v.get(id as usize) {
                Some(&s) if s != u32::MAX => Some(s),
                _ => None,
            },
        }
    }
}

/// A sparse gradient over the rows of a `rows × cols` parameter: only the
/// touched rows are stored. Repeated contributions to the same row
/// accumulate (the scatter-add semantics of a gather backward).
#[derive(Debug, Clone)]
pub struct SparseGrad {
    cols: usize,
    /// Touched row ids, in first-touch order (one per slot).
    ids: Vec<u32>,
    /// Slot-major flat storage, `ids.len() × cols`.
    data: Vec<f32>,
    /// Row id → slot index.
    slot: Slots,
}

impl Default for SparseGrad {
    fn default() -> Self {
        Self::new(0)
    }
}

impl SparseGrad {
    /// An empty gradient over rows of width `cols`, for an unbounded row
    /// universe (hash-map lookup).
    pub fn new(cols: usize) -> Self {
        Self {
            cols,
            ids: Vec::new(),
            data: Vec::new(),
            slot: Slots::Map(HashMap::new()),
        }
    }

    /// An empty gradient over a **known** `num_rows × cols` parameter:
    /// row lookup is a direct index (no hashing), which is what the
    /// per-batch gather backward uses.
    pub fn with_rows(cols: usize, num_rows: usize) -> Self {
        Self {
            cols,
            ids: Vec::new(),
            data: Vec::new(),
            slot: Slots::Direct(vec![u32::MAX; num_rows]),
        }
    }

    /// Row width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of distinct touched rows.
    pub fn nnz_rows(&self) -> usize {
        self.ids.len()
    }

    /// True when no row has been touched.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The touched row ids, in first-touch order.
    pub fn touched_ids(&self) -> &[u32] {
        &self.ids
    }

    /// The slot for row `id`, allocating a fresh zero row if untouched.
    #[inline]
    fn slot_for(&mut self, id: u32) -> usize {
        let next = self.ids.len() as u32;
        let slot = match &mut self.slot {
            Slots::Map(m) => *m.entry(id).or_insert(next),
            Slots::Direct(v) => {
                let cell = &mut v[id as usize];
                if *cell == u32::MAX {
                    *cell = next;
                }
                *cell
            }
        };
        if slot == next {
            self.ids.push(id);
            self.data.resize(self.data.len() + self.cols, 0.0);
        }
        slot as usize
    }

    /// Accumulate `values` into row `id` (scatter-add).
    pub fn add_row(&mut self, id: u32, values: &[f32]) {
        assert_eq!(values.len(), self.cols, "sparse grad row width mismatch");
        let slot = self.slot_for(id);
        let dst = &mut self.data[slot * self.cols..(slot + 1) * self.cols];
        for (d, v) in dst.iter_mut().zip(values) {
            *d += v;
        }
    }

    /// Accumulate `scale · values` into row `id` (scatter-add with a
    /// coefficient — the fused scoring backward).
    pub fn add_row_scaled(&mut self, id: u32, values: &[f32], scale: f32) {
        assert_eq!(values.len(), self.cols, "sparse grad row width mismatch");
        let slot = self.slot_for(id);
        let dst = &mut self.data[slot * self.cols..(slot + 1) * self.cols];
        for (d, v) in dst.iter_mut().zip(values) {
            *d += scale * v;
        }
    }

    /// Accumulate every row of the dense `m × cols` tensor `g` into the row
    /// given by the matching entry of `indices` — the backward pass of
    /// `output[i] = table[indices[i]]`.
    pub fn add_gathered(&mut self, indices: &[u32], g: &Tensor) {
        assert_eq!(indices.len(), g.rows(), "one index per gradient row");
        for (i, &id) in indices.iter().enumerate() {
            self.add_row(id, g.row(i));
        }
    }

    /// Merge another sparse gradient into this one (row-wise sum). Used to
    /// combine the gradients of parallel batch shards.
    pub fn merge(&mut self, other: &SparseGrad) {
        assert_eq!(self.cols, other.cols, "sparse grad width mismatch");
        for (id, row) in other.iter() {
            self.add_row(id, row);
        }
    }

    /// Iterate over `(row id, gradient row)` pairs in first-touch order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[f32])> {
        self.ids
            .iter()
            .zip(self.data.chunks_exact(self.cols.max(1)))
            .map(|(&id, row)| (id, row))
    }

    /// The gradient row for `id`, if touched.
    pub fn row(&self, id: u32) -> Option<&[f32]> {
        self.slot
            .get(id)
            .map(|s| &self.data[s as usize * self.cols..(s as usize + 1) * self.cols])
    }

    /// Materialize as a dense `rows × cols` tensor (untouched rows zero).
    pub fn to_dense(&self, rows: usize) -> Tensor {
        let mut out = Tensor::zeros(rows, self.cols);
        self.add_into_dense(&mut out);
        out
    }

    /// Scatter-add into an existing dense tensor of matching width.
    pub fn add_into_dense(&self, dense: &mut Tensor) {
        assert_eq!(dense.cols(), self.cols, "dense width mismatch");
        for (id, row) in self.iter() {
            let dst = dense.row_mut(id as usize);
            for (d, v) in dst.iter_mut().zip(row) {
                *d += v;
            }
        }
    }

    /// Build from a dense gradient, keeping only rows with a non-zero entry.
    pub fn from_dense(dense: &Tensor) -> Self {
        let mut out = Self::new(dense.cols());
        for r in 0..dense.rows() {
            let row = dense.row(r);
            if row.iter().any(|v| *v != 0.0) {
                out.add_row(r as u32, row);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_row_accumulates_repeated_ids() {
        let mut g = SparseGrad::new(2);
        g.add_row(3, &[1.0, 2.0]);
        g.add_row(3, &[0.5, -1.0]);
        g.add_row(1, &[4.0, 4.0]);
        assert_eq!(g.nnz_rows(), 2);
        assert_eq!(g.row(3), Some(&[1.5, 1.0][..]));
        assert_eq!(g.row(1), Some(&[4.0, 4.0][..]));
        assert_eq!(g.row(0), None);
    }

    #[test]
    fn gathered_matches_dense_scatter() {
        let g = Tensor::from_rows(&[&[1.0, 0.0], &[2.0, 2.0], &[3.0, 1.0]]);
        let mut sg = SparseGrad::new(2);
        sg.add_gathered(&[1, 1, 4], &g);
        let dense = sg.to_dense(5);
        assert_eq!(dense.row(0), &[0.0, 0.0]);
        assert_eq!(dense.row(1), &[3.0, 2.0]);
        assert_eq!(dense.row(4), &[3.0, 1.0]);
    }

    #[test]
    fn merge_sums_shards() {
        let mut a = SparseGrad::new(1);
        a.add_row(0, &[1.0]);
        a.add_row(2, &[2.0]);
        let mut b = SparseGrad::new(1);
        b.add_row(2, &[3.0]);
        b.add_row(5, &[5.0]);
        a.merge(&b);
        assert_eq!(a.to_dense(6).as_slice(), &[1.0, 0.0, 5.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn from_dense_round_trips() {
        let d = Tensor::from_rows(&[&[0.0, 0.0], &[1.0, -1.0], &[0.0, 2.0]]);
        let sg = SparseGrad::from_dense(&d);
        assert_eq!(sg.nnz_rows(), 2);
        assert_eq!(sg.to_dense(3), d);
    }
}

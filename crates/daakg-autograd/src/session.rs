//! A training session binding tape leaves to named parameters.
//!
//! Models pull parameters onto the tape with [`TapeSession::param`]; after
//! `backward`, [`TapeSession::step`] walks the recorded bindings and hands
//! each parameter's gradient to the optimizer. Repeated `param` calls for
//! the same name return the same node, so gradients from different parts of
//! the model accumulate correctly.

use crate::graph::{Graph, Var};
use crate::optim::{Optimizer, ParamStore};
use crate::sparse::SparseGrad;
use crate::tensor::Tensor;
use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};

/// Named gradients extracted from a finished tape: dense gradients of
/// bound leaf parameters plus sparse row-gradients of externally gathered
/// parameters. Produced by [`TapeSession::take_grads`], mergeable across
/// parallel batch shards with [`NamedGrads::merge`], and applied in one
/// optimizer step per parameter by [`NamedGrads::apply`].
#[derive(Default)]
pub struct NamedGrads {
    /// Dense `(name, gradient)` pairs from bound leaves.
    pub dense: Vec<(String, Tensor)>,
    /// Sparse `(name, row-gradient)` pairs from external gathers.
    pub sparse: Vec<(String, SparseGrad)>,
}

impl NamedGrads {
    /// True when no parameter received a gradient.
    pub fn is_empty(&self) -> bool {
        self.dense.is_empty() && self.sparse.is_empty()
    }

    /// Merge another shard's gradients into this one (entry-wise sum).
    pub fn merge(&mut self, other: NamedGrads) {
        for (name, grad) in other.dense {
            match self.dense.iter_mut().find(|(n, _)| *n == name) {
                Some((_, g)) => g.add_assign(&grad),
                None => self.dense.push((name, grad)),
            }
        }
        for (name, grad) in other.sparse {
            match self.sparse.iter_mut().find(|(n, _)| *n == name) {
                Some((_, g)) => g.merge(&grad),
                None => self.sparse.push((name, grad)),
            }
        }
    }

    /// Apply one optimizer step per parameter. A parameter with both a
    /// dense and a sparse contribution takes a single dense step over the
    /// combined gradient (two separate steps would double-count the
    /// optimizer's step count). Returns the number of parameters updated.
    pub fn apply(mut self, store: &mut ParamStore, opt: &mut dyn Optimizer) -> usize {
        let mut updated = 0;
        for (name, mut grad) in self.dense.drain(..) {
            if let Some(i) = self.sparse.iter().position(|(n, _)| *n == name) {
                let (_, sg) = self.sparse.swap_remove(i);
                sg.add_into_dense(&mut grad);
            }
            opt.step(store, &name, &grad);
            updated += 1;
        }
        for (name, grad) in self.sparse {
            opt.step_sparse(store, &name, &grad);
            updated += 1;
        }
        updated
    }
}

/// A [`Graph`] plus the name → leaf bindings of the parameters in use.
#[derive(Default)]
pub struct TapeSession {
    /// The underlying tape (also reachable through `Deref`).
    pub graph: Graph,
    bindings: BTreeMap<String, Var>,
}

impl TapeSession {
    /// A fresh session with an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind the named parameter from `store` onto the tape, returning its
    /// leaf. Subsequent calls with the same name return the cached leaf.
    pub fn param(&mut self, store: &ParamStore, name: &str) -> Var {
        if let Some(&v) = self.bindings.get(name) {
            return v;
        }
        let v = self.graph.leaf(store.get(name).clone());
        self.bindings.insert(name.to_owned(), v);
        v
    }

    /// Gather rows of the named parameter **without** binding the whole
    /// table onto the tape: the forward copies only the requested rows and
    /// the backward accumulates a [`SparseGrad`] over them. This is the
    /// sparse-training fast path; see [`Graph::gather_external`].
    pub fn gather_param(&mut self, store: &ParamStore, name: &str, indices: &[u32]) -> Var {
        self.graph.gather_external(name, store.get(name), indices)
    }

    /// Fused sparse score `‖Σ sign · param[rows]‖` over named parameters —
    /// one tape node for a whole translational score; see
    /// [`Graph::gather_l2_external`]. Terms are `(name, indices, sign)`.
    pub fn gather_l2_param(&mut self, store: &ParamStore, terms: &[(&str, &[u32], f32)]) -> Var {
        let gts: Vec<crate::graph::GatherTerm> = terms
            .iter()
            .map(|&(name, indices, sign)| crate::graph::GatherTerm {
                name,
                table: store.get(name),
                indices,
                sign,
            })
            .collect();
        self.graph.gather_l2_external(&gts)
    }

    /// Names of all bound parameters, in deterministic order.
    pub fn bound_names(&self) -> impl Iterator<Item = &str> {
        self.bindings.keys().map(String::as_str)
    }

    /// Run backward from `loss` (delegates to [`Graph::backward`]).
    pub fn backward(&mut self, loss: Var) {
        self.graph.backward(loss);
    }

    /// Extract every named gradient this tape accumulated — dense for
    /// bound leaves, sparse for external gathers — leaving the tape
    /// re-runnable. Used by the parallel trainers to merge shard gradients
    /// before one optimizer step.
    pub fn take_grads(&mut self) -> NamedGrads {
        let mut out = NamedGrads {
            dense: Vec::new(),
            sparse: self.graph.take_external_grads(),
        };
        for (name, &var) in &self.bindings {
            if let Some(grad) = self.graph.grad(var) {
                out.dense.push((name.clone(), grad.clone()));
            }
        }
        out
    }

    /// Apply one optimizer step for every parameter that received a
    /// gradient — dense steps for bound leaves, sparse steps for external
    /// gathers (a parameter with both takes one combined dense step).
    /// Returns the number of parameters updated.
    pub fn step(&mut self, store: &mut ParamStore, opt: &mut dyn Optimizer) -> usize {
        let mut updated = 0;
        let mut sparse = self.graph.take_external_grads();
        for (name, &var) in &self.bindings {
            if let Some(grad) = self.graph.grad(var) {
                if let Some(i) = sparse.iter().position(|(n, _)| n == name) {
                    let (_, sg) = sparse.swap_remove(i);
                    let mut combined = grad.clone();
                    sg.add_into_dense(&mut combined);
                    opt.step(store, name, &combined);
                } else {
                    opt.step(store, name, grad);
                }
                updated += 1;
            }
        }
        for (name, sg) in sparse {
            opt.step_sparse(store, &name, &sg);
            updated += 1;
        }
        updated
    }
}

impl Deref for TapeSession {
    type Target = Graph;
    fn deref(&self) -> &Graph {
        &self.graph
    }
}

impl DerefMut for TapeSession {
    fn deref_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use crate::tensor::Tensor;

    #[test]
    fn param_is_cached_per_name() {
        let mut store = ParamStore::new();
        store.insert("w", Tensor::scalar(1.0));
        let mut s = TapeSession::new();
        let a = s.param(&store, "w");
        let b = s.param(&store, "w");
        assert_eq!(a, b);
        assert_eq!(s.bound_names().collect::<Vec<_>>(), vec!["w"]);
    }

    #[test]
    fn step_updates_only_touched_params() {
        let mut store = ParamStore::new();
        store.insert("w", Tensor::scalar(2.0));
        store.insert("unused", Tensor::scalar(5.0));
        let mut s = TapeSession::new();
        let w = s.param(&store, "w");
        let _unused = s.param(&store, "unused");
        let sq = s.graph.mul(w, w);
        let loss = s.graph.sum_all(sq);
        s.backward(loss);
        let mut opt = Sgd::new(0.1);
        let updated = s.step(&mut store, &mut opt);
        assert_eq!(updated, 1); // "unused" got no gradient
                                // w ← 2 − 0.1·(2·2) = 1.6
        assert!((store.get("w").item() - 1.6).abs() < 1e-6);
        assert_eq!(store.get("unused").item(), 5.0);
    }

    #[test]
    fn shared_param_accumulates_gradients() {
        let mut store = ParamStore::new();
        store.insert("w", Tensor::scalar(3.0));
        let mut s = TapeSession::new();
        let w1 = s.param(&store, "w");
        let w2 = s.param(&store, "w");
        let sum = s.graph.add(w1, w2); // 2w
        let loss = s.graph.sum_all(sum);
        s.backward(loss);
        let mut opt = Sgd::new(1.0);
        s.step(&mut store, &mut opt);
        // gradient is 2 (both uses), w ← 3 − 2 = 1
        assert!((store.get("w").item() - 1.0).abs() < 1e-6);
    }
}

//! A training session binding tape leaves to named parameters.
//!
//! Models pull parameters onto the tape with [`TapeSession::param`]; after
//! `backward`, [`TapeSession::step`] walks the recorded bindings and hands
//! each parameter's gradient to the optimizer. Repeated `param` calls for
//! the same name return the same node, so gradients from different parts of
//! the model accumulate correctly.

use crate::graph::{Graph, Var};
use crate::optim::{Optimizer, ParamStore};
use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};

/// A [`Graph`] plus the name → leaf bindings of the parameters in use.
#[derive(Default)]
pub struct TapeSession {
    /// The underlying tape (also reachable through `Deref`).
    pub graph: Graph,
    bindings: BTreeMap<String, Var>,
}

impl TapeSession {
    /// A fresh session with an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind the named parameter from `store` onto the tape, returning its
    /// leaf. Subsequent calls with the same name return the cached leaf.
    pub fn param(&mut self, store: &ParamStore, name: &str) -> Var {
        if let Some(&v) = self.bindings.get(name) {
            return v;
        }
        let v = self.graph.leaf(store.get(name).clone());
        self.bindings.insert(name.to_owned(), v);
        v
    }

    /// Names of all bound parameters, in deterministic order.
    pub fn bound_names(&self) -> impl Iterator<Item = &str> {
        self.bindings.keys().map(String::as_str)
    }

    /// Run backward from `loss` (delegates to [`Graph::backward`]).
    pub fn backward(&mut self, loss: Var) {
        self.graph.backward(loss);
    }

    /// Apply one optimizer step for every bound parameter that received a
    /// gradient. Returns the number of parameters updated.
    pub fn step(&mut self, store: &mut ParamStore, opt: &mut dyn Optimizer) -> usize {
        let mut updated = 0;
        for (name, &var) in &self.bindings {
            if let Some(grad) = self.graph.grad(var) {
                opt.step(store, name, grad);
                updated += 1;
            }
        }
        updated
    }
}

impl Deref for TapeSession {
    type Target = Graph;
    fn deref(&self) -> &Graph {
        &self.graph
    }
}

impl DerefMut for TapeSession {
    fn deref_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use crate::tensor::Tensor;

    #[test]
    fn param_is_cached_per_name() {
        let mut store = ParamStore::new();
        store.insert("w", Tensor::scalar(1.0));
        let mut s = TapeSession::new();
        let a = s.param(&store, "w");
        let b = s.param(&store, "w");
        assert_eq!(a, b);
        assert_eq!(s.bound_names().collect::<Vec<_>>(), vec!["w"]);
    }

    #[test]
    fn step_updates_only_touched_params() {
        let mut store = ParamStore::new();
        store.insert("w", Tensor::scalar(2.0));
        store.insert("unused", Tensor::scalar(5.0));
        let mut s = TapeSession::new();
        let w = s.param(&store, "w");
        let _unused = s.param(&store, "unused");
        let sq = s.graph.mul(w, w);
        let loss = s.graph.sum_all(sq);
        s.backward(loss);
        let mut opt = Sgd::new(0.1);
        let updated = s.step(&mut store, &mut opt);
        assert_eq!(updated, 1); // "unused" got no gradient
                                // w ← 2 − 0.1·(2·2) = 1.6
        assert!((store.get("w").item() - 1.6).abs() < 1e-6);
        assert_eq!(store.get("unused").item(), 5.0);
    }

    #[test]
    fn shared_param_accumulates_gradients() {
        let mut store = ParamStore::new();
        store.insert("w", Tensor::scalar(3.0));
        let mut s = TapeSession::new();
        let w1 = s.param(&store, "w");
        let w2 = s.param(&store, "w");
        let sum = s.graph.add(w1, w2); // 2w
        let loss = s.graph.sum_all(sum);
        s.backward(loss);
        let mut opt = Sgd::new(1.0);
        s.step(&mut store, &mut opt);
        // gradient is 2 (both uses), w ← 3 − 2 = 1
        assert!((store.get("w").item() - 1.0).abs() < 1e-6);
    }
}

//! # daakg-autograd
//!
//! A minimal, dependency-light reverse-mode automatic-differentiation engine
//! used as the deep-learning substrate of the DAAKG reproduction.
//!
//! The paper trains small models — embedding tables, feed-forward networks,
//! mapping matrices, a composition-based GNN — with margin / softmax / focal
//! losses. Rather than binding a GPU framework (the repro brief notes the
//! Rust GNN ecosystem is immature), this crate implements exactly the tensor
//! machinery those models need:
//!
//! * [`Tensor`]: a dense, row-major `f32` matrix (vectors are `1×d`),
//! * [`Graph`]: a tape of operations supporting [`Graph::backward`],
//! * gather/scatter ops so embedding-table updates stay sparse-friendly,
//! * [`sparse`]: [`SparseGrad`] row-gradients plus
//!   [`Graph::gather_external`], so a mini-batch backward touches only the
//!   sampled embedding rows instead of materializing table-sized tensors,
//! * [`optim`]: SGD and Adam over a named [`ParamStore`], including lazy
//!   sparse Adam with deferred-decay semantics that reproduce the dense
//!   trajectory exactly (see the [`Adam`] docs for the contract),
//! * [`grad_check`]: central finite-difference gradient verification used by
//!   the property-based test-suite.
//!
//! # Example
//!
//! ```
//! use daakg_autograd::{Graph, Tensor};
//!
//! let mut g = Graph::new();
//! let x = g.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
//! let w = g.leaf(Tensor::from_rows(&[&[0.5], &[-0.5]]));
//! let y = g.matmul(x, w);
//! let loss = g.sum_all(y);
//! g.backward(loss);
//! let gw = g.grad(w).unwrap();
//! assert_eq!(gw.as_slice(), &[4.0, 6.0]); // column sums of x
//! ```

pub mod grad_check;
pub mod graph;
pub mod init;
pub mod optim;
pub mod session;
pub mod sparse;
pub mod tensor;

pub use graph::{GatherTerm, Graph, Var};
pub use optim::{unique_rows, Adam, AdamConfig, Optimizer, ParamStore, Sgd};
pub use session::{NamedGrads, TapeSession};
pub use sparse::SparseGrad;
pub use tensor::Tensor;

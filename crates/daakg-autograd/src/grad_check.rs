//! Finite-difference gradient verification.
//!
//! Used by the property-based tests: for a scalar-valued function built on a
//! [`Graph`], the analytic gradient from [`Graph::backward`] must agree with
//! a central finite difference to a loose tolerance (f32 + second-order
//! truncation error).

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Result of a gradient check: the largest absolute deviation found and the
/// element where it occurred.
#[derive(Debug, Clone, Copy)]
pub struct CheckReport {
    /// Largest `|analytic − numeric|`.
    pub max_abs_err: f32,
    /// Flat index of the worst element.
    pub worst_index: usize,
    /// Analytic value at the worst element.
    pub analytic: f32,
    /// Numeric value at the worst element.
    pub numeric: f32,
}

/// Verify the gradient of `f` with respect to a single input tensor.
///
/// `f` receives a graph and the input leaf and must return a scalar (`1×1`)
/// node. The input is perturbed elementwise with step `eps` (central
/// differences).
pub fn check_gradient(input: &Tensor, eps: f32, f: impl Fn(&mut Graph, Var) -> Var) -> CheckReport {
    // Analytic gradient.
    let mut g = Graph::new();
    let x = g.leaf(input.clone());
    let loss = f(&mut g, x);
    assert_eq!(g.value(loss).shape(), (1, 1), "loss must be scalar");
    g.backward(loss);
    let analytic = g
        .grad(x)
        .cloned()
        .unwrap_or_else(|| Tensor::zeros(input.rows(), input.cols()));

    // Numeric gradient by central differences.
    let mut report = CheckReport {
        max_abs_err: 0.0,
        worst_index: 0,
        analytic: 0.0,
        numeric: 0.0,
    };
    let eval = |t: &Tensor| -> f32 {
        let mut g = Graph::new();
        let x = g.leaf(t.clone());
        let loss = f(&mut g, x);
        g.value(loss).item()
    };
    for i in 0..input.len() {
        let mut plus = input.clone();
        plus.as_mut_slice()[i] += eps;
        let mut minus = input.clone();
        minus.as_mut_slice()[i] -= eps;
        let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
        let a = analytic.as_slice()[i];
        let err = (a - numeric).abs();
        if err > report.max_abs_err {
            report = CheckReport {
                max_abs_err: err,
                worst_index: i,
                analytic: a,
                numeric,
            };
        }
    }
    report
}

/// Assert-style wrapper around [`check_gradient`] for tests.
pub fn assert_gradients_close(
    input: &Tensor,
    eps: f32,
    tol: f32,
    f: impl Fn(&mut Graph, Var) -> Var,
) {
    let report = check_gradient(input, eps, f);
    assert!(
        report.max_abs_err <= tol,
        "gradient mismatch at flat index {}: analytic={} numeric={} (err={} > tol={})",
        report.worst_index,
        report.analytic,
        report.numeric,
        report.max_abs_err,
        tol
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f32 = 1e-3;
    const TOL: f32 = 2e-2;

    #[test]
    fn quadratic() {
        let x = Tensor::row_vector(&[0.5, -1.5, 2.0]);
        assert_gradients_close(&x, EPS, TOL, |g, v| {
            let y = g.mul(v, v);
            g.sum_all(y)
        });
    }

    #[test]
    fn tanh_sigmoid_chain() {
        let x = Tensor::row_vector(&[0.2, -0.4, 0.9]);
        assert_gradients_close(&x, EPS, TOL, |g, v| {
            let t = g.tanh(v);
            let s = g.sigmoid(t);
            g.mean_all(s)
        });
    }

    #[test]
    fn l2norm_away_from_zero() {
        let x = Tensor::row_vector(&[1.0, 2.0, -0.5]);
        assert_gradients_close(&x, EPS, TOL, |g, v| {
            let n = g.rows_l2norm(v);
            g.sum_all(n)
        });
    }

    #[test]
    fn softmax_log_pick() {
        let x = Tensor::row_vector(&[0.1, 0.7, -0.3]);
        assert_gradients_close(&x, EPS, TOL, |g, v| {
            let s = g.softmax_rows(v);
            let l = g.log(s);
            let mask = g.leaf(Tensor::row_vector(&[0.0, 1.0, 0.0]));
            let picked = g.mul(l, mask);
            let sum = g.sum_all(picked);
            g.neg(sum)
        });
    }

    #[test]
    fn matmul_against_fixed_weight() {
        let x = Tensor::from_rows(&[&[0.3, -0.8], &[1.1, 0.4]]);
        assert_gradients_close(&x, EPS, TOL, |g, v| {
            let w = g.leaf(Tensor::from_rows(&[&[0.5, -1.0], &[0.25, 0.75]]));
            let y = g.matmul(v, w);
            let y2 = g.mul(y, y);
            g.sum_all(y2)
        });
    }

    #[test]
    fn cosine_rows_grad() {
        let x = Tensor::row_vector(&[0.9, -0.3, 0.5]);
        assert_gradients_close(&x, EPS, TOL, |g, v| {
            let other = g.leaf(Tensor::row_vector(&[0.1, 0.8, -0.2]));
            let c = g.cosine_rows(v, other);
            g.sum_all(c)
        });
    }

    #[test]
    fn trig_ops() {
        let x = Tensor::row_vector(&[0.3, 1.2, -0.7]);
        assert_gradients_close(&x, EPS, TOL, |g, v| {
            let s = g.sin(v);
            let c = g.cos(v);
            let p = g.mul(s, c);
            g.sum_all(p)
        });
    }

    #[test]
    fn pow_scalar_grad() {
        let x = Tensor::row_vector(&[0.4, 0.9, 0.2]);
        assert_gradients_close(&x, EPS, TOL, |g, v| {
            let p = g.pow_scalar(v, 2.0);
            g.sum_all(p)
        });
    }
}

//! Named parameter storage and first-order optimizers.
//!
//! Training code keeps master copies of all learnable tensors in a
//! [`ParamStore`] keyed by string names (`"ent_emb"`, `"A_ent"`, ...). Each
//! step, the model clones whichever parameters it needs into a fresh
//! [`Graph`](crate::Graph), runs backward, and hands `(name, gradient)` pairs
//! to an [`Optimizer`].

use crate::tensor::Tensor;
use std::collections::BTreeMap;

/// Named storage of learnable parameters.
///
/// Backed by a `BTreeMap` so parameter iteration order — and therefore
/// optimizer state allocation and training — is deterministic.
#[derive(Default, Clone)]
pub struct ParamStore {
    params: BTreeMap<String, Tensor>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace a parameter.
    pub fn insert(&mut self, name: impl Into<String>, value: Tensor) {
        self.params.insert(name.into(), value);
    }

    /// Immutable access; panics on unknown name (programming error).
    pub fn get(&self, name: &str) -> &Tensor {
        self.params
            .get(name)
            .unwrap_or_else(|| panic!("unknown parameter {name:?}"))
    }

    /// Mutable access; panics on unknown name.
    pub fn get_mut(&mut self, name: &str) -> &mut Tensor {
        self.params
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown parameter {name:?}"))
    }

    /// Whether a parameter exists.
    pub fn contains(&self, name: &str) -> bool {
        self.params.contains_key(name)
    }

    /// Iterate over `(name, tensor)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of stored parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters (for the paper's parameter
    /// complexity discussion).
    pub fn num_scalars(&self) -> usize {
        self.params.values().map(Tensor::len).sum()
    }
}

/// A first-order optimizer applying updates to a [`ParamStore`].
pub trait Optimizer {
    /// Apply one update for parameter `name` given its gradient.
    fn step(&mut self, store: &mut ParamStore, name: &str, grad: &Tensor);
}

/// Plain stochastic gradient descent, `θ ← θ − lr·g`.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, name: &str, grad: &Tensor) {
        store.get_mut(name).add_scaled(grad, -self.lr);
    }
}

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate α.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability term ε.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

struct AdamState {
    m: Tensor,
    v: Tensor,
    t: u64,
}

/// The Adam optimizer (Kingma & Ba) with per-parameter state.
pub struct Adam {
    cfg: AdamConfig,
    state: BTreeMap<String, AdamState>,
}

impl Adam {
    /// Adam with the given configuration.
    pub fn new(cfg: AdamConfig) -> Self {
        Self {
            cfg,
            state: BTreeMap::new(),
        }
    }

    /// Adam with default betas and the given learning rate.
    pub fn with_lr(lr: f32) -> Self {
        Self::new(AdamConfig {
            lr,
            ..AdamConfig::default()
        })
    }

    /// The configured learning rate.
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Override the learning rate (e.g. for the fine-tuning phase).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, name: &str, grad: &Tensor) {
        let param = store.get_mut(name);
        assert_eq!(param.shape(), grad.shape(), "gradient shape mismatch");
        let st = self
            .state
            .entry(name.to_owned())
            .or_insert_with(|| AdamState {
                m: Tensor::zeros(grad.rows(), grad.cols()),
                v: Tensor::zeros(grad.rows(), grad.cols()),
                t: 0,
            });
        st.t += 1;
        let (b1, b2) = (self.cfg.beta1, self.cfg.beta2);
        let bc1 = 1.0 - b1.powi(st.t as i32);
        let bc2 = 1.0 - b2.powi(st.t as i32);
        let lr = self.cfg.lr;
        let eps = self.cfg.eps;
        let p = param.as_mut_slice();
        let m = st.m.as_mut_slice();
        let v = st.v.as_mut_slice();
        let g = grad.as_slice();
        for i in 0..p.len() {
            m[i] = b1 * m[i] + (1.0 - b1) * g[i];
            v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
            let mh = m[i] / bc1;
            let vh = v[i] / bc2;
            p[i] -= lr * mh / (vh.sqrt() + eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn quadratic_loss(store: &ParamStore) -> (f32, Tensor) {
        // loss = sum((x - target)^2), target = [1, -2].
        let mut g = Graph::new();
        let x = g.leaf(store.get("x").clone());
        let target = g.leaf(Tensor::row_vector(&[1.0, -2.0]));
        let d = g.sub(x, target);
        let d2 = g.mul(d, d);
        let loss = g.sum_all(d2);
        g.backward(loss);
        (g.value(loss).item(), g.grad(x).unwrap().clone())
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut store = ParamStore::new();
        store.insert("x", Tensor::row_vector(&[5.0, 5.0]));
        let mut opt = Sgd::new(0.1);
        let (mut prev, _) = quadratic_loss(&store);
        for _ in 0..50 {
            let (l, g) = quadratic_loss(&store);
            assert!(l <= prev + 1e-6);
            prev = l;
            opt.step(&mut store, "x", &g);
        }
        let x = store.get("x");
        assert!((x.as_slice()[0] - 1.0).abs() < 1e-3);
        assert!((x.as_slice()[1] + 2.0).abs() < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        store.insert("x", Tensor::row_vector(&[5.0, 5.0]));
        let mut opt = Adam::with_lr(0.2);
        for _ in 0..300 {
            let (_, g) = quadratic_loss(&store);
            opt.step(&mut store, "x", &g);
        }
        let x = store.get("x");
        assert!((x.as_slice()[0] - 1.0).abs() < 1e-2);
        assert!((x.as_slice()[1] + 2.0).abs() < 1e-2);
    }

    #[test]
    fn adam_state_is_per_parameter() {
        let mut store = ParamStore::new();
        store.insert("a", Tensor::scalar(1.0));
        store.insert("b", Tensor::scalar(1.0));
        let mut opt = Adam::with_lr(0.1);
        // Update only "a" many times; "b" must be untouched.
        for _ in 0..10 {
            opt.step(&mut store, "a", &Tensor::scalar(1.0));
        }
        assert!(store.get("a").item() < 1.0);
        assert_eq!(store.get("b").item(), 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn unknown_parameter_panics() {
        let store = ParamStore::new();
        let _ = store.get("missing");
    }

    #[test]
    fn num_scalars_counts_all() {
        let mut store = ParamStore::new();
        store.insert("m", Tensor::zeros(3, 4));
        store.insert("v", Tensor::zeros(1, 5));
        assert_eq!(store.num_scalars(), 17);
        assert_eq!(store.len(), 2);
        assert!(store.contains("m"));
        assert!(!store.contains("w"));
    }
}

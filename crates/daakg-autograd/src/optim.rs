//! Named parameter storage and first-order optimizers.
//!
//! Training code keeps master copies of all learnable tensors in a
//! [`ParamStore`] keyed by string names (`"ent_emb"`, `"A_ent"`, ...). Each
//! step, the model clones whichever parameters it needs into a fresh
//! [`Graph`](crate::Graph), runs backward, and hands `(name, gradient)` pairs
//! to an [`Optimizer`].

use crate::sparse::SparseGrad;
use crate::tensor::Tensor;
use std::collections::BTreeMap;

/// Named storage of learnable parameters.
///
/// Backed by a `BTreeMap` so parameter iteration order — and therefore
/// optimizer state allocation and training — is deterministic.
#[derive(Default, Clone)]
pub struct ParamStore {
    params: BTreeMap<String, Tensor>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace a parameter.
    pub fn insert(&mut self, name: impl Into<String>, value: Tensor) {
        self.params.insert(name.into(), value);
    }

    /// Immutable access; panics on unknown name (programming error).
    pub fn get(&self, name: &str) -> &Tensor {
        self.params
            .get(name)
            .unwrap_or_else(|| panic!("unknown parameter {name:?}"))
    }

    /// Mutable access; panics on unknown name.
    pub fn get_mut(&mut self, name: &str) -> &mut Tensor {
        self.params
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown parameter {name:?}"))
    }

    /// Whether a parameter exists.
    pub fn contains(&self, name: &str) -> bool {
        self.params.contains_key(name)
    }

    /// Iterate over `(name, tensor)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of stored parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters (for the paper's parameter
    /// complexity discussion).
    pub fn num_scalars(&self) -> usize {
        self.params.values().map(Tensor::len).sum()
    }
}

/// Sorted, deduplicated union of index slices — the set of parameter rows
/// a batch touches, in the shape [`Adam::refresh_rows`] and the sparse
/// training paths consume.
pub fn unique_rows(parts: &[&[u32]]) -> Vec<u32> {
    let mut v: Vec<u32> = parts.iter().flat_map(|p| p.iter().copied()).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// A first-order optimizer applying updates to a [`ParamStore`].
pub trait Optimizer {
    /// Apply one update for parameter `name` given its gradient.
    fn step(&mut self, store: &mut ParamStore, name: &str, grad: &Tensor);

    /// Apply one update given a sparse row-gradient.
    ///
    /// The default densifies and delegates to [`Optimizer::step`];
    /// optimizers with a genuinely sparse update rule (row-local state)
    /// override it to touch only the gradient's rows.
    fn step_sparse(&mut self, store: &mut ParamStore, name: &str, grad: &SparseGrad) {
        let rows = store.get(name).rows();
        let dense = grad.to_dense(rows);
        self.step(store, name, &dense);
    }
}

/// Plain stochastic gradient descent, `θ ← θ − lr·g`.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, name: &str, grad: &Tensor) {
        store.get_mut(name).add_scaled(grad, -self.lr);
    }

    fn step_sparse(&mut self, store: &mut ParamStore, name: &str, grad: &SparseGrad) {
        // SGD is stateless, so the sparse update is trivially exact: rows
        // with zero gradient would not have moved anyway.
        let param = store.get_mut(name);
        assert_eq!(param.cols(), grad.cols(), "gradient width mismatch");
        for (id, row) in grad.iter() {
            let dst = param.row_mut(id as usize);
            for (p, g) in dst.iter_mut().zip(row) {
                *p -= self.lr * g;
            }
        }
    }
}

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate α.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability term ε.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

struct AdamState {
    m: Tensor,
    v: Tensor,
    t: u64,
    /// Lazy-update bookkeeping: `row_t[r]` is the step count through which
    /// row `r` has been fully applied. `None` means every row is current
    /// (the pure dense history).
    row_t: Option<Vec<u64>>,
}

/// The Adam optimizer (Kingma & Ba) with per-parameter state.
///
/// # Sparse / lazy updates and the deferred-decay contract
///
/// Dense Adam moves **every** element at **every** step: even a row with a
/// zero gradient decays its moments (`m ← β₁·m`, `v ← β₂·v`) and takes a
/// bias-corrected momentum step. [`Adam::step_sparse`] defers exactly that
/// work: untouched rows keep their *old* parameter values and a per-row
/// step watermark; when a row is next touched (or explicitly refreshed),
/// the skipped zero-gradient sub-steps are replayed in order, reproducing
/// the dense trajectory bit-for-bit before the new gradient is applied.
///
/// The contract callers must uphold:
///
/// 1. **Refresh before read.** Parameter rows a forward pass will *read*
///    must be brought current first — [`Adam::refresh_rows`] for the rows a
///    batch gathers, or [`Adam::flush`] before any full-table read (a
///    snapshot, a matmul over the whole table, serialization).
/// 2. **Flush before hand-off.** [`Adam::flush`] makes the store equal to
///    what the dense oracle would have produced; call it at the end of
///    training (the trainers do this) before anyone consumes the store.
/// 3. Mixing is safe: a dense [`Adam::step`] on a lazily-updated parameter
///    first flushes its pending rows, so dense and sparse steps may
///    interleave freely.
///
/// Rows whose moments are exactly zero (never touched since the state was
/// created) replay for free: the zero-gradient update is a numerical no-op,
/// so the catch-up skips the arithmetic and only moves the watermark.
pub struct Adam {
    cfg: AdamConfig,
    state: BTreeMap<String, AdamState>,
}

impl Adam {
    /// Adam with the given configuration.
    pub fn new(cfg: AdamConfig) -> Self {
        Self {
            cfg,
            state: BTreeMap::new(),
        }
    }

    /// Adam with default betas and the given learning rate.
    pub fn with_lr(lr: f32) -> Self {
        Self::new(AdamConfig {
            lr,
            ..AdamConfig::default()
        })
    }

    /// The configured learning rate.
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Override the learning rate (e.g. for the fine-tuning phase).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// One Adam update for row `r` at step `s`; `grad_row = None` is the
    /// zero-gradient replay (identical arithmetic to a dense step with
    /// `g = 0`, so lazily-updated rows match the dense trajectory exactly).
    fn row_update(
        cfg: &AdamConfig,
        s: u64,
        p: &mut [f32],
        m: &mut [f32],
        v: &mut [f32],
        grad_row: Option<&[f32]>,
    ) {
        let (b1, b2) = (cfg.beta1, cfg.beta2);
        let bc1 = 1.0 - b1.powi(s as i32);
        let bc2 = 1.0 - b2.powi(s as i32);
        for i in 0..p.len() {
            let g = grad_row.map_or(0.0, |gr| gr[i]);
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let mh = m[i] / bc1;
            let vh = v[i] / bc2;
            p[i] -= cfg.lr * mh / (vh.sqrt() + cfg.eps);
        }
    }

    /// Replay the zero-gradient steps `(from, to]` for one row. Skips the
    /// arithmetic when the row's moments are all zero (every update would
    /// be an exact no-op).
    fn catch_up_row(
        cfg: &AdamConfig,
        from: u64,
        to: u64,
        p: &mut [f32],
        m: &mut [f32],
        v: &mut [f32],
    ) {
        if from >= to || (m.iter().all(|x| *x == 0.0) && v.iter().all(|x| *x == 0.0)) {
            return;
        }
        for s in (from + 1)..=to {
            Self::row_update(cfg, s, p, m, v, None);
        }
    }

    /// Bring the given rows of a lazily-updated parameter current, so a
    /// forward pass may read them. No-op for parameters without pending
    /// lazy state (or without any state at all).
    pub fn refresh_rows(&mut self, store: &mut ParamStore, name: &str, rows: &[u32]) {
        let Some(st) = self.state.get_mut(name) else {
            return;
        };
        let Some(row_t) = st.row_t.as_mut() else {
            return;
        };
        let t = st.t;
        let param = store.get_mut(name);
        for &r in rows {
            let r = r as usize;
            if row_t[r] >= t {
                continue;
            }
            Self::catch_up_row(
                &self.cfg,
                row_t[r],
                t,
                param.row_mut(r),
                st.m.row_mut(r),
                st.v.row_mut(r),
            );
            row_t[r] = t;
        }
    }

    /// Bring **every** pending row of the named parameter current and drop
    /// its lazy bookkeeping. See the deferred-decay contract above.
    pub fn flush_param(&mut self, store: &mut ParamStore, name: &str) {
        let Some(st) = self.state.get_mut(name) else {
            return;
        };
        let Some(row_t) = st.row_t.take() else {
            return;
        };
        let t = st.t;
        let param = store.get_mut(name);
        for (r, &wm) in row_t.iter().enumerate() {
            if wm >= t {
                continue;
            }
            Self::catch_up_row(
                &self.cfg,
                wm,
                t,
                param.row_mut(r),
                st.m.row_mut(r),
                st.v.row_mut(r),
            );
        }
    }

    /// Flush every parameter with pending lazy updates: afterwards the
    /// store holds exactly what dense Adam would have produced.
    pub fn flush(&mut self, store: &mut ParamStore) {
        let names: Vec<String> = self
            .state
            .iter()
            .filter(|(_, st)| st.row_t.is_some())
            .map(|(n, _)| n.clone())
            .collect();
        for name in names {
            self.flush_param(store, &name);
        }
    }

    /// Number of rows of `name` whose lazy update is still pending
    /// (diagnostics / tests).
    pub fn pending_rows(&self, name: &str) -> usize {
        self.state
            .get(name)
            .and_then(|st| st.row_t.as_ref().map(|rt| (st.t, rt)))
            .map(|(t, rt)| rt.iter().filter(|&&wm| wm < t).count())
            .unwrap_or(0)
    }

    fn state_for<'a>(
        state: &'a mut BTreeMap<String, AdamState>,
        name: &str,
        shape: (usize, usize),
    ) -> &'a mut AdamState {
        state.entry(name.to_owned()).or_insert_with(|| AdamState {
            m: Tensor::zeros(shape.0, shape.1),
            v: Tensor::zeros(shape.0, shape.1),
            t: 0,
            row_t: None,
        })
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, name: &str, grad: &Tensor) {
        // A dense step reads and writes every row, so pending lazy rows
        // must catch up first (keeps dense/sparse interleaving exact).
        self.flush_param(store, name);
        let param = store.get_mut(name);
        assert_eq!(param.shape(), grad.shape(), "gradient shape mismatch");
        let st = Self::state_for(&mut self.state, name, grad.shape());
        st.t += 1;
        let (b1, b2) = (self.cfg.beta1, self.cfg.beta2);
        let bc1 = 1.0 - b1.powi(st.t as i32);
        let bc2 = 1.0 - b2.powi(st.t as i32);
        let lr = self.cfg.lr;
        let eps = self.cfg.eps;
        let p = param.as_mut_slice();
        let m = st.m.as_mut_slice();
        let v = st.v.as_mut_slice();
        let g = grad.as_slice();
        for i in 0..p.len() {
            m[i] = b1 * m[i] + (1.0 - b1) * g[i];
            v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
            let mh = m[i] / bc1;
            let vh = v[i] / bc2;
            p[i] -= lr * mh / (vh.sqrt() + eps);
        }
    }

    fn step_sparse(&mut self, store: &mut ParamStore, name: &str, grad: &SparseGrad) {
        let param = store.get_mut(name);
        assert_eq!(param.cols(), grad.cols(), "gradient width mismatch");
        let rows = param.rows();
        let st = Self::state_for(&mut self.state, name, (rows, param.cols()));
        st.t += 1;
        let t = st.t;
        let row_t = st.row_t.get_or_insert_with(|| vec![t - 1; rows]);
        for (id, grow) in grad.iter() {
            let r = id as usize;
            let (p, m, v) = (param.row_mut(r), st.m.row_mut(r), st.v.row_mut(r));
            Self::catch_up_row(&self.cfg, row_t[r], t - 1, p, m, v);
            Self::row_update(&self.cfg, t, p, m, v, Some(grow));
            row_t[r] = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn quadratic_loss(store: &ParamStore) -> (f32, Tensor) {
        // loss = sum((x - target)^2), target = [1, -2].
        let mut g = Graph::new();
        let x = g.leaf(store.get("x").clone());
        let target = g.leaf(Tensor::row_vector(&[1.0, -2.0]));
        let d = g.sub(x, target);
        let d2 = g.mul(d, d);
        let loss = g.sum_all(d2);
        g.backward(loss);
        (g.value(loss).item(), g.grad(x).unwrap().clone())
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut store = ParamStore::new();
        store.insert("x", Tensor::row_vector(&[5.0, 5.0]));
        let mut opt = Sgd::new(0.1);
        let (mut prev, _) = quadratic_loss(&store);
        for _ in 0..50 {
            let (l, g) = quadratic_loss(&store);
            assert!(l <= prev + 1e-6);
            prev = l;
            opt.step(&mut store, "x", &g);
        }
        let x = store.get("x");
        assert!((x.as_slice()[0] - 1.0).abs() < 1e-3);
        assert!((x.as_slice()[1] + 2.0).abs() < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        store.insert("x", Tensor::row_vector(&[5.0, 5.0]));
        let mut opt = Adam::with_lr(0.2);
        for _ in 0..300 {
            let (_, g) = quadratic_loss(&store);
            opt.step(&mut store, "x", &g);
        }
        let x = store.get("x");
        assert!((x.as_slice()[0] - 1.0).abs() < 1e-2);
        assert!((x.as_slice()[1] + 2.0).abs() < 1e-2);
    }

    #[test]
    fn adam_state_is_per_parameter() {
        let mut store = ParamStore::new();
        store.insert("a", Tensor::scalar(1.0));
        store.insert("b", Tensor::scalar(1.0));
        let mut opt = Adam::with_lr(0.1);
        // Update only "a" many times; "b" must be untouched.
        for _ in 0..10 {
            opt.step(&mut store, "a", &Tensor::scalar(1.0));
        }
        assert!(store.get("a").item() < 1.0);
        assert_eq!(store.get("b").item(), 1.0);
    }

    /// Deterministic pseudo-random f32 in [-1, 1) from a counter.
    fn prand(state: &mut u64) -> f32 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
    }

    fn random_tensor(rows: usize, cols: usize, seed: &mut u64) -> Tensor {
        Tensor::from_vec(rows, cols, (0..rows * cols).map(|_| prand(seed)).collect())
    }

    /// A sequence of sparse batches: each step touches a few (possibly
    /// repeated) rows of an 8-row table.
    fn sparse_batches(steps: usize, rows: u32, cols: usize, seed: &mut u64) -> Vec<SparseGrad> {
        (0..steps)
            .map(|s| {
                let mut g = SparseGrad::new(cols);
                let touches = 1 + (s % 3);
                for i in 0..touches {
                    let row = ((prand(seed).abs() * rows as f32) as u32).min(rows - 1);
                    let vals: Vec<f32> = (0..cols).map(|_| prand(seed)).collect();
                    g.add_row(row, &vals);
                    if i == 0 {
                        // Exercise repeated-row accumulation.
                        g.add_row(row, &vals);
                    }
                }
                g
            })
            .collect()
    }

    #[test]
    fn sparse_adam_with_flush_matches_dense_exactly() {
        let mut seed = 7u64;
        let init = random_tensor(8, 3, &mut seed);
        let batches = sparse_batches(20, 8, 3, &mut seed);

        // Dense oracle: every step applies the densified gradient.
        let mut dense_store = ParamStore::new();
        dense_store.insert("w", init.clone());
        let mut dense_opt = Adam::with_lr(0.05);
        for b in &batches {
            let g = b.to_dense(8);
            dense_opt.step(&mut dense_store, "w", &g);
        }

        // Sparse path: lazy row updates, flushed at the end.
        let mut sparse_store = ParamStore::new();
        sparse_store.insert("w", init);
        let mut sparse_opt = Adam::with_lr(0.05);
        for b in &batches {
            sparse_opt.step_sparse(&mut sparse_store, "w", b);
        }
        sparse_opt.flush(&mut sparse_store);
        assert_eq!(sparse_opt.pending_rows("w"), 0);

        let d = dense_store.get("w").as_slice();
        let s = sparse_store.get("w").as_slice();
        for (i, (a, b)) in d.iter().zip(s).enumerate() {
            assert!(
                (a - b).abs() <= 1e-6,
                "row-major element {i} diverged: dense={a} sparse={b}"
            );
        }
    }

    #[test]
    fn refresh_rows_brings_read_rows_current() {
        let mut seed = 99u64;
        let init = random_tensor(4, 2, &mut seed);
        let mut dense_store = ParamStore::new();
        dense_store.insert("w", init.clone());
        let mut dense_opt = Adam::with_lr(0.1);
        let mut sparse_store = ParamStore::new();
        sparse_store.insert("w", init);
        let mut sparse_opt = Adam::with_lr(0.1);

        // Step 1 touches row 0 only; row 2 lags in the sparse store.
        let mut g = SparseGrad::new(2);
        g.add_row(0, &[1.0, -1.0]);
        dense_opt.step(&mut dense_store, "w", &g.to_dense(4));
        sparse_opt.step_sparse(&mut sparse_store, "w", &g);
        // Step 2 touches rows 0 and 2; refresh row 2 before "reading" it.
        let mut g2 = SparseGrad::new(2);
        g2.add_row(0, &[0.5, 0.5]);
        g2.add_row(2, &[-2.0, 1.0]);
        sparse_opt.refresh_rows(&mut sparse_store, "w", &[0, 2]);
        assert_eq!(
            sparse_store.get("w").row(2),
            dense_store.get("w").row(2),
            "refreshed row must equal the dense trajectory"
        );
        dense_opt.step(&mut dense_store, "w", &g2.to_dense(4));
        sparse_opt.step_sparse(&mut sparse_store, "w", &g2);
        sparse_opt.flush(&mut sparse_store);
        for r in 0..4 {
            let (d, s) = (dense_store.get("w").row(r), sparse_store.get("w").row(r));
            for (a, b) in d.iter().zip(s) {
                assert!((a - b).abs() <= 1e-6, "row {r}: dense={a} sparse={b}");
            }
        }
    }

    #[test]
    fn dense_step_flushes_pending_lazy_rows_first() {
        let mut seed = 3u64;
        let init = random_tensor(3, 2, &mut seed);
        let mut a_store = ParamStore::new();
        a_store.insert("w", init.clone());
        let mut a_opt = Adam::with_lr(0.1);
        let mut b_store = ParamStore::new();
        b_store.insert("w", init);
        let mut b_opt = Adam::with_lr(0.1);

        let mut sg = SparseGrad::new(2);
        sg.add_row(1, &[1.0, 2.0]);
        let dense_follow = Tensor::from_rows(&[&[0.1, 0.1], &[0.0, -0.3], &[0.2, 0.0]]);

        // Path A: sparse then dense (interleaved).
        a_opt.step_sparse(&mut a_store, "w", &sg);
        a_opt.step(&mut a_store, "w", &dense_follow);
        // Path B: both steps dense (the oracle).
        b_opt.step(&mut b_store, "w", &sg.to_dense(3));
        b_opt.step(&mut b_store, "w", &dense_follow);

        for (x, y) in a_store
            .get("w")
            .as_slice()
            .iter()
            .zip(b_store.get("w").as_slice())
        {
            assert!((x - y).abs() <= 1e-6, "interleaved {x} vs dense {y}");
        }
    }

    #[test]
    fn sgd_sparse_step_touches_only_given_rows() {
        let mut store = ParamStore::new();
        store.insert("w", Tensor::full(3, 2, 1.0));
        let mut opt = Sgd::new(0.5);
        let mut g = SparseGrad::new(2);
        g.add_row(1, &[1.0, 2.0]);
        opt.step_sparse(&mut store, "w", &g);
        assert_eq!(store.get("w").row(0), &[1.0, 1.0]);
        assert_eq!(store.get("w").row(1), &[0.5, 0.0]);
        assert_eq!(store.get("w").row(2), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn unknown_parameter_panics() {
        let store = ParamStore::new();
        let _ = store.get("missing");
    }

    #[test]
    fn num_scalars_counts_all() {
        let mut store = ParamStore::new();
        store.insert("m", Tensor::zeros(3, 4));
        store.insert("v", Tensor::zeros(1, 5));
        assert_eq!(store.num_scalars(), 17);
        assert_eq!(store.len(), 2);
        assert!(store.contains("m"));
        assert!(!store.contains("w"));
    }
}

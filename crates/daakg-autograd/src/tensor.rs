//! Dense row-major `f32` matrices.
//!
//! All shapes in the DAAKG models are rank ≤ 2, so [`Tensor`] is a matrix;
//! a vector is represented as a `1×d` matrix. Storage is a single `Vec<f32>`
//! for cache-friendly iteration (per the perf-book guidance on flat storage).

use std::fmt;

/// A dense `rows × cols` matrix of `f32` in row-major order.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// A `rows × cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// A `1×1` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self::full(1, 1, value)
    }

    /// Build from an explicit data vector; `data.len()` must be
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} != {rows}x{cols}",
            data.len()
        );
        Self { data, rows, cols }
    }

    /// Build from row slices; all rows must have equal length.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            data,
            rows: rows.len(),
            cols,
        }
    }

    /// A `1×d` row vector from a slice.
    pub fn row_vector(v: &[f32]) -> Self {
        Self::from_vec(1, v.len(), v.to_vec())
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a `1×1` tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() on non-scalar tensor");
        self.data[0]
    }

    /// Elementwise in-place addition.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self += scale * other` (axpy).
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Reset all elements to zero, keeping the allocation.
    pub fn zero_out(&mut self) {
        self.data.fill(0.0);
    }

    /// Matrix product `self · other`.
    ///
    /// Dense cache-blocked kernel, row-band parallel above
    /// `PAR_MIN_FLOPS`. The inner loop is a branch-free axpy so it
    /// vectorizes; callers with genuinely sparse left operands should use
    /// [`Tensor::matmul_sparse_aware`] instead, which keeps the zero-skip.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        if m * k * n == 0 {
            return out;
        }
        let a = &self.data;
        let b = &other.data;
        let kernel = |first_row: usize, band: &mut [f32]| {
            let band_rows = band.len() / n;
            // j-panels keep the touched slice of each `b` row resident;
            // k-panels bound the number of `b` rows cycled per pass, so the
            // working set (KB × JB floats of `b`) stays cache-sized.
            for jb in (0..n).step_by(Self::MM_JB) {
                let je = (jb + Self::MM_JB).min(n);
                for kb in (0..k).step_by(Self::MM_KB) {
                    let ke = (kb + Self::MM_KB).min(k);
                    for bi in 0..band_rows {
                        let i = first_row + bi;
                        let a_row = &a[i * k + kb..i * k + ke];
                        let out_row = &mut band[bi * n + jb..bi * n + je];
                        for (kk, &av) in a_row.iter().enumerate() {
                            let b_row = &b[(kb + kk) * n + jb..(kb + kk) * n + je];
                            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                                *o += av * bv;
                            }
                        }
                    }
                }
            }
        };
        if m * k * n >= Self::PAR_MIN_FLOPS {
            daakg_parallel::par_row_chunks_mut(&mut out.data, n, kernel);
        } else {
            kernel(0, &mut out.data);
        }
        out
    }

    /// k-panel height of the blocked matmul kernel.
    const MM_KB: usize = 64;
    /// j-panel width of the blocked matmul kernel (`MM_KB × MM_JB` f32 of
    /// the right operand ≈ 64 KiB, within L2 on any target machine).
    const MM_JB: usize = 256;
    /// Minimum multiply-add count before a product is worth spreading over
    /// threads; below this the spawn cost dominates.
    const PAR_MIN_FLOPS: usize = 1 << 16;

    /// Sparsity-aware matrix product: identical result to
    /// [`Tensor::matmul`], but the inner loop skips zero entries of `self`.
    /// Worth it only when the left operand is mostly zeros (e.g. one-hot
    /// selector matrices); on dense inputs the branch defeats
    /// vectorization, which is why the dense path no longer carries it.
    pub fn matmul_sparse_aware(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Fused `self · otherᵀ` without materializing the transpose.
    ///
    /// Both operands are walked row-wise — every output element is a dot
    /// product of two contiguous rows — so this is strictly more
    /// cache-friendly than `matmul(&other.transpose())` and allocates no
    /// intermediate. Used by the batched similarity engine (query block ·
    /// candidate matrixᵀ) and the backward pass of `MatMul`.
    pub fn matmul_transpose(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose shape mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(m, n);
        if m * k * n == 0 {
            return out;
        }
        let a = &self.data;
        let b = &other.data;
        let kernel = |first_row: usize, band: &mut [f32]| {
            let band_rows = band.len() / n;
            for bi in 0..band_rows {
                let i = first_row + bi;
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut band[bi * n..(bi + 1) * n];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    *o = dot_unrolled(a_row, b_row);
                }
            }
        };
        if m * k * n >= Self::PAR_MIN_FLOPS {
            daakg_parallel::par_row_chunks_mut(&mut out.data, n, kernel);
        } else {
            kernel(0, &mut out.data);
        }
        out
    }

    /// Fused `selfᵀ · other` without materializing the transpose.
    ///
    /// `self` is `m×k`, `other` is `m×n`, the result is `k×n`: the sum of
    /// rank-1 updates `selfᵀ[·,i] · other[i,·]`. Parallelism splits the
    /// *output* rows (columns of `self`), so bands write disjoint memory.
    /// Used by the backward pass of `MatMul` (`∇B = Aᵀ·g`).
    pub fn tr_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "tr_matmul shape mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(k, n);
        if m * k * n == 0 {
            return out;
        }
        let a = &self.data;
        let b = &other.data;
        let kernel = |first_row: usize, band: &mut [f32]| {
            let band_rows = band.len() / n;
            for i in 0..m {
                let b_row = &b[i * n..(i + 1) * n];
                for bk in 0..band_rows {
                    let kk = first_row + bk;
                    let av = a[i * k + kk];
                    let out_row = &mut band[bk * n..(bk + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
        };
        if m * k * n >= Self::PAR_MIN_FLOPS {
            daakg_parallel::par_row_chunks_mut(&mut out.data, n, kernel);
        } else {
            kernel(0, &mut out.data);
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Dot product of two tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Frobenius (flat L2) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Gather a new tensor whose rows are `self.row(i)` for each index.
    pub fn gather_rows(&self, indices: &[u32]) -> Tensor {
        let mut out = Tensor::zeros(indices.len(), self.cols);
        for (o, &i) in indices.iter().enumerate() {
            let i = i as usize;
            assert!(i < self.rows, "gather index {i} out of {} rows", self.rows);
            out.data[o * self.cols..(o + 1) * self.cols]
                .copy_from_slice(&self.data[i * self.cols..(i + 1) * self.cols]);
        }
        out
    }

    /// L2-normalize each row in place. Rows with norm below `eps` are left
    /// unchanged.
    pub fn normalize_rows(&mut self, eps: f32) {
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let n = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if n > eps {
                for x in row.iter_mut() {
                    *x /= n;
                }
            }
        }
    }

    /// Euclidean distance between two rows of (possibly different) tensors.
    pub fn row_distance(a: &Tensor, ra: usize, b: &Tensor, rb: usize) -> f32 {
        assert_eq!(a.cols, b.cols);
        a.row(ra)
            .iter()
            .zip(b.row(rb).iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt()
    }
}

/// Dot product with an 8-lane unrolled accumulator: the strictly-sequential
/// `zip().sum()` reduction cannot be vectorized (FP addition is not
/// associative, so LLVM must preserve order); 8 independent partial sums
/// give the autovectorizer a SIMD-shaped reduction. Result differs from the
/// sequential sum only by fp reassociation.
#[inline]
pub fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..8 {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut s = (acc[0] + acc[4]) + (acc[1] + acc[5]) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x * y;
    }
    s
}

/// Cosine similarity of two equal-length slices; `0.0` when either is a zero
/// vector (the conservative convention used throughout the paper pipeline).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    // Degenerate rows — (near-)zero norm, or any non-finite component —
    // score 0.0 against everything, so rankings over them are stable
    // instead of NaN-ordered.
    if !na.is_finite() || na <= f32::EPSILON || !nb.is_finite() || nb <= f32::EPSILON {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// Euclidean distance of two equal-length slices.
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.get(0, 1), 2.0);
        assert_eq!(t.row(1), &[3.0, 4.0]);
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
        assert_eq!(Tensor::identity(2).as_slice(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_validates_shape() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    /// Reference triple-loop product used as the oracle for the blocked
    /// kernels.
    fn matmul_oracle(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.get(i, kk) * b.get(kk, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn random_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_matmul_matches_oracle_on_random_shapes() {
        // Shapes straddling the k/j panel sizes and the parallel threshold.
        for (seed, (m, k, n)) in [(3, 7, 5), (65, 64, 63), (1, 300, 2), (130, 70, 260)]
            .into_iter()
            .enumerate()
        {
            let a = random_tensor(m, k, seed as u64);
            let b = random_tensor(k, n, seed as u64 + 100);
            let fast = a.matmul(&b);
            let slow = matmul_oracle(&a, &b);
            // Blocked summation reorders additions; allow fp slack scaled
            // by the reduction length.
            assert_close(&fast, &slow, 1e-4 * k as f32);
        }
    }

    #[test]
    fn sparse_aware_matmul_matches_dense() {
        let mut a = random_tensor(20, 30, 9);
        // Zero out most of the left operand.
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 5 != 0 {
                *v = 0.0;
            }
        }
        let b = random_tensor(30, 10, 10);
        assert_close(&a.matmul_sparse_aware(&b), &a.matmul(&b), 1e-4);
    }

    #[test]
    fn matmul_transpose_matches_materialized_transpose() {
        for (seed, (m, k, n)) in [(2, 8, 3), (40, 33, 70), (1, 1, 1)].into_iter().enumerate() {
            let a = random_tensor(m, k, seed as u64 + 20);
            let b = random_tensor(n, k, seed as u64 + 40);
            let fused = a.matmul_transpose(&b);
            let slow = a.matmul(&b.transpose());
            assert_close(&fused, &slow, 1e-4 * k as f32);
        }
    }

    #[test]
    fn tr_matmul_matches_materialized_transpose() {
        for (seed, (m, k, n)) in [(5, 4, 6), (64, 50, 48), (1, 7, 1)].into_iter().enumerate() {
            let a = random_tensor(m, k, seed as u64 + 60);
            let b = random_tensor(m, n, seed as u64 + 80);
            let fused = a.tr_matmul(&b);
            let slow = a.transpose().matmul(&b);
            assert_close(&fused, &slow, 1e-4 * m as f32);
        }
    }

    #[test]
    fn fused_products_validate_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        // A·Bᵀ needs equal cols: fine. Aᵀ·B needs equal rows: fine.
        assert_eq!(a.matmul_transpose(&b).shape(), (2, 2));
        assert_eq!(a.tr_matmul(&b).shape(), (3, 3));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let i = Tensor::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let at = a.transpose();
        assert_eq!(at.shape(), (3, 2));
        assert_eq!(at.get(2, 1), 6.0);
        assert_eq!(at.transpose(), a);
    }

    #[test]
    fn gather_rows_copies_rows() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.shape(), (3, 2));
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0]);
        assert_eq!(g.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn normalize_rows_produces_unit_rows() {
        let mut a = Tensor::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        a.normalize_rows(1e-12);
        assert!((a.row(0)[0] - 0.6).abs() < 1e-6);
        assert!((a.row(0)[1] - 0.8).abs() < 1e-6);
        // Zero row untouched.
        assert_eq!(a.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn cosine_properties() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[10.0, 20.0]]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[12.0, 24.0]);
        a.zero_out();
        assert_eq!(a.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn distances() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
        let a = Tensor::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert!((Tensor::row_distance(&a, 0, &b, 0) - 5.0).abs() < 1e-6);
    }
}

//! IVF (de)serialization on the `daakg-store` section format.
//!
//! The codec lives in this crate (not `daakg-store`) because it needs the
//! index's private fields; `daakg-store` stays payload-agnostic. An index
//! is stored as four contiguous slabs plus a small metadata word:
//!
//! | tag        | type | shape            | contents                       |
//! |------------|------|------------------|--------------------------------|
//! | `ivfmeta`  | u64  | 1                | embedding dimension `d`        |
//! | `ivfcent`  | f32  | `nlist × d`      | unit-norm centroid rows        |
//! | `ivfoffs`  | u64  | `nlist + 1`      | list offsets (in vectors)      |
//! | `ivfids`   | u32  | `n`              | candidate ids grouped by list  |
//! | `ivfblk`   | f32  | `n × d`          | transposed per-list blocks     |
//!
//! Because every field of a built index is persisted verbatim (no
//! re-clustering on load), a decoded index is *bitwise* the index that
//! was saved: searches over it reproduce the original scores exactly.
//! [`IvfIndex::to_bytes`] / [`IvfIndex::from_bytes`] wrap the sections in
//! a standalone checksummed file image — also the canonical byte form the
//! tests use to prove a lazily-rebuilt index equals the persisted one.

use crate::ivf::IvfIndex;
use daakg_autograd::Tensor;
use daakg_graph::DaakgError;
use daakg_store::{SectionReader, SectionWriter};
use std::path::Path;

/// Payload-kind discriminator of standalone IVF files (`b"IVF1"` LE).
pub const FILE_KIND_IVF: u32 = u32::from_le_bytes(*b"IVF1");

impl IvfIndex {
    /// Append this index's sections to a [`SectionWriter`] (embedded form,
    /// used inside snapshot files).
    pub fn write_sections(&self, w: &mut SectionWriter) {
        let (nlist, n, d) = (self.nlist(), self.num_vectors(), self.dim());
        w.u64s("ivfmeta", &[d as u64]);
        w.f32s("ivfcent", nlist, d, self.centroids().as_slice());
        let offsets: Vec<u64> = self.offsets().iter().map(|&o| o as u64).collect();
        w.u64s("ivfoffs", &offsets);
        w.u32s("ivfids", self.raw_ids());
        w.f32s("ivfblk", n, d, self.raw_blocks_t());
    }

    /// Rebuild an index from sections previously written by
    /// [`IvfIndex::write_sections`], validating structural invariants
    /// (offset monotonicity, slab shapes) with typed [`DaakgError::Corrupt`]
    /// errors — never a panic, whatever the bytes say.
    pub fn read_sections(r: &SectionReader) -> Result<Self, DaakgError> {
        let meta = r.u64s("ivfmeta")?;
        let dim = *meta
            .first()
            .ok_or_else(|| r.corrupt("ivfmeta", "empty metadata section"))?
            as usize;
        let cent = r.f32s("ivfcent")?;
        if cent.rows > 0 && cent.cols != dim {
            return Err(r.corrupt(
                "ivfcent",
                format!("centroid width {} disagrees with dim {dim}", cent.cols),
            ));
        }
        let offsets_u64 = r.u64s("ivfoffs")?;
        if offsets_u64.len() != cent.rows + 1 {
            return Err(r.corrupt(
                "ivfoffs",
                format!(
                    "expected {} offsets for {} lists, found {}",
                    cent.rows + 1,
                    cent.rows,
                    offsets_u64.len()
                ),
            ));
        }
        let ids = r.u32s("ivfids")?;
        let n = ids.len();
        if offsets_u64.first() != Some(&0) || offsets_u64.last() != Some(&(n as u64)) {
            return Err(r.corrupt("ivfoffs", "offsets do not span the id list"));
        }
        if offsets_u64.windows(2).any(|w| w[0] > w[1]) {
            return Err(r.corrupt("ivfoffs", "offsets are not monotone"));
        }
        if offsets_u64.iter().any(|&o| o > n as u64) {
            return Err(r.corrupt("ivfoffs", "offset beyond the id list"));
        }
        let blocks = r.f32s("ivfblk")?;
        if blocks.data.len() != n * dim {
            return Err(r.corrupt(
                "ivfblk",
                format!(
                    "block slab holds {} floats where {} vectors × {dim} dims were recorded",
                    blocks.data.len(),
                    n
                ),
            ));
        }
        let centroids = Tensor::from_vec(cent.rows, cent.cols, cent.data);
        let offsets: Vec<usize> = offsets_u64.iter().map(|&o| o as usize).collect();
        Ok(Self::from_raw_parts(
            dim,
            centroids,
            offsets,
            ids,
            blocks.data,
        ))
    }

    /// Serialize to a standalone checksummed file image (header + sections
    /// + footer) — the canonical byte form of this index.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SectionWriter::new(FILE_KIND_IVF);
        self.write_sections(&mut w);
        w.finish()
    }

    /// Parse a standalone image produced by [`IvfIndex::to_bytes`].
    /// `path` is used for error diagnostics only.
    pub fn from_bytes(path: &Path, bytes: Vec<u8>) -> Result<Self, DaakgError> {
        let r = SectionReader::parse(path, bytes, FILE_KIND_IVF)?;
        Self::read_sections(&r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivf::IvfConfig;
    use crate::scan::normalize_rows_cosine;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_unit_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        let mut t = Tensor::from_vec(rows, cols, data);
        normalize_rows_cosine(&mut t);
        t
    }

    #[test]
    fn roundtrip_is_bitwise_and_searches_agree_exactly() {
        for seed in 0..4u64 {
            let cands = random_unit_matrix(120 + seed as usize * 31, 12, seed + 1);
            let queries = random_unit_matrix(9, 12, seed + 100);
            let index = IvfIndex::build(&cands, &IvfConfig::new(7));
            let bytes = index.to_bytes();
            let loaded = IvfIndex::from_bytes(Path::new("mem"), bytes.clone()).unwrap();
            // Canonical byte form is stable: re-encoding reproduces it.
            assert_eq!(loaded.to_bytes(), bytes, "seed {seed}");
            assert_eq!(loaded.dim(), index.dim());
            assert_eq!(loaded.nlist(), index.nlist());
            for q in 0..queries.rows() {
                for nprobe in [1, 3, index.nlist()] {
                    let a = index.search(queries.row(q), 8, nprobe);
                    let b = loaded.search(queries.row(q), 8, nprobe);
                    assert_eq!(a.len(), b.len());
                    for ((ia, sa), (ib, sb)) in a.iter().zip(&b) {
                        assert_eq!(ia, ib, "seed {seed} q{q} nprobe {nprobe}");
                        assert_eq!(sa.to_bits(), sb.to_bits(), "scores bitwise equal");
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_rebuild_produces_identical_bytes() {
        let cands = random_unit_matrix(90, 10, 77);
        let cfg = IvfConfig::new(5);
        let a = IvfIndex::build(&cands, &cfg).to_bytes();
        let b = IvfIndex::build(&cands, &cfg).to_bytes();
        assert_eq!(a, b, "index build must be deterministic for persistence");
    }

    #[test]
    fn empty_corpus_roundtrips() {
        let index = IvfIndex::build(&Tensor::zeros(0, 6), &IvfConfig::new(4));
        let loaded = IvfIndex::from_bytes(Path::new("mem"), index.to_bytes()).unwrap();
        assert_eq!(loaded.num_vectors(), 0);
        assert_eq!(loaded.nlist(), 0);
        assert!(loaded.search(&[0.0; 6], 3, 1).is_empty());
    }

    #[test]
    fn semantic_corruption_is_typed_not_a_panic() {
        // A structurally valid file whose sections disagree: offsets that
        // do not span the id list.
        let cands = random_unit_matrix(40, 8, 9);
        let index = IvfIndex::build(&cands, &IvfConfig::new(3));
        let mut w = SectionWriter::new(FILE_KIND_IVF);
        w.u64s("ivfmeta", &[8]);
        w.f32s("ivfcent", index.nlist(), 8, index.centroids().as_slice());
        w.u64s("ivfoffs", &vec![0u64; index.nlist() + 1]); // all-zero: does not span ids
        w.u32s("ivfids", index.raw_ids());
        w.f32s("ivfblk", index.num_vectors(), 8, index.raw_blocks_t());
        let err = IvfIndex::from_bytes(Path::new("mem"), w.finish()).unwrap_err();
        assert!(matches!(err, DaakgError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("ivfoffs"), "{err}");
    }
}

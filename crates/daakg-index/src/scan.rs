//! The shared candidate-scan kernel: bounded top-k selection fed by a
//! 4-query × 16-candidate register-tiled dot-product sweep.
//!
//! This module hosts the machinery that both similarity engines run on:
//!
//! * [`TopKSelector`] — a bounded binary min-heap-of-worst accumulator
//!   with a cached rejection threshold, keeping the best `k` candidates
//!   under the canonical *(score descending, id ascending)* order;
//! * [`scan_block`] — the blocked scan: a gathered query panel against a
//!   *transposed* candidate block, accumulating a 4×16 register tile
//!   vertically (no horizontal reductions), with an AVX2+FMA
//!   re-compilation selected by runtime dispatch on x86-64;
//! * [`normalize_rows_cosine`] — the one-time row normalization that
//!   turns cosine similarity into a plain dot product while preserving
//!   the `cos(0, ·) = 0` degenerate-row convention.
//!
//! The exhaustive engine (`daakg_align::BatchedSimilarity`) scans whole
//! candidate matrices with column ids `0..n`; the IVF index
//! ([`crate::IvfIndex`]) scans one inverted list at a time, where column
//! `j` of the block is some *permuted* original id — hence the `ids`
//! remap slice threaded through the kernel, so selectors always hold
//! original candidate ids and tie-breaking stays globally consistent.
//!
//! Unlike a selector specialized to index-ordered streams, pushes here
//! are **order-independent**: an equal-score candidate with a smaller id
//! arriving *late* still evicts the retained worse entry. That is what
//! makes a full-probe (`nprobe == nlist`) IVF search reproduce the
//! exhaustive scan's result set exactly, ties included, even though its
//! candidates stream list-by-list instead of in id order.

use daakg_autograd::Tensor;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scored candidate ordered by (score desc, id asc).
///
/// The `Ord` implementation is *reversed* so that [`BinaryHeap`] (a
/// max-heap) exposes the **worst** retained candidate at the top, which is
/// what bounded top-k eviction needs.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    score: f32,
    id: u32,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Worse-first: lower score is "greater" for the max-heap; on equal
        // scores the larger id is worse (ascending-id preference).
        other
            .score
            .total_cmp(&self.score)
            .then(other.id.cmp(&self.id).reverse())
    }
}

/// A bounded top-k accumulator: a min-heap-of-worst with a fast rejection
/// path, so streaming `n` candidates costs `O(n)` compares plus
/// `O(retained · log k)` heap updates.
///
/// Selection order is exact under *(score desc, id asc)* regardless of the
/// order candidates are pushed in — required by the IVF search path, whose
/// candidates arrive grouped by inverted list rather than by id.
#[derive(Debug, Clone)]
pub struct TopKSelector {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
    /// Score of the worst retained candidate once the heap is full
    /// (`+∞` when `k == 0`, `−∞` while filling). Caching it flat makes the
    /// overwhelmingly common rejection a single register compare, with no
    /// heap access at all.
    threshold: f32,
}

impl TopKSelector {
    /// A selector retaining the best `k` pushed candidates.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
            threshold: if k == 0 {
                f32::INFINITY
            } else {
                f32::NEG_INFINITY
            },
        }
    }

    /// Offer one candidate. Strictly-worse-than-threshold candidates cost
    /// a single compare; equal-score candidates fall through to an exact
    /// (score, id) comparison against the worst retained entry.
    #[inline]
    pub fn push(&mut self, id: u32, score: f32) {
        if score < self.threshold {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry { score, id });
            if self.heap.len() == self.k {
                self.threshold = self.heap.peek().map_or(f32::NEG_INFINITY, |w| w.score);
            }
            return;
        }
        // Full heap and score >= threshold: evict only when strictly
        // better under (score desc, id asc) — which also rejects
        // everything when k == 0 (the heap is empty, threshold is +inf,
        // and only a +inf score reaches this point, with nothing to peek).
        let Some(&worst) = self.heap.peek() else {
            return;
        };
        if score > worst.score || (score == worst.score && id < worst.id) {
            self.heap.pop();
            self.heap.push(HeapEntry { score, id });
            self.threshold = self.heap.peek().map_or(f32::NEG_INFINITY, |w| w.score);
        }
    }

    /// Number of candidates currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain into final ranking order (descending score, ascending id on
    /// ties).
    pub fn into_sorted(self) -> Vec<(u32, f32)> {
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| (e.id, e.score))
            .collect()
    }
}

/// Normalize each row to unit L2 norm, zeroing rows whose *squared* norm
/// is ≤ `f32::EPSILON` or non-finite — the exact degenerate-row guard of
/// [`daakg_autograd::tensor::cosine`], so normalized-dot-product scores
/// agree with the naive convention both for tiny-but-nonzero rows (which
/// `cosine` treats as zero vectors) and for rows containing NaN/infinite
/// components.
pub fn normalize_rows_cosine(t: &mut Tensor) {
    for r in 0..t.rows() {
        let row = t.row_mut(r);
        let sq: f32 = row.iter().map(|x| x * x).sum();
        if !sq.is_finite() || sq <= f32::EPSILON {
            row.fill(0.0);
        } else {
            let inv = 1.0 / sq.sqrt();
            for x in row.iter_mut() {
                *x *= inv;
            }
        }
    }
}

/// Candidates per register tile of the scan kernel: 4 queries × 16
/// candidates = 64 accumulators, two 8-lane vectors per query on AVX2.
const SCAN_TILE: usize = 16;

/// Scan every candidate column of a transposed block against a gathered
/// query panel (`nq` rows of `d` floats in `ps`), feeding the per-query
/// bounded selectors.
///
/// `ct` is the *transposed* candidate block (`d` rows of `n` floats), so
/// the kernel accumulates a 4-query × 16-candidate register tile
/// *vertically*: per depth step it loads one 16-wide candidate slab,
/// broadcasts four query scalars, and issues eight 8-lane FMAs — no
/// horizontal reduction anywhere, and each candidate load feeds four MACs.
///
/// `ids[j]` is the id pushed for column `j` (`ids.len() == n`): the
/// identity map for an exhaustive scan, the inverted-list id slice for an
/// IVF probe.
///
/// `#[inline(always)]` so the `#[target_feature]` wrapper below inlines
/// this body and re-vectorizes it with the wider instruction set.
// Index-based tile loops are deliberate: the accumulator tile must be
// addressed by lane for the vectorizer to keep it in registers.
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn scan_panel(
    ps: &[f32],
    d: usize,
    nq: usize,
    ct: &[f32],
    n: usize,
    ids: &[u32],
    selectors: &mut [TopKSelector],
) {
    debug_assert_eq!(ct.len(), d * n);
    debug_assert_eq!(ids.len(), n);
    let mut qi = 0;
    while qi + 4 <= nq {
        let b = qi * d;
        let q0 = &ps[b..b + d];
        let q1 = &ps[b + d..b + 2 * d];
        let q2 = &ps[b + 2 * d..b + 3 * d];
        let q3 = &ps[b + 3 * d..b + 4 * d];
        let [s0, s1, s2, s3] = {
            let (h0, rest) = selectors[qi..].split_at_mut(1);
            let (h1, rest) = rest.split_at_mut(1);
            let (h2, h3) = rest.split_at_mut(1);
            [&mut h0[0], &mut h1[0], &mut h2[0], &mut h3[0]]
        };
        let mut j0 = 0;
        while j0 + SCAN_TILE <= n {
            let mut acc = [[0.0f32; SCAN_TILE]; 4];
            for l in 0..d {
                let slab = &ct[l * n + j0..l * n + j0 + SCAN_TILE];
                let (b0, b1, b2, b3) = (q0[l], q1[l], q2[l], q3[l]);
                for t in 0..SCAN_TILE {
                    let cv = slab[t];
                    acc[0][t] += b0 * cv;
                    acc[1][t] += b1 * cv;
                    acc[2][t] += b2 * cv;
                    acc[3][t] += b3 * cv;
                }
            }
            for t in 0..SCAN_TILE {
                let j = ids[j0 + t];
                s0.push(j, acc[0][t]);
                s1.push(j, acc[1][t]);
                s2.push(j, acc[2][t]);
                s3.push(j, acc[3][t]);
            }
            j0 += SCAN_TILE;
        }
        // Candidate tail (< SCAN_TILE columns): strided scalar access.
        while j0 < n {
            let mut s = [0.0f32; 4];
            for l in 0..d {
                let cv = ct[l * n + j0];
                s[0] += q0[l] * cv;
                s[1] += q1[l] * cv;
                s[2] += q2[l] * cv;
                s[3] += q3[l] * cv;
            }
            let j = ids[j0];
            s0.push(j, s[0]);
            s1.push(j, s[1]);
            s2.push(j, s[2]);
            s3.push(j, s[3]);
            j0 += 1;
        }
        qi += 4;
    }
    // Query tail (< 4 rows): one vertical axpy sweep per query.
    while qi < nq {
        let q = &ps[qi * d..(qi + 1) * d];
        let mut buf = vec![0.0f32; n];
        for (l, &bq) in q.iter().enumerate() {
            for (o, &cv) in buf.iter_mut().zip(&ct[l * n..(l + 1) * n]) {
                *o += bq * cv;
            }
        }
        let sel = &mut selectors[qi];
        for (j, &s) in buf.iter().enumerate() {
            sel.push(ids[j], s);
        }
        qi += 1;
    }
}

/// AVX2+FMA re-compilation of [`scan_panel`].
///
/// # Safety
/// Caller must verify `avx2` and `fma` are available at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[target_feature(enable = "fma")]
unsafe fn scan_panel_avx2(
    ps: &[f32],
    d: usize,
    nq: usize,
    ct: &[f32],
    n: usize,
    ids: &[u32],
    selectors: &mut [TopKSelector],
) {
    scan_panel(ps, d, nq, ct, n, ids, selectors)
}

/// Scan a transposed candidate block against a query panel with the
/// widest compiled-in kernel the running CPU supports. The default x86-64
/// target only guarantees SSE2, but alignment servers virtually always
/// have AVX2+FMA — runtime dispatch keeps the binary portable while
/// serving wide SIMD on real hardware.
///
/// * `ps` — the query panel, `nq` contiguous rows of `d` floats;
/// * `ct` — the transposed candidate block, `d` rows of `n` floats;
/// * `ids` — the id pushed for each of the `n` columns;
/// * `selectors` — one bounded accumulator per query row (`≥ nq`).
pub fn scan_block(
    ps: &[f32],
    d: usize,
    nq: usize,
    ct: &[f32],
    n: usize,
    ids: &[u32],
    selectors: &mut [TopKSelector],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: both features were just verified on this CPU.
        return unsafe { scan_panel_avx2(ps, d, nq, ct, n, ids, selectors) };
    }
    scan_panel(ps, d, nq, ct, n, ids, selectors)
}

/// Bounded top-k selection over a score slice: keep the best `k` in a
/// min-heap-of-worst, then unwind into descending order (ascending index
/// on ties).
pub fn top_k_of_scores(scores: &[f32], k: usize) -> Vec<(u32, f32)> {
    let mut sel = TopKSelector::new(k.min(scores.len()));
    for (j, &s) in scores.iter().enumerate() {
        sel.push(j as u32, s);
    }
    sel.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_top_k(scores: &[(u32, f32)], k: usize) -> Vec<(u32, f32)> {
        let mut v = scores.to_vec();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    #[test]
    fn selector_matches_sort_on_random_streams_in_any_order() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let n = rng.gen_range(1usize..200);
            let mut items: Vec<(u32, f32)> = (0..n as u32)
                // Coarse quantization forces plenty of exact score ties.
                .map(|i| (i, (rng.gen_range(0..8) as f32) / 8.0))
                .collect();
            let expect_full = brute_top_k(&items, n);
            // Push in a permuted order: tie-handling must not depend on
            // candidates arriving id-ascending.
            use rand::seq::SliceRandom;
            items.shuffle(&mut rng);
            for k in [0usize, 1, 3, n / 2, n, n + 5] {
                let mut sel = TopKSelector::new(k);
                for &(id, s) in &items {
                    sel.push(id, s);
                }
                assert_eq!(sel.into_sorted(), expect_full[..k.min(n)].to_vec(), "k={k}");
            }
        }
    }

    #[test]
    fn selector_k_zero_retains_nothing() {
        let mut sel = TopKSelector::new(0);
        sel.push(0, 1.0);
        sel.push(1, f32::INFINITY);
        assert!(sel.is_empty());
        assert!(sel.into_sorted().is_empty());
    }

    #[test]
    fn late_lower_id_wins_exact_ties() {
        // id 7 arrives first with the same score as id 2; the lower id
        // must still end up retained.
        let mut sel = TopKSelector::new(1);
        sel.push(7, 0.5);
        sel.push(2, 0.5);
        assert_eq!(sel.into_sorted(), vec![(2, 0.5)]);
    }

    #[test]
    fn scan_block_remaps_ids_and_matches_dots() {
        let mut rng = StdRng::seed_from_u64(11);
        let (d, n, nq) = (12usize, 37usize, 6usize);
        let panel: Vec<f32> = (0..nq * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let cols: Vec<f32> = (0..n * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        // Transpose the column-major candidate set into d rows of n.
        let mut ct = vec![0.0f32; d * n];
        for j in 0..n {
            for l in 0..d {
                ct[l * n + j] = cols[j * d + l];
            }
        }
        let ids: Vec<u32> = (0..n as u32).map(|j| j * 3 + 100).collect();
        let mut selectors: Vec<TopKSelector> = (0..nq).map(|_| TopKSelector::new(5)).collect();
        scan_block(&panel, d, nq, &ct, n, &ids, &mut selectors);
        for (qi, sel) in selectors.into_iter().enumerate() {
            let q = &panel[qi * d..(qi + 1) * d];
            let scored: Vec<(u32, f32)> = (0..n)
                .map(|j| {
                    let dot: f32 = q
                        .iter()
                        .zip(&cols[j * d..(j + 1) * d])
                        .map(|(a, b)| a * b)
                        .sum();
                    (ids[j], dot)
                })
                .collect();
            let expect = brute_top_k(&scored, 5);
            let got = sel.into_sorted();
            assert_eq!(got.len(), expect.len());
            for ((gi, gs), (ei, es)) in got.iter().zip(&expect) {
                assert_eq!(gi, ei, "query {qi}");
                assert!((gs - es).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn top_k_of_scores_orders_and_bounds() {
        let scores = [0.5f32, 0.9, 0.9, 0.1];
        assert_eq!(top_k_of_scores(&scores, 2), vec![(1, 0.9), (2, 0.9)]);
        assert_eq!(top_k_of_scores(&scores, 10).len(), 4);
        assert!(top_k_of_scores(&scores, 0).is_empty());
    }

    #[test]
    fn normalize_keeps_cosine_convention() {
        let mut t = Tensor::from_rows(&[&[3.0, 4.0], &[0.0, 0.0], &[1e-5, 0.0], &[f32::NAN, 1.0]]);
        normalize_rows_cosine(&mut t);
        assert!((t.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((t.get(0, 1) - 0.8).abs() < 1e-6);
        for r in 1..4 {
            assert_eq!(t.row(r), &[0.0, 0.0], "row {r} must zero out");
        }
    }
}

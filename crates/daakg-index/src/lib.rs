//! # daakg-index
//!
//! Approximate nearest-neighbor serving for the DAAKG workspace: an
//! inverted-file (IVF) index that turns the `O(n·d)` exhaustive top-k
//! scan into an `nprobe / nlist` fraction of the corpus with a tunable
//! recall/speed trade-off — the standard production pattern for embedding
//! serving at scale.
//!
//! * [`scan`] — the shared candidate-scan machinery: the bounded
//!   [`scan::TopKSelector`], the 4×16 register-tiled [`scan::scan_block`]
//!   kernel with runtime AVX2+FMA dispatch, and the cosine-convention row
//!   normalization. `daakg_align::BatchedSimilarity` (the exhaustive
//!   oracle) runs on exactly this kernel, which is what makes full-probe
//!   IVF searches bitwise comparable to it.
//! * [`kmeans`] — the coarse quantizer: k-means++-seeded spherical
//!   k-means with parallel Lloyd iterations and empty-cluster re-seeding.
//! * [`ivf`] — [`IvfIndex`]: contiguous centroid-major inverted lists
//!   over normalized embeddings, built once per published snapshot,
//!   served lock-free ([`IvfIndex::search`] / [`IvfIndex::search_batch`]).
//! * [`persist`] — the `daakg-store` codec: every slab of a built index
//!   round-trips bitwise through the checksummed section format
//!   ([`IvfIndex::to_bytes`] / [`IvfIndex::from_bytes`]), so persisted
//!   indexes search identically to the ones they were saved from.
//!
//! [`QueryMode`] is the serving-layer switch consumed by
//! `daakg_align::AlignmentService` and the `daakg::Pipeline` builder:
//! `Exact` keeps the exhaustive scan (the default — existing behavior and
//! every oracle untouched), `Approx { nprobe }` routes queries through
//! the snapshot's index. [`QueryOptions`] bundles the mode with the
//! result bound `k` into the one options struct every serving-layer query
//! entry point (`daakg_align::QueryExecutor`) accepts.

pub mod ivf;
pub mod kmeans;
pub mod persist;
pub mod scan;

pub use ivf::{IvfConfig, IvfIndex, SearchSpans};
pub use kmeans::{spherical_kmeans, KMeans};
pub use scan::{normalize_rows_cosine, scan_block, top_k_of_scores, TopKSelector};

/// How a serving-layer query is executed.
///
/// The default is [`QueryMode::Exact`]: the exhaustive batched scan, with
/// results identical to the pre-index system. [`QueryMode::Approx`] scans
/// only the `nprobe` most-similar inverted lists of the snapshot's
/// [`IvfIndex`] — sublinear in the corpus size, returning exact cosine
/// scores over the probed candidates; at `nprobe == nlist` it reproduces
/// the exact result set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Exhaustive scan over every candidate (the default).
    #[default]
    Exact,
    /// IVF-approximate scan over the `nprobe` best inverted lists.
    Approx {
        /// Number of inverted lists to probe (`1..=nlist`; clamped high,
        /// rejected at 0 by the service layer).
        nprobe: usize,
    },
}

impl QueryMode {
    /// Validate the mode for a service whose index presence is known.
    pub fn validate(&self, has_index: bool) -> Result<(), daakg_graph::DaakgError> {
        match *self {
            QueryMode::Exact => Ok(()),
            QueryMode::Approx { nprobe } => {
                if nprobe == 0 {
                    Err(daakg_graph::DaakgError::invalid(
                        "QueryMode",
                        "Approx nprobe must be at least 1",
                    ))
                } else if !has_index {
                    Err(daakg_graph::DaakgError::invalid(
                        "QueryMode",
                        "Approx queries need an IVF index; configure one \
                         (e.g. Pipeline::index(nlist)) before using Approx mode",
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// The unified per-call query options consumed by the serving layer
/// (`daakg_align::QueryExecutor`): how many candidates to return and how
/// to execute the scan.
///
/// One struct replaces the old `rank`/`rank_with` + `top_k`/`top_k_with` +
/// `batch_top_k`/`batch_top_k_with` split: `k` selects between a bounded
/// top-k (`Some(k)`) and a full ranking (`None`), and [`QueryMode`] picks
/// exact or IVF-approximate execution. Build with the constructors and
/// chain the modifiers:
///
/// ```
/// use daakg_index::{QueryMode, QueryOptions};
///
/// let exact_top10 = QueryOptions::top_k(10);
/// let approx_top10 = QueryOptions::top_k(10).approx(4);
/// let full_ranking = QueryOptions::rank();
/// assert_eq!(approx_top10.mode, QueryMode::Approx { nprobe: 4 });
/// assert_eq!(full_ranking.k, None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOptions {
    /// How many candidates to return, best first; `None` ranks every
    /// candidate the scan touches (all of them in `Exact` mode, the
    /// probed lists' candidates in `Approx` mode).
    pub k: Option<usize>,
    /// How the scan executes (exhaustive or IVF-approximate).
    pub mode: QueryMode,
    /// Optional per-query deadline, measured from submission. A query
    /// still queued when its deadline elapses is shed with
    /// `DaakgError::DeadlineExceeded` instead of burning kernel time on
    /// an answer nobody is waiting for. `None` (the default) never sheds.
    ///
    /// The deadline only bounds *queueing* delay — a query handed to the
    /// execution kernel runs to completion. A zero (or otherwise already
    /// elapsed) deadline is therefore shed at admission, a documented way
    /// to probe queue health without doing work. Deadlines do not affect
    /// batching: queries differing only in deadline still coalesce into
    /// one kernel dispatch.
    pub deadline: Option<std::time::Duration>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self::rank()
    }
}

impl QueryOptions {
    /// Rank every candidate, exact (the default).
    pub fn rank() -> Self {
        Self {
            k: None,
            mode: QueryMode::Exact,
            deadline: None,
        }
    }

    /// Return the best `k` candidates, exact.
    pub fn top_k(k: usize) -> Self {
        Self {
            k: Some(k),
            mode: QueryMode::Exact,
            deadline: None,
        }
    }

    /// Replace the execution mode.
    pub fn with_mode(mut self, mode: QueryMode) -> Self {
        self.mode = mode;
        self
    }

    /// Execute through the IVF index, probing `nprobe` inverted lists.
    pub fn approx(mut self, nprobe: usize) -> Self {
        self.mode = QueryMode::Approx { nprobe };
        self
    }

    /// Attach a queueing deadline, measured from submission (see
    /// [`QueryOptions::deadline`]).
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Whether two queries may share one coherent kernel dispatch: equal
    /// in everything the *kernel* sees (`k` and `mode`). Deadlines are
    /// queueing metadata, not execution parameters, so queries differing
    /// only in deadline still coalesce.
    pub fn coalesces_with(&self, other: &Self) -> bool {
        self.k == other.k && self.mode == other.mode
    }

    /// Validate against a service whose index presence is known (see
    /// [`QueryMode::validate`]).
    pub fn validate(&self, has_index: bool) -> Result<(), daakg_graph::DaakgError> {
        self.mode.validate(has_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_options_constructors_compose() {
        assert_eq!(QueryOptions::default(), QueryOptions::rank());
        assert_eq!(QueryOptions::top_k(5).k, Some(5));
        assert_eq!(QueryOptions::top_k(5).mode, QueryMode::Exact);
        let opts = QueryOptions::rank().approx(3);
        assert_eq!(opts.k, None);
        assert_eq!(opts.mode, QueryMode::Approx { nprobe: 3 });
        assert_eq!(
            QueryOptions::top_k(2).with_mode(QueryMode::Exact),
            QueryOptions::top_k(2)
        );
        assert!(QueryOptions::top_k(2).validate(false).is_ok());
        assert!(QueryOptions::top_k(2).approx(1).validate(false).is_err());
        assert!(QueryOptions::top_k(2).approx(1).validate(true).is_ok());
        assert!(QueryOptions::top_k(2).approx(0).validate(true).is_err());
    }

    #[test]
    fn deadlines_are_queueing_metadata_not_kernel_parameters() {
        use std::time::Duration;
        let plain = QueryOptions::top_k(5);
        assert_eq!(plain.deadline, None);
        let tight = plain.with_deadline(Duration::from_millis(2));
        assert_eq!(tight.deadline, Some(Duration::from_millis(2)));
        // Differing deadlines still share a kernel dispatch...
        assert!(plain.coalesces_with(&tight));
        assert!(tight.coalesces_with(&plain));
        // ...but differing kernel parameters never do.
        assert!(!plain.coalesces_with(&QueryOptions::top_k(6)));
        assert!(!plain.coalesces_with(&QueryOptions::top_k(5).approx(2)));
        // The deadline participates in equality (it is real per-query
        // state), just not in coalescing.
        assert_ne!(plain, tight);
    }

    #[test]
    fn query_mode_defaults_to_exact_and_validates() {
        assert_eq!(QueryMode::default(), QueryMode::Exact);
        assert!(QueryMode::Exact.validate(false).is_ok());
        assert!(QueryMode::Approx { nprobe: 4 }.validate(true).is_ok());
        assert!(QueryMode::Approx { nprobe: 0 }.validate(true).is_err());
        assert!(QueryMode::Approx { nprobe: 4 }.validate(false).is_err());
    }
}

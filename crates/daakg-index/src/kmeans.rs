//! Spherical k-means: the coarse quantizer behind [`crate::IvfIndex`].
//!
//! Input rows are unit (or zero) vectors, so "nearest centroid" means
//! *highest dot product* and the centroid of a cluster is the normalized
//! mean of its members — classic spherical k-means. The implementation is
//! built for the offline, deterministic setting of this workspace:
//!
//! * **k-means++-style seeding** from the vendored [`rand`] shim: the
//!   first centroid is uniform, each further centroid is sampled with
//!   probability proportional to its angular distance `1 − max_sim` to
//!   the centroids chosen so far — spreading seeds across the sphere so
//!   Lloyd starts near a good partition;
//! * **parallel Lloyd iterations**: the assignment step (the `n·k·d` hot
//!   loop) shards over [`daakg_parallel::par_map_ranges`], returning
//!   shard results in range order so the outcome is identical at any
//!   thread count; the `k·d`-sized update step stays sequential;
//! * **empty-cluster re-seeding**: a cluster that loses all members (or
//!   collapses to a zero mean) is re-seeded onto the currently
//!   worst-fitting vector, and a final repair pass after the last
//!   assignment guarantees no empty cluster survives whenever `n ≥ k`.
//!
//! The returned assignment satisfies the *nearest-centroid invariant*
//! exactly: every vector's similarity to its assigned centroid is `≥`
//! its similarity to every other centroid (the final repair rounds end
//! with a strict-improvement reassignment against the repaired
//! centroids, so no vector is left pointing at a stale cluster).

use daakg_autograd::tensor::dot_unrolled as dot;
use daakg_autograd::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The result of one spherical k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// `k × d` centroid matrix; every row is unit-norm or exactly zero
    /// (a cluster seeded from a degenerate zero vector).
    pub centroids: Tensor,
    /// `assignments[i]` is the centroid row vector `i` belongs to.
    pub assignments: Vec<u32>,
    /// Lloyd iterations actually run (stops early on a fixed point).
    pub iterations: usize,
}

/// Assign every vector to its most-similar centroid (ties to the lowest
/// centroid index), sharded across worker threads. Returns
/// `(assignment, similarity)` per vector, in vector order.
fn assign(data: &Tensor, centroids: &Tensor) -> Vec<(u32, f32)> {
    let n = data.rows();
    let k = centroids.rows();
    let shards = daakg_parallel::num_threads();
    let mut out = Vec::with_capacity(n);
    for shard in daakg_parallel::par_map_ranges(n, shards, |range| {
        let mut local = Vec::with_capacity(range.len());
        for i in range {
            let row = data.row(i);
            let mut best = 0u32;
            let mut best_sim = f32::NEG_INFINITY;
            for c in 0..k {
                let s = dot(row, centroids.row(c));
                // Strict `>` keeps the first (lowest-index) centroid on
                // exact ties, making assignment deterministic.
                if s > best_sim {
                    best_sim = s;
                    best = c as u32;
                }
            }
            local.push((best, best_sim));
        }
        local
    }) {
        out.extend(shard);
    }
    out
}

/// k-means++-style seeding: centroid 0 is a uniform draw; every further
/// centroid is drawn with probability proportional to the angular
/// distance `(1 − max_sim).max(0)` to the centroids picked so far.
fn seed_centroids(data: &Tensor, k: usize, rng: &mut StdRng) -> Tensor {
    let (n, d) = data.shape();
    let mut centroids = Tensor::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    // best_sim[i] = max similarity of vector i to any chosen centroid.
    let mut best_sim: Vec<f32> = (0..n).map(|i| dot(data.row(i), data.row(first))).collect();
    for c in 1..k {
        let total: f64 = best_sim.iter().map(|&s| (1.0 - s).max(0.0) as f64).sum();
        let pick = if total > 1e-12 {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &s) in best_sim.iter().enumerate() {
                target -= (1.0 - s).max(0.0) as f64;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        } else {
            // Everything already coincides with a centroid (duplicate-heavy
            // corpus): fall back to uniform draws.
            rng.gen_range(0..n)
        };
        centroids.row_mut(c).copy_from_slice(data.row(pick));
        for (i, s) in best_sim.iter_mut().enumerate() {
            *s = s.max(dot(data.row(i), data.row(pick)));
        }
    }
    centroids
}

/// Re-seed every cluster in `empties` onto the currently worst-fitting
/// vector (lowest similarity to its assigned centroid), one vector per
/// cluster, skipping vectors already used.
fn reseed_empties(
    centroids: &mut Tensor,
    data: &Tensor,
    assigned: &[(u32, f32)],
    empties: &[usize],
) {
    if empties.is_empty() {
        return;
    }
    // Vectors ordered worst-fit-first; stable under exact ties by index.
    let mut order: Vec<u32> = (0..assigned.len() as u32).collect();
    order.sort_by(|&a, &b| {
        assigned[a as usize]
            .1
            .total_cmp(&assigned[b as usize].1)
            .then(a.cmp(&b))
    });
    for (slot, &cluster) in empties.iter().enumerate() {
        let v = order[slot.min(order.len() - 1)] as usize;
        centroids.row_mut(cluster).copy_from_slice(data.row(v));
    }
}

/// Run spherical k-means over row-normalized `data` (`n × d`; rows must be
/// unit-norm or zero, see [`crate::scan::normalize_rows_cosine`]).
///
/// `k` is clamped to `1..=n`; `max_iters` Lloyd iterations at most, with
/// early exit on a fixed point. Fully deterministic for a given `seed`
/// and independent of the worker-thread count.
pub fn spherical_kmeans(data: &Tensor, k: usize, max_iters: usize, seed: u64) -> KMeans {
    let (n, d) = data.shape();
    if n == 0 {
        return KMeans {
            centroids: Tensor::zeros(0, d),
            assignments: Vec::new(),
            iterations: 0,
        };
    }
    let k = k.clamp(1, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids = seed_centroids(data, k, &mut rng);

    let mut assigned = assign(data, &centroids);
    let mut iterations = 0;
    for _ in 0..max_iters.max(1) {
        iterations += 1;
        // Update: normalized per-cluster mean (spherical M-step).
        let mut sums = Tensor::zeros(k, d);
        let mut counts = vec![0usize; k];
        for (i, &(c, _)) in assigned.iter().enumerate() {
            sums.row_mut(c as usize)
                .iter_mut()
                .zip(data.row(i))
                .for_each(|(s, &x)| *s += x);
            counts[c as usize] += 1;
        }
        let mut empties = Vec::new();
        for (c, &count) in counts.iter().enumerate() {
            let row = sums.row(c);
            let sq: f32 = row.iter().map(|x| x * x).sum();
            if count == 0 || sq <= f32::EPSILON {
                // Lost all members, or a cluster of only zero vectors:
                // leave the slot for re-seeding below.
                empties.push(c);
            } else {
                let inv = 1.0 / sq.sqrt();
                centroids
                    .row_mut(c)
                    .iter_mut()
                    .zip(row)
                    .for_each(|(o, &x)| *o = x * inv);
            }
        }
        reseed_empties(&mut centroids, data, &assigned, &empties);

        let next = assign(data, &centroids);
        let converged = empties.is_empty() && next == assigned;
        assigned = next;
        if converged {
            break;
        }
    }

    // Final repair: no empty cluster may survive (possible with
    // duplicate-heavy data where two centroids coincide and ties always
    // fall to the lower index). Each round steals the worst-fitting
    // vector from a cluster that still has more than one member,
    // installs it as the empty cluster's centroid, and then applies a
    // *strict-improvement* reassignment (ties keep the current cluster,
    // so every stolen vector sticks to its new centroid at `sim = 1`,
    // the global maximum). Installing a new centroid can attract other
    // vectors away — possibly emptying *their* cluster — hence the loop:
    // every round permanently fills at least one more cluster with a
    // sticky stolen vector, so `k` rounds bound it, and at exit the
    // nearest-centroid invariant holds exactly for every vector.
    for _round in 0..=k {
        let mut counts = vec![0usize; k];
        for &(c, _) in &assigned {
            counts[c as usize] += 1;
        }
        if counts.iter().all(|&c| c > 0) {
            break;
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            assigned[a as usize]
                .1
                .total_cmp(&assigned[b as usize].1)
                .then(a.cmp(&b))
        });
        for c in 0..k {
            if counts[c] > 0 {
                continue;
            }
            if let Some(&v) = order
                .iter()
                .find(|&&v| counts[assigned[v as usize].0 as usize] > 1)
            {
                let v = v as usize;
                counts[assigned[v].0 as usize] -= 1;
                counts[c] += 1;
                centroids.row_mut(c).copy_from_slice(data.row(v));
                assigned[v] = (c as u32, dot(data.row(v), centroids.row(c)));
            }
        }
        // Strict-improvement reassignment against the repaired centroids
        // (recomputing the current similarity too — the vector's own
        // centroid may just have been replaced).
        for (i, slot) in assigned.iter_mut().enumerate() {
            let row = data.row(i);
            let mut best = slot.0;
            let mut best_sim = dot(row, centroids.row(slot.0 as usize));
            for c in 0..k {
                let s = dot(row, centroids.row(c));
                if s > best_sim {
                    best_sim = s;
                    best = c as u32;
                }
            }
            *slot = (best, best_sim);
        }
    }

    KMeans {
        centroids,
        assignments: assigned.into_iter().map(|(c, _)| c).collect(),
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::normalize_rows_cosine;

    fn random_unit_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        let mut t = Tensor::from_vec(rows, cols, data);
        normalize_rows_cosine(&mut t);
        t
    }

    /// The two invariants the IVF build relies on.
    fn check_invariants(data: &Tensor, km: &KMeans) {
        let k = km.centroids.rows();
        let mut counts = vec![0usize; k];
        for (i, &c) in km.assignments.iter().enumerate() {
            counts[c as usize] += 1;
            let own = dot(data.row(i), km.centroids.row(c as usize));
            let best = (0..k)
                .map(|j| dot(data.row(i), km.centroids.row(j)))
                .fold(f32::NEG_INFINITY, f32::max);
            assert!(
                own >= best - 1e-5,
                "vector {i}: assigned sim {own} but best is {best}"
            );
        }
        if data.rows() >= k {
            assert!(
                counts.iter().all(|&c| c > 0),
                "empty cluster survived: {counts:?}"
            );
        }
    }

    #[test]
    fn invariants_hold_on_random_data() {
        for (n, k, seed) in [(50usize, 4usize, 1u64), (200, 16, 2), (33, 8, 3)] {
            let data = random_unit_matrix(n, 12, seed);
            let km = spherical_kmeans(&data, k, 12, seed);
            assert_eq!(km.assignments.len(), n);
            assert_eq!(km.centroids.rows(), k);
            assert!(km.iterations >= 1);
            check_invariants(&data, &km);
        }
    }

    #[test]
    fn invariants_hold_with_heavy_duplicates() {
        // 3 distinct unit rows repeated 20× each, k = 5: more clusters
        // than distinct points forces re-seeding onto duplicates; the
        // repair pass must still leave no cluster empty.
        let base = random_unit_matrix(3, 8, 7);
        let rows: Vec<&[f32]> = (0..60).map(|i| base.row(i % 3)).collect();
        let data = Tensor::from_rows(&rows);
        let km = spherical_kmeans(&data, 5, 10, 7);
        check_invariants(&data, &km);
    }

    #[test]
    fn repair_keeps_invariant_when_new_centroids_attract_neighbors() {
        // Noisy near-duplicates of a few base directions with k larger
        // than the number of natural clusters: centroids coincide, the
        // repair loop must both fill every cluster AND leave no vector
        // pointing at a stale cluster after a repaired centroid lands
        // near it (the strict-improvement reassignment).
        let mut rng = StdRng::seed_from_u64(31);
        let base = random_unit_matrix(4, 8, 31);
        let mut rows = Tensor::zeros(48, 8);
        for i in 0..48 {
            let b = base.row(i % 4);
            let row = rows.row_mut(i);
            for (o, &v) in row.iter_mut().zip(b) {
                *o = v + 0.01 * rng.gen_range(-1.0f32..1.0);
            }
        }
        normalize_rows_cosine(&mut rows);
        for k in [6usize, 10, 16] {
            let km = spherical_kmeans(&rows, k, 8, 31);
            check_invariants(&rows, &km);
        }
    }

    #[test]
    fn zero_rows_are_tolerated() {
        let mut data = random_unit_matrix(20, 6, 9);
        data.row_mut(3).fill(0.0);
        data.row_mut(11).fill(0.0);
        let km = spherical_kmeans(&data, 4, 8, 9);
        assert_eq!(km.assignments.len(), 20);
        check_invariants(&data, &km);
    }

    #[test]
    fn k_is_clamped_and_empty_input_is_fine() {
        let data = random_unit_matrix(5, 4, 1);
        let km = spherical_kmeans(&data, 100, 5, 1);
        assert_eq!(km.centroids.rows(), 5, "k clamps to n");
        check_invariants(&data, &km);
        let empty = Tensor::zeros(0, 4);
        let km = spherical_kmeans(&empty, 3, 5, 1);
        assert!(km.assignments.is_empty());
        assert_eq!(km.centroids.rows(), 0);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let data = random_unit_matrix(120, 10, 4);
        let a = spherical_kmeans(&data, 8, 10, 4);
        let b = spherical_kmeans(&data, 8, 10, 4);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids.as_slice(), b.centroids.as_slice());
    }
}

//! The inverted-file index: [`IvfIndex`], sublinear top-k over normalized
//! embeddings.
//!
//! An exhaustive top-k scan is `O(n·d)` per query. The IVF pattern cuts
//! that to an `nprobe / nlist` fraction of the corpus: a **coarse
//! quantizer** (spherical k-means, [`crate::kmeans`]) partitions the
//! candidates into `nlist` clusters once per index build; at query time
//! only the `nprobe` lists whose centroids are most similar to the query
//! are scanned. Scores inside a probed list are **exact cosines** (dot
//! products over the same normalized rows the exhaustive engine uses), so
//! the only approximation is *which* candidates get scored — the returned
//! ranking needs no separate re-ranking pass, and a full probe
//! (`nprobe == nlist`) reproduces the exhaustive result set exactly,
//! bit-for-bit, ties included.
//!
//! # Layout
//!
//! Inverted lists are stored **centroid-major and transposed**: list `l`
//! owns one contiguous `d × len(l)` block (`d` rows of `len(l)` floats),
//! so a probe streams a single cache-friendly slab through the same
//! 4×16 register-tiled scan kernel ([`crate::scan::scan_block`]) the
//! exhaustive engine runs on, with the list's original candidate ids
//! remapped at push time.

use crate::kmeans::spherical_kmeans;
use crate::scan::{scan_block, TopKSelector};
use daakg_autograd::tensor::dot_unrolled as dot;
use daakg_autograd::Tensor;
use daakg_graph::DaakgError;
use daakg_telemetry::HistogramHandle;

/// Per-stage timing handles for an IVF search: the coarse centroid
/// **probe** (pick the `nprobe` closest lists) vs. the inverted-list
/// **scan** (exact cosines over the probed lists). Default handles are
/// no-ops, so un-instrumented searches pay nothing.
#[derive(Debug, Clone, Default)]
pub struct SearchSpans {
    /// Time spent ranking centroids to choose the probe order.
    pub probe: HistogramHandle,
    /// Time spent scanning the probed inverted lists.
    pub scan: HistogramHandle,
}

/// Build-time configuration of an [`IvfIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IvfConfig {
    /// Number of inverted lists (k-means clusters). Clamped to the corpus
    /// size at build time; `√n`-ish values are the usual sweet spot.
    pub nlist: usize,
    /// Maximum Lloyd iterations of the coarse quantizer.
    pub max_iters: usize,
    /// Seed of the k-means++ initialization.
    pub seed: u64,
}

impl IvfConfig {
    /// A configuration with `nlist` lists and default training settings.
    pub fn new(nlist: usize) -> Self {
        Self {
            nlist,
            max_iters: 10,
            seed: 42,
        }
    }

    /// Validate the configuration (`nlist ≥ 1`, `max_iters ≥ 1`).
    pub fn validate(&self) -> Result<(), DaakgError> {
        if self.nlist == 0 {
            return Err(DaakgError::invalid("IvfConfig", "nlist must be at least 1"));
        }
        if self.max_iters == 0 {
            return Err(DaakgError::invalid(
                "IvfConfig",
                "max_iters must be at least 1",
            ));
        }
        Ok(())
    }
}

/// An immutable IVF index over one normalized candidate matrix.
///
/// Build once per published snapshot ([`IvfIndex::build`]), then serve
/// any number of concurrent [`IvfIndex::search`] calls — the index is
/// read-only after construction and `Send + Sync`.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    dim: usize,
    /// Unit-norm (or zero) centroid rows, `nlist × d`.
    centroids: Tensor,
    /// `nlist + 1` offsets into `ids` (in vectors); list `l` spans
    /// `offsets[l]..offsets[l + 1]`.
    offsets: Vec<usize>,
    /// Original candidate ids grouped by list, ascending within a list.
    ids: Vec<u32>,
    /// Concatenated transposed list blocks: list `l` occupies
    /// `offsets[l] * d .. offsets[l + 1] * d`, laid out as `d` rows of
    /// `len(l)` floats.
    blocks_t: Vec<f32>,
}

impl IvfIndex {
    /// Build the index over `normalized` (`n × d`; rows unit-norm or zero,
    /// exactly as produced by [`crate::scan::normalize_rows_cosine`] —
    /// share the exhaustive engine's normalized matrix so full-probe
    /// searches agree with it bitwise).
    ///
    /// `cfg.nlist` is clamped to `n`; an empty corpus yields an index
    /// whose searches return nothing.
    pub fn build(normalized: &Tensor, cfg: &IvfConfig) -> Self {
        let (n, d) = normalized.shape();
        let km = spherical_kmeans(normalized, cfg.nlist, cfg.max_iters, cfg.seed);
        let nlist = km.centroids.rows();

        let mut counts = vec![0usize; nlist];
        for &c in &km.assignments {
            counts[c as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(nlist + 1);
        offsets.push(0usize);
        for &c in &counts {
            offsets.push(offsets.last().unwrap() + c);
        }

        // Fill ids list-by-list; iterating vectors in id order keeps each
        // list's ids ascending.
        let mut cursor = offsets[..nlist].to_vec();
        let mut ids = vec![0u32; n];
        for (i, &c) in km.assignments.iter().enumerate() {
            ids[cursor[c as usize]] = i as u32;
            cursor[c as usize] += 1;
        }

        // Transposed per-list blocks.
        let mut blocks_t = vec![0.0f32; n * d];
        for l in 0..nlist {
            let (start, end) = (offsets[l], offsets[l + 1]);
            let m = end - start;
            let block = &mut blocks_t[start * d..end * d];
            for (pos, &id) in ids[start..end].iter().enumerate() {
                let row = normalized.row(id as usize);
                for (r, &v) in row.iter().enumerate() {
                    block[r * m + pos] = v;
                }
            }
        }

        Self {
            dim: d,
            centroids: km.centroids,
            offsets,
            ids,
            blocks_t,
        }
    }

    /// Number of inverted lists actually built (`cfg.nlist` clamped to the
    /// corpus size).
    pub fn nlist(&self) -> usize {
        self.centroids.rows()
    }

    /// Number of indexed vectors.
    pub fn num_vectors(&self) -> usize {
        self.ids.len()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Length of inverted list `l`.
    pub fn list_len(&self, l: usize) -> usize {
        self.offsets[l + 1] - self.offsets[l]
    }

    /// The original candidate ids of inverted list `l`, ascending.
    pub fn list_ids(&self, l: usize) -> &[u32] {
        &self.ids[self.offsets[l]..self.offsets[l + 1]]
    }

    /// The coarse-quantizer centroids (`nlist × d`, unit or zero rows).
    pub fn centroids(&self) -> &Tensor {
        &self.centroids
    }

    /// The raw list offsets (`nlist + 1` entries, in vectors) — persistence
    /// codec access.
    pub(crate) fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw grouped candidate ids — persistence codec access.
    pub(crate) fn raw_ids(&self) -> &[u32] {
        &self.ids
    }

    /// The raw concatenated transposed list blocks — persistence codec
    /// access.
    pub(crate) fn raw_blocks_t(&self) -> &[f32] {
        &self.blocks_t
    }

    /// Reassemble an index from persisted parts. The caller (the codec in
    /// [`crate::persist`]) has already validated the structural invariants.
    pub(crate) fn from_raw_parts(
        dim: usize,
        centroids: Tensor,
        offsets: Vec<usize>,
        ids: Vec<u32>,
        blocks_t: Vec<f32>,
    ) -> Self {
        Self {
            dim,
            centroids,
            offsets,
            ids,
            blocks_t,
        }
    }

    /// Fraction of the corpus a search at `nprobe` scans, averaged over
    /// queries that probe the `nprobe` *largest* lists (an upper bound on
    /// the per-query cost; useful for tuning tables).
    pub fn probed_fraction_bound(&self, nprobe: usize) -> f64 {
        let n = self.num_vectors();
        if n == 0 {
            return 0.0;
        }
        let mut lens: Vec<usize> = (0..self.nlist()).map(|l| self.list_len(l)).collect();
        lens.sort_unstable_by(|a, b| b.cmp(a));
        let probed: usize = lens.iter().take(nprobe.clamp(1, lens.len())).sum();
        probed as f64 / n as f64
    }

    /// The `nprobe` lists most similar to `query`, best first (ties to
    /// the lower list index).
    fn probe_order(&self, query: &[f32], nprobe: usize) -> Vec<(u32, f32)> {
        let mut sel = TopKSelector::new(nprobe.clamp(1, self.nlist().max(1)));
        for c in 0..self.nlist() {
            sel.push(c as u32, dot(query, self.centroids.row(c)));
        }
        sel.into_sorted()
    }

    /// Top-`k` candidates for one normalized query row, scanning only the
    /// `nprobe` most-similar inverted lists. Scores are exact cosines;
    /// ordering is (score desc, id asc), identical to the exhaustive
    /// engine's. `nprobe` is clamped to `1..=nlist`; at `nprobe == nlist`
    /// the result equals the exhaustive top-k exactly.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<(u32, f32)> {
        self.search_observed(query, k, nprobe, &SearchSpans::default())
    }

    /// [`IvfIndex::search`] with per-stage spans: `spans.probe` times the
    /// centroid ranking, `spans.scan` the inverted-list scans. Results
    /// are bitwise identical to the unobserved path.
    pub fn search_observed(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        spans: &SearchSpans,
    ) -> Vec<(u32, f32)> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if self.num_vectors() == 0 || k == 0 {
            return Vec::new();
        }
        let probe_span = spans.probe.span();
        let order = self.probe_order(query, nprobe);
        drop(probe_span);
        let _scan_span = spans.scan.span();
        let mut sel = TopKSelector::new(k.min(self.num_vectors()));
        for (l, _) in order {
            let l = l as usize;
            let (start, end) = (self.offsets[l], self.offsets[l + 1]);
            let m = end - start;
            if m == 0 {
                continue;
            }
            scan_block(
                query,
                self.dim,
                1,
                &self.blocks_t[start * self.dim..end * self.dim],
                m,
                &self.ids[start..end],
                std::slice::from_mut(&mut sel),
            );
        }
        sel.into_sorted()
    }

    /// [`IvfIndex::search`] for each row index in `rows` of the
    /// normalized query matrix `queries`, sharded across worker threads
    /// via [`daakg_parallel::par_map_ranges`]. Returns one ranking per
    /// row, in input order.
    ///
    /// Callers already inside a `daakg-parallel` shard (e.g. a service
    /// batch query) should loop over [`IvfIndex::search`] instead of
    /// nesting this.
    pub fn search_batch(
        &self,
        queries: &Tensor,
        rows: &[u32],
        k: usize,
        nprobe: usize,
    ) -> Vec<Vec<(u32, f32)>> {
        assert_eq!(queries.cols(), self.dim, "query dimension mismatch");
        let shards = daakg_parallel::num_threads();
        let mut out = Vec::with_capacity(rows.len());
        for shard in daakg_parallel::par_map_ranges(rows.len(), shards, |range| {
            rows[range]
                .iter()
                .map(|&q| self.search(queries.row(q as usize), k, nprobe))
                .collect::<Vec<_>>()
        }) {
            out.extend(shard);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::normalize_rows_cosine;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_unit_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        let mut t = Tensor::from_vec(rows, cols, data);
        normalize_rows_cosine(&mut t);
        t
    }

    /// Strictly-sequential dot product — the exact accumulation order of
    /// both the tile kernel and its axpy tail, so the oracle is bitwise
    /// comparable (unlike `dot_unrolled`, which reassociates).
    fn dot_seq(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Exhaustive oracle over the same normalized rows: (score desc, id
    /// asc), exactly the `BatchedSimilarity` order.
    fn brute_top_k(queries: &Tensor, cands: &Tensor, q: usize, k: usize) -> Vec<(u32, f32)> {
        let mut v: Vec<(u32, f32)> = (0..cands.rows() as u32)
            .map(|j| (j, dot_seq(queries.row(q), cands.row(j as usize))))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Property: full-probe IVF equals the exhaustive oracle bitwise, for
    /// every query of random small corpora.
    #[test]
    fn full_probe_matches_brute_force_bitwise() {
        for seed in 0..6u64 {
            let n = 40 + (seed as usize) * 37;
            let cands = random_unit_matrix(n, 16, seed * 2 + 1);
            let queries = random_unit_matrix(12, 16, seed * 2 + 2);
            let index = IvfIndex::build(&cands, &IvfConfig::new(1 + seed as usize * 3));
            for q in 0..queries.rows() {
                for k in [1usize, 7, n, n + 10] {
                    let got = index.search(queries.row(q), k, index.nlist());
                    let expect = brute_top_k(&queries, &cands, q, k);
                    assert_eq!(got.len(), expect.len(), "seed {seed} q{q} k{k}");
                    for (rank, (g, e)) in got.iter().zip(&expect).enumerate() {
                        assert_eq!(g.0, e.0, "seed {seed} q{q} k{k} rank {rank}");
                        assert_eq!(
                            g.1.to_bits(),
                            e.1.to_bits(),
                            "seed {seed} q{q} k{k} rank {rank}: scores must be bitwise equal"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn duplicate_rows_tie_break_by_global_id_under_full_probe() {
        // Only 3 distinct candidate rows repeated: nearly every score is
        // tied, and the permuted list order must not leak into the result.
        let base = random_unit_matrix(3, 8, 5);
        let rows: Vec<&[f32]> = (0..30).map(|i| base.row(i % 3)).collect();
        let cands = Tensor::from_rows(&rows);
        let queries = random_unit_matrix(4, 8, 6);
        let index = IvfIndex::build(&cands, &IvfConfig::new(4));
        for q in 0..queries.rows() {
            for k in [1usize, 5, 30] {
                let got = index.search(queries.row(q), k, index.nlist());
                let expect = brute_top_k(&queries, &cands, q, k);
                assert_eq!(got, expect, "q{q} k{k}");
            }
        }
    }

    #[test]
    fn partial_probe_is_a_subset_with_exact_scores() {
        let cands = random_unit_matrix(300, 12, 11);
        let queries = random_unit_matrix(8, 12, 12);
        let index = IvfIndex::build(&cands, &IvfConfig::new(16));
        for q in 0..queries.rows() {
            let got = index.search(queries.row(q), 10, 2);
            assert!(got.len() <= 10);
            for w in got.windows(2) {
                assert!(w[0].1 >= w[1].1, "descending order");
            }
            for &(id, s) in &got {
                let exact = dot_seq(queries.row(q), cands.row(id as usize));
                assert_eq!(s.to_bits(), exact.to_bits(), "probed scores are exact");
            }
        }
    }

    #[test]
    fn lists_partition_the_corpus() {
        let cands = random_unit_matrix(137, 10, 3);
        let index = IvfIndex::build(&cands, &IvfConfig::new(9));
        assert_eq!(index.num_vectors(), 137);
        let mut seen = [false; 137];
        for l in 0..index.nlist() {
            let ids = index.list_ids(l);
            assert!(!ids.is_empty(), "list {l} empty");
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids ascending");
            for &id in ids {
                assert!(!seen[id as usize], "id {id} in two lists");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every vector indexed");
        assert!(index.probed_fraction_bound(index.nlist()) > 0.999);
        assert!(index.probed_fraction_bound(1) < 1.0);
    }

    #[test]
    fn edge_cases_k_zero_oversized_and_empty() {
        let cands = random_unit_matrix(20, 6, 8);
        let queries = random_unit_matrix(2, 6, 9);
        let index = IvfIndex::build(&cands, &IvfConfig::new(4));
        assert!(index.search(queries.row(0), 0, 2).is_empty());
        assert_eq!(index.search(queries.row(0), 50, index.nlist()).len(), 20);
        // nprobe is clamped: 0 behaves like 1, huge behaves like nlist.
        assert!(!index.search(queries.row(0), 3, 0).is_empty());
        assert_eq!(
            index.search(queries.row(0), 50, 10_000).len(),
            20,
            "oversized nprobe degrades to a full probe"
        );
        let empty = IvfIndex::build(&Tensor::zeros(0, 6), &IvfConfig::new(4));
        assert!(empty.search(queries.row(0), 5, 1).is_empty());
        assert_eq!(empty.nlist(), 0);
    }

    #[test]
    fn search_batch_matches_per_query_search() {
        let cands = random_unit_matrix(150, 8, 21);
        let queries = random_unit_matrix(40, 8, 22);
        let index = IvfIndex::build(&cands, &IvfConfig::new(8));
        let rows: Vec<u32> = (0..40).collect();
        let batch = index.search_batch(&queries, &rows, 6, 3);
        assert_eq!(batch.len(), 40);
        for (q, ranking) in batch.iter().enumerate() {
            assert_eq!(ranking, &index.search(queries.row(q), 6, 3), "query {q}");
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_values() {
        assert!(IvfConfig::new(8).validate().is_ok());
        assert!(IvfConfig::new(0).validate().is_err());
        let bad = IvfConfig {
            max_iters: 0,
            ..IvfConfig::new(8)
        };
        assert!(bad.validate().is_err());
    }
}

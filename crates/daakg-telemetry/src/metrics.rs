//! The lock-free metric primitives: counters, gauges, log-scale latency
//! histograms, and the scoped [`Span`] timer.
//!
//! Every primitive comes in two halves: the shared atomic **cell** and a
//! cheap cloneable **handle**. A handle either points at a cell (recording
//! is one relaxed atomic RMW) or at nothing (the registry was disabled at
//! construction) — the disabled path is a branch on an `Option`
//! discriminant, with **no** atomic operation and **no** clock read, so
//! instrumentation left in a hot loop is measurably free when telemetry
//! is off.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonically increasing counter handle.
///
/// Cloning shares the underlying cell; [`Counter::noop`] (or any handle
/// minted by a disabled registry) records nothing.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A handle that records nothing and always reads 0.
    pub fn noop() -> Self {
        Self { cell: None }
    }

    pub(crate) fn active(cell: Arc<AtomicU64>) -> Self {
        Self { cell: Some(cell) }
    }

    /// Whether this handle records into a live cell.
    pub fn is_active(&self) -> bool {
        self.cell.is_some()
    }

    /// Increment by 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Relaxed);
        }
    }

    /// The current total (0 for a no-op handle). Totals are exact under
    /// concurrent recording: every `add` is one atomic RMW, so no
    /// increment is ever lost.
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A point-in-time value handle (queue depth, 0/1 state flags,
/// high-water marks).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A handle that records nothing and always reads 0.
    pub fn noop() -> Self {
        Self { cell: None }
    }

    pub(crate) fn active(cell: Arc<AtomicU64>) -> Self {
        Self { cell: Some(cell) }
    }

    /// Whether this handle records into a live cell.
    pub fn is_active(&self) -> bool {
        self.cell.is_some()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Relaxed);
        }
    }

    /// Raise the value to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_max(v, Relaxed);
        }
    }

    /// The current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Sub-buckets per power-of-two octave (`2^SUB_BITS`).
const SUB_BITS: u32 = 5;
/// Sub-bucket count; also the size of the exact linear region `0..SUB`.
const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count: the linear region plus 59 octaves of `SUB`
/// sub-buckets, covering the full `u64` value range.
pub const HISTOGRAM_BUCKETS: usize = (SUB as usize) * 60;

/// A fixed-bucket log-linear latency histogram over `u64` values
/// (conventionally nanoseconds).
///
/// Values below `32` land in exact unit-width buckets; above that, each
/// power-of-two octave splits into 32 linear sub-buckets, so a recorded
/// value is attributed with at most `1/32` (≈ 3.2%) relative error while
/// the whole `u64` range fits in [`HISTOGRAM_BUCKETS`] fixed cells.
/// Recording is a handful of relaxed atomic RMWs — no locks, no
/// allocation — and histograms **merge** by bucket-wise addition, which
/// is associative and commutative, so per-thread or per-shard histograms
/// aggregate without coordination.
///
/// Quantile queries ([`Histogram::quantile`]) use exact nearest-rank
/// selection over the recorded counts; only the *returned value* is
/// quantized to its bucket's upper bound (clamped to the observed
/// min/max), inheriting the ≤ 3.2% bucket resolution.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index a value lands in.
    pub fn bucket_index(v: u64) -> usize {
        if v < SUB {
            v as usize
        } else {
            // The octave is the position of the most significant bit; the
            // sub-bucket is the next SUB_BITS bits below it.
            let msb = 63 - v.leading_zeros();
            let b = (msb - SUB_BITS + 1) as usize;
            let sub = ((v >> (b - 1)) - SUB) as usize;
            (b << SUB_BITS) | sub
        }
    }

    /// The inclusive lower bound of bucket `i`.
    pub fn bucket_lower(i: usize) -> u64 {
        if i < SUB as usize {
            i as u64
        } else {
            let b = i >> SUB_BITS;
            let sub = (i as u64) & (SUB - 1);
            (SUB + sub) << (b - 1)
        }
    }

    /// The inclusive upper bound of bucket `i`.
    pub fn bucket_upper(i: usize) -> u64 {
        if i < SUB as usize {
            i as u64
        } else {
            let b = i >> SUB_BITS;
            Self::bucket_lower(i) + ((1u64 << (b - 1)) - 1)
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Recorded value count.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Exact nearest-rank quantile of the recorded distribution, `q` in
    /// `[0, 1]`. Rank selection is exact over the bucket counts; the
    /// returned value is the containing bucket's upper bound, clamped to
    /// the observed `[min, max]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Relaxed);
            if cum >= rank {
                return Self::bucket_upper(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Fold `other`'s recorded distribution into `self` (bucket-wise
    /// addition — associative and commutative, so any merge tree yields
    /// identical buckets and therefore identical quantiles).
    pub fn merge_from(&self, other: &Histogram) {
        for (a, b) in self.buckets.iter().zip(&other.buckets) {
            let n = b.load(Relaxed);
            if n != 0 {
                a.fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Relaxed);
        self.sum.fetch_add(other.sum(), Relaxed);
        let omin = other.min.load(Relaxed);
        if omin != u64::MAX {
            self.min.fetch_min(omin, Relaxed);
        }
        self.max.fetch_max(other.max(), Relaxed);
    }

    /// The non-empty buckets as `(inclusive upper bound, count)` pairs,
    /// ascending — the raw material of cumulative-bucket exposition.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Relaxed);
                (n != 0).then(|| (Self::bucket_upper(i), n))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Histogram handle + Span
// ---------------------------------------------------------------------------

/// A cheap cloneable handle onto a shared [`Histogram`] (or onto nothing,
/// when telemetry is disabled).
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle {
    cell: Option<Arc<Histogram>>,
}

impl HistogramHandle {
    /// A handle that records nothing.
    pub fn noop() -> Self {
        Self { cell: None }
    }

    pub(crate) fn active(cell: Arc<Histogram>) -> Self {
        Self { cell: Some(cell) }
    }

    /// Whether this handle records into a live histogram. Hot paths use
    /// this to skip *preparing* a measurement (e.g. the clock read that
    /// anchors a queue-wait) when it would be thrown away.
    pub fn is_active(&self) -> bool {
        self.cell.is_some()
    }

    /// Record a raw value (conventionally nanoseconds).
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.cell {
            h.record(v);
        }
    }

    /// Record a duration, as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if let Some(h) = &self.cell {
            h.record(duration_ns(d));
        }
    }

    /// Start a scoped [`Span`] that records its elapsed time into this
    /// histogram when dropped. A no-op handle yields a no-op span — **no
    /// clock is read** on either end.
    #[inline]
    pub fn span(&self) -> Span {
        Span {
            state: self.cell.as_ref().map(|h| (Arc::clone(h), Instant::now())),
        }
    }

    /// The shared histogram, when active (quantile queries, merging).
    pub fn histogram(&self) -> Option<&Histogram> {
        self.cell.as_deref()
    }
}

/// Saturating nanosecond count of a duration.
pub(crate) fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A scoped stage timer: created by [`HistogramHandle::span`], records
/// the elapsed wall-clock time into its histogram on drop (or explicitly
/// via [`Span::finish`]).
///
/// Spans nest freely — each one is an independent `(histogram, start)`
/// pair, so an inner span's recording never perturbs the outer span's
/// measurement beyond the cost of the inner record itself.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    state: Option<(Arc<Histogram>, Instant)>,
}

impl Span {
    /// A span that records nothing.
    pub fn noop() -> Self {
        Self { state: None }
    }

    /// Whether this span will record on drop.
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// End the span now, returning the recorded duration (`None` for a
    /// no-op span).
    pub fn finish(mut self) -> Option<Duration> {
        let (h, start) = self.state.take()?;
        let elapsed = start.elapsed();
        h.record(duration_ns(elapsed));
        Some(elapsed)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((h, start)) = self.state.take() {
            h.record(duration_ns(start.elapsed()));
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// The metric registry: named counters, gauges, and histograms behind
/// cheap handles.
///
/// Registration (`counter` / `gauge` / `histogram`) is the cold path and
/// takes a short mutex; **recording through a handle is lock-free** —
/// relaxed atomics only. A registry constructed with
/// [`MetricsRegistry::disabled`] hands out no-op handles: no cells are
/// allocated, and every record call is a branch on a discriminant.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl MetricsRegistry {
    /// An enabled registry.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// A disabled registry: every handle it mints is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether handles minted by this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The counter named `name`, registering it on first use. Handles to
    /// the same name share one cell.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter::noop(),
            Some(inner) => {
                let mut map = lock(&inner.counters);
                Counter::active(Arc::clone(map.entry(name.to_string()).or_default()))
            }
        }
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            None => Gauge::noop(),
            Some(inner) => {
                let mut map = lock(&inner.gauges);
                Gauge::active(Arc::clone(map.entry(name.to_string()).or_default()))
            }
        }
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        match &self.inner {
            None => HistogramHandle::noop(),
            Some(inner) => {
                let mut map = lock(&inner.histograms);
                HistogramHandle::active(Arc::clone(
                    map.entry(name.to_string())
                        .or_insert_with(|| Arc::new(Histogram::new())),
                ))
            }
        }
    }

    /// Snapshot of every counter, name-sorted.
    pub fn counters(&self) -> Vec<(String, u64)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => lock(&inner.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Relaxed)))
                .collect(),
        }
    }

    /// Snapshot of every gauge, name-sorted.
    pub fn gauges(&self) -> Vec<(String, u64)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => lock(&inner.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Relaxed)))
                .collect(),
        }
    }

    /// Shared references to every histogram, name-sorted.
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => lock(&inner.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect(),
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_32_and_log_linear_above() {
        // Exact unit buckets in the linear region.
        for v in 0..32u64 {
            let i = Histogram::bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(Histogram::bucket_lower(i), v);
            assert_eq!(Histogram::bucket_upper(i), v);
        }
        // Octave boundaries: 32 begins bucket 32, 64 begins bucket 64.
        assert_eq!(Histogram::bucket_index(32), 32);
        assert_eq!(Histogram::bucket_index(63), 63);
        assert_eq!(Histogram::bucket_index(64), 64);
        // Every bucket's bounds bracket exactly the values indexing into
        // it, with no gaps and no overlap across the whole range.
        for i in 0..HISTOGRAM_BUCKETS {
            let lo = Histogram::bucket_lower(i);
            let hi = Histogram::bucket_upper(i);
            assert!(lo <= hi);
            assert_eq!(Histogram::bucket_index(lo), i, "lower bound of {i}");
            assert_eq!(Histogram::bucket_index(hi), i, "upper bound of {i}");
            if i + 1 < HISTOGRAM_BUCKETS {
                assert_eq!(Histogram::bucket_lower(i + 1), hi + 1, "gap after {i}");
            }
        }
        // The last bucket reaches the top of the u64 range.
        assert_eq!(Histogram::bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Relative bucket width stays within 1/32 above the linear region.
        for i in 32..HISTOGRAM_BUCKETS {
            let lo = Histogram::bucket_lower(i) as u128;
            let width = Histogram::bucket_upper(i) as u128 - lo + 1;
            assert!(width * 32 <= lo + width, "bucket {i} too wide");
        }
    }

    #[test]
    fn quantiles_are_nearest_rank_over_buckets() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        // p50 rank = 50 → value 50 lands in bucket [48, 49]... i.e. the
        // bucket holding rank 50; quantization stays within 1/32.
        let p50 = h.quantile(0.5) as f64;
        assert!((p50 - 50.0).abs() / 50.0 <= 1.0 / 16.0, "p50 = {p50}");
        let p99 = h.quantile(0.99) as f64;
        assert!((p99 - 99.0).abs() / 99.0 <= 1.0 / 16.0, "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 100);
        // Empty histogram.
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn merge_is_associative() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (
            mk(&[1, 5, 900, 77]),
            mk(&[3, 3, 3, 1_000_000]),
            mk(&[42, 65_535]),
        );
        // (a ⊕ b) ⊕ c
        let left = Histogram::new();
        left.merge_from(&a);
        left.merge_from(&b);
        left.merge_from(&c);
        // a ⊕ (b ⊕ c)
        let bc = Histogram::new();
        bc.merge_from(&b);
        bc.merge_from(&c);
        let right = Histogram::new();
        right.merge_from(&a);
        right.merge_from(&bc);
        assert_eq!(left.count(), right.count());
        assert_eq!(left.sum(), right.sum());
        assert_eq!(left.min(), right.min());
        assert_eq!(left.max(), right.max());
        assert_eq!(left.nonzero_buckets(), right.nonzero_buckets());
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(left.quantile(q), right.quantile(q));
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = MetricsRegistry::new();
        let counter = reg.counter("hits");
        let hist = reg.histogram("lat");
        std::thread::scope(|scope| {
            for t in 0..8 {
                let (c, h) = (counter.clone(), hist.clone());
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        c.incr();
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        // Totals are deterministic under any interleaving.
        assert_eq!(counter.get(), 80_000);
        assert_eq!(reg.counter("hits").get(), 80_000);
        let h = hist.histogram().expect("active");
        assert_eq!(h.count(), 80_000);
        let expect: u64 = (0..80_000u64).sum();
        assert_eq!(h.sum(), expect);
    }

    #[test]
    fn disabled_registry_handles_are_noops() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        assert!(!c.is_active());
        c.incr();
        c.add(100);
        assert_eq!(c.get(), 0);
        let g = reg.gauge("y");
        g.set(7);
        g.record_max(9);
        assert_eq!(g.get(), 0);
        let h = reg.histogram("z");
        assert!(!h.is_active());
        h.record(123);
        h.record_duration(Duration::from_millis(5));
        assert!(h.histogram().is_none());
        // A span from a disabled handle never reads the clock and never
        // records.
        let span = h.span();
        assert!(!span.is_active());
        assert_eq!(span.finish(), None);
        assert!(reg.counters().is_empty());
        assert!(reg.gauges().is_empty());
        assert!(reg.histograms().is_empty());
    }

    #[test]
    fn spans_nest_and_record_on_drop() {
        let reg = MetricsRegistry::new();
        let outer = reg.histogram("outer");
        let inner = reg.histogram("inner");
        {
            let _o = outer.span();
            for _ in 0..3 {
                let _i = inner.span();
                std::hint::black_box(());
            }
        }
        let (oh, ih) = (
            outer.histogram().expect("active"),
            inner.histogram().expect("active"),
        );
        assert_eq!(oh.count(), 1);
        assert_eq!(ih.count(), 3);
        // The outer span covers all inner spans: its single recorded
        // duration is at least the largest inner one.
        assert!(oh.max() >= ih.max());
        // Explicit finish records exactly once and returns the duration.
        let d = outer.span().finish().expect("active span");
        assert_eq!(oh.count(), 2);
        assert!(duration_ns(d) <= oh.max() || oh.max() > 0);
    }

    #[test]
    fn gauge_records_maxima_and_sets() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.record_max(5);
        g.record_max(3);
        assert_eq!(g.get(), 5);
        g.set(1);
        assert_eq!(g.get(), 1);
        assert_eq!(reg.gauges(), vec![("depth".to_string(), 1)]);
    }
}

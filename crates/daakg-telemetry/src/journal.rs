//! A bounded ring-buffer journal of structured lifecycle events.
//!
//! The journal answers "what happened, in what order?" for the control
//! plane — snapshot publishes, compaction folds, retrain supersessions,
//! overload shedding and degradation transitions, persistence retries
//! and failures, compactor panics. Events carry a **monotonic sequence
//! number** and a **monotonic timestamp** (nanoseconds since the
//! journal's creation), so causal order is recoverable even after the
//! ring wraps. Recording takes a short mutex — event sites are control
//! plane or already-exceptional paths (a shed, a persist retry), never
//! the per-query hot loop.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::duration_ns;

/// The structured payload of a journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A new snapshot version became current.
    SnapshotPublish {
        /// The published snapshot version.
        version: u64,
    },
    /// A compaction fold started against an anchor version.
    FoldStart {
        /// The snapshot version the pending deltas are anchored to.
        anchor: u64,
        /// How many delta entries the fold will absorb.
        pending: usize,
    },
    /// A compaction fold published its result.
    FoldDone {
        /// The snapshot version the fold produced.
        version: u64,
        /// How many delta entries were folded in.
        folded: usize,
    },
    /// A full retrain superseded live delta entries that could not be
    /// re-anchored onto the new snapshot.
    RetrainSupersede {
        /// The retrained snapshot version.
        version: u64,
        /// How many delta entries were dropped.
        dropped: usize,
    },
    /// Ingress shed a query at admission (queue at capacity).
    QueryShed {
        /// Queue depth observed at the shed decision.
        depth: usize,
    },
    /// Ingress expired a query whose deadline passed before execution.
    DeadlineExpired,
    /// Degraded service engaged (queue crossed the high watermark).
    DegradeEngage {
        /// Queue depth at the transition.
        depth: usize,
    },
    /// Degraded service disengaged (queue fell below the low watermark).
    DegradeRecover {
        /// Queue depth at the transition.
        depth: usize,
    },
    /// A persist attempt failed and will be retried.
    PersistRetry {
        /// The snapshot version being persisted.
        version: u64,
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// Persistence exhausted its retries; durability is degraded.
    PersistFailure {
        /// The snapshot version that failed to persist.
        version: u64,
        /// The final error message.
        error: String,
    },
    /// The background compactor task panicked and was isolated.
    CompactorPanic,
}

impl EventKind {
    /// A stable snake_case name for exposition.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SnapshotPublish { .. } => "snapshot_publish",
            EventKind::FoldStart { .. } => "fold_start",
            EventKind::FoldDone { .. } => "fold_done",
            EventKind::RetrainSupersede { .. } => "retrain_supersede",
            EventKind::QueryShed { .. } => "query_shed",
            EventKind::DeadlineExpired => "deadline_expired",
            EventKind::DegradeEngage { .. } => "degrade_engage",
            EventKind::DegradeRecover { .. } => "degrade_recover",
            EventKind::PersistRetry { .. } => "persist_retry",
            EventKind::PersistFailure { .. } => "persist_failure",
            EventKind::CompactorPanic => "compactor_panic",
        }
    }
}

/// One journal entry: a monotonic sequence number, a monotonic
/// timestamp, and the structured [`EventKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Position in the journal's total event stream, starting at 0 and
    /// never reused — gaps after wraparound reveal how much was evicted.
    pub seq: u64,
    /// Nanoseconds since the journal was created (monotonic clock).
    pub at_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

#[derive(Debug)]
struct JournalInner {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
}

/// A bounded journal of [`Event`]s.
///
/// When full, recording a new event evicts the oldest one (and bumps the
/// [`EventJournal::dropped`] count). Cloning shares the ring. A journal
/// from a disabled [`crate::Telemetry`] records nothing.
#[derive(Debug, Clone, Default)]
pub struct EventJournal {
    inner: Option<Arc<JournalInner>>,
}

impl EventJournal {
    /// A journal retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(JournalInner {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                ring: Mutex::new(Ring {
                    events: VecDeque::new(),
                    next_seq: 0,
                    dropped: 0,
                }),
            })),
        }
    }

    /// A journal that records nothing.
    pub fn noop() -> Self {
        Self { inner: None }
    }

    /// Whether this journal retains events.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn record(&self, kind: EventKind) {
        let Some(inner) = &self.inner else { return };
        let at_ns = duration_ns(inner.epoch.elapsed());
        let mut ring = inner
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == inner.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(Event { seq, at_ns, kind });
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.as_ref().map_or_else(Vec::new, |inner| {
            inner
                .ring
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .events
                .iter()
                .cloned()
                .collect()
        })
    }

    /// Retained events with `seq >= since`, oldest first — an
    /// incremental tail for pollers that remember the last seq they saw.
    pub fn events_since(&self, since: u64) -> Vec<Event> {
        let mut events = self.events();
        events.retain(|e| e.seq >= since);
        events
    }

    /// How many events have been evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            inner
                .ring
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .dropped
        })
    }

    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            inner
                .ring
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .next_seq
        })
    }

    /// A human-readable dump, one line per retained event.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&format!(
                "[{:>6}] +{:>12}ns {}: {:?}\n",
                e.seq,
                e.at_ns,
                e.kind.name(),
                e.kind
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_keeps_newest_and_monotonic_seqs() {
        let j = EventJournal::new(4);
        for v in 0..10u64 {
            j.record(EventKind::SnapshotPublish { version: v });
        }
        let events = j.events();
        assert_eq!(events.len(), 4);
        assert_eq!(j.dropped(), 6);
        assert_eq!(j.recorded(), 10);
        // Oldest four evicted; seqs of the survivors are 6..=9, strictly
        // increasing, timestamps non-decreasing.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        for w in events.windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns);
        }
        for (e, v) in events.iter().zip(6u64..) {
            assert_eq!(e.kind, EventKind::SnapshotPublish { version: v });
        }
    }

    #[test]
    fn events_since_tails_incrementally() {
        let j = EventJournal::new(8);
        for v in 0..5u64 {
            j.record(EventKind::SnapshotPublish { version: v });
        }
        assert_eq!(j.events_since(3).len(), 2);
        assert_eq!(j.events_since(0).len(), 5);
        assert!(j.events_since(99).is_empty());
    }

    #[test]
    fn noop_journal_records_nothing() {
        let j = EventJournal::noop();
        assert!(!j.is_active());
        j.record(EventKind::CompactorPanic);
        assert!(j.events().is_empty());
        assert_eq!(j.dropped(), 0);
        assert_eq!(j.recorded(), 0);
        assert!(j.dump().is_empty());
    }

    #[test]
    fn capacity_floor_is_one() {
        let j = EventJournal::new(0);
        j.record(EventKind::DeadlineExpired);
        j.record(EventKind::CompactorPanic);
        let events = j.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::CompactorPanic);
    }

    #[test]
    fn dump_names_every_variant() {
        let j = EventJournal::new(16);
        j.record(EventKind::QueryShed { depth: 3 });
        j.record(EventKind::DegradeEngage { depth: 8 });
        j.record(EventKind::DegradeRecover { depth: 1 });
        j.record(EventKind::PersistRetry {
            version: 2,
            attempt: 1,
        });
        j.record(EventKind::PersistFailure {
            version: 2,
            error: "disk on fire".into(),
        });
        let dump = j.dump();
        for name in [
            "query_shed",
            "degrade_engage",
            "degrade_recover",
            "persist_retry",
            "persist_failure",
        ] {
            assert!(dump.contains(name), "missing {name} in dump:\n{dump}");
        }
    }
}

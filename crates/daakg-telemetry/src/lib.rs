//! Low-overhead serving telemetry for the DAAKG stack.
//!
//! Three pillars:
//!
//! - **[`MetricsRegistry`]** — named atomic [`Counter`]s, [`Gauge`]s, and
//!   log-scale latency [`Histogram`]s behind cheap cloneable handles.
//!   Recording is lock-free (relaxed atomics); a disabled registry hands
//!   out no-op handles whose record path is a single branch, so
//!   instrumentation costs nothing when telemetry is off.
//! - **[`Span`]** — scoped stage timers that record elapsed wall-clock
//!   time into a histogram on drop, for per-stage latency attribution
//!   (queue-wait vs. execute, scatter vs. merge, fold vs. persist, …).
//! - **[`EventJournal`]** — a bounded ring buffer of structured
//!   lifecycle [`Event`]s with monotonic sequence numbers and
//!   timestamps, answering "what happened, in what order?" for snapshot
//!   publishes, compaction, overload shedding, degradation transitions,
//!   and persistence faults.
//!
//! [`Telemetry`] bundles all three plus exposition:
//! [`Telemetry::render_prometheus`] for scrape endpoints and
//! [`Telemetry::render_json`] for dumps and tooling.
//!
//! ```
//! use daakg_telemetry::{EventKind, Telemetry, TelemetryConfig};
//!
//! let t = Telemetry::new(TelemetryConfig::default());
//! let queries = t.registry().counter("queries_total");
//! let latency = t.registry().histogram("stage_execute_ns");
//! for _ in 0..100 {
//!     let _span = latency.span(); // records on drop
//!     queries.incr();
//! }
//! t.event(EventKind::SnapshotPublish { version: 1 });
//! assert_eq!(queries.get(), 100);
//! assert_eq!(latency.histogram().unwrap().count(), 100);
//! let text = t.render_prometheus();
//! assert!(text.contains("daakg_queries_total 100"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expo;
mod journal;
mod metrics;

pub use journal::{Event, EventJournal, EventKind};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramHandle, MetricsRegistry, Span, HISTOGRAM_BUCKETS,
};

/// Configuration for a [`Telemetry`] instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// When false, the registry and journal are no-ops: handles record
    /// nothing and no memory is retained. Note the serving layer's
    /// health counters (`ServiceHealth`) read through the registry, so
    /// disabling telemetry also freezes those at zero.
    pub enabled: bool,
    /// Maximum events retained by the journal (oldest evicted first).
    pub journal_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            journal_capacity: 1024,
        }
    }
}

impl TelemetryConfig {
    /// A config with telemetry off (all handles no-ops).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// The bundled telemetry surface: a metrics registry, an event journal,
/// and exposition over both. Cloning shares the underlying state.
#[derive(Debug, Clone)]
pub struct Telemetry {
    config: TelemetryConfig,
    registry: MetricsRegistry,
    journal: EventJournal,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new(TelemetryConfig::default())
    }
}

impl Telemetry {
    /// Build from a config: enabled telemetry gets a live registry and a
    /// journal of `journal_capacity` events; disabled gets no-ops.
    pub fn new(config: TelemetryConfig) -> Self {
        if config.enabled {
            let journal = EventJournal::new(config.journal_capacity);
            Self {
                config,
                registry: MetricsRegistry::new(),
                journal,
            }
        } else {
            Self {
                config,
                registry: MetricsRegistry::disabled(),
                journal: EventJournal::noop(),
            }
        }
    }

    /// A fully disabled instance (every handle a no-op).
    pub fn disabled() -> Self {
        Self::new(TelemetryConfig::disabled())
    }

    /// The config this instance was built from.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Whether recording is live.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    /// The metric registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// Record a lifecycle event (no-op when disabled).
    pub fn event(&self, kind: EventKind) {
        self.journal.record(kind);
    }

    /// Prometheus text exposition of the registry.
    pub fn render_prometheus(&self) -> String {
        expo::render_prometheus(self)
    }

    /// JSON dump of the registry and journal.
    pub fn render_json(&self) -> String {
        expo::render_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_enabled_with_bounded_journal() {
        let cfg = TelemetryConfig::default();
        assert!(cfg.enabled);
        assert_eq!(cfg.journal_capacity, 1024);
        let t = Telemetry::default();
        assert!(t.is_enabled());
        assert!(t.journal().is_active());
    }

    #[test]
    fn disabled_telemetry_is_inert_end_to_end() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.registry().counter("c").add(5);
        t.registry().histogram("h").record(9);
        t.event(EventKind::CompactorPanic);
        assert_eq!(t.registry().counter("c").get(), 0);
        assert!(t.journal().events().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::default();
        let t2 = t.clone();
        t.registry().counter("shared").incr();
        t2.registry().counter("shared").incr();
        assert_eq!(t.registry().counter("shared").get(), 2);
        t2.event(EventKind::DeadlineExpired);
        assert_eq!(t.journal().events().len(), 1);
    }
}

//! Exposition: render a [`crate::Telemetry`] snapshot as Prometheus-style
//! text or as a JSON document.
//!
//! Both renderers read the registry's name-sorted snapshots, so output
//! is deterministic for a given set of recorded values. Histograms are
//! rendered as Prometheus *summaries* (p50/p95/p99 quantile samples plus
//! `_sum`/`_count`), with durations converted from the internal
//! nanosecond unit to seconds as the Prometheus convention demands; the
//! JSON dump keeps raw nanoseconds and includes the event journal.

use crate::journal::{Event, EventKind};
use crate::Telemetry;

const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

/// Render the registry as Prometheus text exposition format. Metric
/// names get a `daakg_` prefix; histogram samples are emitted in
/// seconds under `<name>_seconds` (a trailing `_ns` in the registered
/// name is replaced by the seconds unit suffix — the internal
/// nanosecond unit never leaks into exposition names).
pub fn render_prometheus(t: &Telemetry) -> String {
    let mut out = String::new();
    for (name, value) in t.registry().counters() {
        let full = format!("daakg_{name}");
        out.push_str(&format!("# TYPE {full} counter\n{full} {value}\n"));
    }
    for (name, value) in t.registry().gauges() {
        let full = format!("daakg_{name}");
        out.push_str(&format!("# TYPE {full} gauge\n{full} {value}\n"));
    }
    for (name, hist) in t.registry().histograms() {
        let base = name.strip_suffix("_ns").unwrap_or(&name);
        let full = format!("daakg_{base}_seconds");
        out.push_str(&format!("# TYPE {full} summary\n"));
        for (q, label) in QUANTILES {
            out.push_str(&format!(
                "{full}{{quantile=\"{label}\"}} {}\n",
                fmt_f64(hist.quantile(q) as f64 * 1e-9)
            ));
        }
        out.push_str(&format!(
            "{full}_sum {}\n{full}_count {}\n",
            fmt_f64(hist.sum() as f64 * 1e-9),
            hist.count()
        ));
    }
    let journal = t.journal();
    if journal.is_active() {
        out.push_str(&format!(
            "# TYPE daakg_journal_events_total counter\ndaakg_journal_events_total {}\n",
            journal.recorded()
        ));
        out.push_str(&format!(
            "# TYPE daakg_journal_events_dropped_total counter\ndaakg_journal_events_dropped_total {}\n",
            journal.dropped()
        ));
    }
    out
}

/// Render the registry and journal as a JSON document. Histogram values
/// stay in nanoseconds.
pub fn render_json(t: &Telemetry) -> String {
    let mut out = String::from("{");
    out.push_str("\"enabled\":");
    out.push_str(if t.is_enabled() { "true" } else { "false" });

    out.push_str(",\"counters\":{");
    push_scalar_map(&mut out, &t.registry().counters());
    out.push_str("},\"gauges\":{");
    push_scalar_map(&mut out, &t.registry().gauges());
    out.push_str("},\"histograms\":{");
    for (i, (name, hist)) in t.registry().histograms().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{}:{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
            json_string(name),
            hist.count(),
            hist.sum(),
            hist.min(),
            hist.max(),
            hist.quantile(0.5),
            hist.quantile(0.95),
            hist.quantile(0.99),
        ));
    }
    out.push_str("},\"events\":[");
    for (i, e) in t.journal().events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_event(&mut out, e);
    }
    out.push_str(&format!("],\"events_dropped\":{}}}", t.journal().dropped()));
    out
}

fn push_scalar_map(out: &mut String, entries: &[(String, u64)]) {
    for (i, (name, value)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{value}", json_string(name)));
    }
}

fn push_event(out: &mut String, e: &Event) {
    out.push_str(&format!(
        "{{\"seq\":{},\"at_ns\":{},\"kind\":{}",
        e.seq,
        e.at_ns,
        json_string(e.kind.name())
    ));
    match &e.kind {
        EventKind::SnapshotPublish { version } => {
            out.push_str(&format!(",\"version\":{version}"));
        }
        EventKind::FoldStart { anchor, pending } => {
            out.push_str(&format!(",\"anchor\":{anchor},\"pending\":{pending}"));
        }
        EventKind::FoldDone { version, folded } => {
            out.push_str(&format!(",\"version\":{version},\"folded\":{folded}"));
        }
        EventKind::RetrainSupersede { version, dropped } => {
            out.push_str(&format!(",\"version\":{version},\"dropped\":{dropped}"));
        }
        EventKind::QueryShed { depth }
        | EventKind::DegradeEngage { depth }
        | EventKind::DegradeRecover { depth } => {
            out.push_str(&format!(",\"depth\":{depth}"));
        }
        EventKind::PersistRetry { version, attempt } => {
            out.push_str(&format!(",\"version\":{version},\"attempt\":{attempt}"));
        }
        EventKind::PersistFailure { version, error } => {
            out.push_str(&format!(
                ",\"version\":{version},\"error\":{}",
                json_string(error)
            ));
        }
        EventKind::DeadlineExpired | EventKind::CompactorPanic => {}
    }
    out.push('}');
}

/// Escape a string for embedding in JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an f64 the way Prometheus expects (plain decimal, no
/// exponent for the magnitudes we emit).
fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else {
        format!("{v:.9}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryConfig;

    fn sample() -> Telemetry {
        let t = Telemetry::new(TelemetryConfig::default());
        t.registry().counter("ingress_queries_total").add(42);
        t.registry().gauge("ingress_queue_depth_max").set(7);
        let h = t.registry().histogram("stage_ingress_execute_ns");
        h.record(1_000);
        h.record(2_000_000);
        t.event(EventKind::SnapshotPublish { version: 3 });
        t.event(EventKind::PersistFailure {
            version: 3,
            error: "no \"space\" left\n".into(),
        });
        t
    }

    #[test]
    fn prometheus_render_has_types_quantiles_and_prefix() {
        let text = render_prometheus(&sample());
        assert!(text.contains("# TYPE daakg_ingress_queries_total counter"));
        assert!(text.contains("daakg_ingress_queries_total 42"));
        assert!(text.contains("# TYPE daakg_ingress_queue_depth_max gauge"));
        assert!(text.contains("# TYPE daakg_stage_ingress_execute_seconds summary"));
        assert!(text.contains("quantile=\"0.5\""));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("daakg_stage_ingress_execute_seconds_count 2"));
        assert!(
            !text.contains("_ns_seconds"),
            "nanosecond unit leaked into an exposition name: {text}"
        );
        assert!(text.contains("daakg_journal_events_total 2"));
    }

    #[test]
    fn json_render_is_escaped_and_structured() {
        let json = render_json(&sample());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ingress_queries_total\":42"));
        assert!(json.contains("\"p99_ns\":"));
        assert!(json.contains("\"kind\":\"snapshot_publish\""));
        // The error string round-trips with quotes and newline escaped.
        assert!(json.contains("no \\\"space\\\" left\\n"));
        // Balanced braces/brackets outside of strings — a cheap
        // well-formedness check without a JSON parser dependency.
        let (mut depth, mut in_str, mut esc) = (0i32, false, false);
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn disabled_telemetry_renders_empty() {
        let t = Telemetry::disabled();
        let text = render_prometheus(&t);
        assert!(text.is_empty());
        let json = render_json(&t);
        assert!(json.contains("\"enabled\":false"));
        assert!(json.contains("\"counters\":{}"));
        assert!(json.contains("\"events\":[]"));
    }
}

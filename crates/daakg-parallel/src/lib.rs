//! # daakg-parallel
//!
//! Dependency-free data parallelism on `std::thread::scope`, standing in
//! for rayon (the build environment is offline, so external crates cannot
//! be fetched). The API is deliberately small — chunked for-each, chunked
//! map, and a parallel merge sort — because those are the only shapes the
//! DAAKG hot paths need: row-band matmul kernels, per-query ranking
//! evaluation, and the greedy-matching pre-sort.
//!
//! All entry points degrade to plain sequential execution when the
//! machine (or the `DAAKG_THREADS` override) offers a single thread, so
//! single-core CI boxes pay no thread-spawn overhead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of worker threads to use.
///
/// Resolution order: the `DAAKG_THREADS` environment variable (clamped to
/// `1..=256`), then [`std::thread::available_parallelism`], then 1.
///
/// Resolved **once per process** and cached: this is consulted by every
/// parallel kernel invocation (every sufficiently large matmul), so it
/// must not re-take the env lock on the hot path. Consequently, changing
/// `DAAKG_THREADS` after the first parallel call has no effect.
pub fn num_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Ok(v) = std::env::var("DAAKG_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.clamp(1, 256);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Split `len` items into at most `parts` contiguous ranges of near-equal
/// size (the first `len % parts` ranges get one extra item). Empty input
/// yields no ranges.
pub fn split_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Run `f(range)` over a partition of `0..len`, in parallel when more than
/// one worker thread is available. `f` must be `Sync` because several
/// threads call it concurrently on disjoint ranges.
pub fn par_ranges<F>(len: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let threads = num_threads();
    if threads <= 1 || len < 2 {
        if len > 0 {
            f(0..len);
        }
        return;
    }
    let ranges = split_ranges(len, threads);
    std::thread::scope(|scope| {
        // First range runs on the calling thread to save one spawn.
        let mut iter = ranges.into_iter();
        let own = iter.next();
        for r in iter {
            let f = &f;
            scope.spawn(move || f(r));
        }
        if let Some(r) = own {
            f(r);
        }
    });
}

/// Mutable chunked for-each: split `data` into near-equal contiguous chunks
/// and run `f(chunk_start_index, chunk)` on each, in parallel.
pub fn par_chunks_mut<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let threads = num_threads();
    let len = data.len();
    if threads <= 1 || len < 2 {
        if len > 0 {
            f(0, data);
        }
        return;
    }
    let ranges = split_ranges(len, threads);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut consumed = 0;
        for r in ranges {
            let (chunk, tail) = rest.split_at_mut(r.len());
            rest = tail;
            let f = &f;
            let start = consumed;
            scope.spawn(move || f(start, chunk));
            consumed += r.len();
        }
    });
}

/// Row-aligned mutable chunked for-each for flat row-major matrices:
/// `data.len()` must be a multiple of `row_len`; the matrix is split into
/// near-equal *row bands* and `f(first_row, band)` runs on each band, in
/// parallel. This is the work distributor for the blocked matmul kernels.
pub fn par_row_chunks_mut<T, F>(data: &mut [T], row_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(data.len() % row_len, 0, "data not row-aligned");
    let rows = data.len() / row_len;
    let threads = num_threads();
    if threads <= 1 || rows < 2 {
        if rows > 0 {
            f(0, data);
        }
        return;
    }
    let ranges = split_ranges(rows, threads);
    std::thread::scope(|scope| {
        let mut rest = data;
        for r in ranges {
            let (band, tail) = rest.split_at_mut(r.len() * row_len);
            rest = tail;
            let f = &f;
            let first_row = r.start;
            scope.spawn(move || f(first_row, band));
        }
    });
}

/// Parallel index map: compute `f(i)` for `i` in `0..len` and collect the
/// results in order.
pub fn par_map<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); len];
    par_chunks_mut(&mut out, |start, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            *slot = f(start + off);
        }
    });
    out
}

/// Parallel *sharded* map: split `0..len` into at most `parts` contiguous
/// ranges and compute `f(range)` for each on scoped threads, collecting
/// the results in range order. Unlike [`par_map`], the closure sees the
/// whole shard at once — this is the work distributor for sharded
/// mini-batch gradient computation, where each shard builds its own tape
/// over shared read-only parameters and returns that shard's gradients.
///
/// Runs sequentially when `parts <= 1`, `len < 2`, or only one worker
/// thread is available, so single-core machines pay no spawn cost.
pub fn par_map_ranges<R, F>(len: usize, parts: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let ranges = split_ranges(len, parts.max(1));
    if ranges.len() <= 1 || num_threads() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        // First shard runs on the calling thread to save one spawn.
        let (first_slot, mut rest) = out
            .split_first_mut()
            .expect("at least two ranges past the sequential fast path");
        let mut iter = ranges.into_iter();
        let first_range = iter.next().expect("one range per slot");
        for r in iter {
            let (slot, tail) = rest.split_first_mut().expect("one slot per range");
            rest = tail;
            let f = &f;
            scope.spawn(move || *slot = Some(f(r)));
        }
        *first_slot = Some(f(first_range));
    });
    out.into_iter()
        .map(|r| r.expect("every shard produced a result"))
        .collect()
}

/// Parallel comparison sort: chunk-sort on worker threads, then fold the
/// sorted runs together with pairwise merges. Falls back to
/// `slice::sort_by` below the cutoff or on single-threaded machines.
///
/// The merge is stable (left run wins ties), and chunks are contiguous, so
/// the overall sort is stable like `slice::sort_by`.
pub fn par_sort_by<T, F>(data: &mut [T], compare: F)
where
    T: Send + Clone,
    F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
{
    const SEQ_CUTOFF: usize = 8 * 1024;
    let threads = num_threads();
    if threads <= 1 || data.len() <= SEQ_CUTOFF {
        data.sort_by(compare);
        return;
    }
    let ranges = split_ranges(data.len(), threads);
    // Sort each chunk in parallel.
    {
        let compare = &compare;
        std::thread::scope(|scope| {
            let mut rest: &mut [T] = data;
            for r in &ranges {
                let (chunk, tail) = rest.split_at_mut(r.len());
                rest = tail;
                scope.spawn(move || chunk.sort_by(compare));
            }
        });
    }
    // Pairwise-merge sorted runs until one remains.
    let mut runs: Vec<Vec<T>> = ranges
        .iter()
        .map(|r| data[r.start..r.end].to_vec())
        .collect();
    while runs.len() > 1 {
        let mut next: Vec<Vec<T>> = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(merge_by(a, b, &compare)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    if let Some(merged) = runs.pop() {
        data.clone_from_slice(&merged);
    }
}

fn merge_by<T: Clone, F: Fn(&T, &T) -> std::cmp::Ordering>(
    a: Vec<T>,
    b: Vec<T>,
    compare: &F,
) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ai, mut bi) = (0, 0);
    while ai < a.len() && bi < b.len() {
        // `<=` keeps the merge stable: the left (earlier) run wins ties.
        if compare(&a[ai], &b[bi]) != std::cmp::Ordering::Greater {
            out.push(a[ai].clone());
            ai += 1;
        } else {
            out.push(b[bi].clone());
            bi += 1;
        }
    }
    out.extend_from_slice(&a[ai..]);
    out.extend_from_slice(&b[bi..]);
    out
}

/// A monotonically increasing work counter usable from parallel closures
/// (e.g. to report progress from long benchmark scenarios).
#[derive(Debug, Default)]
pub struct WorkCounter(AtomicUsize);

impl WorkCounter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` units of completed work; returns the new total.
    pub fn add(&self, n: usize) -> usize {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// The current total.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_covers_exactly() {
        for len in [0usize, 1, 2, 7, 100, 101] {
            for parts in [1usize, 2, 3, 8] {
                let rs = split_ranges(len, parts);
                let total: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(total, len, "len={len} parts={parts}");
                let mut expect = 0;
                for r in &rs {
                    assert_eq!(r.start, expect);
                    assert!(!r.is_empty());
                    expect = r.end;
                }
            }
        }
    }

    #[test]
    fn par_chunks_mut_touches_every_item_once() {
        let mut v = vec![0u32; 1000];
        par_chunks_mut(&mut v, |start, chunk| {
            for (off, x) in chunk.iter_mut().enumerate() {
                *x += (start + off) as u32;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u32);
        }
    }

    #[test]
    fn par_row_chunks_are_row_aligned() {
        let row_len = 7;
        let rows = 23;
        let mut v = vec![0usize; rows * row_len];
        par_row_chunks_mut(&mut v, row_len, |first_row, band| {
            assert_eq!(band.len() % row_len, 0, "band not row aligned");
            for (off, x) in band.iter_mut().enumerate() {
                *x = first_row * row_len + off;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i);
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(257, |i| i * 2);
        assert_eq!(out.len(), 257);
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, i * 2);
        }
    }

    #[test]
    fn par_map_ranges_returns_shards_in_order() {
        for parts in [1usize, 2, 4, 7] {
            let out = par_map_ranges(10, parts, |r| (r.start, r.len()));
            let total: usize = out.iter().map(|&(_, l)| l).sum();
            assert_eq!(total, 10, "parts={parts}");
            let mut expect = 0;
            for &(start, len) in &out {
                assert_eq!(start, expect);
                expect += len;
            }
        }
        assert!(par_map_ranges(0, 4, |r| r.len()).is_empty());
    }

    #[test]
    fn par_ranges_covers_all_indices() {
        use std::sync::Mutex;
        let hits = Mutex::new(vec![0u8; 999]);
        par_ranges(999, |r| {
            let mut h = hits.lock().unwrap();
            for i in r {
                h[i] += 1;
            }
        });
        assert!(hits.lock().unwrap().iter().all(|&h| h == 1));
    }

    #[test]
    fn par_sort_matches_std_sort() {
        // Deterministic pseudo-random data, above and below the cutoff.
        for n in [10usize, 1000, 20_000] {
            let mut a: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17))
                .collect();
            let mut b = a.clone();
            a.sort();
            par_sort_by(&mut b, |x, y| x.cmp(y));
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn par_sort_is_stable() {
        // Sort by key only; payload order within equal keys must persist.
        let mut v: Vec<(u32, usize)> = (0..30_000).map(|i| ((i % 7) as u32, i)).collect();
        par_sort_by(&mut v, |a, b| a.0.cmp(&b.0));
        for w in v.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated: {:?}", w);
            }
        }
    }

    #[test]
    fn work_counter_accumulates() {
        let c = WorkCounter::new();
        assert_eq!(c.add(3), 3);
        assert_eq!(c.add(4), 7);
        assert_eq!(c.get(), 7);
    }
}

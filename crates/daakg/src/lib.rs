//! # daakg
//!
//! Facade crate for the DAAKG reproduction workspace: one `use daakg::...`
//! away from the whole pipeline. The crate graph underneath:
//!
//! ```text
//!            daakg-graph          (KGs, ids, gold alignments, IO)
//!                 │
//!        ┌────────┴────────┐
//!   daakg-embed       daakg-align (models / joint alignment + batched
//!        │                 │       top-k similarity engine)
//!        └───────┬─────────┘
//!           daakg-autograd        (tensors, blocked parallel matmul, tape)
//!                 │
//!          daakg-parallel         (std::thread::scope data parallelism)
//!
//!   daakg-infer   (functionality-weighted match propagation, inference power)
//!        │
//!   daakg-active  (question selection, simulated oracle, the active loop)
//!
//!   daakg-eval  (H@k / MRR / F1, cost curves)   daakg-bench  (perf harness)
//! ```
//!
//! The `quickstart` example (repo `examples/quickstart.rs`) walks the whole
//! path: build two KGs → train the joint model → snapshot → rank → score
//! with `daakg-eval` → run the active loop against a simulated oracle.

pub use daakg_active as active;
pub use daakg_align as align;
pub use daakg_autograd as autograd;
pub use daakg_bench as bench;
pub use daakg_embed as embed;
pub use daakg_eval as eval;
pub use daakg_graph as graph;
pub use daakg_infer as infer;
pub use daakg_parallel as parallel;

// The most commonly used types, re-exported flat.
pub use daakg_active::{ActiveConfig, ActiveLoop, GoldOracle, Strategy};
pub use daakg_align::{
    AlignmentSnapshot, BatchedSimilarity, JointConfig, JointModel, LabeledMatches,
};
pub use daakg_autograd::{Graph, ParamStore, TapeSession, Tensor};
pub use daakg_embed::{EmbedConfig, KgEmbedding, ModelKind};
pub use daakg_graph::{GoldAlignment, KgBuilder, KnowledgeGraph};
pub use daakg_infer::{InferConfig, InferenceEngine, RelationMatches};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        let kg = crate::KgBuilder::new("t").build();
        assert_eq!(kg.num_entities(), 0);
        let t = crate::Tensor::identity(2);
        assert_eq!(t.shape(), (2, 2));
    }
}

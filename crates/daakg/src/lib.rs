//! # daakg
//!
//! Facade crate for the DAAKG reproduction workspace: one `use daakg::...`
//! away from the whole pipeline. The crate graph underneath:
//!
//! ```text
//!            daakg-graph          (KGs, ids, gold alignments, IO,
//!                 │                the workspace-wide DaakgError)
//!        ┌────────┴────────┐
//!   daakg-embed       daakg-align (models / joint alignment + batched
//!        │                 │       top-k engine + AlignmentService)
//!        │            daakg-index (IVF approximate search: shared scan
//!        │                 │       kernel, spherical k-means, IvfIndex)
//!        └───────┬─────────┘
//!           daakg-autograd        (tensors, blocked parallel matmul, tape)
//!                 │
//!          daakg-parallel         (std::thread::scope data parallelism)
//!
//!   daakg-infer   (functionality-weighted match propagation, inference power)
//!        │
//!   daakg-active  (question selection, simulated oracle, the active loop)
//!
//!   daakg-eval  (H@k / MRR / F1, cost curves)
//!   daakg-bench (perf harness — consumes this facade, so it is no longer
//!                re-exported here; depend on `daakg-bench` directly)
//! ```
//!
//! ## The service API
//!
//! The primary entry point is the [`Pipeline`] builder, which validates
//! the composed configuration and returns a concurrent
//! [`AlignmentService`]:
//!
//! ```no_run
//! use daakg::graph::kg::{example_dbpedia, example_wikidata};
//! use daakg::{ModelKind, Pipeline, TrainMode};
//!
//! let service = Pipeline::builder()
//!     .kg1(example_dbpedia())
//!     .kg2(example_wikidata())
//!     .model(ModelKind::TransE)
//!     .train_mode(TrainMode::Sparse)
//!     .threads(0) // auto
//!     .build()?;
//!
//! // Training publishes immutable, versioned snapshots...
//! service.train(&daakg::LabeledMatches::new())?;
//! // ...while queries run lock-free on whatever version they grab —
//! // even while the next training round is in flight on another thread.
//! let answer = service.top_k(0, 5)?;
//! println!("top-5 computed on snapshot {}", answer.version);
//! # Ok::<(), daakg::DaakgError>(())
//! ```
//!
//! For sublinear serving at scale, give the builder an IVF index
//! (`.index(nlist)`) — every published snapshot then carries a
//! lazily-built [`IvfIndex`] — and query in
//! [`QueryMode::Approx { nprobe }`](QueryMode), either per call
//! (`service.query(e, QueryOptions::top_k(k).approx(nprobe))?`) or as
//! the session default (`.query_mode(..)`). `Exact` remains the default
//! everywhere.
//!
//! ## Serving topology
//!
//! Both serving front-ends implement the unified [`QueryExecutor`]
//! trait over [`QueryOptions`]:
//!
//! * [`AlignmentService`] (from `.build()`) — one corpus, one slab, the
//!   batched scan kernel;
//! * [`ShardedService`] (from `.shards(n)` + `.build_sharded()`) — the
//!   right-KG corpus partitioned across `n` scatter-gather shards, each
//!   with its own slab and per-shard IVF index. Exact answers are
//!   **bitwise-identical** to the unsharded service, ties included.
//!   Adding `.ingress(IngressConfig { .. })` puts a micro-batching
//!   window in front: concurrent single queries coalesce into batched
//!   kernel dispatches (see the README's serving-topology section for
//!   tuning guidance). The ingress is also the overload-resilience
//!   layer: a bounded queue that rejects over-capacity admissions with
//!   [`DaakgError::Overloaded`], per-query deadlines
//!   ([`QueryOptions::with_deadline`]) shed with
//!   [`DaakgError::DeadlineExceeded`], panic isolation (a poisonous
//!   query becomes a typed error to its own caller; the worker and its
//!   batch peers survive), and opt-in degradation ([`DegradePolicy`])
//!   that answers `Exact` requests approximately under pressure,
//!   stamping every answer with the mode actually served
//!   ([`ShardedService::query_served`], [`ServiceHealth`]).
//!
//! ## Observability
//!
//! Every service carries a [`Telemetry`] bundle (enabled by default;
//! `.telemetry(TelemetryConfig::disabled())` on the builder turns every
//! handle into a branch-only no-op): a lock-free [`MetricsRegistry`] of
//! counters, gauges, and mergeable log-scale latency [`Histogram`]s; hot-
//! path [`Span`] timers over every serving and maintenance stage (ingress
//! queue-wait/execute, per-shard scatter and merge, IVF probe/scan, delta
//! merge, warm-start, fold/republish/persist, store write/fsync); and a
//! bounded [`EventJournal`] of structured lifecycle events
//! ([`EventKind`]: snapshot publishes, fold start/done, retrain
//! supersession, shed/expired/degrade transitions, persist retries and
//! failures, compactor panics). Read it via
//! [`AlignmentService::telemetry`] / [`ShardedService::telemetry`] and
//! render with `telemetry().render_prometheus()` (Prometheus text
//! exposition) or `telemetry().render_json()` (raw nanoseconds plus the
//! journal). [`ServiceHealth`] is a view over the same registry. The full
//! metric/event taxonomy is tabulated in the README's Observability
//! section.
//!
//! Every fallible entry point of the service API returns the typed
//! [`DaakgError`] — no `Result<_, String>`s, and construction/validation
//! never panics. (The retained free-standing snapshot path keeps its
//! original index-out-of-bounds panic semantics; the service's `rank` /
//! `top_k` / `batch_top_k` wrappers bounds-check and return
//! [`DaakgError::UnknownEntity`] instead.)
//!
//! ## Migrating from the free-standing API
//!
//! The hand-wired batch path still exists (the service is built on it),
//! but new code should go through the service:
//!
//! | old call | new call |
//! |----------|----------|
//! | `JointModel::new(cfg, &kg1, &kg2)` (panicked on bad cfg) | `Pipeline::builder().kg1(kg1).kg2(kg2).joint(cfg).build()?` |
//! | `model.train(&kg1, &kg2, &labels)` → snapshot | `service.train(&labels)?` → [`SnapshotVersion`] |
//! | `model.align_rounds(&kg1, &kg2, &labels, n)` | `service.align_rounds(&labels, n)?` |
//! | `model.fine_tune_with_inferred(..)` | `service.fine_tune_with_inferred(..)?` |
//! | `snapshot.rank_entities(e)` | `service.rank(e)?` (versioned, bounds-checked) |
//! | `snapshot.top_k_entities(e, k)` | `service.top_k(e, k)?` |
//! | `snapshot.top_k_entities_block(&qs, k)` | `service.batch_top_k(&qs, k)?` (sharded across workers) |
//! | `service.rank_with(e, mode)` (shim, **removed**) | `service.query(e, QueryOptions::rank().with_mode(mode))?` |
//! | `service.top_k_with(e, k, mode)` (shim, **removed**) | `service.query(e, QueryOptions::top_k(k).with_mode(mode))?` |
//! | `service.batch_top_k_with(&qs, k, mode)` (shim, **removed**) | `service.query_batch(&qs, QueryOptions::top_k(k).with_mode(mode))?` |
//! | `ActiveLoop::new(cfg, strategy)` (panicked) + `.run(&mut model, ..)` | `Pipeline::builder()...build_active()?` + `.run_service(&service, ..)?` |
//! | `ActiveLoop::run(&mut model, ..)` (shim, **removed**) | `ActiveLoop::run_service(&service, ..)?` |
//! | `cfg.validate() -> Result<(), String>` | `cfg.validate() -> Result<(), DaakgError>` |
//! | `daakg_graph::io::IoError` (alias, **removed**) | [`DaakgError`] (same variants) |
//! | `daakg::bench::...` | depend on `daakg-bench` directly |
//! | hand-rolled latency percentiles over `Vec<u64>` | [`Histogram`] (`record` / `merge` / `quantile`) |
//! | `service.health()` polling for persist faults | still works — now a view over [`MetricsRegistry`]; rich detail via [`AlignmentService::telemetry`] |
//! | scraping logs for lifecycle events | [`EventJournal`] ([`Telemetry::journal`], [`EventKind`]) |
//!
//! Holding an `Arc<AlignmentSnapshot>` from [`AlignmentService::current`]
//! pins that version for as long as needed — retraining never invalidates
//! it; [`AlignmentService::snapshot_at`] retrieves any retained version,
//! e.g. to verify an answer against the exact snapshot that produced it.
//!
//! The `quickstart` example (repo `examples/quickstart.rs`) walks the whole
//! path: build two KGs → `Pipeline` → train → versioned ranking → score
//! with `daakg-eval` → run the active loop against a simulated oracle.

pub mod pipeline;

pub use daakg_active as active;
pub use daakg_align as align;
pub use daakg_autograd as autograd;
pub use daakg_embed as embed;
pub use daakg_eval as eval;
pub use daakg_graph as graph;
pub use daakg_index as index;
pub use daakg_infer as infer;
pub use daakg_parallel as parallel;
pub use daakg_store as store;
pub use daakg_telemetry as telemetry;

// The most commonly used types, re-exported flat.
pub use daakg_active::{ActiveConfig, ActiveLoop, GoldOracle, Strategy};
pub use daakg_align::{
    AlignmentService, AlignmentSnapshot, BatchedSimilarity, DegradePolicy, DeltaRecovery,
    DeltaTriple, DurableRegistry, IngressConfig, IngressStats, JointConfig, JointModel,
    LabeledMatches, LiveConfig, LiveHealth, PendingAnswer, QueryExecutor, RecoveryReport, Served,
    ServiceHealth, ServingConfig, ShardedService, SnapshotVersion, Versioned, VersionedSnapshot,
};
pub use daakg_autograd::{Graph, ParamStore, TapeSession, Tensor};
pub use daakg_embed::{EmbedConfig, KgEmbedding, ModelKind, TrainMode};
pub use daakg_graph::{DaakgError, GoldAlignment, KgBuilder, KnowledgeGraph};
pub use daakg_index::{IvfConfig, IvfIndex, QueryMode, QueryOptions};
pub use daakg_infer::{InferConfig, InferenceEngine, RelationMatches};
pub use daakg_telemetry::{
    Counter, Event, EventJournal, EventKind, Gauge, Histogram, HistogramHandle, MetricsRegistry,
    Span, Telemetry, TelemetryConfig,
};
pub use pipeline::{Pipeline, PipelineBuilder};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        let kg = crate::KgBuilder::new("t").build();
        assert_eq!(kg.num_entities(), 0);
        let t = crate::Tensor::identity(2);
        assert_eq!(t.shape(), (2, 2));
        // The service-era types are one flat import away.
        let err = crate::Pipeline::builder().build().unwrap_err();
        assert!(matches!(err, crate::DaakgError::MissingInput { .. }));
    }
}

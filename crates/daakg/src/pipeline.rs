//! The fluent, validated entry point to the whole system: [`Pipeline`].
//!
//! A pipeline composes the per-subsystem configurations ([`EmbedConfig`] /
//! [`JointConfig`] / [`InferConfig`] / [`ActiveConfig`]) behind one
//! builder, validates everything up front with typed [`DaakgError`]s, and
//! produces a ready [`AlignmentService`] — the concurrent serve-while-train
//! handle that replaces hand-wiring `KgBuilder → JointModel::train →
//! snapshot() → rank_entities`. With [`PipelineBuilder::shards`] (and
//! optionally [`PipelineBuilder::ingress`]) the same builder produces a
//! scatter-gather [`ShardedService`] instead, via
//! [`PipelineBuilder::build_sharded`].
//!
//! ```no_run
//! use daakg::graph::kg::{example_dbpedia, example_wikidata};
//! use daakg::{ModelKind, Pipeline, QueryOptions, TrainMode};
//!
//! let service = Pipeline::builder()
//!     .kg1(example_dbpedia())
//!     .kg2(example_wikidata())
//!     .model(ModelKind::TransE)
//!     .train_mode(TrainMode::Sparse)
//!     .threads(2)
//!     .dim(16)
//!     .index(32) // IVF index on every published snapshot
//!     .build()?;
//! let labels = daakg::LabeledMatches::new();
//! service.train(&labels)?;
//! let top = service.top_k(0, 5)?; // lock-free, versioned, exact
//! let fast = service.query(0, QueryOptions::top_k(5).approx(4))?;
//! println!("answered on snapshots {} / {}", top.version, fast.version);
//! # Ok::<(), daakg::DaakgError>(())
//! ```

use daakg_active::{ActiveConfig, ActiveLoop, Strategy};
use daakg_align::{
    AlignmentService, IngressConfig, JointConfig, LiveConfig, ServingConfig, ShardedService,
};
use daakg_embed::{EmbedConfig, ModelKind, TrainMode};
use daakg_graph::{DaakgError, KnowledgeGraph};
use daakg_index::{IvfConfig, QueryMode};
use daakg_infer::InferConfig;
use daakg_telemetry::TelemetryConfig;
use std::path::PathBuf;
use std::sync::Arc;

/// Entry point: [`Pipeline::builder`] starts a [`PipelineBuilder`].
pub struct Pipeline;

impl Pipeline {
    /// Start building a pipeline with default configurations.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }
}

/// Fluent builder for an [`AlignmentService`] (and optionally an
/// [`ActiveLoop`] sharing its configuration).
///
/// All setters are infallible; [`PipelineBuilder::build`] validates the
/// composed configuration in one place and reports the first violation as
/// a typed [`DaakgError`].
#[derive(Debug, Clone)]
pub struct PipelineBuilder {
    kg1: Option<Arc<KnowledgeGraph>>,
    kg2: Option<Arc<KnowledgeGraph>>,
    joint: JointConfig,
    active: ActiveConfig,
    strategy: Strategy,
    serving: ServingConfig,
    store: Option<PathBuf>,
    shards: Option<usize>,
    ingress: Option<IngressConfig>,
    live: Option<LiveConfig>,
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self {
            kg1: None,
            kg2: None,
            joint: JointConfig::default(),
            active: ActiveConfig::default(),
            strategy: Strategy::InferencePower,
            serving: ServingConfig::default(),
            store: None,
            shards: None,
            ingress: None,
            live: None,
        }
    }
}

impl PipelineBuilder {
    /// The left knowledge graph (required). Accepts an owned graph or an
    /// `Arc` when the caller wants to keep sharing it.
    pub fn kg1(mut self, kg: impl Into<Arc<KnowledgeGraph>>) -> Self {
        self.kg1 = Some(kg.into());
        self
    }

    /// The right knowledge graph (required).
    pub fn kg2(mut self, kg: impl Into<Arc<KnowledgeGraph>>) -> Self {
        self.kg2 = Some(kg.into());
        self
    }

    /// Replace the whole joint-alignment configuration.
    pub fn joint(mut self, cfg: JointConfig) -> Self {
        self.joint = cfg;
        self
    }

    /// Replace the embedding configuration inside the joint config.
    pub fn embed(mut self, cfg: EmbedConfig) -> Self {
        self.joint.embed = cfg;
        self
    }

    /// The entity–relation scoring model.
    pub fn model(mut self, model: ModelKind) -> Self {
        self.joint.embed.model = model;
        self
    }

    /// The embedding dimension `d_e`.
    pub fn dim(mut self, dim: usize) -> Self {
        self.joint.embed.dim = dim;
        self
    }

    /// Embedding warm-up epochs.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.joint.embed.epochs = epochs;
        self
    }

    /// Alignment epochs per training round.
    pub fn align_epochs(mut self, epochs: usize) -> Self {
        self.joint.align_epochs = epochs;
        self
    }

    /// The RNG seed controlling init and sampling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.joint.embed.seed = seed;
        self
    }

    /// Mini-batch execution mode (sparse/parallel fast path vs the dense
    /// verification oracle).
    pub fn train_mode(mut self, mode: TrainMode) -> Self {
        self.joint.embed.mode = mode;
        self
    }

    /// Worker threads for sharded training (0 = auto).
    pub fn threads(mut self, threads: usize) -> Self {
        self.joint.embed.threads = threads;
        self
    }

    /// Inference-closure configuration (consumed by the active loop).
    pub fn infer(mut self, cfg: InferConfig) -> Self {
        self.active.infer = cfg;
        self
    }

    /// Active-learning configuration (the `infer` field is kept in sync
    /// with [`PipelineBuilder::infer`], last call wins).
    pub fn active(mut self, cfg: ActiveConfig) -> Self {
        self.active = cfg;
        self
    }

    /// Question-selection strategy for [`PipelineBuilder::build_active`].
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Build an IVF approximate-search index with `nlist` inverted lists
    /// into every snapshot the service publishes. Validation (`nlist ≥ 1`)
    /// happens in [`PipelineBuilder::build`]; use
    /// [`PipelineBuilder::index_config`] for non-default k-means settings.
    pub fn index(mut self, nlist: usize) -> Self {
        self.serving.index = Some(IvfConfig::new(nlist));
        self
    }

    /// Replace the whole IVF index configuration (last call wins against
    /// [`PipelineBuilder::index`]).
    pub fn index_config(mut self, cfg: IvfConfig) -> Self {
        self.serving.index = Some(cfg);
        self
    }

    /// Make the service **durable**: persist every published snapshot
    /// crash-safely to `dir` and warm-restart from whatever intact
    /// versions the directory already holds (corrupt or torn files are
    /// skipped with typed diagnostics — inspect
    /// [`AlignmentService::recovery`] after building). The directory is
    /// created if missing; a fresh directory persists the initial
    /// publication immediately.
    pub fn store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store = Some(dir.into());
        self
    }

    /// Configure telemetry on the built service: metric registry, stage
    /// latency histograms, and the structured event journal (see
    /// [`daakg_telemetry`]). Telemetry is **enabled by default**; pass
    /// [`TelemetryConfig::disabled`] to turn every handle into a no-op —
    /// the disabled hot path costs one predictable branch per record.
    /// Inspect the built service through
    /// [`AlignmentService::telemetry`] (or
    /// [`ShardedService::telemetry`]) and render with
    /// [`Telemetry::render_prometheus`] / [`Telemetry::render_json`].
    ///
    /// [`Telemetry::render_prometheus`]: daakg_telemetry::Telemetry::render_prometheus
    /// [`Telemetry::render_json`]: daakg_telemetry::Telemetry::render_json
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.serving.telemetry = cfg;
        self
    }

    /// The default [`QueryMode`] of the service's plain query methods
    /// (`rank` / `top_k` / `batch_top_k`). Defaults to [`QueryMode::Exact`];
    /// `Approx` requires an index ([`PipelineBuilder::index`]) and
    /// `nprobe ≥ 1` — both checked at build time.
    pub fn query_mode(mut self, mode: QueryMode) -> Self {
        self.serving.mode = mode;
        self
    }

    /// Partition the right-KG corpus across `shards` scatter-gather
    /// partitions, each with its own candidate slab (and per-shard IVF
    /// index when [`PipelineBuilder::index`] is set). Switches the build
    /// target to [`PipelineBuilder::build_sharded`]; `1..=4096` is
    /// enforced there. Exact sharded answers are bitwise-identical to the
    /// unsharded service's.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Enable **live KG updates** on the built service: an append-only
    /// delta layer accepting [`AlignmentService::upsert_entity`] while
    /// serving, warm-start fine-tuned embeddings for the new rows, and a
    /// background compactor that folds pending deltas into the next
    /// published snapshot. With [`PipelineBuilder::store`], delta
    /// segments are persisted alongside snapshots so warm restarts
    /// recover base + uncompacted deltas. Validation (`compact_after ≥
    /// 1`, warm-start hyper-parameters) happens at build time.
    pub fn live(mut self, cfg: LiveConfig) -> Self {
        self.live = Some(cfg);
        self
    }

    /// Put a micro-batching ingress in front of the sharded service:
    /// concurrent single queries are coalesced into batched kernel
    /// dispatches under the window's time/size bounds. Implies
    /// [`PipelineBuilder::build_sharded`]; with no explicit
    /// [`PipelineBuilder::shards`] the shard count defaults to the worker
    /// thread count.
    pub fn ingress(mut self, cfg: IngressConfig) -> Self {
        self.ingress = Some(cfg);
        self
    }

    /// Validate the composed configuration and build the service.
    ///
    /// Fails with [`DaakgError::InvalidConfig`] if sharding options are
    /// set — [`PipelineBuilder::shards`] / [`PipelineBuilder::ingress`]
    /// describe a [`ShardedService`], which only
    /// [`PipelineBuilder::build_sharded`] produces; silently dropping
    /// them here would build a topology the caller didn't ask for.
    pub fn build(self) -> Result<AlignmentService, DaakgError> {
        self.reject_sharding("build")?;
        let (service, _) = self.build_parts()?;
        Ok(service)
    }

    /// Validate and build the service *plus* an [`ActiveLoop`] configured
    /// from the same builder, for active-alignment campaigns. Like
    /// [`PipelineBuilder::build`], rejects sharding options.
    pub fn build_active(self) -> Result<(AlignmentService, ActiveLoop), DaakgError> {
        self.reject_sharding("build_active")?;
        let (service, active) = self.build_parts()?;
        Ok((service, active))
    }

    /// Validate the composed configuration and build a scatter-gather
    /// [`ShardedService`]: the wrapped [`AlignmentService`] plus the
    /// shard partitioning from [`PipelineBuilder::shards`] (defaulting to
    /// the worker thread count) and, when configured, the micro-batching
    /// ingress from [`PipelineBuilder::ingress`].
    pub fn build_sharded(mut self) -> Result<ShardedService, DaakgError> {
        let shards = self
            .shards
            .take()
            .unwrap_or_else(daakg_parallel::num_threads);
        let ingress = self.ingress.take();
        let (service, _) = self.build_parts()?;
        match ingress {
            Some(cfg) => ShardedService::with_ingress(service, shards, cfg),
            None => ShardedService::new(service, shards),
        }
    }

    fn reject_sharding(&self, target: &str) -> Result<(), DaakgError> {
        if self.shards.is_some() || self.ingress.is_some() {
            return Err(DaakgError::invalid(
                "Pipeline",
                format!("shards/ingress configure a ShardedService — use build_sharded(), not {target}()"),
            ));
        }
        Ok(())
    }

    fn build_parts(self) -> Result<(AlignmentService, ActiveLoop), DaakgError> {
        let kg1 = self.kg1.ok_or(DaakgError::MissingInput { what: "kg1" })?;
        let kg2 = self.kg2.ok_or(DaakgError::MissingInput { what: "kg2" })?;
        self.joint.validate()?;
        let active = ActiveLoop::new(self.active, self.strategy)?;
        let mut service = match self.store {
            Some(dir) => AlignmentService::open(self.joint, self.serving, kg1, kg2, dir)?,
            None => AlignmentService::with_serving(self.joint, self.serving, kg1, kg2)?,
        };
        if let Some(cfg) = self.live {
            service.enable_live(cfg)?;
        }
        Ok((service, active))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daakg_align::LabeledMatches;
    use daakg_graph::kg::{example_dbpedia, example_wikidata};

    fn fast_builder() -> PipelineBuilder {
        Pipeline::builder()
            .kg1(example_dbpedia())
            .kg2(example_wikidata())
            .dim(8)
            .epochs(2)
            .align_epochs(2)
    }

    #[test]
    fn builder_composes_and_builds_a_live_service() {
        let service = fast_builder()
            .model(ModelKind::TransE)
            .train_mode(TrainMode::Sparse)
            .threads(2)
            .seed(11)
            .build()
            .unwrap();
        assert_eq!(service.version().get(), 1);
        let labels = LabeledMatches::new();
        let v = service.train(&labels).unwrap();
        assert_eq!(v.version.get(), 2);
        let top = service.top_k(0, 3).unwrap();
        assert_eq!(top.version, v.version);
        assert_eq!(top.value.len(), 3);
    }

    #[test]
    fn missing_inputs_are_typed_errors() {
        let err = Pipeline::builder().kg2(example_wikidata()).build();
        assert!(matches!(err, Err(DaakgError::MissingInput { what: "kg1" })));
        let err = Pipeline::builder().kg1(example_dbpedia()).build();
        assert!(matches!(err, Err(DaakgError::MissingInput { what: "kg2" })));
    }

    #[test]
    fn invalid_configs_are_rejected_at_build_time() {
        // RotatE needs an even dim: caught by the one-stop validation.
        let err = fast_builder().model(ModelKind::RotatE).dim(9).build();
        match err {
            Err(DaakgError::InvalidConfig { context, reason }) => {
                assert_eq!(context, "EmbedConfig");
                assert!(reason.contains("even"), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // Invalid active config is caught even when only building the
        // service (one pipeline, one validation story).
        let err = fast_builder()
            .active(ActiveConfig {
                batch_size: 0,
                ..ActiveConfig::default()
            })
            .build();
        assert!(matches!(err, Err(DaakgError::InvalidConfig { .. })));
    }

    #[test]
    fn index_and_query_mode_compose_and_validate() {
        // nlist = 0 is caught by the one-stop validation.
        let err = fast_builder().index(0).build();
        match err {
            Err(DaakgError::InvalidConfig { context, .. }) => assert_eq!(context, "IvfConfig"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // Approx default mode without an index is rejected.
        let err = fast_builder()
            .query_mode(QueryMode::Approx { nprobe: 2 })
            .build();
        assert!(matches!(err, Err(DaakgError::InvalidConfig { .. })));
        // A valid composition serves approximate queries out of the box.
        let service = fast_builder()
            .index(3)
            .query_mode(QueryMode::Approx { nprobe: 3 })
            .build()
            .unwrap();
        let labels = LabeledMatches::new();
        service.train(&labels).unwrap();
        let plain = service.top_k(0, 3).unwrap();
        let exact = service
            .query(0, daakg_align::QueryOptions::top_k(3))
            .unwrap();
        // nprobe == nlist: the approximate default answers exactly.
        assert_eq!(plain.value, exact.value);
        // index_config overrides index (last call wins).
        let cfg = IvfConfig {
            max_iters: 3,
            seed: 7,
            ..IvfConfig::new(2)
        };
        let service = fast_builder()
            .index(9)
            .index_config(cfg.clone())
            .build()
            .unwrap();
        assert_eq!(service.serving().index.as_ref(), Some(&cfg));
    }

    #[test]
    fn store_builds_a_durable_service_that_warm_restarts() {
        let td = daakg_store::TestDir::new("pipeline-store");
        let build = || fast_builder().seed(5).store(td.path()).build().unwrap();
        let answers = {
            let service = build();
            assert!(service.is_durable());
            let labels = LabeledMatches::new();
            service.train(&labels).unwrap();
            service.top_k(0, 3).unwrap()
        };
        let service = build();
        // Restarted from disk: same latest version, bitwise-same answers.
        assert_eq!(service.version().get(), 2);
        assert_eq!(service.recovery().unwrap().loaded, vec![1, 2]);
        let restored = service.top_k(0, 3).unwrap();
        assert_eq!(restored.version, answers.version);
        for (a, b) in answers.value.iter().zip(&restored.value) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn build_sharded_composes_shards_and_ingress() {
        // Explicit shard count, no ingress.
        let sharded = fast_builder().shards(3).build_sharded().unwrap();
        assert_eq!(sharded.shards(), 3);
        assert!(sharded.ingress_config().is_none());
        // Sharded exact answers are bitwise-identical to unsharded ones.
        let unsharded = fast_builder().build().unwrap();
        let a = sharded.top_k(0, 3).unwrap();
        let b = unsharded.top_k(0, 3).unwrap();
        assert_eq!(a.version, b.version);
        for ((ia, sa), (ib, sb)) in a.value.iter().zip(&b.value) {
            assert_eq!(ia, ib);
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
        // Ingress without shards: shard count defaults to the thread
        // count, and the window is running.
        let window = daakg_align::IngressConfig::default();
        let sharded = fast_builder().ingress(window).build_sharded().unwrap();
        assert_eq!(sharded.shards(), daakg_parallel::num_threads());
        assert_eq!(sharded.ingress_config(), Some(window));
        assert_eq!(sharded.top_k(0, 3).unwrap().value.len(), 3);

        // Shard count is validated with a typed error.
        let err = fast_builder().shards(0).build_sharded();
        assert!(matches!(err, Err(DaakgError::InvalidConfig { .. })));
    }

    #[test]
    fn sharding_options_reject_the_unsharded_builds() {
        let err = fast_builder().shards(2).build();
        match err {
            Err(DaakgError::InvalidConfig { context, reason }) => {
                assert_eq!(context, "Pipeline");
                assert!(reason.contains("build_sharded"), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        let err = fast_builder()
            .ingress(daakg_align::IngressConfig::default())
            .build_active();
        assert!(matches!(err, Err(DaakgError::InvalidConfig { .. })));
    }

    #[test]
    fn telemetry_hook_configures_the_built_service() {
        // Default build: telemetry enabled, stages record.
        let service = fast_builder().build().unwrap();
        assert!(service.telemetry().is_enabled());
        service.top_k(0, 3).unwrap();
        let text = service.telemetry().render_prometheus();
        assert!(
            text.contains("daakg_stage_exact_scan_seconds_count 1"),
            "{text}"
        );
        // Disabled build: every handle is a no-op, answers identical.
        let dark = fast_builder()
            .telemetry(TelemetryConfig::disabled())
            .build()
            .unwrap();
        assert!(!dark.telemetry().is_enabled());
        let a = service.top_k(0, 3).unwrap();
        let b = dark.top_k(0, 3).unwrap();
        for ((ia, sa), (ib, sb)) in a.value.iter().zip(&b.value) {
            assert_eq!(ia, ib);
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
        assert!(dark.telemetry().render_prometheus().is_empty());
        // The hook flows through the sharded build too.
        let sharded = fast_builder()
            .telemetry(TelemetryConfig {
                journal_capacity: 8,
                ..TelemetryConfig::default()
            })
            .shards(2)
            .build_sharded()
            .unwrap();
        assert_eq!(sharded.telemetry().config().journal_capacity, 8);
    }

    #[test]
    fn build_active_returns_a_configured_loop() {
        let (service, active) = fast_builder()
            .active(ActiveConfig {
                rounds: 1,
                batch_size: 1,
                ..ActiveConfig::default()
            })
            .strategy(Strategy::Margin)
            .build_active()
            .unwrap();
        assert_eq!(active.config().rounds, 1);
        assert_eq!(service.kg1().name(), "DBpedia");
    }
}

//! Public-API integration tests for the overload-resilience contract of
//! the sharded serving stack: bounded admission, per-query deadlines,
//! typed shutdown, and opt-in graceful degradation.
//!
//! Everything here goes through `ShardedService` exactly as an embedding
//! application would — no crate internals, no test-only backends. The
//! fully deterministic chaos coverage (gated workers, injected panics)
//! lives in the `ingress` module's unit tests; these tests prove the
//! same guarantees hold end to end on the real scatter-gather backend.

use daakg_align::{
    AlignmentService, DegradePolicy, IngressConfig, JointConfig, QueryMode, QueryOptions,
    ServingConfig, ShardedService,
};
use daakg_embed::EmbedConfig;
use daakg_graph::kg::{example_dbpedia, example_wikidata};
use daakg_graph::DaakgError;
use std::sync::Arc;
use std::time::Duration;

fn tiny_cfg() -> JointConfig {
    JointConfig {
        embed: EmbedConfig {
            dim: 8,
            class_dim: 4,
            epochs: 2,
            batch_size: 16,
            ..EmbedConfig::default()
        },
        align_epochs: 3,
        ..JointConfig::default()
    }
}

fn service(serving: ServingConfig) -> AlignmentService {
    AlignmentService::with_serving(
        tiny_cfg(),
        serving,
        Arc::new(example_dbpedia()),
        Arc::new(example_wikidata()),
    )
    .expect("example service")
}

fn sharded(ingress: IngressConfig) -> ShardedService {
    ShardedService::with_ingress(service(ServingConfig::default()), 2, ingress)
        .expect("sharded service")
}

/// Flooding a one-slot queue from a tight loop must reject the excess
/// with a typed `Overloaded` — and every *accepted* ticket must still be
/// answered, bitwise-identical to the snapshot oracle. Nothing is lost,
/// nothing panics, the books balance exactly.
#[test]
fn flood_sheds_typed_overloaded_and_loses_no_accepted_answers() {
    let svc = sharded(IngressConfig {
        max_batch: 1,
        max_queue: 1,
        ..IngressConfig::default()
    });
    let mut tickets = Vec::new();
    let mut shed = 0u64;
    // The submit loop runs orders of magnitude faster than a worker
    // wakeup, so a one-slot queue overflows almost immediately; the
    // attempt cap only bounds the test if a scheduler stall lets the
    // worker keep pace forever.
    for _ in 0..50_000 {
        match svc.submit(0, QueryOptions::top_k(3)) {
            Ok(ticket) => tickets.push(ticket),
            Err(DaakgError::Overloaded { queued, capacity }) => {
                assert_eq!(capacity, 1);
                assert!(queued >= capacity, "rejected below capacity");
                shed += 1;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
        if shed > 0 && tickets.len() >= 8 {
            break;
        }
    }
    assert!(shed > 0, "the flood never filled a one-slot queue");

    let accepted = tickets.len() as u64;
    let current = svc.service().current();
    let oracle = current.snapshot.top_k_entities(0, 3);
    for ticket in tickets {
        let ans = ticket.wait().expect("accepted queries are served");
        assert_eq!(ans.version, current.version);
        assert_eq!(ans.value.len(), oracle.len());
        for (want, got) in oracle.iter().zip(&ans.value) {
            assert_eq!(want.0, got.0);
            assert_eq!(want.1.to_bits(), got.1.to_bits());
        }
    }
    let stats = svc.ingress_stats().expect("ingress running");
    assert_eq!(stats.queries, accepted);
    assert_eq!(stats.shed, shed);
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.panics, 0);
    assert!(stats.max_depth <= 1);
}

/// A zero deadline can never be met: it is shed synchronously at
/// admission — the queue and the worker never see it.
#[test]
fn zero_deadline_is_shed_at_admission() {
    let svc = sharded(IngressConfig::default());
    let err = svc
        .query(0, QueryOptions::top_k(3).with_deadline(Duration::ZERO))
        .unwrap_err();
    match err {
        DaakgError::DeadlineExceeded { deadline, waited } => {
            assert_eq!(deadline, Duration::ZERO);
            assert_eq!(waited, Duration::ZERO);
        }
        e => panic!("expected DeadlineExceeded, got {e}"),
    }
    let stats = svc.ingress_stats().expect("ingress running");
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.queries, 0, "a shed query is never admitted");
}

/// A deadline that has certainly elapsed by dequeue time (1ns against a
/// 200µs batching window) is admitted but shed at the window's close,
/// reporting how long the query actually waited.
#[test]
fn already_expired_deadline_is_shed_at_dequeue() {
    let svc = sharded(IngressConfig::default());
    let err = svc
        .query(
            0,
            QueryOptions::top_k(3).with_deadline(Duration::from_nanos(1)),
        )
        .unwrap_err();
    match err {
        DaakgError::DeadlineExceeded { deadline, waited } => {
            assert_eq!(deadline, Duration::from_nanos(1));
            assert!(waited >= deadline, "shed before the deadline elapsed");
        }
        e => panic!("expected DeadlineExceeded, got {e}"),
    }
    let stats = svc.ingress_stats().expect("ingress running");
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.queries, 1, "the query was admitted, then shed");
}

/// A deadline far beyond the batching window is inert: queueing delay
/// under light load is bounded by `max_wait` plus one dispatch, so
/// nothing expires and every answer arrives.
#[test]
fn deadline_longer_than_max_wait_never_sheds() {
    let svc = sharded(IngressConfig {
        max_batch: 4,
        max_wait: Duration::from_micros(200),
        ..IngressConfig::default()
    });
    for _ in 0..16 {
        svc.query(
            0,
            QueryOptions::top_k(3).with_deadline(Duration::from_secs(60)),
        )
        .expect("a 60s deadline never sheds under light load");
    }
    let stats = svc.ingress_stats().expect("ingress running");
    assert_eq!(stats.queries, 16);
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.shed, 0);
}

/// Dropping the service with tickets still in flight must resolve every
/// one of them — served for real or failed with a typed `Shutdown` —
/// and must never leave a waiter hanging. (A hang here fails the suite
/// via the harness timeout; there is deliberately no sleep to mask one.)
#[test]
fn shutdown_resolves_every_outstanding_ticket() {
    let svc = sharded(IngressConfig {
        max_batch: 1,
        max_queue: 64,
        ..IngressConfig::default()
    });
    let tickets: Vec<_> = (0..32)
        .map(|_| {
            svc.submit(0, QueryOptions::top_k(3))
                .expect("queue has room for the burst")
        })
        .collect();
    drop(svc);
    let (mut served, mut shut_down) = (0usize, 0usize);
    for ticket in tickets {
        match ticket.wait() {
            Ok(ans) => {
                assert_eq!(ans.version.get(), 1);
                served += 1;
            }
            Err(DaakgError::Shutdown { .. }) => shut_down += 1,
            Err(e) => panic!("expected an answer or Shutdown, got {e}"),
        }
    }
    assert_eq!(served + shut_down, 32, "every ticket resolved exactly once");
}

/// Without an explicit `DegradePolicy`, overload pressure must never
/// change what is served: every answer under a sustained flood is still
/// stamped `Exact`, the degraded counter stays zero, and health never
/// reports an engaged policy — even though the backend has an index a
/// policy *could* have used.
#[test]
fn degradation_never_engages_without_explicit_policy() {
    let svc = ShardedService::with_ingress(
        service(ServingConfig::with_index(2)),
        2,
        IngressConfig {
            max_batch: 1,
            max_queue: 64,
            ..IngressConfig::default()
        },
    )
    .expect("sharded service");
    for _round in 0..8 {
        let tickets: Vec<_> = (0..16)
            .map(|_| {
                svc.submit(0, QueryOptions::top_k(3))
                    .expect("queue has room for the burst")
            })
            .collect();
        for ticket in tickets {
            let answer = ticket.wait_served().expect("served");
            assert_eq!(answer.served, QueryMode::Exact);
        }
    }
    let stats = svc.ingress_stats().expect("ingress running");
    assert_eq!(stats.degraded, 0);
    assert!(!svc.health().degrade_engaged);
}

/// With a policy configured, backlog beyond the high watermark degrades
/// `Exact` requests to `Approx` — visibly, via the stamped served mode —
/// and once the backlog drains below the low watermark, serving returns
/// to `Exact` (hysteresis, both directions).
#[test]
fn degradation_engages_under_pressure_and_recovers() {
    let svc = ShardedService::with_ingress(
        service(ServingConfig::with_index(2)),
        2,
        IngressConfig {
            max_batch: 1,
            max_queue: 64,
            degrade: Some(DegradePolicy {
                high_watermark: 2,
                low_watermark: 1,
                nprobe: 1,
            }),
            ..IngressConfig::default()
        },
    )
    .expect("sharded service");

    let mut saw_degraded = false;
    'pressure: for _round in 0..200 {
        let tickets: Vec<_> = (0..16)
            .map(|_| {
                svc.submit(0, QueryOptions::top_k(3))
                    .expect("queue has room for the burst")
            })
            .collect();
        for ticket in tickets {
            let answer = ticket.wait_served().expect("served");
            match answer.served {
                QueryMode::Exact => {}
                QueryMode::Approx { nprobe } => {
                    assert_eq!(nprobe, 1, "degraded probes come from the policy");
                    assert!(!answer.value.is_empty(), "a degraded answer still answers");
                    saw_degraded = true;
                }
            }
        }
        if saw_degraded {
            break 'pressure;
        }
    }
    assert!(
        saw_degraded,
        "a 16-deep burst against a max_batch=1 worker never crossed watermark 2"
    );
    assert!(svc.ingress_stats().expect("ingress running").degraded > 0);

    // Serial traffic keeps the observed depth at 1 (== low watermark),
    // so the policy must disengage and stamp `Exact` again.
    let mut exact_again = false;
    for _ in 0..200 {
        let answer = svc.query_served(0, QueryOptions::top_k(3)).expect("served");
        if answer.served == QueryMode::Exact {
            exact_again = true;
            break;
        }
    }
    assert!(exact_again, "hysteresis never released the degraded mode");
    assert!(!svc.health().degrade_engaged);
}

//! Tape-building alignment losses.
//!
//! * [`softmax_pair_loss`] — the alignment losses `O_ea`, `O_ra`, `O_ca`
//!   (Eq. 5, 8 and the class analogue): for each labeled match and a
//!   sampled non-match, a 2-way softmax over their similarities, maximizing
//!   the match's probability. We use the cross-entropy form `−log p` (the
//!   monotone, numerically stable version of the paper's `−softmax(...)`).
//! * The focal variant (Sect. 4.2, fine-tuning): the softmax output is
//!   changed to `(1 − p)^γ`, so misclassified newly-labeled pairs dominate
//!   the gradient. We implement the standard focal cross-entropy
//!   `(1 − p)^γ · (−log p)`.
//! * [`semi_supervised_loss`] — `O_semi = −Σ S₀(x,x')·S(x,x')` (Eq. 10),
//!   with the previous-round similarity `S₀` as a constant soft label.

use daakg_autograd::{Graph, Tensor, Var};

/// Logit scale applied before the 2-way softmax. Cosine similarities live in
/// `[−1, 1]`; the scale plays the role of the softmax temperature `1/Z` so
/// the loss is discriminative (Sect. 4.2 uses small temperatures).
pub const LOGIT_SCALE: f32 = 10.0;

/// 2-way softmax alignment loss over aligned positive / negative similarity
/// columns (`m×1` each). With `focal_gamma = Some(γ)` the focal weighting is
/// applied. Returns the mean loss (`1×1`).
pub fn softmax_pair_loss(
    g: &mut Graph,
    pos_sims: Var,
    neg_sims: Var,
    focal_gamma: Option<f32>,
) -> Var {
    let logits = g.concat_cols(pos_sims, neg_sims);
    let scaled = g.mul_scalar(logits, LOGIT_SCALE);
    let probs = g.softmax_rows(scaled);
    let p = g.slice_cols(probs, 0, 1);
    // Clamp-free stability: p > 0 by construction of softmax; add epsilon
    // through add_scalar to protect the log in degenerate f32 cases.
    let p_safe = g.add_scalar(p, 1e-12);
    let log_p = g.log(p_safe);
    let nll = g.neg(log_p);
    let weighted = match focal_gamma {
        Some(gamma) => {
            // (1 − p)^γ
            let neg_p = g.neg(p);
            let one_minus_p = g.add_scalar(neg_p, 1.0);
            let focal = g.pow_scalar(one_minus_p, gamma);
            g.mul(focal, nll)
        }
        None => nll,
    };
    g.mean_all(weighted)
}

/// The semi-supervised loss `O_semi(M_semi) = −Σ S₀·S` (Eq. 10).
///
/// `sims` are the current similarities of the mined pairs (`m×1`, on tape);
/// `soft_labels` are the previous-round similarities `S₀` treated as
/// constants (the optimizer does not update the model that produced them).
pub fn semi_supervised_loss(g: &mut Graph, sims: Var, soft_labels: &[f32]) -> Var {
    assert_eq!(
        g.value(sims).rows(),
        soft_labels.len(),
        "one soft label per similarity"
    );
    let soft = g.leaf(Tensor::from_vec(soft_labels.len(), 1, soft_labels.to_vec()));
    let prod = g.mul(soft, sims);
    let mean = g.mean_all(prod);
    g.neg(mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daakg_autograd::Graph;

    fn loss_value(pos: &[f32], neg: &[f32], gamma: Option<f32>) -> f32 {
        let mut g = Graph::new();
        let p = g.leaf(Tensor::from_vec(pos.len(), 1, pos.to_vec()));
        let n = g.leaf(Tensor::from_vec(neg.len(), 1, neg.to_vec()));
        let l = softmax_pair_loss(&mut g, p, n, gamma);
        g.value(l).item()
    }

    #[test]
    fn confident_correct_pairs_have_low_loss() {
        let good = loss_value(&[0.95], &[0.0], None);
        let bad = loss_value(&[0.0], &[0.95], None);
        assert!(good < bad);
        assert!(good < 0.1, "good loss {good}");
        assert!(bad > 1.0, "bad loss {bad}");
    }

    #[test]
    fn focal_downweights_easy_examples() {
        // Easy example: loss shrinks a lot under focal weighting.
        let easy_plain = loss_value(&[0.9], &[0.0], None);
        let easy_focal = loss_value(&[0.9], &[0.0], Some(2.0));
        assert!(easy_focal < easy_plain * 0.5);
        // Hard example: focal keeps most of the loss.
        let hard_plain = loss_value(&[0.0], &[0.9], None);
        let hard_focal = loss_value(&[0.0], &[0.9], Some(2.0));
        assert!(hard_focal > hard_plain * 0.5);
    }

    #[test]
    fn loss_gradient_pushes_pos_up_neg_down() {
        let mut g = Graph::new();
        let p = g.leaf(Tensor::from_vec(1, 1, vec![0.3]));
        let n = g.leaf(Tensor::from_vec(1, 1, vec![0.4]));
        let l = softmax_pair_loss(&mut g, p, n, None);
        g.backward(l);
        assert!(g.grad(p).unwrap().item() < 0.0); // decrease loss by raising pos
        assert!(g.grad(n).unwrap().item() > 0.0);
    }

    #[test]
    fn semi_loss_rewards_agreeing_similarities() {
        let mut g = Graph::new();
        let sims = g.leaf(Tensor::from_vec(2, 1, vec![0.9, 0.8]));
        let l = semi_supervised_loss(&mut g, sims, &[0.95, 0.92]);
        let high_agreement = g.value(l).item();

        let mut g2 = Graph::new();
        let sims2 = g2.leaf(Tensor::from_vec(2, 1, vec![0.1, 0.0]));
        let l2 = semi_supervised_loss(&mut g2, sims2, &[0.95, 0.92]);
        let low_agreement = g2.value(l2).item();
        assert!(high_agreement < low_agreement);
    }

    #[test]
    fn semi_loss_gradient_raises_sims() {
        let mut g = Graph::new();
        let sims = g.leaf(Tensor::from_vec(1, 1, vec![0.5]));
        let l = semi_supervised_loss(&mut g, sims, &[0.9]);
        g.backward(l);
        // dL/dsim = −S0/m < 0: gradient descent raises the similarity.
        assert!(g.grad(sims).unwrap().item() < 0.0);
    }
}

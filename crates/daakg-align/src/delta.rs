//! Live KG updates: the append-only delta layer beside a published
//! snapshot.
//!
//! Published snapshots (PR 4) are immutable — right for readers, wrong as
//! the *only* write path when the KGs keep growing mid-campaign. This
//! module adds the missing write path without giving up any read-side
//! guarantee:
//!
//! * `DeltaBuffer` — an append-only side corpus of new right-KG
//!   entities. Each entry's embedding is trained by the warm-start path
//!   ([`daakg_embed::warm_start_row`]) against the frozen published
//!   tables, then **normalized exactly as snapshot construction
//!   normalizes its slabs** (per-row, independent), so a delta row scores
//!   bit-for-bit as if it had been part of the base candidate matrix.
//! * `DeltaSlab` — the query-facing view: normalized pending rows,
//!   transposed for the shared [`daakg_index::scan::scan_block`] kernel,
//!   with global candidate ids threaded through the kernel's remap slice.
//!   `DeltaSlab::merge_into` folds a base ranking and the delta scan
//!   through one bounded [`TopKSelector`] per query — selector pushes are
//!   order-independent under *(score desc, id asc)*, so the merged top-k
//!   over base ∪ delta is **bitwise-equal to an exact scan over the union
//!   corpus**.
//! * **Durable segments** — every entry persists as one atomic
//!   section-format file (`d0000000042.dseg`) in the snapshot store
//!   directory, all-or-nothing under the store's CRC discipline; warm
//!   restarts replay the contiguous run of segment ids starting at the
//!   recovered snapshot's right-entity count (the *last intact prefix*)
//!   and surface anything torn or flipped as a typed
//!   [`DaakgError::Corrupt`].
//! * `Compactor` — the background thread harness that periodically folds
//!   the delta into the next published snapshot. Same lifecycle
//!   discipline as the ingress worker: a named thread, condvar ticks, a
//!   panic-isolated task boundary with a counter, and a
//!   drain-then-join `Drop`.
//!
//! The anchor invariant that makes mixed-version serving safe: a slab is
//! only merged into queries whose pinned snapshot is exactly the
//! **version** the slab was built against. Anchoring by version (not by
//! right-entity count) matters because a retrain typically publishes a
//! snapshot with the *same* entity count but entirely re-derived tables —
//! a count-keyed slab would transiently merge superseded delta rows into
//! the fresh publication. Across a compaction publish the buffer keeps
//! **two** slabs — the pre-fold slab (matching still-pinned older
//! versions) and the post-fold remainder (matching the new version) — so
//! no reader ever transiently loses a delta entity.

use crate::ingress::lock_recover;
use daakg_autograd::Tensor;
use daakg_embed::WarmStartConfig;
use daakg_graph::DaakgError;
use daakg_index::scan::{normalize_rows_cosine, scan_block, TopKSelector};
use daakg_store::format::{SectionReader, SectionWriter};
use daakg_store::store::write_atomic;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Payload-kind discriminator of delta segment files ("ADL1").
pub(crate) const FILE_KIND_DELTA: u32 = u32::from_le_bytes(*b"ADL1");
/// Segment file extension.
const SEGMENT_EXT: &str = "dseg";

/// One asserted triple anchoring a new right-KG entity to an existing
/// entity (or an earlier delta entity). `neighbor` is a *global* right
/// entity id — a base row when `< base_n`, an earlier delta entry
/// otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaTriple {
    /// Relation id in the right KG.
    pub rel: u32,
    /// Global right-entity id of the other endpoint.
    pub neighbor: u32,
    /// Direction: `true` when the new entity is the head.
    pub outgoing: bool,
}

/// One pending delta entity: its global id, raw (un-normalized) trained
/// embedding, and the triples that anchored the warm start.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaEntry {
    /// Global right-entity id (`base_n + position` at append time; stable
    /// across compactions).
    pub global_id: u32,
    /// Raw trained embedding row (normalized only inside the query slab).
    pub raw: Vec<f32>,
    /// The triples given at upsert time.
    pub triples: Vec<DeltaTriple>,
}

// ---------------------------------------------------------------------------
// Query-facing slab
// ---------------------------------------------------------------------------

/// An immutable scan view over the pending delta rows, anchored to one
/// published snapshot version.
#[derive(Debug)]
pub(crate) struct DeltaSlab {
    /// The snapshot version this slab extends — the merge key (see the
    /// module docs for why the anchor is the version, not the count).
    anchor: u64,
    /// Embedding width.
    dim: usize,
    /// Number of delta rows.
    len: usize,
    /// Row-normalized delta rows, transposed (`dim` rows × `len` cols) for
    /// the vertical-accumulation scan kernel.
    ct: Vec<f32>,
    /// Global candidate id per column (`base_n..base_n + len`).
    ids: Vec<u32>,
}

impl DeltaSlab {
    /// Build a slab from pending entries. Normalization is per-row and
    /// independent, exactly [`normalize_rows_cosine`] over the stacked raw
    /// rows — the same bits the rows would get inside a snapshot engine.
    fn build(anchor: u64, base_n: usize, dim: usize, entries: &[DeltaEntry]) -> Self {
        let len = entries.len();
        let mut rows = Tensor::zeros(len, dim);
        for (i, e) in entries.iter().enumerate() {
            rows.row_mut(i).copy_from_slice(&e.raw);
        }
        normalize_rows_cosine(&mut rows);
        let mut ct = vec![0.0f32; dim * len];
        for i in 0..len {
            let row = rows.row(i);
            for l in 0..dim {
                ct[l * len + i] = row[l];
            }
        }
        let ids = (0..len).map(|i| (base_n + i) as u32).collect();
        Self {
            anchor,
            dim,
            len,
            ct,
            ids,
        }
    }

    /// Number of delta rows in the slab.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Merge a base ranking with an exact scan over the delta rows, one
    /// bounded selector per query.
    ///
    /// * `panel` — `nq` contiguous normalized query rows of width `dim`
    ///   (the engine's `normalized_query`/gathered panel — the same rows
    ///   the base ranking was scored with);
    /// * `k` — `None` for a full ranking, `Some(k)` for top-k;
    /// * `base_total` — number of candidates in the base corpus;
    /// * `base` — per-query base rankings (full for `k = None`, best
    ///   `min(k, base_total)` otherwise).
    ///
    /// Selector pushes are order-independent under *(score desc, id asc)*
    /// and delta scores come from the same kernel over identically
    /// normalized rows, so the output is bitwise what one exact scan over
    /// the `base_total + len` union corpus would produce.
    pub(crate) fn merge_into(
        &self,
        panel: &[f32],
        nq: usize,
        k: Option<usize>,
        base_total: usize,
        base: Vec<Vec<(u32, f32)>>,
    ) -> Vec<Vec<(u32, f32)>> {
        debug_assert_eq!(panel.len(), nq * self.dim);
        debug_assert_eq!(base.len(), nq);
        if self.len == 0 {
            return base;
        }
        let total = base_total + self.len;
        let bound = k.map_or(total, |k| k.min(total));
        let mut selectors: Vec<TopKSelector> = (0..nq).map(|_| TopKSelector::new(bound)).collect();
        for (sel, ranking) in selectors.iter_mut().zip(&base) {
            for &(id, score) in ranking {
                sel.push(id, score);
            }
        }
        scan_block(
            panel,
            self.dim,
            nq,
            &self.ct,
            self.len,
            &self.ids,
            &mut selectors,
        );
        selectors
            .into_iter()
            .map(TopKSelector::into_sorted)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Buffer
// ---------------------------------------------------------------------------

struct BufferInner {
    /// Anchor: the published snapshot version pending entries extend.
    anchor: u64,
    /// Right-entity count of the anchor snapshot.
    base_n: usize,
    /// Pending (uncompacted) entries; entry `j` has global id `base_n + j`.
    entries: Vec<DeltaEntry>,
    /// Scan view over `entries`, anchored at `anchor`.
    current: Arc<DeltaSlab>,
    /// The pre-fold slab kept across one compaction publish, so queries
    /// pinned to the previous version keep seeing the folded entities.
    prev: Option<Arc<DeltaSlab>>,
}

/// The append-only delta corpus attached to a live service. All mutation
/// happens under one short-held mutex; queries only clone an `Arc` out.
pub(crate) struct DeltaBuffer {
    dim: usize,
    inner: Mutex<BufferInner>,
    /// Total accepted upserts (monotonic, includes folded entries).
    upserts: AtomicU64,
}

impl DeltaBuffer {
    /// An empty buffer anchored at snapshot version `anchor` with `base_n`
    /// right entities of width `dim`.
    pub(crate) fn new(anchor: u64, base_n: usize, dim: usize) -> Self {
        Self {
            dim,
            inner: Mutex::new(BufferInner {
                anchor,
                base_n,
                entries: Vec::new(),
                current: Arc::new(DeltaSlab::build(anchor, base_n, dim, &[])),
                prev: None,
            }),
            upserts: AtomicU64::new(0),
        }
    }

    /// Number of pending (uncompacted) entries.
    pub(crate) fn depth(&self) -> usize {
        lock_recover(&self.inner).entries.len()
    }

    /// Total accepted upserts, monotonic across compactions.
    pub(crate) fn upserts(&self) -> u64 {
        self.upserts.load(Ordering::Relaxed)
    }

    /// Current anchor (the snapshot version the pending entries extend).
    pub(crate) fn anchor(&self) -> u64 {
        lock_recover(&self.inner).anchor
    }

    /// Right-entity count of the anchor snapshot.
    #[cfg(test)]
    pub(crate) fn base_n(&self) -> usize {
        lock_recover(&self.inner).base_n
    }

    /// The global id the *next* appended entry will receive.
    #[cfg(test)]
    pub(crate) fn next_id(&self) -> u32 {
        let inner = lock_recover(&self.inner);
        (inner.base_n + inner.entries.len()) as u32
    }

    /// Snapshot of the pending entries (cheap clones, for neighbor
    /// resolution and fold preparation).
    pub(crate) fn pending(&self) -> (usize, Vec<DeltaEntry>) {
        let inner = lock_recover(&self.inner);
        (inner.base_n, inner.entries.clone())
    }

    /// Append a trained entry; its `global_id` must be the buffer's
    /// `next_id` (the caller serializes upserts). Rebuilds the current
    /// slab under the lock (`O(len·dim)` — pending depth is bounded by
    /// the compaction threshold in steady state).
    pub(crate) fn append(&self, entry: DeltaEntry) -> Result<(), DaakgError> {
        if entry.raw.len() != self.dim {
            return Err(DaakgError::DimensionMismatch {
                context: "DeltaBuffer row width",
                expected: self.dim,
                got: entry.raw.len(),
            });
        }
        let mut inner = lock_recover(&self.inner);
        let expect = (inner.base_n + inner.entries.len()) as u32;
        if entry.global_id != expect {
            return Err(DaakgError::InvalidConfig {
                context: "DeltaBuffer",
                reason: format!(
                    "entry id {} where the next id is {expect} (upserts must be serialized)",
                    entry.global_id
                ),
            });
        }
        inner.entries.push(entry);
        inner.current = Arc::new(DeltaSlab::build(
            inner.anchor,
            inner.base_n,
            self.dim,
            &inner.entries,
        ));
        self.upserts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Replace a pending entry in place (the `upsert_triples` re-finetune
    /// path). The id must still be pending; folded ids are the base
    /// corpus's business now.
    pub(crate) fn replace(&self, entry: DeltaEntry) -> Result<(), DaakgError> {
        if entry.raw.len() != self.dim {
            return Err(DaakgError::DimensionMismatch {
                context: "DeltaBuffer row width",
                expected: self.dim,
                got: entry.raw.len(),
            });
        }
        let mut inner = lock_recover(&self.inner);
        let base = inner.base_n;
        let pos = (entry.global_id as usize)
            .checked_sub(base)
            .filter(|&p| p < inner.entries.len())
            .ok_or_else(|| DaakgError::UnknownEntity {
                kg: "delta".into(),
                id: entry.global_id,
                bound: base + inner.entries.len(),
            })?;
        inner.entries[pos] = entry;
        inner.current = Arc::new(DeltaSlab::build(
            inner.anchor,
            base,
            self.dim,
            &inner.entries,
        ));
        Ok(())
    }

    /// The slab to merge into a query pinned to snapshot `version` — the
    /// current slab, the kept pre-fold slab, or nothing when neither
    /// anchor matches (e.g. a retrain superseded the delta, or the query
    /// pinned a fresh publication the buffer has not re-anchored to yet).
    /// Empty slabs return `None` (nothing to merge).
    pub(crate) fn slab_for(&self, version: u64) -> Option<Arc<DeltaSlab>> {
        let inner = lock_recover(&self.inner);
        if inner.current.anchor == version && inner.current.len > 0 {
            return Some(Arc::clone(&inner.current));
        }
        inner
            .prev
            .as_ref()
            .filter(|s| s.anchor == version && s.len > 0)
            .map(Arc::clone)
    }

    /// Entries eligible for folding into snapshot `version`: the pending
    /// prefix, only when the anchor matches. `None` when there is nothing
    /// to fold or the anchor moved (a retrain republished a model-shaped
    /// snapshot).
    pub(crate) fn fold_candidates(&self, version: u64) -> Option<Vec<DeltaEntry>> {
        let inner = lock_recover(&self.inner);
        (inner.anchor == version && !inner.entries.is_empty()).then(|| inner.entries.clone())
    }

    /// Commit a fold of the first `count` pending entries into the newly
    /// published snapshot `folded`: keep the pre-fold slab for
    /// still-pinned readers, advance the anchor to the folded version,
    /// and rebuild the current slab from whatever was appended meanwhile.
    pub(crate) fn fold_committed(&self, count: usize, folded: u64) {
        let mut inner = lock_recover(&self.inner);
        debug_assert!(count <= inner.entries.len());
        inner.prev = Some(Arc::clone(&inner.current));
        inner.entries.drain(..count);
        inner.anchor = folded;
        inner.base_n += count;
        inner.current = Arc::new(DeltaSlab::build(
            folded,
            inner.base_n,
            self.dim,
            &inner.entries,
        ));
    }

    /// Re-anchor after a supersession (a retrain published a snapshot the
    /// pending entries no longer extend): drop everything and start fresh
    /// at the superseding version and right-entity count. Returns the
    /// dropped entries so the caller can retire their segment files —
    /// which it must do only once the superseding snapshot is durably
    /// persisted, because until then those files are the only durable
    /// copies of the acknowledged upserts.
    pub(crate) fn reanchor(&self, anchor: u64, base_n: usize) -> Vec<DeltaEntry> {
        let mut inner = lock_recover(&self.inner);
        let dropped = std::mem::take(&mut inner.entries);
        inner.anchor = anchor;
        inner.base_n = base_n;
        inner.prev = None;
        inner.current = Arc::new(DeltaSlab::build(anchor, base_n, self.dim, &[]));
        dropped
    }

    /// Seed recovered entries (warm restart). The entries must be the
    /// contiguous id run starting at the buffer's anchor.
    pub(crate) fn restore(&self, entries: Vec<DeltaEntry>) -> Result<(), DaakgError> {
        let count = entries.len() as u64;
        for e in entries {
            self.append(e)?;
        }
        // Restored rows don't count as fresh upserts.
        self.upserts.fetch_sub(count, Ordering::Relaxed);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Durable segments
// ---------------------------------------------------------------------------

/// File name of one delta segment (`d0000000042.dseg`).
pub(crate) fn segment_name(global_id: u32) -> String {
    format!("d{global_id:010}.{SEGMENT_EXT}")
}

/// Parse a segment file name back to its global id; `None` for anything
/// that is not exactly `d` + 10 digits + `.dseg` (snapshot files, tmp
/// files and manifests never collide with this shape).
pub(crate) fn parse_segment_name(name: &str) -> Option<u32> {
    let digits = name
        .strip_prefix('d')?
        .strip_suffix(&format!(".{SEGMENT_EXT}"))?;
    if digits.len() != 10 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Serialize one entry into a section-format image.
pub(crate) fn encode_segment(entry: &DeltaEntry) -> Vec<u8> {
    let mut w = SectionWriter::new(FILE_KIND_DELTA);
    w.u64s(
        "meta",
        &[
            entry.global_id as u64,
            entry.raw.len() as u64,
            entry.triples.len() as u64,
        ],
    );
    w.f32s("row", 1, entry.raw.len(), &entry.raw);
    let mut tris = Vec::with_capacity(entry.triples.len() * 3);
    for t in &entry.triples {
        tris.push(t.rel);
        tris.push(t.neighbor);
        tris.push(t.outgoing as u32);
    }
    w.u32s("tris", &tris);
    w.finish()
}

/// Parse and validate one segment file back into an entry.
pub(crate) fn decode_segment(path: &Path, bytes: Vec<u8>) -> Result<DeltaEntry, DaakgError> {
    let r = SectionReader::parse(path, bytes, FILE_KIND_DELTA)?;
    let meta = r.u64s("meta")?;
    if meta.len() != 3 {
        return Err(r.corrupt("meta", format!("expected 3 words, found {}", meta.len())));
    }
    let (global_id, dim, tri_count) = (meta[0], meta[1] as usize, meta[2] as usize);
    if global_id > u32::MAX as u64 {
        return Err(r.corrupt("meta", format!("global id {global_id} exceeds u32")));
    }
    let row = r.f32s("row")?;
    if row.rows != 1 || row.cols != dim {
        return Err(r.corrupt(
            "row",
            format!("shape {}×{} where 1×{dim} was recorded", row.rows, row.cols),
        ));
    }
    let tris = r.u32s("tris")?;
    if tris.len() != tri_count * 3 {
        return Err(r.corrupt(
            "tris",
            format!("{} words for {tri_count} recorded triples", tris.len()),
        ));
    }
    let triples = tris
        .chunks_exact(3)
        .map(|c| DeltaTriple {
            rel: c[0],
            neighbor: c[1],
            outgoing: c[2] != 0,
        })
        .collect();
    Ok(DeltaEntry {
        global_id: global_id as u32,
        raw: row.data,
        triples,
    })
}

/// Durably persist one entry as an atomic segment file in `dir`.
pub(crate) fn write_segment(dir: &Path, entry: &DeltaEntry) -> Result<(), DaakgError> {
    write_atomic(
        &dir.join(segment_name(entry.global_id)),
        &encode_segment(entry),
    )
}

/// Remove the segment file of one global id; missing files are fine (a
/// crash may sit between publish and cleanup).
pub(crate) fn remove_segment(dir: &Path, global_id: u32) -> Result<(), DaakgError> {
    let path = dir.join(segment_name(global_id));
    match std::fs::remove_file(&path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(DaakgError::io_at(&path, e)),
    }
}

/// What segment replay found on a warm restart.
#[derive(Debug, Default)]
pub struct DeltaRecovery {
    /// Entries replayed into the buffer (the contiguous intact prefix).
    pub replayed: usize,
    /// Segments skipped with their typed errors: corrupt files, ids that
    /// break the contiguous run, or ids already folded into the base.
    pub skipped: Vec<(u32, DaakgError)>,
    /// Segment files removed (folded leftovers and everything at or past
    /// the first break — their ids will be re-issued by future upserts).
    pub removed: usize,
}

/// Replay delta segments from `dir` against a recovered snapshot with
/// `base_n` right entities.
///
/// The rule is *last intact prefix*: segments must form the contiguous id
/// run `base_n, base_n + 1, …`. Ids below `base_n` were already folded
/// into the recovered snapshot and are deleted; the first gap or corrupt
/// file ends the replay, and it plus everything after it is deleted with
/// the typed error recorded — those ids will be re-issued, so stale rows
/// must not resurface later.
///
/// Segments are only ever retired at runtime *after* a superseding
/// snapshot (fold or retrain) persisted successfully, so when a persist
/// failed before the crash, the files are still here and the recovered
/// snapshot is the pre-fold/pre-retrain one they extend — the replay
/// restores the acknowledged upserts instead of silently losing them.
pub(crate) fn recover_segments(
    dir: &Path,
    base_n: usize,
) -> Result<(Vec<DeltaEntry>, DeltaRecovery), DaakgError> {
    let mut found: Vec<(u32, PathBuf)> = Vec::new();
    let rd = std::fs::read_dir(dir).map_err(|e| DaakgError::io_at(dir, e))?;
    for dent in rd {
        let dent = dent.map_err(|e| DaakgError::io_at(dir, e))?;
        if let Some(id) = dent.file_name().to_str().and_then(parse_segment_name) {
            found.push((id, dent.path()));
        }
    }
    found.sort_by_key(|&(id, _)| id);

    let mut report = DeltaRecovery::default();
    let mut entries = Vec::new();
    let mut next = base_n as u32;
    let mut broken = false;
    for (id, path) in found {
        if (id as usize) < base_n {
            // Folded before the crash; the base corpus owns this row now.
            std::fs::remove_file(&path).map_err(|e| DaakgError::io_at(&path, e))?;
            report.removed += 1;
            continue;
        }
        if broken || id != next {
            if !broken {
                broken = true;
                report.skipped.push((
                    id,
                    DaakgError::Corrupt {
                        path: path.clone(),
                        section: "sequence".into(),
                        reason: format!("segment id {id} breaks the contiguous run at {next}"),
                    },
                ));
            }
            std::fs::remove_file(&path).map_err(|e| DaakgError::io_at(&path, e))?;
            report.removed += 1;
            continue;
        }
        let decoded = std::fs::read(&path)
            .map_err(|e| DaakgError::io_at(&path, e))
            .and_then(|bytes| decode_segment(&path, bytes))
            .and_then(|e| {
                if e.global_id == id {
                    Ok(e)
                } else {
                    Err(DaakgError::Corrupt {
                        path: path.clone(),
                        section: "meta".into(),
                        reason: format!("file named {id} records global id {}", e.global_id),
                    })
                }
            });
        match decoded {
            Ok(entry) => {
                entries.push(entry);
                report.replayed += 1;
                next += 1;
            }
            Err(err) => {
                broken = true;
                report.skipped.push((id, err));
                std::fs::remove_file(&path).map_err(|e| DaakgError::io_at(&path, e))?;
                report.removed += 1;
            }
        }
    }
    Ok((entries, report))
}

// ---------------------------------------------------------------------------
// Live configuration & health
// ---------------------------------------------------------------------------

/// Typed configuration of the live-update subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveConfig {
    /// Fold the delta into a new snapshot once this many entries are
    /// pending (the compactor also folds whatever is pending on its
    /// periodic tick).
    pub compact_after: usize,
    /// Compactor wake interval.
    pub tick: Duration,
    /// Warm-start fine-tune settings for new rows.
    pub warm: WarmStartConfig,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            compact_after: 64,
            tick: Duration::from_millis(50),
            warm: WarmStartConfig::default(),
        }
    }
}

impl LiveConfig {
    /// Reject unusable configurations with a typed error.
    pub fn validate(&self) -> Result<(), DaakgError> {
        if self.compact_after == 0 {
            return Err(DaakgError::InvalidConfig {
                context: "LiveConfig",
                reason: "compact_after must be at least 1".into(),
            });
        }
        if self.tick.is_zero() {
            return Err(DaakgError::InvalidConfig {
                context: "LiveConfig",
                reason: "tick must be positive".into(),
            });
        }
        self.warm.validate()
    }
}

/// Health counters of the live-update subsystem, surfaced through
/// `ServiceHealth`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveHealth {
    /// Pending (uncompacted) delta entries.
    pub delta_depth: usize,
    /// Upserts accepted since the service started.
    pub upserts: u64,
    /// Compactions published.
    pub compactions: u64,
    /// Panics caught and isolated at the compactor task boundary.
    pub compactor_panics: u64,
    /// How many full folds the compactor is behind:
    /// `delta_depth / compact_after`. Zero in steady state; growing values
    /// mean compaction cannot keep up with the upsert rate.
    pub compaction_lag: u64,
    /// The snapshot version the latest compaction published, if any.
    pub last_compacted_version: Option<u64>,
}

/// Shared compaction counters (written by the compactor thread and the
/// synchronous `compact_now` path, read by health).
#[derive(Debug, Default)]
pub(crate) struct LiveStats {
    /// Compactions published.
    pub(crate) compactions: AtomicU64,
    /// Panics caught at the compactor task boundary.
    pub(crate) panics: AtomicU64,
    /// `last published compaction version + 1` (0 = none yet) — offset so
    /// an `AtomicU64` can carry the `Option`.
    pub(crate) last_version: AtomicU64,
}

impl LiveStats {
    /// Record a published compaction.
    pub(crate) fn record(&self, version: u64) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.last_version.store(version + 1, Ordering::Relaxed);
    }

    /// The last published compaction version, if any.
    pub(crate) fn last_compacted(&self) -> Option<u64> {
        match self.last_version.load(Ordering::Relaxed) {
            0 => None,
            v => Some(v - 1),
        }
    }
}

// ---------------------------------------------------------------------------
// Compactor thread
// ---------------------------------------------------------------------------

struct CompactorShared {
    /// `true` once shutdown begins; guarded by the tick mutex.
    stop: Mutex<bool>,
    /// Periodic tick + shutdown + nudge wakeups.
    tick: Condvar,
}

/// The background compaction thread: runs a caller-supplied task every
/// tick (or on [`Compactor::nudge`]), isolating panics at the task
/// boundary exactly like the ingress dispatch loop. Dropping the handle
/// stops and joins the thread — no detached threads outlive the service.
pub(crate) struct Compactor {
    shared: Arc<CompactorShared>,
    handle: Option<JoinHandle<()>>,
}

impl Compactor {
    /// Spawn the `daakg-compact` thread running `task` every `interval`.
    /// A caught task panic counts into `stats.panics` and journals a
    /// [`daakg_telemetry::EventKind::CompactorPanic`] event (`journal`
    /// may be a no-op handle).
    pub(crate) fn spawn(
        interval: Duration,
        stats: Arc<LiveStats>,
        journal: daakg_telemetry::EventJournal,
        mut task: Box<dyn FnMut() + Send>,
    ) -> Self {
        let shared = Arc::new(CompactorShared {
            stop: Mutex::new(false),
            tick: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let thread_stats = stats;
        let handle = std::thread::Builder::new()
            .name("daakg-compact".into())
            .spawn(move || loop {
                // Wait first: the task runs on ticks and nudges, never
                // eagerly at spawn — a service that just replayed deltas
                // keeps them pending until the configured cadence says
                // otherwise. (A nudge landing while the task runs is
                // absorbed by the next tick — the tick is the backstop.)
                {
                    let stop = lock_recover(&thread_shared.stop);
                    if *stop {
                        return;
                    }
                    let (stop, _) = thread_shared
                        .tick
                        .wait_timeout(stop, interval)
                        .unwrap_or_else(|p| p.into_inner());
                    if *stop {
                        return;
                    }
                }
                // Panic isolation: a poisoned fold must not kill the
                // compactor — the next tick retries with fresh state.
                if catch_unwind(AssertUnwindSafe(&mut task)).is_err() {
                    thread_stats.panics.fetch_add(1, Ordering::Relaxed);
                    journal.record(daakg_telemetry::EventKind::CompactorPanic);
                }
            })
            .expect("spawn daakg-compact thread");
        Self {
            shared,
            handle: Some(handle),
        }
    }

    /// Wake the thread for an immediate compaction check (e.g. when an
    /// upsert pushes the depth past the threshold).
    pub(crate) fn nudge(&self) {
        self.shared.tick.notify_all();
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        *lock_recover(&self.shared.stop) = true;
        self.shared.tick.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::AtomicUsize;

    fn random_rows(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect()
    }

    fn entry(id: u32, raw: Vec<f32>) -> DeltaEntry {
        DeltaEntry {
            global_id: id,
            raw,
            triples: vec![DeltaTriple {
                rel: 0,
                neighbor: 0,
                outgoing: true,
            }],
        }
    }

    /// Exact union oracle: normalize base ∪ delta rows together, score one
    /// query against everything, sort by (score desc, id asc).
    fn union_oracle(
        base: &[Vec<f32>],
        delta: &[Vec<f32>],
        query: &[f32],
        k: Option<usize>,
    ) -> Vec<(u32, f32)> {
        let d = query.len();
        let all: Vec<&[f32]> = base.iter().chain(delta.iter()).map(Vec::as_slice).collect();
        let mut m = Tensor::from_rows(&all);
        normalize_rows_cosine(&mut m);
        let mut scored: Vec<(u32, f32)> = (0..m.rows())
            .map(|j| {
                let dot: f32 = query.iter().zip(m.row(j)).map(|(a, b)| a * b).sum();
                (j as u32, dot)
            })
            .collect();
        let _ = d;
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        if let Some(k) = k {
            scored.truncate(k);
        }
        scored
    }

    #[test]
    fn merge_is_bitwise_equal_to_union_scan() {
        let d = 16;
        let base_rows = random_rows(50, d, 1);
        let delta_rows = random_rows(9, d, 2);
        let base_n = base_rows.len();

        let mut base_t =
            Tensor::from_rows(&base_rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        normalize_rows_cosine(&mut base_t);
        let entries: Vec<DeltaEntry> = delta_rows
            .iter()
            .enumerate()
            .map(|(i, r)| entry((base_n + i) as u32, r.clone()))
            .collect();
        let slab = DeltaSlab::build(1, base_n, d, &entries);

        let queries = random_rows(7, d, 3);
        for q in &queries {
            let mut qt = Tensor::from_rows(&[q.as_slice()]);
            normalize_rows_cosine(&mut qt);
            let qn = qt.row(0).to_vec();
            for k in [Some(0), Some(5), Some(base_n + 9), Some(base_n + 12), None] {
                // Base ranking over base corpus only.
                let mut base_ranked: Vec<(u32, f32)> = (0..base_n)
                    .map(|j| {
                        let dot: f32 = qn.iter().zip(base_t.row(j)).map(|(a, b)| a * b).sum();
                        (j as u32, dot)
                    })
                    .collect();
                base_ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                if let Some(k) = k {
                    base_ranked.truncate(k);
                }
                let merged = slab
                    .merge_into(&qn, 1, k, base_n, vec![base_ranked])
                    .remove(0);
                let oracle = union_oracle(&base_rows, &delta_rows, &qn, k);
                assert_eq!(merged.len(), oracle.len(), "k={k:?}");
                for (rank, ((mi, ms), (oi, os))) in merged.iter().zip(&oracle).enumerate() {
                    assert_eq!(mi, oi, "k={k:?} rank {rank}");
                    assert_eq!(ms.to_bits(), os.to_bits(), "k={k:?} rank {rank}");
                }
            }
        }
    }

    #[test]
    fn merge_breaks_cross_boundary_ties_by_global_id() {
        // A delta row that is an exact copy of a base row scores exactly
        // equal; the base (lower) id must win the tie.
        let d = 8;
        let base_rows = random_rows(4, d, 7);
        let delta_rows = [base_rows[2].clone()];
        let base_n = base_rows.len();
        let entries = vec![entry(base_n as u32, delta_rows[0].clone())];
        let slab = DeltaSlab::build(1, base_n, d, &entries);

        let mut qt = Tensor::from_rows(&[base_rows[2].as_slice()]);
        normalize_rows_cosine(&mut qt);
        let qn = qt.row(0).to_vec();
        let mut base_t =
            Tensor::from_rows(&base_rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        normalize_rows_cosine(&mut base_t);
        let mut base_ranked: Vec<(u32, f32)> = (0..base_n)
            .map(|j| {
                let dot: f32 = qn.iter().zip(base_t.row(j)).map(|(a, b)| a * b).sum();
                (j as u32, dot)
            })
            .collect();
        base_ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        base_ranked.truncate(2);
        let merged = slab
            .merge_into(&qn, 1, Some(2), base_n, vec![base_ranked])
            .remove(0);
        assert_eq!(merged[0].0, 2, "base id wins the exact tie");
        assert_eq!(merged[1].0, base_n as u32, "delta copy ranks second");
        assert_eq!(merged[0].1.to_bits(), merged[1].1.to_bits());
    }

    #[test]
    fn buffer_appends_folds_and_reanchors() {
        let d = 4;
        let buf = DeltaBuffer::new(1, 10, d);
        assert_eq!(buf.depth(), 0);
        assert_eq!(buf.next_id(), 10);
        assert_eq!(buf.anchor(), 1);
        assert!(buf.slab_for(1).is_none(), "empty slab is not merged");

        for i in 0..3u32 {
            buf.append(entry(10 + i, vec![i as f32 + 1.0; d])).unwrap();
        }
        assert_eq!(buf.depth(), 3);
        assert_eq!(buf.upserts(), 3);
        let slab = buf.slab_for(1).expect("anchored slab");
        assert_eq!(slab.len(), 3);
        assert!(buf.slab_for(2).is_none(), "anchor mismatch yields none");

        // Wrong id or width is typed.
        assert!(buf.append(entry(99, vec![0.0; d])).is_err());
        assert!(buf.append(entry(13, vec![0.0; d + 1])).is_err());

        // Fold two of three into published version 2: the anchor advances,
        // the pre-fold slab stays reachable for readers pinned to the old
        // version.
        let folding = buf.fold_candidates(1).unwrap();
        assert_eq!(folding.len(), 3);
        buf.fold_committed(2, 2);
        assert_eq!(buf.depth(), 1);
        assert_eq!(buf.anchor(), 2);
        assert_eq!(buf.base_n(), 12);
        assert_eq!(buf.next_id(), 13);
        let old = buf.slab_for(1).expect("pre-fold slab kept");
        assert_eq!(old.len(), 3);
        let new = buf.slab_for(2).expect("post-fold slab");
        assert_eq!(new.len(), 1);
        assert!(buf.fold_candidates(1).is_none(), "anchor moved on");

        // Replace a pending entry; folded ids are rejected.
        buf.replace(entry(12, vec![9.0; d])).unwrap();
        assert!(buf.replace(entry(11, vec![9.0; d])).is_err());

        // Re-anchor (retrain supersession, version 3) drops the pending
        // tail — even though the retrain may keep the same entity count,
        // version anchoring keeps the stale slab out of fresh queries.
        let dropped = buf.reanchor(3, 40);
        assert_eq!(dropped.len(), 1);
        assert_eq!(buf.depth(), 0);
        assert_eq!(buf.anchor(), 3);
        assert_eq!(buf.next_id(), 40);
        assert!(buf.slab_for(2).is_none());
        assert!(buf.slab_for(3).is_none(), "fresh anchor starts empty");
    }

    /// The anchor is the *version*, not the entity count: a supersession
    /// that keeps `base_n` unchanged must still unhook both slabs.
    #[test]
    fn same_count_reanchor_unhooks_stale_slabs() {
        let d = 4;
        let buf = DeltaBuffer::new(5, 10, d);
        buf.append(entry(10, vec![1.0; d])).unwrap();
        buf.fold_committed(1, 6);
        buf.append(entry(11, vec![2.0; d])).unwrap();
        assert!(buf.slab_for(5).is_some(), "pre-fold slab serves v5");
        assert!(buf.slab_for(6).is_some(), "current slab serves v6");
        // Retrain publishes v7 with the SAME right-entity count (11).
        let dropped = buf.reanchor(7, 11);
        assert_eq!(dropped.len(), 1);
        for v in [5, 6, 7] {
            assert!(buf.slab_for(v).is_none(), "v{v} must not merge stale rows");
        }
    }

    #[test]
    fn segment_roundtrip_is_bitwise() {
        let e = DeltaEntry {
            global_id: 42,
            raw: vec![1.5, -0.25, f32::MIN_POSITIVE, -0.0],
            triples: vec![
                DeltaTriple {
                    rel: 3,
                    neighbor: 17,
                    outgoing: true,
                },
                DeltaTriple {
                    rel: 0,
                    neighbor: 41,
                    outgoing: false,
                },
            ],
        };
        let bytes = encode_segment(&e);
        let back = decode_segment(Path::new("mem"), bytes).unwrap();
        assert_eq!(back.global_id, 42);
        assert_eq!(
            back.raw.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            e.raw.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(back.triples, e.triples);
    }

    #[test]
    fn segment_names_roundtrip_and_reject_foreign_files() {
        assert_eq!(segment_name(42), "d0000000042.dseg");
        assert_eq!(parse_segment_name("d0000000042.dseg"), Some(42));
        for bad in [
            "v0000000042.snap",
            "d42.dseg",
            "d0000000042.dseg.tmp",
            "manifest",
            "d00000000420.dseg",
            "dXXXXXXXXXX.dseg",
        ] {
            assert_eq!(parse_segment_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn recovery_replays_contiguous_prefix_and_drops_the_rest() {
        let dir = daakg_store::TestDir::new("delta-recovery");
        let d = 4;
        // Segments 10, 11, 12, 14 (gap at 13) plus a folded leftover 8.
        for id in [8u32, 10, 11, 12, 14] {
            write_segment(dir.path(), &entry(id, vec![id as f32; d])).unwrap();
        }
        let (entries, report) = recover_segments(dir.path(), 10).unwrap();
        assert_eq!(entries.len(), 3, "contiguous 10..=12 replays");
        assert_eq!(
            entries.iter().map(|e| e.global_id).collect::<Vec<_>>(),
            vec![10, 11, 12]
        );
        assert_eq!(report.replayed, 3);
        // Folded 8 plus out-of-run 14 are removed; 14 is the typed break.
        assert_eq!(report.removed, 2);
        assert_eq!(report.skipped.len(), 1);
        assert!(matches!(report.skipped[0].1, DaakgError::Corrupt { .. }));
        // Second recovery is clean: only the intact prefix remains.
        let (entries, report) = recover_segments(dir.path(), 10).unwrap();
        assert_eq!(entries.len(), 3);
        assert!(report.skipped.is_empty());
        assert_eq!(report.removed, 0);
    }

    #[test]
    fn corrupt_segment_ends_the_prefix_with_a_typed_error() {
        let dir = daakg_store::TestDir::new("delta-corrupt");
        let d = 4;
        for id in [5u32, 6, 7] {
            write_segment(dir.path(), &entry(id, vec![id as f32; d])).unwrap();
        }
        // Flip one payload bit in segment 6: 5 survives, 6 and 7 go.
        let victim = dir.path().join(segment_name(6));
        daakg_store::fault::flip_bit(&victim, 70, 3).unwrap();
        let (entries, report) = recover_segments(dir.path(), 5).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].global_id, 5);
        assert_eq!(report.replayed, 1);
        assert_eq!(report.removed, 2);
        assert_eq!(report.skipped.len(), 1);
        let (id, err) = &report.skipped[0];
        assert_eq!(*id, 6);
        assert!(matches!(err, DaakgError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn truncated_segment_is_typed_corrupt_at_every_cut() {
        let e = entry(3, vec![0.5; 6]);
        let bytes = encode_segment(&e);
        for cut in [0, 1, 31, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_segment(Path::new("mem"), bytes[..cut].to_vec())
                .expect_err("truncated segment must not parse");
            assert!(
                matches!(err, DaakgError::Corrupt { .. }),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn compactor_runs_isolates_panics_and_joins_on_drop() {
        let stats = Arc::new(LiveStats::default());
        let runs = Arc::new(AtomicUsize::new(0));
        let task_runs = Arc::clone(&runs);
        let journal = daakg_telemetry::EventJournal::new(16);
        let compactor = Compactor::spawn(
            Duration::from_millis(5),
            Arc::clone(&stats),
            journal.clone(),
            Box::new(move || {
                let n = task_runs.fetch_add(1, Ordering::SeqCst);
                if n == 1 {
                    panic!("injected compaction panic");
                }
            }),
        );
        // Nudges and ticks keep the task running past the panic.
        for _ in 0..50 {
            compactor.nudge();
            std::thread::sleep(Duration::from_millis(2));
            if runs.load(Ordering::SeqCst) >= 4 {
                break;
            }
        }
        assert!(runs.load(Ordering::SeqCst) >= 4, "task kept running");
        assert_eq!(
            stats.panics.load(Ordering::Relaxed),
            1,
            "panic isolated and counted"
        );
        drop(compactor);
        let after = runs.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(runs.load(Ordering::SeqCst), after, "thread joined on drop");
        assert_eq!(stats.panics.load(Ordering::Relaxed), 1);
        let panics: Vec<_> = journal
            .events()
            .into_iter()
            .filter(|e| e.kind == daakg_telemetry::EventKind::CompactorPanic)
            .collect();
        assert_eq!(panics.len(), 1, "panic journaled exactly once");
    }

    #[test]
    fn live_config_validation_is_typed() {
        assert!(LiveConfig::default().validate().is_ok());
        let bad = LiveConfig {
            compact_after: 0,
            ..LiveConfig::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(DaakgError::InvalidConfig { .. })
        ));
        let bad = LiveConfig {
            tick: Duration::ZERO,
            ..LiveConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = LiveConfig {
            warm: WarmStartConfig {
                epochs: 0,
                ..WarmStartConfig::default()
            },
            ..LiveConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn live_stats_track_last_version() {
        let stats = LiveStats::default();
        assert_eq!(stats.last_compacted(), None);
        stats.record(0);
        assert_eq!(stats.last_compacted(), Some(0));
        stats.record(7);
        assert_eq!(stats.last_compacted(), Some(7));
        assert_eq!(stats.compactions.load(Ordering::Relaxed), 2);
    }
}

//! # daakg-align
//!
//! The embedding-based joint alignment module of DAAKG (Sect. 4.2).
//!
//! Given two KGs with entity–relation embedding models (from `daakg-embed`),
//! this crate aligns entities, relations and classes simultaneously:
//!
//! * [`mapping`] — the learnable mapping matrices `A_ent`, `A_rel`, `A_cls`
//!   transporting embeddings of `G` into the space of `G'` (Eq. 4),
//! * [`weights`] — dangling-entity weights `w_e = max_{e'} S(e, e')`
//!   (Eq. 6),
//! * [`mean_embed`] — weighted mean embeddings for relations (Eq. 7) and
//!   classes (Eq. 9) that transport entity-level evidence to the schema
//!   level,
//! * [`batched`] — the batched similarity engine: pre-normalized
//!   matrices, block matmul scoring, bounded-heap top-k selection,
//! * [`snapshot`] — a tape-free [`AlignmentSnapshot`] with all similarity
//!   functions `S(·,·)`, ranking served by the batched engine,
//! * [`losses`] — the softmax alignment losses `O_ea`, `O_ra`, `O_ca`
//!   (Eq. 5, 8), the focal fine-tuning variant, and the semi-supervised loss
//!   `O_semi` (Eq. 10),
//! * [`semi`] — potential-match mining with conflict resolution,
//! * [`calibrate`] — temperature-scaled alignment probabilities
//!   (Eq. 11–12),
//! * [`joint`] — [`JointModel`], the orchestrating type whose
//!   `train`/`fine_tune` drive the whole module,
//! * [`service`] — [`AlignmentService`], the concurrent serve-while-train
//!   layer: an atomic-swap registry of immutable, versioned snapshots;
//!   queries run lock-free on whatever version they grab while training
//!   publishes new versions. With a [`ServingConfig`] index, each
//!   publication carries a lazily-built `daakg_index::IvfIndex` and
//!   queries can run in sublinear [`QueryMode::Approx`],
//! * [`persist`] — crash-safe durability: the checksummed snapshot codec
//!   on the `daakg-store` section format and [`DurableRegistry`], the
//!   on-disk version registry that `AlignmentService::open` warm-restarts
//!   from, skipping corrupt or torn files with typed diagnostics,
//! * [`query`] — [`QueryExecutor`], the unified options-based query
//!   surface both serving front-ends implement,
//! * [`shard`] — [`ShardedService`], scatter-gather serving: the corpus
//!   partitioned across N shards (each with its own slab and per-shard
//!   IVF index), merged bitwise-identically to the unsharded scan,
//! * [`ingress`] — the micro-batching ingress coalescing concurrent
//!   single queries into batched kernel dispatches under a configurable
//!   time/size window ([`IngressConfig`]) — with overload resilience:
//!   bounded-queue admission control, per-query deadlines, panic
//!   isolation at the dispatch boundary, typed shutdown, and opt-in
//!   graceful degradation ([`DegradePolicy`]),
//! * [`delta`] — **live KG updates**: an append-only delta layer
//!   ([`AlignmentService::upsert_entity`]) accepting new right-KG
//!   entities while serving, warm-start fine-tuned embeddings
//!   (`daakg_embed::warm_start_row`), a background compactor folding
//!   deltas into the next published snapshot, and crash-safe delta
//!   segments so durable services warm-restart with base + uncompacted
//!   deltas. Delta-merged answers are bitwise-equal to an exact scan
//!   over the union corpus.

pub mod batched;
pub mod calibrate;
pub mod config;
pub mod delta;
pub mod ingress;
pub mod joint;
pub mod losses;
pub mod mapping;
pub mod mean_embed;
pub mod persist;
pub mod query;
pub mod semi;
pub mod service;
pub mod shard;
pub mod snapshot;
pub(crate) mod telem;
pub mod weights;

pub use batched::BatchedSimilarity;
pub use config::JointConfig;
pub use delta::{DeltaEntry, DeltaRecovery, DeltaTriple, LiveConfig, LiveHealth};
// Serving-mode types live in `daakg-index`; re-exported here because the
// service API consumes them.
pub use daakg_index::{IvfConfig, IvfIndex, QueryMode, QueryOptions};
pub use ingress::{DegradePolicy, IngressConfig, IngressStats, PendingAnswer};
pub use joint::{JointModel, LabeledMatches};
pub use persist::{DurableRegistry, RecoveryReport};
pub use query::QueryExecutor;
pub use service::{
    AlignmentService, Served, ServiceHealth, ServingConfig, SnapshotRegistry, SnapshotVersion,
    Versioned, VersionedSnapshot,
};
pub use shard::ShardedService;
pub use snapshot::AlignmentSnapshot;
// Telemetry types surface through the service API
// (`AlignmentService::telemetry`), so re-export the crate here too.
pub use daakg_telemetry::{Event, EventJournal, EventKind, Telemetry, TelemetryConfig};

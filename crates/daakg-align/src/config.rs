//! Configuration of the joint alignment module, including the ablation
//! toggles studied in Table 5.

use daakg_embed::EmbedConfig;
use daakg_graph::DaakgError;

/// Hyper-parameters of the joint alignment model.
///
/// Values follow Sect. 7.1: similarity threshold `τ = 0.9`, temperatures
/// `Z_ent = 0.05`, `Z_rel = Z_cls = 0.1`, focal parameter `γ = 2`.
#[derive(Debug, Clone, Copy)]
pub struct JointConfig {
    /// Embedding model configuration (shared by both KGs).
    pub embed: EmbedConfig,
    /// Epochs of joint alignment training per round.
    pub align_epochs: usize,
    /// Learning rate for alignment training.
    pub align_lr: f32,
    /// Number of sampled negatives per labeled match.
    pub align_negatives: usize,
    /// Similarity threshold `τ` for semi-supervised pair mining (Eq. 10).
    pub semi_threshold: f32,
    /// Temperature `Z_ent` for entity alignment probabilities (Eq. 11).
    pub z_ent: f32,
    /// Temperature `Z_rel` for relation alignment probabilities.
    pub z_rel: f32,
    /// Temperature `Z_cls` for class alignment probabilities.
    pub z_cls: f32,
    /// Focal-loss focus parameter `γ` (Sect. 4.2, set to 2 as in Lin et al.).
    pub focal_gamma: f32,
    /// Fine-tuning epochs when new labels arrive.
    pub fine_tune_epochs: usize,
    /// Ablation: encode classes with the dedicated entity-class model
    /// (`false` = "w/o class embeddings": classes are aligned through mean
    /// embeddings only).
    pub use_class_embeddings: bool,
    /// Ablation: use weighted mean embeddings for schema alignment
    /// (`false` = "w/o mean embeddings").
    pub use_mean_embeddings: bool,
    /// Ablation: leverage semi-supervised potential matches
    /// (`false` = "w/o semi-supervision").
    pub use_semi_supervision: bool,
}

impl Default for JointConfig {
    fn default() -> Self {
        Self {
            embed: EmbedConfig::default(),
            align_epochs: 40,
            align_lr: 2e-2,
            align_negatives: 4,
            semi_threshold: 0.9,
            z_ent: 0.05,
            z_rel: 0.1,
            z_cls: 0.1,
            focal_gamma: 2.0,
            fine_tune_epochs: 10,
            use_class_embeddings: true,
            use_mean_embeddings: true,
            use_semi_supervision: true,
        }
    }
}

impl JointConfig {
    /// Full DAAKG with the given embedding config.
    pub fn with_embed(embed: EmbedConfig) -> Self {
        Self {
            embed,
            ..Self::default()
        }
    }

    /// Ablation "w/o class embeddings" (Table 5).
    pub fn without_class_embeddings(mut self) -> Self {
        self.use_class_embeddings = false;
        self
    }

    /// Ablation "w/o mean embeddings" (Table 5).
    pub fn without_mean_embeddings(mut self) -> Self {
        self.use_mean_embeddings = false;
        self
    }

    /// Ablation "w/o semi-supervision" (Table 5).
    pub fn without_semi_supervision(mut self) -> Self {
        self.use_semi_supervision = false;
        self
    }

    /// A fast-running configuration for tests and examples.
    pub fn fast() -> Self {
        Self {
            embed: EmbedConfig {
                dim: 16,
                class_dim: 8,
                epochs: 10,
                batch_size: 128,
                ..EmbedConfig::default()
            },
            align_epochs: 15,
            fine_tune_epochs: 5,
            ..Self::default()
        }
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), DaakgError> {
        self.embed.validate()?;
        let invalid = |reason: &str| DaakgError::invalid("JointConfig", reason);
        if !(0.0..=1.0).contains(&self.semi_threshold) {
            return Err(invalid("semi_threshold must be within [0, 1]"));
        }
        if self.z_ent <= 0.0 || self.z_rel <= 0.0 || self.z_cls <= 0.0 {
            return Err(invalid("temperatures must be positive"));
        }
        if self.focal_gamma < 0.0 {
            return Err(invalid("focal_gamma must be non-negative"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = JointConfig::default();
        assert_eq!(c.semi_threshold, 0.9);
        assert_eq!(c.z_ent, 0.05);
        assert_eq!(c.z_rel, 0.1);
        assert_eq!(c.focal_gamma, 2.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn ablation_builders() {
        let c = JointConfig::default()
            .without_class_embeddings()
            .without_mean_embeddings()
            .without_semi_supervision();
        assert!(!c.use_class_embeddings);
        assert!(!c.use_mean_embeddings);
        assert!(!c.use_semi_supervision);
    }

    #[test]
    fn invalid_temperature_rejected() {
        let c = JointConfig {
            z_ent: 0.0,
            ..JointConfig::default()
        };
        assert!(c.validate().is_err());
        let c = JointConfig {
            semi_threshold: 1.5,
            ..JointConfig::default()
        };
        assert!(c.validate().is_err());
    }
}

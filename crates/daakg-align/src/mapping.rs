//! The learnable mapping matrices of the joint alignment model (Eq. 4).
//!
//! Embeddings of `G` are transported into the space of `G'` by right
//! multiplication: a row embedding `e` maps to `e · A`. Three matrices are
//! learned: `A_ent` (entity space, also used for mean embeddings), `A_rel`
//! (relation space) and `A_cls` (class-embedding space).

use daakg_autograd::{init, ParamStore, Tensor};
use rand::rngs::StdRng;

/// Parameter names of the mapping matrices.
pub mod map_names {
    /// Entity mapping matrix `A_ent` (`d_e × d_e`).
    pub const A_ENT: &str = "map.a_ent";
    /// Relation mapping matrix `A_rel` (`d_r × d_r`).
    pub const A_REL: &str = "map.a_rel";
    /// Class mapping matrix `A_cls` (`2d_c × 2d_c`).
    pub const A_CLS: &str = "map.a_cls";
}

/// Initialize the three mapping matrices near the identity.
pub fn init_mappings(
    rng: &mut StdRng,
    store: &mut ParamStore,
    entity_dim: usize,
    relation_dim: usize,
    class_embed_dim: usize,
) {
    store.insert(map_names::A_ENT, init::near_identity(rng, entity_dim, 0.02));
    store.insert(
        map_names::A_REL,
        init::near_identity(rng, relation_dim, 0.02),
    );
    store.insert(
        map_names::A_CLS,
        init::near_identity(rng, class_embed_dim, 0.02),
    );
}

/// Map a row vector through a mapping matrix: `e · A`.
pub fn map_row(row: &[f32], a: &Tensor) -> Vec<f32> {
    let (d_in, d_out) = a.shape();
    assert_eq!(row.len(), d_in, "mapping dimension mismatch");
    let mut out = vec![0.0f32; d_out];
    for (i, &v) in row.iter().enumerate() {
        if v == 0.0 {
            continue;
        }
        let arow = a.row(i);
        for (o, &w) in out.iter_mut().zip(arow) {
            *o += v * w;
        }
    }
    out
}

/// Map every row of a matrix: `M · A`.
pub fn map_matrix(m: &Tensor, a: &Tensor) -> Tensor {
    m.matmul(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn init_creates_all_three() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        init_mappings(&mut rng, &mut store, 8, 4, 6);
        assert_eq!(store.get(map_names::A_ENT).shape(), (8, 8));
        assert_eq!(store.get(map_names::A_REL).shape(), (4, 4));
        assert_eq!(store.get(map_names::A_CLS).shape(), (6, 6));
    }

    #[test]
    fn identity_mapping_is_noop() {
        let a = Tensor::identity(3);
        let row = vec![1.0, -2.0, 0.5];
        assert_eq!(map_row(&row, &a), row);
        let m = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(map_matrix(&m, &a), m);
    }

    #[test]
    fn map_row_matches_matmul() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let row = vec![0.5, -1.0];
        let via_row = map_row(&row, &a);
        let via_mat = Tensor::row_vector(&row).matmul(&a);
        assert_eq!(via_row, via_mat.as_slice());
    }
}

//! Weighted mean embeddings for relations (Eq. 7) and classes (Eq. 9).
//!
//! For a relation `r`, each triple `(e, r, e')` determines a *local optimum*
//! relation embedding — for translational decoders that optimum is the
//! entity-space difference `e' − e` (for TransE exactly; for the other
//! models it is the same first-order approximation the paper uses when it
//! maps mean embeddings with `A_ent`). The mean embedding softly averages
//! these local optima with weights `min(w_e, w_{e'})`, so triples touching
//! dangling entities are soft-removed.
//!
//! For a class `c`, the mean embedding averages the embeddings of its
//! member entities with weights `w_e`.

use crate::weights::EntityWeights;
use daakg_autograd::Tensor;
use daakg_graph::KnowledgeGraph;

/// Which side of the KG pair the weights refer to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The first KG `G`.
    Left,
    /// The second KG `G'`.
    Right,
}

/// Mean relation embeddings `r̄` (Eq. 7): one row per relation, in entity
/// space. Relations with zero total weight (or no triples) get zero rows.
pub fn mean_relation_embeddings(
    kg: &KnowledgeGraph,
    entities: &Tensor,
    weights: &EntityWeights,
    side: Side,
) -> Tensor {
    let dim = entities.cols();
    let mut out = Tensor::zeros(kg.num_relations(), dim);
    let mut total_w = vec![0.0f32; kg.num_relations()];
    for t in kg.triples() {
        let w = match side {
            Side::Left => weights.triple_weight_left(t.head.raw(), t.tail.raw()),
            Side::Right => weights.triple_weight_right(t.head.raw(), t.tail.raw()),
        };
        if w <= 0.0 {
            continue;
        }
        let h = entities.row(t.head.index());
        let tl = entities.row(t.tail.index());
        let dst = out.row_mut(t.rel.index());
        for c in 0..dim {
            dst[c] += w * (tl[c] - h[c]);
        }
        total_w[t.rel.index()] += w;
    }
    for (r, &z) in total_w.iter().enumerate() {
        if z > 0.0 {
            let inv = 1.0 / z;
            for v in out.row_mut(r) {
                *v *= inv;
            }
        }
    }
    out
}

/// Mean class embeddings `c̄` (Eq. 9): the weighted average of member-entity
/// embeddings. Classes with no weighted members get zero rows.
pub fn mean_class_embeddings(
    kg: &KnowledgeGraph,
    entities: &Tensor,
    weights: &EntityWeights,
    side: Side,
) -> Tensor {
    let dim = entities.cols();
    let mut out = Tensor::zeros(kg.num_classes(), dim);
    let mut total_w = vec![0.0f32; kg.num_classes()];
    for a in kg.type_assertions() {
        let w = match side {
            Side::Left => weights.left[a.entity.index()],
            Side::Right => weights.right[a.entity.index()],
        };
        if w <= 0.0 {
            continue;
        }
        let e = entities.row(a.entity.index());
        let dst = out.row_mut(a.class.index());
        for c in 0..dim {
            dst[c] += w * e[c];
        }
        total_w[a.class.index()] += w;
    }
    for (c, &z) in total_w.iter().enumerate() {
        if z > 0.0 {
            let inv = 1.0 / z;
            for v in out.row_mut(c) {
                *v *= inv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use daakg_graph::KgBuilder;

    fn star_kg() -> KnowledgeGraph {
        // hub -likes-> a, hub -likes-> b ; a, b of class "Thing".
        let mut b = KgBuilder::new("t");
        b.triple_by_name("hub", "likes", "a");
        b.triple_by_name("hub", "likes", "b");
        b.typing_by_name("a", "Thing");
        b.typing_by_name("b", "Thing");
        b.build()
    }

    #[test]
    fn mean_relation_is_average_of_differences() {
        let kg = star_kg();
        // hub=0, a=1, b=2 by insertion order.
        let ents = Tensor::from_rows(&[&[0.0, 0.0], &[2.0, 0.0], &[0.0, 4.0]]);
        let w = EntityWeights::uniform(3, 0);
        let m = mean_relation_embeddings(&kg, &ents, &w, Side::Left);
        // diffs: a-hub = (2,0); b-hub = (0,4); mean = (1,2).
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn dangling_triples_are_soft_removed() {
        let kg = star_kg();
        let ents = Tensor::from_rows(&[&[0.0, 0.0], &[2.0, 0.0], &[0.0, 4.0]]);
        // Entity b (index 2) is dangling: weight 0.
        let w = EntityWeights {
            left: vec![1.0, 1.0, 0.0],
            right: vec![],
        };
        let m = mean_relation_embeddings(&kg, &ents, &w, Side::Left);
        // Only the (hub, likes, a) triple counts.
        assert_eq!(m.row(0), &[2.0, 0.0]);
    }

    #[test]
    fn mean_class_is_weighted_member_average() {
        let kg = star_kg();
        let ents = Tensor::from_rows(&[&[0.0, 0.0], &[2.0, 0.0], &[0.0, 4.0]]);
        let w = EntityWeights {
            left: vec![1.0, 3.0, 1.0],
            right: vec![],
        };
        let m = mean_class_embeddings(&kg, &ents, &w, Side::Left);
        // (3·(2,0) + 1·(0,4)) / 4 = (1.5, 1.0).
        assert_eq!(m.row(0), &[1.5, 1.0]);
    }

    #[test]
    fn zero_weight_class_gets_zero_row() {
        let kg = star_kg();
        let ents = Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 0.0], &[0.0, 4.0]]);
        let w = EntityWeights {
            left: vec![0.0, 0.0, 0.0],
            right: vec![],
        };
        let m = mean_class_embeddings(&kg, &ents, &w, Side::Left);
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }
}

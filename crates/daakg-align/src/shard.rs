//! Sharded scatter-gather serving: [`ShardedService`].
//!
//! One [`AlignmentService`] equals one corpus
//! scanned as a single slab. This module partitions the right-KG corpus
//! across `N` shards — each holding its own copy of the snapshot's
//! normalized candidate rows (transposed for the scan kernel) and its own
//! per-shard IVF index — and answers queries by scattering the scan
//! across shards via [`daakg_parallel::par_map_ranges`], then merging the
//! per-shard candidates with the bounded-heap
//! [`TopKSelector`].
//!
//! # Bitwise-identical exact answers
//!
//! Sharded `Exact` results reproduce the unsharded scan **bitwise, ties
//! included**, by construction:
//!
//! * row normalization is per-row, so slicing the already-normalized
//!   candidate matrix yields exactly the rows the unsharded engine scans;
//! * the scan kernel computes each (query, candidate) dot product by the
//!   same sequential accumulation over the depth dimension regardless of
//!   the candidate's column position, so per-shard scores equal unsharded
//!   scores bitwise;
//! * each shard scans with the candidates' **global** ids threaded
//!   through the kernel's id-remap slice, and
//!   [`TopKSelector`] selection is
//!   push-order-independent under *(score desc, id asc)* — so merging the
//!   per-shard top-k lists through one more selector yields exactly the
//!   unsharded top-k (every globally retained candidate is necessarily in
//!   its own shard's top-k).
//!
//! # One coherent version per request
//!
//! Every query pins **one** [`VersionedSnapshot`] up front and resolves
//! the shard set for exactly that version; concurrent publishes never mix
//! shard slabs of different versions into one answer (the shard-set cache
//! is keyed by version, and a request that pinned version `v` uses a set
//! built from `v`'s snapshot even while a newer set is being installed).
//!
//! With a [`crate::IngressConfig`], a micro-batching ingress sits in
//! front of the single-query path: see [`crate::ingress`].

use crate::ingress::{lock_recover, Ingress, IngressConfig, IngressStats, PendingAnswer};
use crate::service::{
    AlignmentService, Ranking, Served, ServiceHealth, Versioned, VersionedSnapshot,
};
use crate::snapshot::AlignmentSnapshot;
use daakg_autograd::Tensor;
use daakg_graph::DaakgError;
use daakg_index::{scan_block, IvfIndex, QueryMode, QueryOptions, SearchSpans, TopKSelector};
use daakg_telemetry::{HistogramHandle, Telemetry};
use std::sync::{Arc, Mutex};

/// Queries per gathered panel of the sharded scan — the same blocking the
/// unsharded engine uses, so panel shapes (and thus cache behavior) match.
const QUERY_BLOCK: usize = 64;

/// One shard's slice of the corpus: a transposed copy of its normalized
/// candidate rows, the global ids those columns map back to, and the
/// shard-local IVF index when the service is configured for approximate
/// serving.
struct ShardSlab {
    /// Global id of this shard's first candidate.
    base: usize,
    /// Number of candidates in this shard.
    len: usize,
    /// The shard's normalized candidate block, transposed: `d` rows of
    /// `len` floats — the layout [`scan_block`] consumes.
    ct: Vec<f32>,
    /// Global candidate ids of the shard's columns
    /// (`base..base + len`), threaded through the kernel's id remap so
    /// selectors hold global ids with globally consistent tie-breaking.
    ids: Vec<u32>,
    /// Shard-local IVF index over the shard's rows; its search results
    /// are shard-local ids offset by `base` at merge time.
    index: Option<Arc<IvfIndex>>,
}

impl ShardSlab {
    fn build(snap: &AlignmentSnapshot, base: usize, len: usize) -> Self {
        let engine = snap.entity_engine();
        let nc = engine.normalized_candidates();
        let d = nc.cols();
        let src = nc.as_slice();
        // Transpose the shard's rows into the kernel's column-major-block
        // layout. Normalization is per-row, so these are bitwise the rows
        // the unsharded engine scans.
        let mut ct = vec![0.0f32; d * len];
        for j in 0..len {
            let row = &src[(base + j) * d..(base + j + 1) * d];
            for (l, &v) in row.iter().enumerate() {
                ct[l * len + j] = v;
            }
        }
        let ids: Vec<u32> = (base as u32..(base + len) as u32).collect();
        // The shard's own index, under the service-wide configuration
        // (`nlist` clamps to the shard size). Built eagerly: the slab
        // itself is built lazily once per version, so this is the
        // one-time cost the snapshot's whole-corpus index also pays.
        let index = snap.index_config().map(|cfg| {
            let rows = Tensor::from_vec(len, d, src[base * d..(base + len) * d].to_vec());
            Arc::new(IvfIndex::build(&rows, cfg))
        });
        Self {
            base,
            len,
            ct,
            ids,
            index,
        }
    }

    /// Scan `nq` panel rows (`ps`, `nq × d`) against this shard,
    /// returning each query's shard-local top-`k` with **global** ids.
    fn scan(&self, ps: &[f32], d: usize, nq: usize, k: usize) -> Vec<Ranking> {
        let mut selectors: Vec<TopKSelector> = (0..nq)
            .map(|_| TopKSelector::new(k.min(self.len)))
            .collect();
        scan_block(ps, d, nq, &self.ct, self.len, &self.ids, &mut selectors);
        selectors
            .into_iter()
            .map(TopKSelector::into_sorted)
            .collect()
    }

    /// Probe this shard's IVF index, offsetting the shard-local result
    /// ids back into the global id space. Probe and list-scan durations
    /// go into `spans` (no-op handles cost nothing).
    fn search(&self, query: &[f32], k: usize, nprobe: usize, spans: &SearchSpans) -> Ranking {
        let index = self
            .index
            .as_ref()
            .expect("validated: index configured before Approx dispatch");
        index
            .search_observed(query, k, nprobe, spans)
            .into_iter()
            .map(|(id, s)| (self.base as u32 + id, s))
            .collect()
    }
}

/// The shard slabs of one snapshot version.
struct ShardSet {
    /// Embedding dimension of the scan.
    dim: usize,
    /// Total candidates across shards.
    total: usize,
    slabs: Vec<ShardSlab>,
}

impl ShardSet {
    fn build(snap: &AlignmentSnapshot, shards: usize) -> Self {
        let engine = snap.entity_engine();
        let n = engine.num_candidates();
        let dim = engine.normalized_candidates().cols();
        let ranges = daakg_parallel::split_ranges(n, shards.max(1));
        let slabs = daakg_parallel::par_map_ranges(ranges.len(), ranges.len(), |sr| {
            sr.map(|si| {
                let r = &ranges[si];
                ShardSlab::build(snap, r.start, r.len())
            })
            .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        Self {
            dim,
            total: n,
            slabs,
        }
    }

    /// Merge per-shard rankings for one query through one more bounded
    /// selector: selection is push-order-independent under *(score desc,
    /// id asc)*, so this reproduces the unsharded scan's list bitwise.
    fn merge(&self, k: Option<usize>, per_shard: impl Iterator<Item = Ranking>) -> Ranking {
        let bound = k.map_or(self.total, |k| k.min(self.total));
        let mut sel = TopKSelector::new(bound);
        for shard in per_shard {
            for (id, s) in shard {
                sel.push(id, s);
            }
        }
        sel.into_sorted()
    }
}

/// The shared scatter-gather state: the wrapped service plus the
/// per-version shard-set cache. Split out of [`ShardedService`] so the
/// ingress worker thread can hold it without a reference cycle.
pub(crate) struct ShardCore {
    service: AlignmentService,
    shards: usize,
    /// Latest shard set, keyed by snapshot version. One entry suffices:
    /// a request that pinned an older version while a publish was
    /// in-flight rebuilds its own set rather than mixing versions.
    cache: Mutex<Option<(u64, Arc<ShardSet>)>>,
    /// Per-shard scatter-scan latency (`stage_shard_scan_ns`): one
    /// sample per slab per dispatch.
    scan_span: HistogramHandle,
    /// Gather-merge latency (`stage_shard_merge_ns`): one sample per
    /// dispatch.
    merge_span: HistogramHandle,
}

impl ShardCore {
    /// The shard set of exactly `cur`'s version, building (and caching)
    /// it on first use.
    fn shard_set(&self, cur: &VersionedSnapshot) -> Arc<ShardSet> {
        let v = cur.version.get();
        if let Some((cv, set)) = lock_recover(&self.cache).as_ref() {
            if *cv == v {
                return Arc::clone(set);
            }
        }
        // Build outside the lock — a slab build is the expensive path and
        // must not serialize readers of the cached version. Two requests
        // racing on a fresh version may both build; the sets are
        // deterministic, so either install is correct.
        let set = Arc::new(ShardSet::build(&cur.snapshot, self.shards));
        let mut cache = lock_recover(&self.cache);
        match cache.as_ref() {
            // Never clobber a newer version's set with an older one.
            Some((cv, _)) if *cv > v => {}
            _ => *cache = Some((v, Arc::clone(&set))),
        }
        set
    }

    /// Build (and cache) the current version's shard set ahead of
    /// traffic, so no query pays the partitioning cost in its own
    /// latency. Called on construction and after every publish through
    /// the sharded front-end; a no-op when the set is already cached.
    pub(crate) fn prewarm(&self) {
        let cur = self.service.current();
        self.shard_set(&cur);
    }

    /// Whether the wrapped service carries an IVF index — the
    /// precondition for serving degraded (`Approx`) answers.
    pub(crate) fn has_index(&self) -> bool {
        self.service.serving().index.is_some()
    }

    pub(crate) fn query(
        &self,
        e1: u32,
        opts: QueryOptions,
    ) -> Result<Versioned<Ranking>, DaakgError> {
        self.service.check_query(e1)?;
        let nprobe = self.service.resolve_mode(opts.mode)?;
        let cur = self.service.current();
        let set = self.shard_set(&cur);
        let engine = cur.snapshot.entity_engine();
        let q = engine.normalized_query(e1);
        let search_spans = &self.service.telem().search;
        let per_shard = daakg_parallel::par_map_ranges(set.slabs.len(), set.slabs.len(), |sr| {
            sr.map(|si| {
                let slab = &set.slabs[si];
                let _span = self.scan_span.span();
                match nprobe {
                    None => {
                        let k = opts.k.map_or(slab.len, |k| k.min(slab.len));
                        slab.scan(q, set.dim, 1, k).pop().unwrap_or_default()
                    }
                    Some(nprobe) => {
                        slab.search(q, opts.k.unwrap_or(slab.len), nprobe, search_spans)
                    }
                }
            })
            .collect::<Vec<_>>()
        });
        let mut value = {
            let _span = self.merge_span.span();
            set.merge(opts.k, per_shard.into_iter().flatten())
        };
        // Live deltas are one more (unsharded) scatter target: the slab
        // scan merges through the same bounded selector, so the answer
        // stays bitwise-equal to an exact scan over base ∪ delta. Keyed
        // by the pinned version, so a just-published retrain can never
        // pick up the superseded slab.
        let mut deltas_merged = 0u32;
        if let Some(slab) = self.service.live_slab_for(cur.version.get()) {
            let _span = self.service.telem().delta_merge.span();
            value = slab
                .merge_into(q, 1, opts.k, set.total, vec![value])
                .pop()
                .expect("one query in, one ranking out");
            deltas_merged = slab.len() as u32;
        }
        Ok(Versioned {
            version: cur.version,
            value,
            deltas_merged,
        })
    }

    pub(crate) fn query_batch(
        &self,
        queries: &[u32],
        opts: QueryOptions,
    ) -> Result<Versioned<Vec<Ranking>>, DaakgError> {
        for &q in queries {
            self.service.check_query(q)?;
        }
        let nprobe = self.service.resolve_mode(opts.mode)?;
        let cur = self.service.current();
        let set = self.shard_set(&cur);
        let engine = cur.snapshot.entity_engine();
        // Gather the query panels once; every shard scans the same
        // panels, so the gather must not be repeated per shard.
        let panels: Vec<Tensor> = queries
            .chunks(QUERY_BLOCK)
            .map(|chunk| engine.normalized_queries().gather_rows(chunk))
            .collect();
        // Scatter: each shard answers every query with global ids.
        let search_spans = &self.service.telem().search;
        let per_shard: Vec<Vec<Ranking>> =
            daakg_parallel::par_map_ranges(set.slabs.len(), set.slabs.len(), |sr| {
                sr.map(|si| {
                    let slab = &set.slabs[si];
                    let _span = self.scan_span.span();
                    let mut out: Vec<Ranking> = Vec::with_capacity(queries.len());
                    match nprobe {
                        None => {
                            let k = opts.k.map_or(slab.len, |k| k.min(slab.len));
                            for (ci, chunk) in queries.chunks(QUERY_BLOCK).enumerate() {
                                out.extend(slab.scan(
                                    panels[ci].as_slice(),
                                    set.dim,
                                    chunk.len(),
                                    k,
                                ));
                            }
                        }
                        Some(nprobe) => {
                            for &e1 in queries {
                                out.push(slab.search(
                                    engine.normalized_query(e1),
                                    opts.k.unwrap_or(slab.len),
                                    nprobe,
                                    search_spans,
                                ));
                            }
                        }
                    }
                    out
                })
                .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        // Gather: merge each query's per-shard lists.
        let merge_span = self.merge_span.span();
        let mut per_shard = per_shard;
        let mut value: Vec<Ranking> = (0..queries.len())
            .map(|qi| {
                set.merge(
                    opts.k,
                    per_shard
                        .iter_mut()
                        .map(|shard| std::mem::take(&mut shard[qi])),
                )
            })
            .collect();
        drop(merge_span);
        // Merge live deltas per panel chunk (the panels were gathered
        // above for the scatter; the slab reuses them bitwise).
        let mut deltas_merged = 0u32;
        if let Some(slab) = self.service.live_slab_for(cur.version.get()) {
            let _span = self.service.telem().delta_merge.span();
            let mut vals = value.into_iter();
            let mut merged = Vec::with_capacity(queries.len());
            for (ci, chunk) in queries.chunks(QUERY_BLOCK).enumerate() {
                let base: Vec<Ranking> = (&mut vals).take(chunk.len()).collect();
                merged.extend(slab.merge_into(
                    panels[ci].as_slice(),
                    chunk.len(),
                    opts.k,
                    set.total,
                    base,
                ));
            }
            value = merged;
            deltas_merged = slab.len() as u32;
        }
        Ok(Versioned {
            version: cur.version,
            value,
            deltas_merged,
        })
    }
}

/// A sharded scatter-gather serving front-end over an
/// [`AlignmentService`].
///
/// Shard slabs are built once per published snapshot version and cached,
/// so steady-state queries pay only the scatter. Construction
/// **pre-warms** the initial version's set, and publishing through the
/// front-end's own [`ShardedService::train`] /
/// [`ShardedService::align_rounds`] wrappers pre-warms the new version —
/// so no query pays the partitioning cost in its own tail latency.
/// Training through the wrapped service directly
/// ([`ShardedService::service`]) still works; the first query after such
/// a publish builds the new set lazily.
///
/// `Exact` answers are bitwise-identical to the unsharded service's
/// (ties included); see the [module docs](self) for why. With an
/// [`IngressConfig`], single queries additionally coalesce through the
/// micro-batching ingress ([`crate::ingress`]) into batched kernel
/// dispatches — which also brings admission control, deadlines, and the
/// opt-in [`crate::DegradePolicy`] (see the ingress docs).
pub struct ShardedService {
    core: Arc<ShardCore>,
    ingress: Option<Ingress>,
}

impl std::fmt::Debug for ShardedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedService")
            .field("shards", &self.core.shards)
            .field("ingress", &self.ingress.as_ref().map(Ingress::config))
            .field("service", &self.core.service)
            .finish()
    }
}

impl ShardedService {
    /// Shard `service`'s corpus across `shards` partitions
    /// (`1..=4096`; counts above the corpus size degrade gracefully to
    /// one candidate per shard).
    pub fn new(service: AlignmentService, shards: usize) -> Result<Self, DaakgError> {
        if shards == 0 {
            return Err(DaakgError::invalid(
                "ShardedService",
                "shard count must be at least 1",
            ));
        }
        if shards > 4096 {
            return Err(DaakgError::invalid(
                "ShardedService",
                format!("shard count {shards} exceeds the 4096 maximum"),
            ));
        }
        let reg = service.telemetry().registry().clone();
        let svc = Self {
            core: Arc::new(ShardCore {
                shards,
                cache: Mutex::new(None),
                scan_span: reg.histogram("stage_shard_scan_ns"),
                merge_span: reg.histogram("stage_shard_merge_ns"),
                service,
            }),
            ingress: None,
        };
        // Pre-warm the initial version so the first query doesn't pay
        // the shard-set build inside its own latency.
        svc.core.prewarm();
        Ok(svc)
    }

    /// [`ShardedService::new`] with a micro-batching ingress in front of
    /// the single-query path: concurrent [`ShardedService::query`] calls
    /// coalesce under `ingress`'s time/size window into one batched
    /// kernel dispatch (see [`IngressConfig`]).
    pub fn with_ingress(
        service: AlignmentService,
        shards: usize,
        ingress: IngressConfig,
    ) -> Result<Self, DaakgError> {
        ingress.validate()?;
        let mut svc = Self::new(service, shards)?;
        svc.ingress = Some(Ingress::start(
            ingress,
            Arc::clone(&svc.core),
            svc.core.service.telemetry(),
        ));
        Ok(svc)
    }

    /// The telemetry surface of the whole front-end: the wrapped
    /// service's registry and journal, which the sharded scatter/merge
    /// stages and the ingress also record into — one registry covers the
    /// full stack (see [`AlignmentService::telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        self.core.service.telemetry()
    }

    /// The wrapped service — train and publish through this handle;
    /// queries on the sharded front-end observe each publish on their
    /// next version grab.
    pub fn service(&self) -> &AlignmentService {
        &self.core.service
    }

    /// Number of corpus partitions.
    pub fn shards(&self) -> usize {
        self.core.shards
    }

    /// The ingress window configuration, when one is running.
    pub fn ingress_config(&self) -> Option<IngressConfig> {
        self.ingress.as_ref().map(Ingress::config)
    }

    /// Dispatch and resilience counters of the running ingress (queries
    /// admitted, batched dispatches, shed/expired/degraded/panicked
    /// queries, queue high-water mark) — `None` without an ingress.
    pub fn ingress_stats(&self) -> Option<IngressStats> {
        self.ingress.as_ref().map(Ingress::stats)
    }

    /// Liveness and durability health of the serving stack: the wrapped
    /// service's persist health and live-update health, the ingress
    /// counters, and whether the ingress [`crate::DegradePolicy`] is
    /// currently engaged — one coherent view of the whole front-end.
    pub fn health(&self) -> ServiceHealth {
        let mut health = self.core.service.health();
        health.ingress = self.ingress_stats();
        if let Some(ingress) = &self.ingress {
            health.degrade_engaged = ingress.degrade_engaged();
        }
        health
    }

    /// Build (and cache) the current version's shard set ahead of
    /// traffic. Construction and the [`ShardedService::train`] /
    /// [`ShardedService::align_rounds`] wrappers already do this; call it
    /// manually after publishing through
    /// [`ShardedService::service`] directly to keep the build cost out of
    /// the next query's latency.
    pub fn prewarm(&self) {
        self.core.prewarm();
    }

    /// Train on `labels` and publish through the wrapped service, then
    /// pre-warm the new version's shard set so the publish — not the
    /// next query — pays the partitioning cost.
    pub fn train(
        &self,
        labels: &crate::joint::LabeledMatches,
    ) -> Result<VersionedSnapshot, DaakgError> {
        let published = self.core.service.train(labels)?;
        self.core.prewarm();
        Ok(published)
    }

    /// [`AlignmentService::align_rounds`] through the front-end, with the
    /// new version's shard set pre-warmed (see [`ShardedService::train`]).
    pub fn align_rounds(
        &self,
        labels: &crate::joint::LabeledMatches,
        epochs: usize,
    ) -> Result<Versioned<Vec<f32>>, DaakgError> {
        let losses = self.core.service.align_rounds(labels, epochs)?;
        self.core.prewarm();
        Ok(losses)
    }

    /// Answer one left entity under `opts`. With an ingress configured,
    /// the call enqueues and blocks until its coalesced batch is
    /// answered — subject to admission control
    /// ([`DaakgError::Overloaded`]), the query's deadline, and the
    /// opt-in [`crate::DegradePolicy`]; without one, it scatters
    /// immediately (no queue, so deadlines are inert and nothing sheds).
    pub fn query(&self, e1: u32, opts: QueryOptions) -> Result<Versioned<Ranking>, DaakgError> {
        match &self.ingress {
            Some(ingress) => {
                // Fail fast (and keep the worker infallible): bounds and
                // mode are validated before the queue ever sees the query.
                self.core.service.check_query(e1)?;
                self.core.service.resolve_mode(opts.mode)?;
                ingress.submit(e1, opts).map(|(answer, _served)| answer)
            }
            None => self.core.query(e1, opts),
        }
    }

    /// [`ShardedService::query`], with the answer stamped by the
    /// [`QueryMode`] it was actually served under — the mode can differ
    /// from the requested one only while an explicitly configured
    /// [`crate::DegradePolicy`] is engaged.
    pub fn query_served(&self, e1: u32, opts: QueryOptions) -> Result<Served<Ranking>, DaakgError> {
        match &self.ingress {
            Some(ingress) => {
                self.core.service.check_query(e1)?;
                self.core.service.resolve_mode(opts.mode)?;
                ingress.submit(e1, opts).map(|(answer, served)| Served {
                    version: answer.version,
                    value: answer.value,
                    deltas_merged: answer.deltas_merged,
                    served,
                })
            }
            None => self.core.query(e1, opts).map(|answer| Served {
                version: answer.version,
                value: answer.value,
                deltas_merged: answer.deltas_merged,
                served: opts.mode,
            }),
        }
    }

    /// Admit one query without blocking for its answer: the open-loop
    /// submission path. Admission outcomes ([`DaakgError::Overloaded`],
    /// an already-elapsed deadline, shutdown) surface here synchronously;
    /// the returned [`PendingAnswer`] then blocks only for the answer
    /// itself. Without an ingress the query executes inline and the
    /// returned handle is already resolved.
    pub fn submit(&self, e1: u32, opts: QueryOptions) -> Result<PendingAnswer, DaakgError> {
        match &self.ingress {
            Some(ingress) => {
                self.core.service.check_query(e1)?;
                self.core.service.resolve_mode(opts.mode)?;
                ingress.submit_ticket(e1, opts)
            }
            None => Ok(PendingAnswer::filled(
                self.core.query(e1, opts).map(|answer| (answer, opts.mode)),
            )),
        }
    }

    /// Answer every query under `opts` on **one** coherent snapshot
    /// version, scattered across shards. Already batched, so the ingress
    /// is bypassed.
    pub fn query_batch(
        &self,
        queries: &[u32],
        opts: QueryOptions,
    ) -> Result<Versioned<Vec<Ranking>>, DaakgError> {
        self.core.query_batch(queries, opts)
    }

    /// Rank all right entities for `e1` in the wrapped service's default
    /// [`QueryMode`].
    pub fn rank(&self, e1: u32) -> Result<Versioned<Ranking>, DaakgError> {
        self.query(e1, QueryOptions::rank().with_mode(self.default_mode()))
    }

    /// Best `k` right entities for `e1` in the default [`QueryMode`].
    pub fn top_k(&self, e1: u32, k: usize) -> Result<Versioned<Ranking>, DaakgError> {
        self.query(e1, QueryOptions::top_k(k).with_mode(self.default_mode()))
    }

    /// Best `k` right entities for each query, one coherent version, in
    /// the default [`QueryMode`].
    pub fn batch_top_k(
        &self,
        queries: &[u32],
        k: usize,
    ) -> Result<Versioned<Vec<Ranking>>, DaakgError> {
        self.query_batch(
            queries,
            QueryOptions::top_k(k).with_mode(self.default_mode()),
        )
    }

    fn default_mode(&self) -> QueryMode {
        self.core.service.serving().mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JointConfig;
    use crate::service::ServingConfig;
    use daakg_embed::EmbedConfig;
    use daakg_graph::kg::{example_dbpedia, example_wikidata};

    fn tiny_cfg() -> JointConfig {
        JointConfig {
            embed: EmbedConfig {
                dim: 8,
                class_dim: 4,
                epochs: 2,
                batch_size: 16,
                ..EmbedConfig::default()
            },
            align_epochs: 3,
            ..JointConfig::default()
        }
    }

    fn example_service(serving: ServingConfig) -> AlignmentService {
        AlignmentService::with_serving(
            tiny_cfg(),
            serving,
            Arc::new(example_dbpedia()),
            Arc::new(example_wikidata()),
        )
        .expect("example service")
    }

    #[test]
    fn shard_count_is_validated() {
        let svc = example_service(ServingConfig::default());
        assert!(matches!(
            ShardedService::new(svc, 0),
            Err(DaakgError::InvalidConfig { .. })
        ));
        let svc = example_service(ServingConfig::default());
        assert!(matches!(
            ShardedService::new(svc, 5000),
            Err(DaakgError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn sharded_exact_matches_unsharded_bitwise() {
        let svc = example_service(ServingConfig::default());
        let n1 = svc.kg1().num_entities();
        let queries: Vec<u32> = (0..n1 as u32).collect();
        let reference = svc.batch_top_k(&queries, 3).expect("unsharded");
        for shards in [1usize, 2, 3, 7] {
            let sharded = ShardedService::new(example_service(ServingConfig::default()), shards)
                .expect("sharded");
            let got = sharded.batch_top_k(&queries, 3).expect("sharded batch");
            assert_eq!(got.value, reference.value, "shards={shards}");
            for &q in &queries {
                let one = sharded.top_k(q, 3).expect("sharded single");
                let exact = svc.top_k(q, 3).expect("unsharded single");
                assert_eq!(one.value, exact.value, "shards={shards} q={q}");
            }
        }
    }

    #[test]
    fn sharded_rank_matches_unsharded() {
        let svc = example_service(ServingConfig::default());
        let sharded =
            ShardedService::new(example_service(ServingConfig::default()), 3).expect("sharded");
        for q in 0..svc.kg1().num_entities() as u32 {
            assert_eq!(
                sharded.rank(q).expect("sharded").value,
                svc.rank(q).expect("unsharded").value,
                "q={q}"
            );
        }
    }

    #[test]
    fn sharded_answers_carry_one_version_across_publishes() {
        let svc = example_service(ServingConfig::default());
        let sharded = ShardedService::new(svc, 2).expect("sharded");
        let before = sharded.top_k(0, 2).expect("v1 answer");
        assert_eq!(before.version.get(), 1);
        let labels = crate::joint::LabeledMatches::new();
        sharded.service().train(&labels).expect("train");
        let after = sharded.top_k(0, 2).expect("v2 answer");
        assert_eq!(after.version.get(), 2);
        // The new version's answer matches the unsharded scan of the new
        // snapshot — the shard set was rebuilt, not served stale.
        assert_eq!(
            after.value,
            sharded.service().top_k(0, 2).expect("unsharded").value
        );
    }

    #[test]
    fn sharded_service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedService>();
    }

    fn live_service() -> AlignmentService {
        let mut svc = example_service(ServingConfig::default());
        svc.enable_live(crate::LiveConfig {
            compact_after: 10_000,
            tick: std::time::Duration::from_secs(3600),
            ..crate::LiveConfig::default()
        })
        .expect("enable live");
        svc
    }

    fn triple(rel: u32, neighbor: u32) -> crate::DeltaTriple {
        crate::DeltaTriple {
            rel,
            neighbor,
            outgoing: true,
        }
    }

    /// Sharded scatter-gather over base ∪ delta stays bitwise-identical
    /// to the unsharded merged answer, at every shard count and k shape
    /// (the delta slab is one more scatter target, merged through the
    /// same bounded selector).
    #[test]
    fn sharded_live_answers_match_unsharded_bitwise() {
        for shards in [1usize, 2, 7] {
            let sharded = ShardedService::new(live_service(), shards).expect("sharded");
            let svc = sharded.service();
            let a = svc.upsert_entity(&[triple(0, 0)]).expect("upsert");
            svc.upsert_entity(&[triple(1, a)]).expect("upsert");
            let n2 = svc.kg2().num_entities();
            let union_n = n2 + 2;
            let queries: Vec<u32> = (0..svc.kg1().num_entities() as u32).collect();
            for k in [Some(0), Some(5), Some(union_n), Some(union_n + 3), None] {
                let opts = match k {
                    Some(k) => QueryOptions::top_k(k),
                    None => QueryOptions::rank(),
                };
                let got = sharded.query(0, opts).expect("sharded single");
                let want = svc.query(0, opts).expect("unsharded single");
                assert_eq!(got.deltas_merged, 2, "shards={shards} k={k:?}");
                assert_eq!(got.value.len(), want.value.len());
                for (g, w) in got.value.iter().zip(&want.value) {
                    assert_eq!(g.0, w.0, "shards={shards} k={k:?}");
                    assert_eq!(g.1.to_bits(), w.1.to_bits(), "shards={shards} k={k:?}");
                }
                let got = sharded.query_batch(&queries, opts).expect("sharded batch");
                let want = svc.query_batch(&queries, opts).expect("unsharded batch");
                assert_eq!(got.deltas_merged, 2);
                for (q, (gr, wr)) in got.value.iter().zip(&want.value).enumerate() {
                    assert_eq!(gr.len(), wr.len());
                    for (g, w) in gr.iter().zip(wr) {
                        assert_eq!(g.0, w.0, "shards={shards} k={k:?} q={q}");
                        assert_eq!(
                            g.1.to_bits(),
                            w.1.to_bits(),
                            "shards={shards} k={k:?} q={q}"
                        );
                    }
                }
            }
        }
    }

    /// Queries through the micro-batching ingress carry the delta merge
    /// too, and `health()` assembles persist + live + ingress counters
    /// into one coherent view.
    #[test]
    fn sharded_health_unifies_ingress_and_live_counters() {
        let sharded = ShardedService::with_ingress(live_service(), 2, IngressConfig::default())
            .expect("sharded with ingress");
        sharded
            .service()
            .upsert_entity(&[triple(0, 0)])
            .expect("upsert");
        let answer = sharded
            .query_served(0, QueryOptions::top_k(3))
            .expect("ingress query");
        assert_eq!(answer.deltas_merged, 1, "ingress path merges deltas");
        let health = sharded.health();
        let ingress = health.ingress.expect("ingress stats surfaced");
        assert!(ingress.queries >= 1, "{ingress:?}");
        assert!(ingress.batches >= 1, "{ingress:?}");
        let live = health.live.expect("live health surfaced");
        assert_eq!(live.delta_depth, 1);
        assert_eq!(live.upserts, 1);
        // Without an ingress, the same view reports its absence.
        let plain = ShardedService::new(live_service(), 2).expect("sharded");
        let health = plain.health();
        assert!(health.ingress.is_none());
        assert!(health.live.is_some());
    }

    /// A freshly built sharded service reports the same all-clear health
    /// as a fresh unsharded one: the default view exactly. Attaching an
    /// ingress only adds a zeroed counter block, and a no-op compaction
    /// on a live-enabled build leaves the default-live view untouched.
    #[test]
    fn fresh_sharded_health_is_default() {
        let sharded =
            ShardedService::new(example_service(ServingConfig::default()), 3).expect("sharded");
        assert_eq!(sharded.health(), crate::service::ServiceHealth::default());

        let with_ingress = ShardedService::with_ingress(
            example_service(ServingConfig::default()),
            2,
            IngressConfig::default(),
        )
        .expect("sharded with ingress");
        let expected_ingress = IngressStats {
            queries: 0,
            batches: 0,
            shed: 0,
            expired: 0,
            degraded: 0,
            panics: 0,
            max_depth: 0,
        };
        assert_eq!(
            with_ingress.health(),
            crate::service::ServiceHealth {
                ingress: Some(expected_ingress),
                ..Default::default()
            }
        );

        let live = ShardedService::new(live_service(), 2).expect("sharded live");
        live.service().compact_now().expect("no-op compact");
        assert_eq!(
            live.health(),
            crate::service::ServiceHealth {
                live: Some(crate::delta::LiveHealth::default()),
                ..Default::default()
            }
        );
    }

    /// Sharded scatter/merge stages record into the service's shared
    /// registry, and `ShardedService::telemetry()` exposes the same
    /// handle the underlying [`AlignmentService`] owns.
    #[test]
    fn sharded_query_records_scan_and_merge_stages() {
        let sharded =
            ShardedService::new(example_service(ServingConfig::default()), 3).expect("sharded");
        assert!(sharded.telemetry().is_enabled());
        sharded.query(0, QueryOptions::top_k(3)).expect("query");
        let hists = sharded.telemetry().registry().histograms();
        let count_of = |name: &str| {
            hists
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.count())
                .unwrap_or(0)
        };
        assert_eq!(count_of("stage_shard_scan_ns"), 3, "one scan per shard");
        assert_eq!(count_of("stage_shard_merge_ns"), 1, "one merge per query");
    }
}

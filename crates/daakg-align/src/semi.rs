//! Semi-supervised potential-match mining (Sect. 4.2).
//!
//! Element pairs whose similarity exceeds the threshold `τ` become
//! additional soft supervision. Conflicts (one element matched to several)
//! are resolved by keeping the higher-scored pair, as in the paper.

use daakg_graph::{ElementPair, FxHashMap, PairKind};

/// A mined potential match with its soft label `S₀`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PotentialMatch {
    /// The element pair.
    pub pair: ElementPair,
    /// The previous-round similarity, used as the soft label in Eq. (10).
    pub soft_label: f32,
}

/// Mine `M_semi`: keep pairs with similarity above `threshold`, then drop
/// conflicting pairs (lower similarity loses). The input can mix entity,
/// relation and class pairs; conflicts are resolved per kind and per side.
pub fn mine_potential_matches(
    scored_pairs: impl IntoIterator<Item = (ElementPair, f32)>,
    threshold: f32,
) -> Vec<PotentialMatch> {
    let mut candidates: Vec<(ElementPair, f32)> = scored_pairs
        .into_iter()
        .filter(|(_, s)| *s >= threshold)
        .collect();
    // Descending by score so the first claim on an element wins.
    candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    // Separate "used" sets per kind and side; keys are raw indices.
    let mut used_left: FxHashMap<(PairKind, u32), ()> = FxHashMap::default();
    let mut used_right: FxHashMap<(PairKind, u32), ()> = FxHashMap::default();
    let mut out = Vec::new();
    for (pair, score) in candidates {
        let kind = pair.kind();
        let (l, r) = match pair {
            ElementPair::Entity(a, b) => (a.raw(), b.raw()),
            ElementPair::Relation(a, b) => (a.raw(), b.raw()),
            ElementPair::Class(a, b) => (a.raw(), b.raw()),
        };
        if used_left.contains_key(&(kind, l)) || used_right.contains_key(&(kind, r)) {
            continue;
        }
        used_left.insert((kind, l), ());
        used_right.insert((kind, r), ());
        out.push(PotentialMatch {
            pair,
            soft_label: score,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use daakg_graph::{ClassId, EntityId, RelationId};

    fn ep(l: u32, r: u32) -> ElementPair {
        ElementPair::Entity(EntityId::new(l), EntityId::new(r))
    }

    #[test]
    fn threshold_filters() {
        let mined = mine_potential_matches(vec![(ep(0, 0), 0.95), (ep(1, 1), 0.5)], 0.9);
        assert_eq!(mined.len(), 1);
        assert_eq!(mined[0].pair, ep(0, 0));
        assert_eq!(mined[0].soft_label, 0.95);
    }

    #[test]
    fn conflicts_resolved_by_score() {
        // Entity 0 matched to both 5 (0.92) and 6 (0.97): keep 6.
        let mined = mine_potential_matches(
            vec![(ep(0, 5), 0.92), (ep(0, 6), 0.97), (ep(1, 5), 0.95)],
            0.9,
        );
        let pairs: Vec<ElementPair> = mined.iter().map(|m| m.pair).collect();
        assert!(pairs.contains(&ep(0, 6)));
        assert!(pairs.contains(&ep(1, 5)));
        assert!(!pairs.contains(&ep(0, 5)));
    }

    #[test]
    fn kinds_do_not_conflict_with_each_other() {
        let e = ElementPair::Entity(EntityId::new(0), EntityId::new(0));
        let r = ElementPair::Relation(RelationId::new(0), RelationId::new(0));
        let c = ElementPair::Class(ClassId::new(0), ClassId::new(0));
        let mined = mine_potential_matches(vec![(e, 0.95), (r, 0.95), (c, 0.95)], 0.9);
        assert_eq!(mined.len(), 3);
    }

    #[test]
    fn deterministic_under_score_ties() {
        let a = mine_potential_matches(vec![(ep(0, 5), 0.95), (ep(0, 6), 0.95)], 0.9);
        let b = mine_potential_matches(vec![(ep(0, 6), 0.95), (ep(0, 5), 0.95)], 0.9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }
}

//! Batched cosine-similarity engine with bounded top-k selection.
//!
//! The naive ranking path computes, per query, `n` cosines — each
//! re-deriving both row norms — followed by a full `O(n log n)` sort. Over a
//! semi-supervised round that is `O(n²·d)` work with two avoidable factors:
//! repeated normalization and full sorts when only the head of the ranking
//! is consumed.
//!
//! [`BatchedSimilarity`] removes both:
//!
//! 1. both matrices are **L2-normalized once** at construction (zero rows
//!    stay zero, preserving the `cos(0, ·) = 0` convention of
//!    [`daakg_autograd::tensor::cosine`]), after which cosine similarity is
//!    a plain dot product;
//! 2. whole query *blocks* are scored as one cache-blocked
//!    [`Tensor::matmul_transpose`] (`Q · Rᵀ`) instead of `n` scalar loops;
//! 3. when only the best `k` candidates are needed, selection uses a
//!    **bounded binary min-heap** (`O(n log k)`) instead of sorting the full
//!    candidate vector.
//!
//! Ordering is deterministic: descending score, ties broken by ascending
//! candidate index — exactly the order the naive stable sort produces for
//! index-ordered candidates, so the fast path is drop-in compatible with the
//! oracle.

use daakg_autograd::tensor::dot_unrolled as dot;
use daakg_autograd::Tensor;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of query rows scored per blocked matmul. 64 query rows × 10k
/// candidates × 4 B = 2.5 MB of scores per block — large enough to amortize
/// the kernel, small enough to stay cache- and memory-friendly.
const QUERY_BLOCK: usize = 64;

/// A scored candidate ordered by (score desc, index asc).
///
/// The `Ord` implementation is *reversed* so that [`BinaryHeap`] (a
/// max-heap) exposes the **worst** retained candidate at the top, which is
/// what bounded top-k eviction needs.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    score: f32,
    index: u32,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Worse-first: lower score is "greater" for the max-heap; on equal
        // scores the larger index is worse (ascending-index preference).
        other
            .score
            .total_cmp(&self.score)
            .then(other.index.cmp(&self.index).reverse())
    }
}

/// A bounded top-k accumulator: a min-heap-of-worst with a fast rejection
/// path, so streaming `n` candidates costs `O(n)` compares plus
/// `O(retained · log k)` heap updates.
#[derive(Debug, Clone)]
struct TopKSelector {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
    /// Score of the worst retained candidate once the heap is full
    /// (`+∞` when `k == 0`, `−∞` while filling). Caching it flat makes the
    /// overwhelmingly common rejection a single register compare, with no
    /// heap access at all.
    threshold: f32,
}

impl TopKSelector {
    fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
            threshold: if k == 0 {
                f32::INFINITY
            } else {
                f32::NEG_INFINITY
            },
        }
    }

    #[inline]
    fn push(&mut self, index: u32, score: f32) {
        // A later candidate (larger index) with an equal score is always
        // worse under the (score desc, index asc) order, and candidates
        // stream in index order — so `<=` rejection is exact.
        if score <= self.threshold {
            return;
        }
        let entry = HeapEntry { score, index };
        if self.heap.len() + 1 < self.k {
            self.heap.push(entry);
        } else if self.heap.len() < self.k {
            self.heap.push(entry);
            self.threshold = self.heap.peek().map_or(f32::NEG_INFINITY, |w| w.score);
        } else {
            self.heap.pop();
            self.heap.push(entry);
            self.threshold = self.heap.peek().map_or(f32::NEG_INFINITY, |w| w.score);
        }
    }

    /// Drain into final ranking order (descending score, ascending index
    /// on ties).
    fn into_sorted(self) -> Vec<(u32, f32)> {
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| (e.index, e.score))
            .collect()
    }
}

/// Pre-normalized similarity engine between a query matrix (mapped left
/// embeddings) and a candidate matrix (right embeddings).
#[derive(Debug, Clone)]
pub struct BatchedSimilarity {
    /// Row-normalized query matrix (`n₁ × d`).
    queries: Tensor,
    /// Row-normalized candidate matrix (`n₂ × d`).
    candidates: Tensor,
    /// The same candidates transposed (`d × n₂`). Column-major access lets
    /// the block kernels accumulate whole vectors of scores *vertically*
    /// (one lane per candidate), eliminating the per-score horizontal
    /// reduction that dominates row-major dot products at small `d`.
    candidates_t: Tensor,
}

/// Normalize each row to unit L2 norm, zeroing rows whose *squared* norm
/// is ≤ `f32::EPSILON` or non-finite — the exact degenerate-row guard of
/// [`daakg_autograd::tensor::cosine`], so batched scores agree with the
/// naive convention both for tiny-but-nonzero rows (which `cosine` treats
/// as zero vectors) and for rows containing NaN/infinite components.
fn normalize_rows_cosine_convention(t: &mut Tensor) {
    for r in 0..t.rows() {
        let row = t.row_mut(r);
        let sq: f32 = row.iter().map(|x| x * x).sum();
        if !sq.is_finite() || sq <= f32::EPSILON {
            row.fill(0.0);
        } else {
            let inv = 1.0 / sq.sqrt();
            for x in row.iter_mut() {
                *x *= inv;
            }
        }
    }
}

impl BatchedSimilarity {
    /// Build the engine: both inputs are copied and row-normalized once.
    /// Rows that `cosine` would treat as zero vectors (squared norm ≤
    /// `f32::EPSILON`) are zeroed, so their similarity to everything is
    /// exactly `0.0` — the naive convention.
    pub fn new(queries: &Tensor, candidates: &Tensor) -> Self {
        assert_eq!(
            queries.cols(),
            candidates.cols(),
            "query/candidate dimension mismatch"
        );
        let mut q = queries.clone();
        let mut c = candidates.clone();
        normalize_rows_cosine_convention(&mut q);
        normalize_rows_cosine_convention(&mut c);
        let ct = c.transpose();
        Self {
            queries: q,
            candidates: c,
            candidates_t: ct,
        }
    }

    /// Number of query rows.
    pub fn num_queries(&self) -> usize {
        self.queries.rows()
    }

    /// Number of candidate rows.
    pub fn num_candidates(&self) -> usize {
        self.candidates.rows()
    }

    /// Cosine similarity of one (query, candidate) pair.
    pub fn score(&self, query: u32, candidate: u32) -> f32 {
        dot(
            self.queries.row(query as usize),
            self.candidates.row(candidate as usize),
        )
    }

    /// All candidate scores for one query, in candidate-index order.
    ///
    /// Computed as `d` axpy passes over the transposed candidate matrix —
    /// a pure vertical accumulation with no per-score reduction.
    pub fn scores(&self, query: u32) -> Vec<f32> {
        let q = self.queries.row(query as usize);
        let n = self.num_candidates();
        let ct = self.candidates_t.as_slice();
        let mut out = vec![0.0f32; n];
        for (l, &b) in q.iter().enumerate() {
            let c_row = &ct[l * n..(l + 1) * n];
            for (o, &cv) in out.iter_mut().zip(c_row) {
                *o += b * cv;
            }
        }
        out
    }

    /// The full similarity block for the query rows `queries` — one blocked
    /// `Q · Rᵀ` product (`|queries| × n₂`).
    pub fn score_block(&self, queries: &[u32]) -> Tensor {
        let q = self.queries.gather_rows(queries);
        q.matmul_transpose(&self.candidates)
    }

    /// Best `k` candidates of one query, descending score, index-ascending
    /// on ties. `O(n log k)` via a bounded heap.
    pub fn top_k(&self, query: u32, k: usize) -> Vec<(u32, f32)> {
        top_k_of_scores_slice(&self.scores(query), k)
    }

    /// Best `k` candidates for every query in `queries`. Returns one
    /// ranking per query, in input order.
    ///
    /// The loop nest is *candidate-outer*: the query block is gathered into
    /// a dense L1-resident panel, then the candidate matrix streams through
    /// exactly once per block while per-query bounded heaps absorb scores
    /// on the fly. No `|queries| × n₂` score block is ever materialized, so
    /// memory traffic is one candidate-matrix pass per `QUERY_BLOCK`
    /// queries instead of one per query.
    pub fn top_k_block(&self, queries: &[u32], k: usize) -> Vec<Vec<(u32, f32)>> {
        let d = self.queries.cols();
        let mut out = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(QUERY_BLOCK) {
            let panel = self.queries.gather_rows(chunk);
            let mut selectors: Vec<TopKSelector> =
                chunk.iter().map(|_| TopKSelector::new(k)).collect();
            scan_panel_dispatch(
                panel.as_slice(),
                d,
                chunk.len(),
                self.candidates_t.as_slice(),
                self.num_candidates(),
                &mut selectors,
            );
            out.extend(selectors.into_iter().map(TopKSelector::into_sorted));
        }
        out
    }

    /// The complete descending ranking of one query (all `n₂` candidates).
    /// Still benefits from one-time normalization and the vectorized score
    /// loop, but pays the full sort; prefer [`BatchedSimilarity::top_k`]
    /// when only the head of the ranking is consumed.
    pub fn rank_all(&self, query: u32) -> Vec<(u32, f32)> {
        let scores = self.scores(query);
        let mut v: Vec<(u32, f32)> = scores
            .into_iter()
            .enumerate()
            .map(|(j, s)| (j as u32, s))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Descending ranking of a restricted candidate set for one query.
    pub fn rank_candidates(&self, query: u32, candidates: &[u32]) -> Vec<(u32, f32)> {
        let q = self.queries.row(query as usize);
        let mut v: Vec<(u32, f32)> = candidates
            .iter()
            .map(|&j| (j, dot(q, self.candidates.row(j as usize))))
            .collect();
        // Stable sort keeps the caller's candidate order on ties, exactly
        // like the naive path it replaces.
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }
}

/// Scan every candidate row against a gathered query panel (`nq` rows of
/// `d` floats in `ps`), feeding the per-query bounded selectors.
///
/// `#[inline(always)]` so the `#[target_feature]` wrappers below inline
/// this body and re-vectorize it with the wider instruction set.
/// Candidates per register tile of the scan kernel: 4 queries × 16
/// candidates = 64 accumulators, two 8-lane vectors per query on AVX2.
const SCAN_TILE: usize = 16;

/// Scan every candidate against a gathered query panel (`nq` rows of `d`
/// floats in `ps`), feeding the per-query bounded selectors.
///
/// `ct` is the *transposed* candidate matrix (`d` rows of `n` floats), so
/// the kernel accumulates a 4-query × 16-candidate register tile
/// *vertically*: per depth step it loads one 16-wide candidate slab,
/// broadcasts four query scalars, and issues eight 8-lane FMAs — no
/// horizontal reduction anywhere, and each candidate load feeds four MACs.
///
/// `#[inline(always)]` so the `#[target_feature]` wrapper below inlines
/// this body and re-vectorizes it with the wider instruction set.
// Index-based tile loops are deliberate: the accumulator tile must be
// addressed by lane for the vectorizer to keep it in registers.
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn scan_panel(
    ps: &[f32],
    d: usize,
    nq: usize,
    ct: &[f32],
    n: usize,
    selectors: &mut [TopKSelector],
) {
    debug_assert_eq!(ct.len(), d * n);
    let mut qi = 0;
    while qi + 4 <= nq {
        let b = qi * d;
        let q0 = &ps[b..b + d];
        let q1 = &ps[b + d..b + 2 * d];
        let q2 = &ps[b + 2 * d..b + 3 * d];
        let q3 = &ps[b + 3 * d..b + 4 * d];
        let [s0, s1, s2, s3] = {
            let (h0, rest) = selectors[qi..].split_at_mut(1);
            let (h1, rest) = rest.split_at_mut(1);
            let (h2, h3) = rest.split_at_mut(1);
            [&mut h0[0], &mut h1[0], &mut h2[0], &mut h3[0]]
        };
        let mut j0 = 0;
        while j0 + SCAN_TILE <= n {
            let mut acc = [[0.0f32; SCAN_TILE]; 4];
            for l in 0..d {
                let slab = &ct[l * n + j0..l * n + j0 + SCAN_TILE];
                let (b0, b1, b2, b3) = (q0[l], q1[l], q2[l], q3[l]);
                for t in 0..SCAN_TILE {
                    let cv = slab[t];
                    acc[0][t] += b0 * cv;
                    acc[1][t] += b1 * cv;
                    acc[2][t] += b2 * cv;
                    acc[3][t] += b3 * cv;
                }
            }
            for t in 0..SCAN_TILE {
                let j = (j0 + t) as u32;
                s0.push(j, acc[0][t]);
                s1.push(j, acc[1][t]);
                s2.push(j, acc[2][t]);
                s3.push(j, acc[3][t]);
            }
            j0 += SCAN_TILE;
        }
        // Candidate tail (< SCAN_TILE columns): strided scalar access.
        while j0 < n {
            let mut s = [0.0f32; 4];
            for l in 0..d {
                let cv = ct[l * n + j0];
                s[0] += q0[l] * cv;
                s[1] += q1[l] * cv;
                s[2] += q2[l] * cv;
                s[3] += q3[l] * cv;
            }
            s0.push(j0 as u32, s[0]);
            s1.push(j0 as u32, s[1]);
            s2.push(j0 as u32, s[2]);
            s3.push(j0 as u32, s[3]);
            j0 += 1;
        }
        qi += 4;
    }
    // Query tail (< 4 rows): one vertical axpy sweep per query.
    while qi < nq {
        let q = &ps[qi * d..(qi + 1) * d];
        let mut buf = vec![0.0f32; n];
        for (l, &bq) in q.iter().enumerate() {
            for (o, &cv) in buf.iter_mut().zip(&ct[l * n..(l + 1) * n]) {
                *o += bq * cv;
            }
        }
        let sel = &mut selectors[qi];
        for (j, &s) in buf.iter().enumerate() {
            sel.push(j as u32, s);
        }
        qi += 1;
    }
}

/// AVX2+FMA re-compilation of [`scan_panel`].
///
/// # Safety
/// Caller must verify `avx2` and `fma` are available at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[target_feature(enable = "fma")]
unsafe fn scan_panel_avx2(
    ps: &[f32],
    d: usize,
    nq: usize,
    ct: &[f32],
    n: usize,
    selectors: &mut [TopKSelector],
) {
    scan_panel(ps, d, nq, ct, n, selectors)
}

/// Pick the widest compiled-in kernel the running CPU supports. The
/// default x86-64 target only guarantees SSE2, but alignment servers
/// virtually always have AVX2+FMA — runtime dispatch keeps the binary
/// portable while serving wide SIMD on real hardware.
fn scan_panel_dispatch(
    ps: &[f32],
    d: usize,
    nq: usize,
    ct: &[f32],
    n: usize,
    selectors: &mut [TopKSelector],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: both features were just verified on this CPU.
        return unsafe { scan_panel_avx2(ps, d, nq, ct, n, selectors) };
    }
    scan_panel(ps, d, nq, ct, n, selectors)
}

/// Bounded top-k selection over a score slice: keep the best `k` in a
/// min-heap-of-worst, then unwind into descending order.
fn top_k_of_scores_slice(scores: &[f32], k: usize) -> Vec<(u32, f32)> {
    let mut sel = TopKSelector::new(k.min(scores.len()));
    for (j, &s) in scores.iter().enumerate() {
        sel.push(j as u32, s);
    }
    sel.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use daakg_autograd::tensor::cosine;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    /// The naive oracle: per-query cosine scan + full stable sort, exactly
    /// the pre-engine `rank_entities` algorithm.
    fn naive_rank(queries: &Tensor, candidates: &Tensor, q: usize) -> Vec<(u32, f32)> {
        let mut v: Vec<(u32, f32)> = (0..candidates.rows() as u32)
            .map(|j| (j, cosine(queries.row(q), candidates.row(j as usize))))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }

    #[test]
    fn scores_match_naive_cosine() {
        let q = random_matrix(12, 16, 1);
        let c = random_matrix(30, 16, 2);
        let engine = BatchedSimilarity::new(&q, &c);
        for i in 0..q.rows() as u32 {
            for j in 0..c.rows() as u32 {
                let fast = engine.score(i, j);
                let slow = cosine(q.row(i as usize), c.row(j as usize));
                assert!((fast - slow).abs() < 1e-5, "({i},{j}): {fast} vs {slow}");
            }
        }
    }

    #[test]
    fn zero_rows_keep_the_zero_convention() {
        let mut q = random_matrix(3, 8, 3);
        q.row_mut(1).fill(0.0);
        let mut c = random_matrix(4, 8, 4);
        c.row_mut(2).fill(0.0);
        let engine = BatchedSimilarity::new(&q, &c);
        for j in 0..4 {
            assert_eq!(engine.score(1, j), 0.0);
        }
        for i in 0..3 {
            assert_eq!(engine.score(i, 2), 0.0);
        }
    }

    #[test]
    fn tiny_norm_rows_match_the_naive_cosine_guard() {
        // Rows with norm ~1e-4 have squared norm below f32::EPSILON, so
        // `cosine` treats them as zero vectors; the engine must agree
        // instead of renormalizing them into full-strength unit vectors.
        let mut q = random_matrix(2, 8, 5);
        for v in q.row_mut(0).iter_mut() {
            *v *= 1e-4;
        }
        let c = random_matrix(3, 8, 6);
        let engine = BatchedSimilarity::new(&q, &c);
        for j in 0..3u32 {
            let naive = cosine(q.row(0), c.row(j as usize));
            assert_eq!(naive, 0.0, "test premise: cosine must see a zero row");
            assert_eq!(engine.score(0, j), 0.0, "engine diverged from cosine");
        }
        // The untouched row still scores normally.
        let naive = cosine(q.row(1), c.row(0));
        assert!((engine.score(1, 0) - naive).abs() < 1e-5);
    }

    #[test]
    fn top_k_matches_naive_prefix_on_random_inputs() {
        for seed in 0..5u64 {
            let q = random_matrix(10, 24, seed * 2 + 10);
            let c = random_matrix(200, 24, seed * 2 + 11);
            let engine = BatchedSimilarity::new(&q, &c);
            for qi in 0..10 {
                for k in [1usize, 5, 17, 200, 500] {
                    let fast = engine.top_k(qi as u32, k);
                    let slow = naive_rank(&q, &c, qi);
                    assert_eq!(fast.len(), k.min(200));
                    for (rank, (f, s)) in fast.iter().zip(&slow).enumerate() {
                        assert_eq!(f.0, s.0, "seed {seed} q{qi} k{k} rank {rank}");
                        assert!((f.1 - s.1).abs() < 1e-5);
                    }
                }
            }
        }
    }

    #[test]
    fn top_k_block_agrees_with_per_query_top_k() {
        let q = random_matrix(100, 8, 42); // exceeds one QUERY_BLOCK
        let c = random_matrix(50, 8, 43);
        let engine = BatchedSimilarity::new(&q, &c);
        let queries: Vec<u32> = (0..100).collect();
        let block = engine.top_k_block(&queries, 7);
        assert_eq!(block.len(), 100);
        for (qi, ranking) in block.iter().enumerate() {
            let single = engine.top_k(qi as u32, 7);
            assert_eq!(ranking.len(), single.len());
            for (a, b) in ranking.iter().zip(&single) {
                assert_eq!(a.0, b.0, "query {qi}");
                assert!((a.1 - b.1).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn ties_resolve_to_ascending_index() {
        // Duplicate candidate rows ⇒ exactly equal scores; the lower index
        // must win, mirroring the stable naive sort over 0..n candidates.
        let q = Tensor::from_rows(&[&[1.0, 0.0]]);
        let c = Tensor::from_rows(&[&[0.0, 1.0], &[1.0, 0.0], &[1.0, 0.0], &[1.0, 0.0]]);
        let engine = BatchedSimilarity::new(&q, &c);
        let top = engine.top_k(0, 3);
        assert_eq!(
            top.iter().map(|t| t.0).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "tie-break must prefer lower candidate indices"
        );
        let all = engine.rank_all(0);
        assert_eq!(all[3].0, 0);
    }

    #[test]
    fn rank_all_is_descending_and_complete() {
        let q = random_matrix(4, 8, 77);
        let c = random_matrix(61, 8, 78);
        let engine = BatchedSimilarity::new(&q, &c);
        let all = engine.rank_all(2);
        assert_eq!(all.len(), 61);
        for w in all.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn rank_candidates_restricts_and_sorts() {
        let q = random_matrix(2, 8, 5);
        let c = random_matrix(20, 8, 6);
        let engine = BatchedSimilarity::new(&q, &c);
        let sub = engine.rank_candidates(0, &[3, 9, 15]);
        assert_eq!(sub.len(), 3);
        for w in sub.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        for (j, _) in &sub {
            assert!([3, 9, 15].contains(j));
        }
    }

    #[test]
    fn empty_k_and_oversized_k() {
        let q = random_matrix(1, 4, 8);
        let c = random_matrix(5, 4, 9);
        let engine = BatchedSimilarity::new(&q, &c);
        assert!(engine.top_k(0, 0).is_empty());
        assert_eq!(engine.top_k(0, 10).len(), 5);
    }

    #[test]
    fn block_top_k_handles_k_zero_and_k_beyond_n() {
        let q = random_matrix(70, 8, 91); // spans two query blocks
        let c = random_matrix(9, 8, 92);
        let engine = BatchedSimilarity::new(&q, &c);
        let queries: Vec<u32> = (0..70).collect();

        let empty = engine.top_k_block(&queries, 0);
        assert_eq!(empty.len(), 70);
        assert!(empty.iter().all(|r| r.is_empty()), "k = 0 returns nothing");

        // k far beyond n must degrade to the complete ranking and agree
        // with the naive oracle at every position.
        let over = engine.top_k_block(&queries, 50);
        for (qi, ranking) in over.iter().enumerate() {
            assert_eq!(ranking.len(), 9, "k ≥ n yields all candidates");
            let slow = naive_rank(&q, &c, qi);
            for (rank, (f, s)) in ranking.iter().zip(&slow).enumerate() {
                assert_eq!(f.0, s.0, "q{qi} rank {rank}");
                assert!((f.1 - s.1).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn duplicate_scores_agree_with_naive_oracle_everywhere() {
        // Build a candidate matrix of only 3 distinct rows repeated, so
        // nearly every score is duplicated; ordering must still match the
        // stable naive sort exactly (ascending candidate index on ties).
        let base = random_matrix(3, 6, 7);
        let rows: Vec<&[f32]> = (0..24).map(|j| base.row(j % 3)).collect();
        let c = Tensor::from_rows(&rows);
        let q = random_matrix(5, 6, 8);
        let engine = BatchedSimilarity::new(&q, &c);
        let queries: Vec<u32> = (0..5).collect();
        for k in [1usize, 4, 24, 30] {
            let block = engine.top_k_block(&queries, k);
            for (qi, fast) in block.iter().enumerate() {
                let slow = naive_rank(&q, &c, qi);
                assert_eq!(fast.len(), k.min(24));
                for (rank, (f, s)) in fast.iter().zip(&slow).enumerate() {
                    assert_eq!(f.0, s.0, "k {k} q{qi} rank {rank}: tie order diverged");
                    assert!((f.1 - s.1).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn non_finite_rows_agree_with_naive_oracle() {
        // NaN and ±inf rows follow the degenerate-row convention: they
        // score exactly 0.0 against everything (and everything scores 0.0
        // against them), in both the batched engine and `cosine`.
        let mut q = random_matrix(4, 8, 55);
        q.row_mut(1).fill(f32::NAN);
        q.row_mut(2)[3] = f32::INFINITY;
        let mut c = random_matrix(12, 8, 56);
        c.row_mut(0).fill(f32::NEG_INFINITY);
        c.row_mut(5)[0] = f32::NAN;
        let engine = BatchedSimilarity::new(&q, &c);

        for i in 0..4u32 {
            for j in 0..12u32 {
                let fast = engine.score(i, j);
                let slow = cosine(q.row(i as usize), c.row(j as usize));
                assert!(fast.is_finite(), "engine produced non-finite score");
                assert!(slow.is_finite(), "cosine produced non-finite score");
                assert!((fast - slow).abs() < 1e-5, "({i},{j}): {fast} vs {slow}");
            }
        }
        // Degenerate queries score 0.0 flat.
        for j in 0..12u32 {
            assert_eq!(engine.score(1, j), 0.0);
            assert_eq!(engine.score(2, j), 0.0);
        }

        // Full agreement of the ranking paths, including k ≥ n.
        let queries: Vec<u32> = (0..4).collect();
        for k in [1usize, 3, 12, 20] {
            let block = engine.top_k_block(&queries, k);
            for (qi, fast) in block.iter().enumerate() {
                let slow = naive_rank(&q, &c, qi);
                for (rank, (f, s)) in fast.iter().zip(&slow).enumerate() {
                    assert_eq!(f.0, s.0, "k {k} q{qi} rank {rank}");
                    assert!((f.1 - s.1).abs() < 1e-5);
                }
            }
        }
    }
}

//! Batched cosine-similarity engine with bounded top-k selection.
//!
//! The naive ranking path computes, per query, `n` cosines — each
//! re-deriving both row norms — followed by a full `O(n log n)` sort. Over a
//! semi-supervised round that is `O(n²·d)` work with two avoidable factors:
//! repeated normalization and full sorts when only the head of the ranking
//! is consumed.
//!
//! [`BatchedSimilarity`] removes both:
//!
//! 1. both matrices are **L2-normalized once** at construction (zero rows
//!    stay zero, preserving the `cos(0, ·) = 0` convention of
//!    [`daakg_autograd::tensor::cosine`]), after which cosine similarity is
//!    a plain dot product;
//! 2. whole query *blocks* are scored as one cache-blocked
//!    [`Tensor::matmul_transpose`] (`Q · Rᵀ`) instead of `n` scalar loops;
//! 3. when only the best `k` candidates are needed, selection uses a
//!    **bounded binary min-heap** (`O(n log k)`) instead of sorting the full
//!    candidate vector.
//!
//! Ordering is deterministic: descending score, ties broken by ascending
//! candidate index — exactly the order the naive stable sort produces for
//! index-ordered candidates, so the fast path is drop-in compatible with the
//! oracle.
//!
//! The selection and scan machinery itself — the bounded
//! [`daakg_index::TopKSelector`], the register-tiled
//! [`daakg_index::scan_block`] kernel with its runtime AVX2+FMA dispatch,
//! and the cosine-convention row normalization — lives in `daakg-index`,
//! shared with the IVF approximate index: both engines score candidates
//! with the *same* kernel over the *same* normalized rows, which is what
//! makes a full-probe IVF search bitwise comparable to this exhaustive
//! engine.

use daakg_autograd::tensor::dot_unrolled as dot;
use daakg_autograd::Tensor;
use daakg_index::scan::{normalize_rows_cosine, scan_block, top_k_of_scores, TopKSelector};

/// Number of query rows scored per blocked matmul. 64 query rows × 10k
/// candidates × 4 B = 2.5 MB of scores per block — large enough to amortize
/// the kernel, small enough to stay cache- and memory-friendly.
const QUERY_BLOCK: usize = 64;

/// Pre-normalized similarity engine between a query matrix (mapped left
/// embeddings) and a candidate matrix (right embeddings).
#[derive(Debug, Clone)]
pub struct BatchedSimilarity {
    /// Row-normalized query matrix (`n₁ × d`).
    queries: Tensor,
    /// Row-normalized candidate matrix (`n₂ × d`).
    candidates: Tensor,
    /// The same candidates transposed (`d × n₂`). Column-major access lets
    /// the block kernels accumulate whole vectors of scores *vertically*
    /// (one lane per candidate), eliminating the per-score horizontal
    /// reduction that dominates row-major dot products at small `d`.
    candidates_t: Tensor,
    /// Identity column→id map for the shared scan kernel (the exhaustive
    /// engine scans candidates in index order; the IVF index passes its
    /// permuted inverted-list ids through the same parameter).
    identity_ids: Vec<u32>,
}

impl BatchedSimilarity {
    /// Build the engine: both inputs are copied and row-normalized once.
    /// Rows that `cosine` would treat as zero vectors (squared norm ≤
    /// `f32::EPSILON`) are zeroed, so their similarity to everything is
    /// exactly `0.0` — the naive convention.
    pub fn new(queries: &Tensor, candidates: &Tensor) -> Self {
        assert_eq!(
            queries.cols(),
            candidates.cols(),
            "query/candidate dimension mismatch"
        );
        let mut q = queries.clone();
        let mut c = candidates.clone();
        normalize_rows_cosine(&mut q);
        normalize_rows_cosine(&mut c);
        let ct = c.transpose();
        let identity_ids = (0..c.rows() as u32).collect();
        Self {
            queries: q,
            candidates: c,
            candidates_t: ct,
            identity_ids,
        }
    }

    /// The row-normalized query matrix (`n₁ × d`). Row `q` is the unit (or
    /// zero) vector every scoring path uses for query `q` — hand these rows
    /// to [`daakg_index::IvfIndex::search`] so approximate scores agree
    /// bitwise with this engine over the probed candidates.
    pub fn normalized_queries(&self) -> &Tensor {
        &self.queries
    }

    /// The row-normalized candidate matrix (`n₂ × d`) — the exact rows an
    /// [`daakg_index::IvfIndex`] must be built over for full-probe searches
    /// to reproduce this engine's results.
    pub fn normalized_candidates(&self) -> &Tensor {
        &self.candidates
    }

    /// One row-normalized query row.
    pub fn normalized_query(&self, query: u32) -> &[f32] {
        self.queries.row(query as usize)
    }

    /// Number of query rows.
    pub fn num_queries(&self) -> usize {
        self.queries.rows()
    }

    /// Number of candidate rows.
    pub fn num_candidates(&self) -> usize {
        self.candidates.rows()
    }

    /// Cosine similarity of one (query, candidate) pair.
    pub fn score(&self, query: u32, candidate: u32) -> f32 {
        dot(
            self.queries.row(query as usize),
            self.candidates.row(candidate as usize),
        )
    }

    /// All candidate scores for one query, in candidate-index order.
    ///
    /// Computed as `d` axpy passes over the transposed candidate matrix —
    /// a pure vertical accumulation with no per-score reduction.
    pub fn scores(&self, query: u32) -> Vec<f32> {
        let q = self.queries.row(query as usize);
        let n = self.num_candidates();
        let ct = self.candidates_t.as_slice();
        let mut out = vec![0.0f32; n];
        for (l, &b) in q.iter().enumerate() {
            let c_row = &ct[l * n..(l + 1) * n];
            for (o, &cv) in out.iter_mut().zip(c_row) {
                *o += b * cv;
            }
        }
        out
    }

    /// The full similarity block for the query rows `queries` — one blocked
    /// `Q · Rᵀ` product (`|queries| × n₂`).
    pub fn score_block(&self, queries: &[u32]) -> Tensor {
        let q = self.queries.gather_rows(queries);
        q.matmul_transpose(&self.candidates)
    }

    /// Best `k` candidates of one query, descending score, index-ascending
    /// on ties. `O(n log k)` via a bounded heap.
    pub fn top_k(&self, query: u32, k: usize) -> Vec<(u32, f32)> {
        top_k_of_scores(&self.scores(query), k)
    }

    /// Best `k` candidates for every query in `queries`. Returns one
    /// ranking per query, in input order.
    ///
    /// The loop nest is *candidate-outer*: the query block is gathered into
    /// a dense L1-resident panel, then the candidate matrix streams through
    /// exactly once per block while per-query bounded heaps absorb scores
    /// on the fly. No `|queries| × n₂` score block is ever materialized, so
    /// memory traffic is one candidate-matrix pass per `QUERY_BLOCK`
    /// queries instead of one per query.
    pub fn top_k_block(&self, queries: &[u32], k: usize) -> Vec<Vec<(u32, f32)>> {
        let d = self.queries.cols();
        let mut out = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(QUERY_BLOCK) {
            let panel = self.queries.gather_rows(chunk);
            let mut selectors: Vec<TopKSelector> =
                chunk.iter().map(|_| TopKSelector::new(k)).collect();
            scan_block(
                panel.as_slice(),
                d,
                chunk.len(),
                self.candidates_t.as_slice(),
                self.num_candidates(),
                &self.identity_ids,
                &mut selectors,
            );
            out.extend(selectors.into_iter().map(TopKSelector::into_sorted));
        }
        out
    }

    /// The complete descending ranking of one query (all `n₂` candidates).
    /// Still benefits from one-time normalization and the vectorized score
    /// loop, but pays the full sort; prefer [`BatchedSimilarity::top_k`]
    /// when only the head of the ranking is consumed.
    pub fn rank_all(&self, query: u32) -> Vec<(u32, f32)> {
        let scores = self.scores(query);
        let mut v: Vec<(u32, f32)> = scores
            .into_iter()
            .enumerate()
            .map(|(j, s)| (j as u32, s))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Descending ranking of a restricted candidate set for one query.
    pub fn rank_candidates(&self, query: u32, candidates: &[u32]) -> Vec<(u32, f32)> {
        let q = self.queries.row(query as usize);
        let mut v: Vec<(u32, f32)> = candidates
            .iter()
            .map(|&j| (j, dot(q, self.candidates.row(j as usize))))
            .collect();
        // Stable sort keeps the caller's candidate order on ties, exactly
        // like the naive path it replaces.
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daakg_autograd::tensor::cosine;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    /// The naive oracle: per-query cosine scan + full stable sort, exactly
    /// the pre-engine `rank_entities` algorithm.
    fn naive_rank(queries: &Tensor, candidates: &Tensor, q: usize) -> Vec<(u32, f32)> {
        let mut v: Vec<(u32, f32)> = (0..candidates.rows() as u32)
            .map(|j| (j, cosine(queries.row(q), candidates.row(j as usize))))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }

    #[test]
    fn scores_match_naive_cosine() {
        let q = random_matrix(12, 16, 1);
        let c = random_matrix(30, 16, 2);
        let engine = BatchedSimilarity::new(&q, &c);
        for i in 0..q.rows() as u32 {
            for j in 0..c.rows() as u32 {
                let fast = engine.score(i, j);
                let slow = cosine(q.row(i as usize), c.row(j as usize));
                assert!((fast - slow).abs() < 1e-5, "({i},{j}): {fast} vs {slow}");
            }
        }
    }

    #[test]
    fn zero_rows_keep_the_zero_convention() {
        let mut q = random_matrix(3, 8, 3);
        q.row_mut(1).fill(0.0);
        let mut c = random_matrix(4, 8, 4);
        c.row_mut(2).fill(0.0);
        let engine = BatchedSimilarity::new(&q, &c);
        for j in 0..4 {
            assert_eq!(engine.score(1, j), 0.0);
        }
        for i in 0..3 {
            assert_eq!(engine.score(i, 2), 0.0);
        }
    }

    #[test]
    fn tiny_norm_rows_match_the_naive_cosine_guard() {
        // Rows with norm ~1e-4 have squared norm below f32::EPSILON, so
        // `cosine` treats them as zero vectors; the engine must agree
        // instead of renormalizing them into full-strength unit vectors.
        let mut q = random_matrix(2, 8, 5);
        for v in q.row_mut(0).iter_mut() {
            *v *= 1e-4;
        }
        let c = random_matrix(3, 8, 6);
        let engine = BatchedSimilarity::new(&q, &c);
        for j in 0..3u32 {
            let naive = cosine(q.row(0), c.row(j as usize));
            assert_eq!(naive, 0.0, "test premise: cosine must see a zero row");
            assert_eq!(engine.score(0, j), 0.0, "engine diverged from cosine");
        }
        // The untouched row still scores normally.
        let naive = cosine(q.row(1), c.row(0));
        assert!((engine.score(1, 0) - naive).abs() < 1e-5);
    }

    #[test]
    fn top_k_matches_naive_prefix_on_random_inputs() {
        for seed in 0..5u64 {
            let q = random_matrix(10, 24, seed * 2 + 10);
            let c = random_matrix(200, 24, seed * 2 + 11);
            let engine = BatchedSimilarity::new(&q, &c);
            for qi in 0..10 {
                for k in [1usize, 5, 17, 200, 500] {
                    let fast = engine.top_k(qi as u32, k);
                    let slow = naive_rank(&q, &c, qi);
                    assert_eq!(fast.len(), k.min(200));
                    for (rank, (f, s)) in fast.iter().zip(&slow).enumerate() {
                        assert_eq!(f.0, s.0, "seed {seed} q{qi} k{k} rank {rank}");
                        assert!((f.1 - s.1).abs() < 1e-5);
                    }
                }
            }
        }
    }

    #[test]
    fn top_k_block_agrees_with_per_query_top_k() {
        let q = random_matrix(100, 8, 42); // exceeds one QUERY_BLOCK
        let c = random_matrix(50, 8, 43);
        let engine = BatchedSimilarity::new(&q, &c);
        let queries: Vec<u32> = (0..100).collect();
        let block = engine.top_k_block(&queries, 7);
        assert_eq!(block.len(), 100);
        for (qi, ranking) in block.iter().enumerate() {
            let single = engine.top_k(qi as u32, 7);
            assert_eq!(ranking.len(), single.len());
            for (a, b) in ranking.iter().zip(&single) {
                assert_eq!(a.0, b.0, "query {qi}");
                assert!((a.1 - b.1).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn ties_resolve_to_ascending_index() {
        // Duplicate candidate rows ⇒ exactly equal scores; the lower index
        // must win, mirroring the stable naive sort over 0..n candidates.
        let q = Tensor::from_rows(&[&[1.0, 0.0]]);
        let c = Tensor::from_rows(&[&[0.0, 1.0], &[1.0, 0.0], &[1.0, 0.0], &[1.0, 0.0]]);
        let engine = BatchedSimilarity::new(&q, &c);
        let top = engine.top_k(0, 3);
        assert_eq!(
            top.iter().map(|t| t.0).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "tie-break must prefer lower candidate indices"
        );
        let all = engine.rank_all(0);
        assert_eq!(all[3].0, 0);
    }

    #[test]
    fn rank_all_is_descending_and_complete() {
        let q = random_matrix(4, 8, 77);
        let c = random_matrix(61, 8, 78);
        let engine = BatchedSimilarity::new(&q, &c);
        let all = engine.rank_all(2);
        assert_eq!(all.len(), 61);
        for w in all.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn rank_candidates_restricts_and_sorts() {
        let q = random_matrix(2, 8, 5);
        let c = random_matrix(20, 8, 6);
        let engine = BatchedSimilarity::new(&q, &c);
        let sub = engine.rank_candidates(0, &[3, 9, 15]);
        assert_eq!(sub.len(), 3);
        for w in sub.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        for (j, _) in &sub {
            assert!([3, 9, 15].contains(j));
        }
    }

    #[test]
    fn empty_k_and_oversized_k() {
        let q = random_matrix(1, 4, 8);
        let c = random_matrix(5, 4, 9);
        let engine = BatchedSimilarity::new(&q, &c);
        assert!(engine.top_k(0, 0).is_empty());
        assert_eq!(engine.top_k(0, 10).len(), 5);
    }

    #[test]
    fn block_top_k_handles_k_zero_and_k_beyond_n() {
        let q = random_matrix(70, 8, 91); // spans two query blocks
        let c = random_matrix(9, 8, 92);
        let engine = BatchedSimilarity::new(&q, &c);
        let queries: Vec<u32> = (0..70).collect();

        let empty = engine.top_k_block(&queries, 0);
        assert_eq!(empty.len(), 70);
        assert!(empty.iter().all(|r| r.is_empty()), "k = 0 returns nothing");

        // k far beyond n must degrade to the complete ranking and agree
        // with the naive oracle at every position.
        let over = engine.top_k_block(&queries, 50);
        for (qi, ranking) in over.iter().enumerate() {
            assert_eq!(ranking.len(), 9, "k ≥ n yields all candidates");
            let slow = naive_rank(&q, &c, qi);
            for (rank, (f, s)) in ranking.iter().zip(&slow).enumerate() {
                assert_eq!(f.0, s.0, "q{qi} rank {rank}");
                assert!((f.1 - s.1).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn duplicate_scores_agree_with_naive_oracle_everywhere() {
        // Build a candidate matrix of only 3 distinct rows repeated, so
        // nearly every score is duplicated; ordering must still match the
        // stable naive sort exactly (ascending candidate index on ties).
        let base = random_matrix(3, 6, 7);
        let rows: Vec<&[f32]> = (0..24).map(|j| base.row(j % 3)).collect();
        let c = Tensor::from_rows(&rows);
        let q = random_matrix(5, 6, 8);
        let engine = BatchedSimilarity::new(&q, &c);
        let queries: Vec<u32> = (0..5).collect();
        for k in [1usize, 4, 24, 30] {
            let block = engine.top_k_block(&queries, k);
            for (qi, fast) in block.iter().enumerate() {
                let slow = naive_rank(&q, &c, qi);
                assert_eq!(fast.len(), k.min(24));
                for (rank, (f, s)) in fast.iter().zip(&slow).enumerate() {
                    assert_eq!(f.0, s.0, "k {k} q{qi} rank {rank}: tie order diverged");
                    assert!((f.1 - s.1).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn non_finite_rows_agree_with_naive_oracle() {
        // NaN and ±inf rows follow the degenerate-row convention: they
        // score exactly 0.0 against everything (and everything scores 0.0
        // against them), in both the batched engine and `cosine`.
        let mut q = random_matrix(4, 8, 55);
        q.row_mut(1).fill(f32::NAN);
        q.row_mut(2)[3] = f32::INFINITY;
        let mut c = random_matrix(12, 8, 56);
        c.row_mut(0).fill(f32::NEG_INFINITY);
        c.row_mut(5)[0] = f32::NAN;
        let engine = BatchedSimilarity::new(&q, &c);

        for i in 0..4u32 {
            for j in 0..12u32 {
                let fast = engine.score(i, j);
                let slow = cosine(q.row(i as usize), c.row(j as usize));
                assert!(fast.is_finite(), "engine produced non-finite score");
                assert!(slow.is_finite(), "cosine produced non-finite score");
                assert!((fast - slow).abs() < 1e-5, "({i},{j}): {fast} vs {slow}");
            }
        }
        // Degenerate queries score 0.0 flat.
        for j in 0..12u32 {
            assert_eq!(engine.score(1, j), 0.0);
            assert_eq!(engine.score(2, j), 0.0);
        }

        // Full agreement of the ranking paths, including k ≥ n.
        let queries: Vec<u32> = (0..4).collect();
        for k in [1usize, 3, 12, 20] {
            let block = engine.top_k_block(&queries, k);
            for (qi, fast) in block.iter().enumerate() {
                let slow = naive_rank(&q, &c, qi);
                for (rank, (f, s)) in fast.iter().zip(&slow).enumerate() {
                    assert_eq!(f.0, s.0, "k {k} q{qi} rank {rank}");
                    assert!((f.1 - s.1).abs() < 1e-5);
                }
            }
        }
    }
}

//! The unified query surface: [`QueryExecutor`].
//!
//! Two serving front-ends answer alignment queries — the single-corpus
//! [`AlignmentService`](crate::AlignmentService) and the scatter-gather
//! [`ShardedService`](crate::ShardedService) — and both take the same
//! inputs: a left-entity id (or a batch of them) plus a
//! [`QueryOptions`] bundling the result bound `k` with the execution
//! [`QueryMode`](daakg_index::QueryMode). This trait captures exactly
//! that contract, so callers (evaluation sweeps, load generators, the
//! micro-batching ingress) can be written once against `&dyn
//! QueryExecutor` or a generic bound and pointed at either topology.
//!
//! Both implementations uphold the same semantics:
//!
//! * every answer is stamped with the **one** snapshot version it was
//!   computed on — for a batch, a single version covers every query;
//! * `Exact` answers are bitwise-identical across implementations
//!   (ties included): the sharded scatter-gather merge reproduces the
//!   unsharded scan exactly;
//! * errors are typed ([`DaakgError`]): out-of-bounds entities and
//!   invalid modes are rejected before any kernel runs.

use crate::service::{Ranking, Versioned};
use daakg_graph::DaakgError;
use daakg_index::QueryOptions;

/// A serving front-end that answers versioned alignment queries under
/// explicit [`QueryOptions`].
pub trait QueryExecutor {
    /// Answer one left entity under `opts`, stamped with the snapshot
    /// version the answer was computed on.
    fn query(&self, e1: u32, opts: QueryOptions) -> Result<Versioned<Ranking>, DaakgError>;

    /// Answer every query under `opts`, all on **one** coherent snapshot
    /// version.
    fn query_batch(
        &self,
        queries: &[u32],
        opts: QueryOptions,
    ) -> Result<Versioned<Vec<Ranking>>, DaakgError>;
}

impl QueryExecutor for crate::AlignmentService {
    fn query(&self, e1: u32, opts: QueryOptions) -> Result<Versioned<Ranking>, DaakgError> {
        crate::AlignmentService::query(self, e1, opts)
    }

    fn query_batch(
        &self,
        queries: &[u32],
        opts: QueryOptions,
    ) -> Result<Versioned<Vec<Ranking>>, DaakgError> {
        crate::AlignmentService::query_batch(self, queries, opts)
    }
}

impl QueryExecutor for crate::ShardedService {
    fn query(&self, e1: u32, opts: QueryOptions) -> Result<Versioned<Ranking>, DaakgError> {
        crate::ShardedService::query(self, e1, opts)
    }

    fn query_batch(
        &self,
        queries: &[u32],
        opts: QueryOptions,
    ) -> Result<Versioned<Vec<Ranking>>, DaakgError> {
        crate::ShardedService::query_batch(self, queries, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `QueryExecutor` must stay object-safe: the ingress and generic
    // load generators hold `&dyn QueryExecutor`.
    #[allow(dead_code)]
    fn assert_object_safe(_: &dyn QueryExecutor) {}

    #[allow(dead_code)]
    fn generic_front_end<E: QueryExecutor>(svc: &E, e1: u32) -> Result<Ranking, DaakgError> {
        Ok(svc.query(e1, QueryOptions::top_k(3))?.value)
    }
}

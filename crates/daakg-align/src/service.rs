//! The concurrent serve-while-train service: [`AlignmentService`].
//!
//! The free-standing path (`JointModel::train` → [`AlignmentSnapshot`] →
//! `rank_entities`) is batch-shaped: every retrain invalidates the
//! snapshot the caller holds, and nothing coordinates queries with
//! training. This module wraps that engine in a service with a **versioned
//! snapshot registry**:
//!
//! * training methods ([`AlignmentService::train`],
//!   [`AlignmentService::align_rounds`],
//!   [`AlignmentService::fine_tune_with_inferred`]) serialize on an
//!   internal model lock and *publish* each finished snapshot as an
//!   immutable [`Arc<AlignmentSnapshot>`] stamped with a monotonically
//!   increasing [`SnapshotVersion`];
//! * query methods ([`AlignmentService::rank`], [`AlignmentService::top_k`],
//!   [`AlignmentService::batch_top_k`]) grab the current publication with
//!   one atomic pointer load — no lock, no waiting on writers — and run on
//!   that version for their whole duration. Every answer carries the
//!   version it was computed on ([`Versioned`]), so callers can reason
//!   about staleness and verify results against the exact snapshot that
//!   produced them ([`AlignmentService::snapshot_at`]).
//!
//! Readers never block writers and writers never block readers: a reader
//! that grabbed version `v` keeps using it while version `v+1` is being
//! trained and published.
//!
//! With a [`ServingConfig`] carrying an IVF configuration, every
//! publication is additionally stamped with it, so each version owns a
//! lazily-built, never-rebuilt [`daakg_index::IvfIndex`] and queries can
//! run in [`QueryMode::Approx`] — sublinear scans over the probed
//! inverted lists — either as the service default or per call through
//! [`AlignmentService::query`] / [`AlignmentService::query_batch`] with
//! explicit [`QueryOptions`]. The default remains [`QueryMode::Exact`].
//!
//! A service built with [`AlignmentService::open`] is additionally
//! **durable**: every publication is persisted crash-safely through
//! [`crate::persist::DurableRegistry`], and reopening the same directory
//! warm-restarts from the newest intact versions — skipping corrupt or
//! torn files with typed diagnostics, resuming version numbering
//! monotonically, and serving bitwise-identical answers from the
//! restored snapshots.

use crate::config::JointConfig;
use crate::delta::{
    self, Compactor, DeltaBuffer, DeltaEntry, DeltaRecovery, DeltaSlab, DeltaTriple, LiveConfig,
    LiveHealth, LiveStats,
};
use crate::ingress::{lock_recover, IngressStats};
use crate::joint::{JointModel, LabeledMatches};
use crate::persist::{DurableRegistry, RecoveryReport};
use crate::snapshot::{AlignmentSnapshot, SnapshotParts};
use crate::telem::ServiceTelemetry;
use daakg_autograd::Tensor;
use daakg_embed::warm_start_row_observed;
use daakg_graph::{DaakgError, KnowledgeGraph};
use daakg_index::scan::normalize_rows_cosine;
use daakg_index::{IvfConfig, QueryMode, QueryOptions};
use daakg_telemetry::{EventKind, Telemetry, TelemetryConfig};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Serving-side configuration of an [`AlignmentService`]: whether
/// published snapshots carry an IVF index, and which [`QueryMode`] the
/// plain query methods default to.
///
/// The default is index-less exact serving — precisely the pre-index
/// behavior. With an index configured, every published snapshot carries
/// the configuration and builds its index lazily (at most once per
/// version, shared by all readers of that version); `mode` then selects
/// what [`AlignmentService::rank`] / [`AlignmentService::top_k`] /
/// [`AlignmentService::batch_top_k`] do, with
/// [`AlignmentService::query`] / [`AlignmentService::query_batch`] and
/// explicit [`QueryOptions`] overriding per call.
#[derive(Debug, Clone, Default)]
pub struct ServingConfig {
    /// Build an IVF index into every published snapshot.
    pub index: Option<IvfConfig>,
    /// Default execution mode of the plain query methods.
    pub mode: QueryMode,
    /// Telemetry wiring: metrics registry, stage histograms, and the
    /// event journal surfaced through [`AlignmentService::telemetry`].
    /// Enabled by default; [`TelemetryConfig::disabled`] makes every
    /// record a no-op (durability health stays live either way — see
    /// [`AlignmentService::health`]).
    pub telemetry: TelemetryConfig,
}

impl ServingConfig {
    /// Exact serving with an IVF index available for `Approx` queries.
    pub fn with_index(nlist: usize) -> Self {
        Self {
            index: Some(IvfConfig::new(nlist)),
            mode: QueryMode::Exact,
            telemetry: TelemetryConfig::default(),
        }
    }

    /// Validate the composed serving configuration.
    pub fn validate(&self) -> Result<(), DaakgError> {
        if let Some(cfg) = &self.index {
            cfg.validate()?;
        }
        self.mode.validate(self.index.is_some())
    }
}

/// Monotonically increasing identifier of one published snapshot.
///
/// Versions start at 1 (the service's initial publication) and increase by
/// exactly 1 per publish, with no gaps — concurrent publishers are
/// serialized by the registry, so observing version `v` implies versions
/// `1..=v` were all published, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapshotVersion(u64);

impl SnapshotVersion {
    /// The raw version counter.
    pub fn get(self) -> u64 {
        self.0
    }

    /// A handle for a raw counter value — e.g. to sweep
    /// [`AlignmentService::snapshot_at`] over a recorded range. A value
    /// that was never published simply resolves to `None` there.
    pub fn of(version: u64) -> Self {
        Self(version)
    }
}

impl fmt::Display for SnapshotVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A published snapshot together with its version stamp.
#[derive(Debug, Clone)]
pub struct VersionedSnapshot {
    /// The version this snapshot was published as.
    pub version: SnapshotVersion,
    /// The immutable snapshot itself.
    pub snapshot: Arc<AlignmentSnapshot>,
}

/// One ranked answer: `(right entity, score)` pairs, best first.
pub type Ranking = Vec<(u32, f32)>;

/// A query answer stamped with the snapshot version it was computed on.
#[derive(Debug, Clone, PartialEq)]
pub struct Versioned<T> {
    /// The snapshot version the query ran against.
    pub version: SnapshotVersion,
    /// The query result.
    pub value: T,
    /// How many live delta entries ([`AlignmentService::upsert_entity`])
    /// were merged into this answer beyond the snapshot's own corpus.
    /// `0` means the answer came from the published snapshot alone.
    pub deltas_merged: u32,
}

/// A query answer stamped with the snapshot version it was computed on
/// **and** the [`QueryMode`] it was actually served under.
///
/// The serving layer may answer an `Exact` request approximately when an
/// opt-in [`crate::DegradePolicy`] is engaged under overload; this stamp
/// makes that substitution observable per answer, so callers relying on
/// the bitwise-exactness guarantee can check `served == QueryMode::Exact`
/// rather than trusting the request mode they asked for.
#[derive(Debug, Clone, PartialEq)]
pub struct Served<T> {
    /// The snapshot version the query ran against.
    pub version: SnapshotVersion,
    /// The query result.
    pub value: T,
    /// How many live delta entries were merged into this answer (see
    /// [`Versioned::deltas_merged`]).
    pub deltas_merged: u32,
    /// The execution mode actually used (may differ from the requested
    /// mode only under an engaged [`crate::DegradePolicy`]).
    pub served: QueryMode,
}

/// Liveness and durability health of a serving stack, surfaced so a
/// failing disk (or engaged degradation) is observable without parsing
/// logs — in-memory serving keeps answering either way.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceHealth {
    /// `true` while the most recent persist attempt failed: publications
    /// are serving from memory without durability. Cleared by the next
    /// successful persist.
    pub durability_degraded: bool,
    /// The most recent persist error, rendered; `None` when the last
    /// persist succeeded (or none was attempted).
    pub last_persist_error: Option<String>,
    /// Publications whose persist failed even after retries.
    pub persist_failures: u64,
    /// Persist attempts that were backoff retries of a transient IO
    /// failure (successful recoveries included).
    pub persist_retries: u64,
    /// Whether an ingress [`crate::DegradePolicy`] is currently engaged
    /// (always `false` for a bare [`AlignmentService`] — degradation is
    /// an ingress-level mechanism).
    pub degrade_engaged: bool,
    /// Ingress admission/dispatch counters — `Some` only for a
    /// [`crate::ShardedService`] with an ingress attached, so overload
    /// state and durability state read as one coherent view.
    pub ingress: Option<IngressStats>,
    /// Live-update counters (delta depth, compaction lag) — `Some` only
    /// when the live subsystem is enabled
    /// ([`AlignmentService::enable_live`]).
    pub live: Option<LiveHealth>,
}

/// The durable store together with the service's telemetry bundle — one
/// shareable unit, because the background compactor persists folded
/// publications through exactly the same retry/degradation path as
/// training publications, and records into the same stage histograms and
/// journal.
///
/// Durability health lives in the bundle's always-live cells
/// ([`ServiceTelemetry`]); only the most recent persist *error string*
/// needs interior mutability here.
#[derive(Debug)]
struct PersistState {
    store: Option<DurableRegistry>,
    telem: ServiceTelemetry,
    last_persist_error: Mutex<Option<String>>,
}

impl PersistState {
    fn new(store: Option<DurableRegistry>, telem: ServiceTelemetry) -> Self {
        Self {
            store,
            telem,
            last_persist_error: Mutex::new(None),
        }
    }

    /// Persist one publication to the durable store, if configured.
    /// Transient IO failures are retried with bounded exponential backoff
    /// ([`daakg_store::store::retry_with_backoff`]); the final error
    /// still propagates to the caller, but the in-memory publish stands —
    /// readers already serve the new version; only its durability failed,
    /// which the health cells and the event journal record so a failing
    /// disk is observable without taking down serving.
    fn persist(&self, published: &VersionedSnapshot) -> Result<(), DaakgError> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        let version = published.version.get();
        let _span = self.telem.persist.span();
        let result = daakg_store::store::retry_with_backoff(
            3,
            std::time::Duration::from_millis(1),
            |attempt| {
                if attempt > 0 {
                    self.telem.persist_retries.incr();
                    self.telem.event(EventKind::PersistRetry {
                        version,
                        attempt: attempt as u32,
                    });
                }
                store.save(version, &published.snapshot)
            },
        );
        let mut last_error = lock_recover(&self.last_persist_error);
        match &result {
            Ok(()) => {
                self.telem.durability_degraded.set(0);
                *last_error = None;
            }
            Err(e) => {
                self.telem.persist_failures.incr();
                self.telem.durability_degraded.set(1);
                self.telem.event(EventKind::PersistFailure {
                    version,
                    error: e.to_string(),
                });
                *last_error = Some(e.to_string());
            }
        }
        result
    }
}

/// The live-update subsystem attached to a service by
/// [`AlignmentService::enable_live`].
struct LiveState {
    cfg: LiveConfig,
    /// The append-only delta corpus, shared with the compactor.
    buffer: Arc<DeltaBuffer>,
    /// Compaction counters, shared with the compactor.
    stats: Arc<LiveStats>,
    /// Serializes upserts: id assignment, warm start, and the segment
    /// write must be one unit.
    upsert_lock: Mutex<()>,
    /// Serializes folds between the compactor thread and `compact_now`.
    fold_lock: Arc<Mutex<()>>,
    /// The background compaction thread; dropped (stop + join) with the
    /// service.
    compactor: Option<Compactor>,
    /// What delta-segment replay found on a warm restart.
    recovery: Option<DeltaRecovery>,
}

/// The versioned snapshot registry: atomic-swap publication, lock-free
/// reads, retained history.
///
/// # How the lock-free read works
///
/// `current` holds a raw pointer to a heap-allocated [`VersionedSnapshot`]
/// entry owned by `history`. Entries are freed only by [`SnapshotRegistry::prune`]
/// (`&mut self`, so no reader can be mid-dereference), by `Drop`, or by
/// [`SnapshotRegistry::prune_shared`] — which first detaches entries from
/// `history` and then waits until the reader counter proves no thread is
/// inside the load→clone critical section. A reader does one `SeqCst`
/// counter increment, one `SeqCst` pointer load, the dereference + `Arc`
/// clone, and a decrement — never a lock — and the classic hard part of
/// lock-free pointer swapping (a writer freeing the entry between the
/// reader's load and its dereference) is excluded by that quiescence
/// protocol.
///
/// Publishers serialize on the `history` mutex, which also makes version
/// assignment and the `current` store one atomic unit: `current` always
/// carries the highest version, and versions are dense and monotone even
/// under concurrent publishes.
///
/// # Reclamation
///
/// Publications are retained so [`SnapshotRegistry::get`] (and thus
/// per-version oracle verification of live query traffic) works. Three
/// reclamation paths bound the memory:
///
/// * [`SnapshotRegistry::set_retention`] — an at-publish policy: each
///   publish best-effort frees everything but the newest `keep` versions;
/// * [`SnapshotRegistry::prune_shared`] — the same best-effort shared
///   reclamation on demand (`&self`, usable through `Arc`): stale entries
///   are detached under the mutex, then freed once the reader counter
///   proves no thread is inside the load→clone critical section
///   (quiescence; bounded wait, re-attaches and reports 0 on timeout);
/// * [`SnapshotRegistry::prune`] — the unconditional `&mut self` path.
pub struct SnapshotRegistry {
    /// Always points at the entry of the latest publication (never null —
    /// construction publishes version 1).
    current: AtomicPtr<VersionedSnapshot>,
    /// Every publication, in version order. The registry owns these
    /// allocations (created with `Box::into_raw`, freed with
    /// `Box::from_raw` in `prune`/`Drop`); raw ownership — instead of
    /// `Vec<Box<_>>` — keeps every entry at a stable address that is never
    /// re-asserted as a unique `Box`, so the pointers handed to `current`
    /// stay valid unconditionally.
    history: Mutex<Vec<*mut VersionedSnapshot>>,
    /// Readers currently between the `current` pointer load and the end of
    /// the entry dereference — the only window in which a reader may hold
    /// a raw pointer to an entry that is no longer the newest.
    active_readers: AtomicUsize,
    /// Publications to keep at publish time; 0 = retain everything.
    retention: AtomicUsize,
}

// SAFETY: the raw pointer in `current` always refers to an entry owned by
// `history`; entries are immutable after publication (only `Arc::clone` and
// field reads happen through the pointer), and are only freed (a) under
// `&mut self` / `Drop`, which exclude other references, or (b) by
// `prune_shared` after detaching them from `history` *and* observing the
// reader counter at zero, which proves no thread still holds a raw pointer
// into the detached set. All shared mutation goes through the atomics and
// the mutex.
unsafe impl Send for SnapshotRegistry {}
unsafe impl Sync for SnapshotRegistry {}

impl SnapshotRegistry {
    /// A registry whose first publication (version 1) is `initial`.
    pub fn new(initial: AlignmentSnapshot) -> Self {
        let ptr = Box::into_raw(Box::new(VersionedSnapshot {
            version: SnapshotVersion(1),
            snapshot: Arc::new(initial),
        }));
        Self {
            current: AtomicPtr::new(ptr),
            history: Mutex::new(vec![ptr]),
            active_readers: AtomicUsize::new(0),
            retention: AtomicUsize::new(0),
        }
    }

    /// A registry re-seeded from recovered `(version, snapshot)` pairs
    /// (ascending, non-empty) — the warm-restart counterpart of
    /// [`SnapshotRegistry::new`]. The newest recovered version becomes
    /// `current`, and the next publish continues from it (`latest + 1`),
    /// so version numbering resumes monotonically across restarts even
    /// when corrupt intermediate versions were skipped.
    pub fn from_entries(entries: Vec<(u64, AlignmentSnapshot)>) -> Self {
        assert!(!entries.is_empty(), "from_entries needs at least one entry");
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be ascending by version"
        );
        let history: Vec<*mut VersionedSnapshot> = entries
            .into_iter()
            .map(|(version, snapshot)| {
                Box::into_raw(Box::new(VersionedSnapshot {
                    version: SnapshotVersion(version),
                    snapshot: Arc::new(snapshot),
                }))
            })
            .collect();
        Self {
            current: AtomicPtr::new(*history.last().expect("checked non-empty")),
            history: Mutex::new(history),
            active_readers: AtomicUsize::new(0),
            retention: AtomicUsize::new(0),
        }
    }

    /// Publish `snapshot` as the new current version and return its stamp.
    ///
    /// Publishers serialize on an internal mutex; readers are never
    /// blocked and observe the swap atomically. When a retention policy is
    /// set ([`SnapshotRegistry::set_retention`]), older publications are
    /// best-effort reclaimed afterwards.
    pub fn publish(&self, snapshot: AlignmentSnapshot) -> SnapshotVersion {
        self.publish_pinned(snapshot).version
    }

    /// [`SnapshotRegistry::publish`], but hand back the published entry
    /// itself. Publishers that need the exact snapshot they published
    /// (e.g. to keep training on it) use this instead of re-reading
    /// `current`, which a concurrent publisher may already have advanced.
    pub fn publish_pinned(&self, snapshot: AlignmentSnapshot) -> VersionedSnapshot {
        let published = {
            let mut history = self.history.lock().expect("registry mutex poisoned");
            // SAFETY: entries in `history` stay allocated while `&self`
            // exists.
            let last = unsafe { (*history.last().expect("never empty")).as_ref() }
                .expect("history pointers are non-null");
            let version = SnapshotVersion(last.version.0 + 1);
            let ptr = Box::into_raw(Box::new(VersionedSnapshot {
                version,
                snapshot: Arc::new(snapshot),
            }));
            history.push(ptr);
            // SeqCst (not just Release) is load-bearing: `prune_shared`'s
            // quiescence argument needs this store in the single SC total
            // order, so a reader whose counter increment lands after the
            // pruner's zero-observation is guaranteed to load THIS (or a
            // newer) pointer rather than a stale, about-to-be-freed one.
            // It also releases the entry contents to readers as usual.
            self.current.store(ptr, Ordering::SeqCst);
            // SAFETY: just allocated above; cloning under the mutex.
            unsafe { (*ptr).clone() }
        };
        let keep = self.retention.load(Ordering::Relaxed);
        if keep > 0 {
            self.prune_shared(keep);
        }
        published
    }

    /// Publish `snapshot` only if the latest version is still `expected`
    /// — the compare-and-publish the background compactor uses, so a fold
    /// derived from version `v` can never overwrite a training publish
    /// that landed concurrently. Returns `None` (dropping the snapshot)
    /// when the registry has moved past `expected`.
    pub fn publish_if_current(
        &self,
        snapshot: AlignmentSnapshot,
        expected: SnapshotVersion,
    ) -> Option<VersionedSnapshot> {
        let published = {
            let mut history = self.history.lock().expect("registry mutex poisoned");
            // SAFETY: entries in `history` stay allocated while `&self`
            // exists.
            let last = unsafe { (*history.last().expect("never empty")).as_ref() }
                .expect("history pointers are non-null");
            if last.version != expected {
                return None;
            }
            let version = SnapshotVersion(last.version.0 + 1);
            let ptr = Box::into_raw(Box::new(VersionedSnapshot {
                version,
                snapshot: Arc::new(snapshot),
            }));
            history.push(ptr);
            // SeqCst: same quiescence argument as `publish_pinned`.
            self.current.store(ptr, Ordering::SeqCst);
            // SAFETY: just allocated above; cloning under the mutex.
            unsafe { (*ptr).clone() }
        };
        let keep = self.retention.load(Ordering::Relaxed);
        if keep > 0 {
            self.prune_shared(keep);
        }
        Some(published)
    }

    /// The latest publication — one atomic load plus one `Arc` clone; never
    /// blocks, even while a publish is in flight.
    pub fn current(&self) -> VersionedSnapshot {
        // SeqCst on the counter updates and the pointer load orders this
        // critical section against `prune_shared`'s detach-then-observe
        // protocol (see there).
        self.active_readers.fetch_add(1, Ordering::SeqCst);
        let ptr = self.current.load(Ordering::SeqCst);
        // SAFETY: `ptr` was stored by `new`/`publish`. Either the entry is
        // still in `history` (not freed while `&self` exists), or a
        // concurrent `prune_shared` detached it — in which case it frees
        // the entry only after observing `active_readers == 0`, which
        // cannot happen before the decrement below.
        let out = unsafe { (*ptr).clone() };
        self.active_readers.fetch_sub(1, Ordering::SeqCst);
        out
    }

    /// The latest published version.
    pub fn version(&self) -> SnapshotVersion {
        self.active_readers.fetch_add(1, Ordering::SeqCst);
        let ptr = self.current.load(Ordering::SeqCst);
        // SAFETY: as in `current`.
        let version = unsafe { (*ptr).version };
        self.active_readers.fetch_sub(1, Ordering::SeqCst);
        version
    }

    /// A specific retained publication, if it has not been pruned.
    pub fn get(&self, version: SnapshotVersion) -> Option<VersionedSnapshot> {
        let history = self.history.lock().expect("registry mutex poisoned");
        // History is sorted by version (publishes serialize on the mutex),
        // so binary search is correct both before and after pruning.
        // SAFETY: entries stay allocated while `&self` exists.
        let idx = history
            .binary_search_by_key(&version, |&p| unsafe { (*p).version })
            .ok()?;
        // SAFETY: entry still attached to `history`, cloned under the mutex.
        Some(unsafe { (*history[idx]).clone() })
    }

    /// [`SnapshotRegistry::get`] with a typed diagnosis instead of
    /// `None`: a missing version at or below the latest was published but
    /// pruned out of retention (or skipped as corrupt during recovery),
    /// while a version above the latest (or 0) was never published.
    pub fn get_checked(&self, version: SnapshotVersion) -> Result<VersionedSnapshot, DaakgError> {
        match self.get(version) {
            Some(v) => Ok(v),
            None => {
                let latest = self.version().0;
                Err(DaakgError::UnknownVersion {
                    requested: version.0,
                    latest,
                    pruned: version.0 >= 1 && version.0 <= latest,
                })
            }
        }
    }

    /// Number of retained publications.
    pub fn retained(&self) -> usize {
        self.history.lock().expect("registry mutex poisoned").len()
    }

    /// Set the at-publish retention policy: after each publish, keep only
    /// the newest `keep` publications (0 restores unbounded retention).
    /// Reclamation is the best-effort [`SnapshotRegistry::prune_shared`].
    pub fn set_retention(&self, keep: usize) {
        self.retention.store(keep, Ordering::Relaxed);
    }

    /// Best-effort shared reclamation: drop all publications except the
    /// newest `keep` (at least the current one is always kept) without
    /// requiring exclusive access. Returns how many entries were freed.
    ///
    /// The protocol: stale entries are *detached* from `history` under the
    /// mutex (so `get`/`publish` can no longer reach them and `current`
    /// keeps pointing into the retained suffix), then freed once
    /// `active_readers` is observed at zero. A reader that loaded the
    /// `current` pointer before the newest publish is still inside its
    /// load→clone critical section and keeps the counter nonzero; once the
    /// counter hits zero every such reader has finished, and readers
    /// entering afterwards can only observe the retained current entry. If
    /// readers never quiesce within the bounded wait, the detached entries
    /// are re-attached and 0 is returned — memory is reclaimed on a later
    /// attempt instead of blocking the publisher indefinitely.
    pub fn prune_shared(&self, keep: usize) -> usize {
        let stale: Vec<*mut VersionedSnapshot> = {
            let mut history = self.history.lock().expect("registry mutex poisoned");
            let keep = keep.max(1).min(history.len());
            let drop_until = history.len() - keep;
            history.drain(..drop_until).collect()
        };
        if stale.is_empty() {
            return 0;
        }
        // Quiescence wait: bounded so a stuck/descheduled reader can delay
        // reclamation but never deadlock a publisher.
        let mut spins = 0usize;
        while self.active_readers.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
            spins += 1;
            if spins > 10_000 {
                let mut history = self.history.lock().expect("registry mutex poisoned");
                // Re-attach at each entry's sorted position: a concurrent
                // timed-out prune may already have re-attached a *newer*
                // detached run, so front-insertion could leave `history`
                // unsorted and break `get`'s binary search.
                for p in stale {
                    // SAFETY: detached entries are still allocated (owned
                    // by this call until re-attached or freed).
                    let v = unsafe { (*p).version };
                    let idx = history.partition_point(|&q| unsafe { (*q).version } < v);
                    history.insert(idx, p);
                }
                return 0;
            }
        }
        let freed = stale.len();
        for ptr in stale {
            // SAFETY: detached from `history` (unreachable via `get` /
            // `publish` / future `current` loads) and the zero reader
            // count proves no in-flight reader still holds the raw
            // pointer. Each pointer came from `Box::into_raw` and leaves
            // the registry exactly once.
            drop(unsafe { Box::from_raw(ptr) });
        }
        freed
    }

    /// Drop all retained publications except the newest `keep` (at least
    /// the current one is always kept).
    ///
    /// Requires `&mut self`: exclusive access proves no reader is between
    /// its pointer load and dereference, so freeing old entries is
    /// unconditionally sound (no quiescence wait needed).
    pub fn prune(&mut self, keep: usize) {
        let history = self.history.get_mut().expect("registry mutex poisoned");
        let keep = keep.max(1).min(history.len());
        for ptr in history.drain(..history.len() - keep) {
            // SAFETY: `&mut self` excludes all readers; `ptr` came from
            // `Box::into_raw` and is dropped exactly once (it leaves the
            // vec here). `current` points at the last entry, which is
            // always in the kept suffix.
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}

impl Drop for SnapshotRegistry {
    fn drop(&mut self) {
        for ptr in self
            .history
            .get_mut()
            .expect("registry mutex poisoned")
            .drain(..)
        {
            // SAFETY: as in `prune` — exclusive access, single free.
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}

/// The concurrent alignment service: owns the KG pair and the
/// [`JointModel`], serves lock-free versioned queries while training.
///
/// The service is `Send + Sync`; share it across threads as
/// `Arc<AlignmentService>` (or plain `&` borrows under
/// `std::thread::scope`) and call query and training methods concurrently
/// — queries see the latest *published* snapshot and are never blocked by
/// an in-flight training call.
///
/// Construct directly with [`AlignmentService::new`] or through the
/// `daakg::Pipeline` builder.
pub struct AlignmentService {
    kg1: Arc<KnowledgeGraph>,
    kg2: Arc<KnowledgeGraph>,
    /// The training side. One training call at a time; queries never take
    /// this lock.
    model: Mutex<JointModel>,
    /// Shared with the background compactor thread (when live updates are
    /// enabled), which publishes folded snapshots through it.
    registry: Arc<SnapshotRegistry>,
    /// Index + default-mode configuration, fixed at construction; every
    /// published snapshot is stamped with `serving.index` before the
    /// atomic publish, so a version and its index travel together.
    serving: ServingConfig,
    /// Durable store + durability-health counters, shared with the
    /// compactor so folded publications persist with the same retry /
    /// degradation discipline as training publications.
    durable: Arc<PersistState>,
    /// What [`AlignmentService::open`] found on disk; `None` for
    /// non-durable or fresh-directory services.
    recovery: Option<RecoveryReport>,
    /// The live-update subsystem (delta buffer + compactor), when enabled.
    live: Option<LiveState>,
}

impl fmt::Debug for AlignmentService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlignmentService")
            .field("kg1", &self.kg1.name())
            .field("kg2", &self.kg2.name())
            .field("version", &self.version())
            .field("retained_versions", &self.retained_versions())
            .field("store", &self.durable.store.as_ref().map(|s| s.dir()))
            .field("live", &self.live.is_some())
            .finish_non_exhaustive()
    }
}

impl AlignmentService {
    /// Build the joint model for the KG pair and publish version 1 (the
    /// untrained init), so queries are answerable immediately. Serves
    /// exact queries with no index — see
    /// [`AlignmentService::with_serving`] for approximate serving.
    pub fn new(
        cfg: JointConfig,
        kg1: Arc<KnowledgeGraph>,
        kg2: Arc<KnowledgeGraph>,
    ) -> Result<Self, DaakgError> {
        Self::with_serving(cfg, ServingConfig::default(), kg1, kg2)
    }

    /// [`AlignmentService::new`] with an explicit [`ServingConfig`]: an
    /// optional per-snapshot IVF index and the default [`QueryMode`] of
    /// the plain query methods. The configuration is validated up front.
    pub fn with_serving(
        cfg: JointConfig,
        serving: ServingConfig,
        kg1: Arc<KnowledgeGraph>,
        kg2: Arc<KnowledgeGraph>,
    ) -> Result<Self, DaakgError> {
        serving.validate()?;
        let telem = ServiceTelemetry::new(serving.telemetry.clone());
        let model = JointModel::new(cfg, &kg1, &kg2)?;
        let mut initial = model.snapshot(&kg1, &kg2);
        initial.set_index_config(serving.index.clone());
        let svc = Self {
            registry: Arc::new(SnapshotRegistry::new(initial)),
            model: Mutex::new(model),
            kg1,
            kg2,
            serving,
            durable: Arc::new(PersistState::new(None, telem)),
            recovery: None,
            live: None,
        };
        svc.note_publish(svc.registry.current().version.get());
        Ok(svc)
    }

    /// A **durable** service: persist every publication crash-safely to
    /// `dir` and warm-restart from whatever intact versions the directory
    /// already holds.
    ///
    /// * Fresh (or fully corrupt) directory: behaves like
    ///   [`AlignmentService::with_serving`] and immediately persists the
    ///   initial publication as version 1.
    /// * Populated directory: every intact version is validated
    ///   (checksums, structure, semantic consistency) and re-seeded into
    ///   the registry; corrupt or torn files are skipped with typed
    ///   diagnostics in [`AlignmentService::recovery`], recovery degrades
    ///   to the newest intact version, and the next publication resumes
    ///   numbering at `latest_intact + 1`. Restored snapshots answer
    ///   queries bitwise-identically to the services that saved them.
    ///
    /// Snapshots restored with an index configuration matching
    /// `serving.index` serve the *persisted* index without re-clustering;
    /// on a configuration change the index is lazily rebuilt under the
    /// new configuration instead. Only serving state is durable — the
    /// training model restarts from its seeded initialization, so
    /// continued training explores anew while queries keep answering from
    /// the restored versions.
    pub fn open(
        cfg: JointConfig,
        serving: ServingConfig,
        kg1: Arc<KnowledgeGraph>,
        kg2: Arc<KnowledgeGraph>,
        dir: impl Into<PathBuf>,
    ) -> Result<Self, DaakgError> {
        serving.validate()?;
        let telem = ServiceTelemetry::new(serving.telemetry.clone());
        let mut store = DurableRegistry::open(dir)?;
        store.set_spans(telem.store.clone());
        let (mut entries, report) = store.recover()?;
        let model = JointModel::new(cfg, &kg1, &kg2)?;
        let fresh = entries.is_empty();
        let registry = if fresh {
            let mut initial = model.snapshot(&kg1, &kg2);
            initial.set_index_config(serving.index.clone());
            SnapshotRegistry::new(initial)
        } else {
            for (_, snap) in &mut entries {
                // Reconcile a serving-config change across the restart:
                // re-stamping resets the lazy index cell, so queries
                // rebuild under the new configuration instead of serving
                // a stale persisted index (or panicking on a missing
                // one).
                if snap.index_config() != serving.index.as_ref() {
                    snap.set_index_config(serving.index.clone());
                }
            }
            SnapshotRegistry::from_entries(entries)
        };
        let svc = Self {
            registry: Arc::new(registry),
            model: Mutex::new(model),
            kg1,
            kg2,
            serving,
            durable: Arc::new(PersistState::new(Some(store), telem)),
            recovery: Some(report),
            live: None,
        };
        if fresh {
            let cur = svc.registry.current();
            svc.note_publish(cur.version.get());
            svc.persist(&cur)?;
        }
        Ok(svc)
    }

    /// The telemetry surface of this service: the metrics registry
    /// (counters, gauges, stage histograms), the structured event
    /// journal, and the Prometheus/JSON exposition built over them. When
    /// constructed with [`TelemetryConfig::disabled`] every recording is
    /// a no-op and exposition renders empty.
    pub fn telemetry(&self) -> &Telemetry {
        &self.durable.telem.telemetry
    }

    /// The full handle bundle (crate-internal: the sharded front-end and
    /// its ingress record into the same cells).
    pub(crate) fn telem(&self) -> &ServiceTelemetry {
        &self.durable.telem
    }

    /// Count + journal one snapshot publication.
    fn note_publish(&self, version: u64) {
        let t = self.telem();
        t.snapshot_publish.incr();
        t.event(EventKind::SnapshotPublish { version });
    }

    /// Persist one publication through the shared [`PersistState`] (see
    /// there for the retry/degradation discipline).
    fn persist(&self, published: &VersionedSnapshot) -> Result<(), DaakgError> {
        self.durable.persist(published)
    }

    /// The service's health: whether the latest persist failed (and with
    /// what error), how many publications lost durability, how many
    /// transient-IO retries the store absorbed — plus, when live updates
    /// are enabled, the delta depth and compaction counters. In-memory
    /// serving is unaffected by any of it — this surface exists so
    /// operators notice a failing disk (or a lagging compactor) *before*
    /// it matters.
    pub fn health(&self) -> ServiceHealth {
        let t = self.telem();
        ServiceHealth {
            durability_degraded: t.durability_degraded.get() != 0,
            last_persist_error: lock_recover(&self.durable.last_persist_error).clone(),
            persist_failures: t.persist_failures.get(),
            persist_retries: t.persist_retries.get(),
            degrade_engaged: false,
            ingress: None,
            live: self.live_health(),
        }
    }

    /// The snapshot directory of a durable service.
    pub fn store_dir(&self) -> Option<&Path> {
        self.durable.store.as_ref().map(|s| s.dir())
    }

    /// Whether publications are persisted to disk.
    pub fn is_durable(&self) -> bool {
        self.durable.store.is_some()
    }

    /// What [`AlignmentService::open`] found on disk: versions loaded,
    /// versions skipped as corrupt (with their typed errors), torn
    /// temp files removed, manifest staleness.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The serving configuration (index + default query mode).
    pub fn serving(&self) -> &ServingConfig {
        &self.serving
    }

    /// Stamp a freshly trained snapshot with the serving index
    /// configuration so the publication carries it atomically.
    fn prepare(&self, mut snap: AlignmentSnapshot) -> AlignmentSnapshot {
        snap.set_index_config(self.serving.index.clone());
        snap
    }

    /// The left knowledge graph.
    pub fn kg1(&self) -> &KnowledgeGraph {
        &self.kg1
    }

    /// The right knowledge graph.
    pub fn kg2(&self) -> &KnowledgeGraph {
        &self.kg2
    }

    /// The latest published version.
    pub fn version(&self) -> SnapshotVersion {
        self.registry.version()
    }

    /// The latest published snapshot with its version — the lock-free grab
    /// every query method starts from. Hold the returned `Arc` to pin that
    /// version for as long as needed.
    pub fn current(&self) -> VersionedSnapshot {
        self.registry.current()
    }

    /// A specific retained version (for staleness handling and per-version
    /// result verification).
    pub fn snapshot_at(&self, version: SnapshotVersion) -> Option<VersionedSnapshot> {
        self.registry.get(version)
    }

    /// [`AlignmentService::snapshot_at`] with a typed diagnosis instead
    /// of `None`: [`DaakgError::UnknownVersion`] distinguishes a version
    /// pruned out of retention (or skipped as corrupt at recovery) from
    /// one that was never published.
    pub fn snapshot_at_checked(
        &self,
        version: SnapshotVersion,
    ) -> Result<VersionedSnapshot, DaakgError> {
        self.registry.get_checked(version)
    }

    /// Number of retained publications (see [`AlignmentService::prune`]).
    pub fn retained_versions(&self) -> usize {
        self.registry.retained()
    }

    /// Drop all but the newest `keep` retained versions. With exclusive
    /// registry access this is the unconditional free; when the registry
    /// is shared with a live compactor thread it falls back to the
    /// quiescence-protocol shared prune.
    pub fn prune(&mut self, keep: usize) {
        match Arc::get_mut(&mut self.registry) {
            Some(registry) => registry.prune(keep),
            None => {
                self.registry.prune_shared(keep);
            }
        }
    }

    /// [`AlignmentService::prune`] plus on-disk garbage collection: drop
    /// all but the newest `keep` retained versions *and* delete their
    /// persisted files (each removed crash-safely; at least the newest
    /// on-disk version is always kept). Returns the versions whose files
    /// were deleted — empty for a non-durable service.
    pub fn prune_with_store(&mut self, keep: usize) -> Result<Vec<u64>, DaakgError> {
        self.prune(keep);
        match &self.durable.store {
            Some(store) => store.gc(keep),
            None => Ok(Vec::new()),
        }
    }

    /// Best-effort shared reclamation of all but the newest `keep`
    /// versions — usable through a shared `Arc<AlignmentService>` (see
    /// [`SnapshotRegistry::prune_shared`] for the quiescence protocol).
    /// Returns how many versions were freed.
    pub fn prune_shared(&self, keep: usize) -> usize {
        self.registry.prune_shared(keep)
    }

    /// Bound retained history for a long-running shared service: after
    /// each publish, only the newest `keep` versions are kept (0 restores
    /// unbounded retention, the default — full history is what enables
    /// per-version verification of live traffic).
    pub fn set_retention(&self, keep: usize) {
        self.registry.set_retention(keep);
    }

    pub(crate) fn check_query(&self, e1: u32) -> Result<(), DaakgError> {
        let bound = self.kg1.num_entities();
        if (e1 as usize) < bound {
            Ok(())
        } else {
            Err(DaakgError::unknown_entity(self.kg1.name(), e1, bound))
        }
    }

    /// Validate a per-call mode against this service's index presence and
    /// extract the probe width (`None` = exact).
    pub(crate) fn resolve_mode(&self, mode: QueryMode) -> Result<Option<usize>, DaakgError> {
        mode.validate(self.serving.index.is_some())?;
        Ok(match mode {
            QueryMode::Exact => None,
            QueryMode::Approx { nprobe } => Some(nprobe),
        })
    }

    /// The unified single-query entry point: answer `e1` under `opts` on
    /// the current version. `opts.k` selects a bounded top-k
    /// (`Some(k)`) or a full ranking (`None`); `opts.mode` selects the
    /// exhaustive scan or an IVF probe (in `Approx` mode the ranking
    /// covers the candidates of the `nprobe` probed inverted lists — the
    /// unscanned tail is absent, not approximated, and `nprobe == nlist`
    /// reproduces the exact answer). Runs lock-free on the version it
    /// grabs.
    pub fn query(&self, e1: u32, opts: QueryOptions) -> Result<Versioned<Ranking>, DaakgError> {
        self.check_query(e1)?;
        let nprobe = self.resolve_mode(opts.mode)?;
        let telem = self.telem();
        let cur = self.current();
        let mut value = match (opts.k, nprobe) {
            (None, None) => {
                let _span = telem.exact_scan.span();
                cur.snapshot.rank_entities(e1)
            }
            (Some(k), None) => {
                let _span = telem.exact_scan.span();
                cur.snapshot.top_k_entities(e1, k)
            }
            (None, Some(nprobe)) => cur
                .snapshot
                .rank_entities_approx_observed(e1, nprobe, &telem.search)
                .expect("validated: index configured"),
            (Some(k), Some(nprobe)) => cur
                .snapshot
                .top_k_entities_approx_observed(e1, k, nprobe, &telem.search)
                .expect("validated: index configured"),
        };
        let mut deltas_merged = 0u32;
        let n2 = cur.snapshot.entity_counts().1;
        if let Some(slab) = self.live_slab_for(cur.version.get()) {
            let _span = telem.delta_merge.span();
            let q = cur.snapshot.entity_engine().normalized_query(e1);
            value = slab
                .merge_into(q, 1, opts.k, n2, vec![value])
                .pop()
                .expect("one query in, one ranking out");
            deltas_merged = slab.len() as u32;
        }
        Ok(Versioned {
            version: cur.version,
            value,
            deltas_merged,
        })
    }

    /// The unified batch entry point: answer every query under `opts`,
    /// all on **one** version (a single grab covers the whole batch),
    /// sharded across worker threads via `daakg-parallel`. Exact shards
    /// run the blocked panel scan; approximate shards run one IVF probe
    /// per query (already inside a worker shard, so the index's own batch
    /// entry point is deliberately not nested here).
    pub fn query_batch(
        &self,
        queries: &[u32],
        opts: QueryOptions,
    ) -> Result<Versioned<Vec<Ranking>>, DaakgError> {
        for &q in queries {
            self.check_query(q)?;
        }
        let nprobe = self.resolve_mode(opts.mode)?;
        let telem = self.telem();
        let cur = self.current();
        let snap = &cur.snapshot;
        // Build the index before fanning out, so shards never race the
        // one-time construction inside their query loops.
        if nprobe.is_some() {
            snap.ivf_index();
        }
        let shards = daakg_parallel::num_threads();
        let mut value: Vec<Ranking> = Vec::with_capacity(queries.len());
        for shard in
            daakg_parallel::par_map_ranges(queries.len(), shards, |r| match (opts.k, nprobe) {
                (Some(k), None) => {
                    let _span = telem.exact_scan.span();
                    snap.top_k_entities_block(&queries[r], k)
                }
                (None, None) => {
                    let _span = telem.exact_scan.span();
                    queries[r].iter().map(|&q| snap.rank_entities(q)).collect()
                }
                (k, Some(nprobe)) => queries[r]
                    .iter()
                    .map(|&q| match k {
                        Some(k) => snap
                            .top_k_entities_approx_observed(q, k, nprobe, &telem.search)
                            .expect("validated: index configured"),
                        None => snap
                            .rank_entities_approx_observed(q, nprobe, &telem.search)
                            .expect("validated: index configured"),
                    })
                    .collect(),
            })
        {
            value.extend(shard);
        }
        let mut deltas_merged = 0u32;
        let n2 = snap.entity_counts().1;
        if let Some(slab) = self.live_slab_for(cur.version.get()) {
            let _span = telem.delta_merge.span();
            let panel = snap
                .entity_engine()
                .normalized_queries()
                .gather_rows(queries);
            value = slab.merge_into(panel.as_slice(), queries.len(), opts.k, n2, value);
            deltas_merged = slab.len() as u32;
        }
        Ok(Versioned {
            version: cur.version,
            value,
            deltas_merged,
        })
    }

    /// Rank all right entities for `e1`, descending, on the current
    /// version, in the service's default [`QueryMode`]. Runs lock-free on
    /// the version it grabs.
    pub fn rank(&self, e1: u32) -> Result<Versioned<Vec<(u32, f32)>>, DaakgError> {
        self.query(e1, QueryOptions::rank().with_mode(self.serving.mode))
    }

    /// Best `k` right entities for `e1`, descending, on the current
    /// version, in the service's default [`QueryMode`].
    pub fn top_k(&self, e1: u32, k: usize) -> Result<Versioned<Vec<(u32, f32)>>, DaakgError> {
        self.query(e1, QueryOptions::top_k(k).with_mode(self.serving.mode))
    }

    /// Best `k` right entities for *each* query, all answered on **one**
    /// version, sharded across worker threads via `daakg-parallel`, in
    /// the service's default [`QueryMode`].
    pub fn batch_top_k(
        &self,
        queries: &[u32],
        k: usize,
    ) -> Result<Versioned<Vec<Ranking>>, DaakgError> {
        self.query_batch(queries, QueryOptions::top_k(k).with_mode(self.serving.mode))
    }

    /// Full training (embedding warm-up plus alignment rounds) over
    /// `labels`; publishes the resulting snapshot and returns the exact
    /// publication (version + pinned snapshot — re-reading `current()`
    /// could already observe a concurrent publisher's newer version).
    /// Queries keep running on the previous version until the publish.
    pub fn train(&self, labels: &LabeledMatches) -> Result<VersionedSnapshot, DaakgError> {
        let mut model = self.model.lock().expect("model mutex poisoned");
        let snap = self.prepare(model.train(&self.kg1, &self.kg2, labels));
        self.publish_trained(snap)
    }

    /// Publish a training result: supersede the pending live delta (if
    /// enabled), persist, and retire the superseded delta segment files
    /// only once the superseding snapshot is durably on disk. If the
    /// persist fails, the segments stay — they are the only durable
    /// copies of the acknowledged upserts, and a restart then recovers
    /// the pre-retrain snapshot and replays them intact.
    fn publish_trained(&self, snap: AlignmentSnapshot) -> Result<VersionedSnapshot, DaakgError> {
        let published = self.registry.publish_pinned(snap);
        self.note_publish(published.version.get());
        let dropped = self.reanchor_live(&published);
        if !dropped.is_empty() {
            self.telem().event(EventKind::RetrainSupersede {
                version: published.version.get(),
                dropped: dropped.len(),
            });
        }
        let persisted = self.persist(&published);
        if persisted.is_ok() {
            self.remove_segments(&dropped);
        }
        persisted?;
        Ok(published)
    }

    /// Run `epochs` alignment epochs over `labels` and publish the result.
    /// Returns the new version and the loss per epoch. Call repeatedly to
    /// stream fresh versions to readers mid-campaign.
    pub fn align_rounds(
        &self,
        labels: &LabeledMatches,
        epochs: usize,
    ) -> Result<Versioned<Vec<f32>>, DaakgError> {
        let mut model = self.model.lock().expect("model mutex poisoned");
        let losses = model.align_rounds(&self.kg1, &self.kg2, labels, epochs);
        let snap = self.prepare(model.snapshot(&self.kg1, &self.kg2));
        let published = self.publish_trained(snap)?;
        Ok(Versioned {
            version: published.version,
            value: losses,
            deltas_merged: 0,
        })
    }

    /// Focal fine-tuning on (newly) labeled matches; publishes the result
    /// and returns the exact publication.
    pub fn fine_tune(&self, labels: &LabeledMatches) -> Result<VersionedSnapshot, DaakgError> {
        self.fine_tune_with_inferred(labels, &[], 1.0)
    }

    /// Active-learning update with inferred `(left, right, confidence)`
    /// matches injected alongside the labels (see
    /// [`JointModel::fine_tune_with_inferred`]); publishes the result and
    /// returns the exact publication.
    pub fn fine_tune_with_inferred(
        &self,
        labels: &LabeledMatches,
        inferred: &[(u32, u32, f32)],
        accept: f32,
    ) -> Result<VersionedSnapshot, DaakgError> {
        let mut model = self.model.lock().expect("model mutex poisoned");
        let snap = self
            .prepare(model.fine_tune_with_inferred(&self.kg1, &self.kg2, labels, inferred, accept));
        self.publish_trained(snap)
    }

    // -----------------------------------------------------------------
    // Live updates: upsert → delta buffer → background compaction
    // -----------------------------------------------------------------

    /// Enable the live-update subsystem: an append-only `DeltaBuffer`
    /// that [`AlignmentService::upsert_entity`] feeds while serving, and
    /// a background compactor thread that periodically folds pending
    /// entries into a newly published snapshot (rebuilt IVF included).
    ///
    /// On a durable service, pending deltas are also persisted as atomic
    /// segment files next to the snapshots, and this call first replays
    /// whatever intact segments a previous process left behind (the
    /// returned [`DeltaRecovery`] says what was replayed, skipped, or
    /// cleaned up). Torn or corrupt segments end the replay at the last
    /// intact prefix with typed [`DaakgError::Corrupt`] diagnostics.
    ///
    /// Call once, before sharing the service; a second call is a typed
    /// error. What segment replay found is kept in
    /// [`AlignmentService::live_recovery`].
    pub fn enable_live(&mut self, cfg: LiveConfig) -> Result<(), DaakgError> {
        cfg.validate()?;
        if self.live.is_some() {
            return Err(DaakgError::InvalidConfig {
                context: "LiveConfig",
                reason: "live updates are already enabled on this service".into(),
            });
        }
        let cur = self.registry.current();
        let base_n = cur.snapshot.entity_counts().1;
        let dim = cur.snapshot.ents2.cols();
        let buffer = Arc::new(DeltaBuffer::new(cur.version.get(), base_n, dim));
        let mut recovery = None;
        if let Some(dir) = self.store_dir() {
            let (entries, report) = delta::recover_segments(dir, base_n)?;
            buffer.restore(entries)?;
            recovery = Some(report);
        }
        let stats = Arc::new(LiveStats::default());
        let fold_lock = Arc::new(Mutex::new(()));
        let task = {
            let registry = Arc::clone(&self.registry);
            let durable = Arc::clone(&self.durable);
            let buffer = Arc::clone(&buffer);
            let stats = Arc::clone(&stats);
            let fold_lock = Arc::clone(&fold_lock);
            let index = self.serving.index.clone();
            Box::new(move || {
                let _guard = lock_recover(&fold_lock);
                // Persist failures are already recorded in the shared
                // health counters; the tick has no caller to surface the
                // error to, so it is dropped here after recording.
                let _ = fold_once(&registry, &durable, &buffer, &stats, index.as_ref());
            })
        };
        let compactor = Compactor::spawn(
            cfg.tick,
            Arc::clone(&stats),
            self.telemetry().journal().clone(),
            task,
        );
        if buffer.depth() >= cfg.compact_after {
            // Replay alone may already warrant a fold.
            compactor.nudge();
        }
        self.live = Some(LiveState {
            cfg,
            buffer,
            stats,
            upsert_lock: Mutex::new(()),
            fold_lock,
            compactor: Some(compactor),
            recovery,
        });
        Ok(())
    }

    /// Whether the live-update subsystem is enabled.
    pub fn is_live(&self) -> bool {
        self.live.is_some()
    }

    /// The live configuration, when enabled.
    pub fn live_config(&self) -> Option<&LiveConfig> {
        self.live.as_ref().map(|l| &l.cfg)
    }

    /// What delta-segment replay found when [`AlignmentService::enable_live`]
    /// warm-restarted a durable service; `None` when live updates are off
    /// or nothing was on disk to replay.
    pub fn live_recovery(&self) -> Option<&DeltaRecovery> {
        self.live.as_ref().and_then(|l| l.recovery.as_ref())
    }

    /// Live-update health counters, when enabled (also folded into
    /// [`AlignmentService::health`]).
    pub fn live_health(&self) -> Option<LiveHealth> {
        use std::sync::atomic::Ordering::Relaxed;
        self.live.as_ref().map(|l| {
            let delta_depth = l.buffer.depth();
            LiveHealth {
                delta_depth,
                upserts: l.buffer.upserts(),
                compactions: l.stats.compactions.load(Relaxed),
                compactor_panics: l.stats.panics.load(Relaxed),
                compaction_lag: (delta_depth / l.cfg.compact_after) as u64,
                last_compacted_version: l.stats.last_compacted(),
            }
        })
    }

    /// The slab to merge into a query answered on snapshot `version`, if
    /// live updates are enabled and deltas are pending against exactly
    /// that anchor. Version (not entity-count) keyed: a just-published
    /// retrain — which typically keeps the right-entity count unchanged —
    /// must never merge delta rows warm-started against its superseded
    /// tables.
    pub(crate) fn live_slab_for(&self, version: u64) -> Option<Arc<DeltaSlab>> {
        self.live.as_ref().and_then(|l| l.buffer.slab_for(version))
    }

    /// Insert one new right-KG entity while serving. `triples` anchor it
    /// to existing right entities (or earlier pending delta entities) —
    /// its embedding is warm-start fine-tuned against the frozen
    /// published tables ([`daakg_embed::warm_start_row`]: deterministic
    /// at any thread count), appended to the delta buffer, and, on a
    /// durable service, persisted as an atomic segment file *before* it
    /// becomes queryable. Returns the new global right-entity id: every
    /// subsequent query merges the entity exactly (bitwise-equal to a
    /// scan over the union corpus) until a compaction folds it into the
    /// published snapshot — or a full retrain supersedes it.
    pub fn upsert_entity(&self, triples: &[DeltaTriple]) -> Result<u32, DaakgError> {
        let live = self.live_required()?;
        if triples.is_empty() {
            return Err(DaakgError::InvalidConfig {
                context: "upsert_entity",
                reason: "at least one anchoring triple is required".into(),
            });
        }
        let _serial = lock_recover(&live.upsert_lock);
        let cur = self.registry.current();
        let (base_n, pending) = live.buffer.pending();
        let id = (base_n + pending.len()) as u32;
        let raw = self.warm_start(&cur, base_n, &pending, id, triples, &live.cfg)?;
        let entry = DeltaEntry {
            global_id: id,
            raw,
            triples: triples.to_vec(),
        };
        if let Some(dir) = self.store_dir() {
            delta::write_segment(dir, &entry)?;
        }
        if let Err(e) = live.buffer.append(entry) {
            // Undo the segment write so a failed append cannot leave an
            // orphan that a later restart would replay.
            if let Some(dir) = self.store_dir() {
                let _ = delta::remove_segment(dir, id);
            }
            return Err(e);
        }
        if live.buffer.depth() >= live.cfg.compact_after {
            if let Some(c) = &live.compactor {
                c.nudge();
            }
        }
        Ok(id)
    }

    /// Attach additional triples to a *pending* delta entity and re-run
    /// its warm-start fine-tune over the extended positive set (same
    /// deterministic seed — the result depends only on the final triple
    /// set, not on how it arrived). Entities already folded into the
    /// published corpus are a retrain's business and yield a typed
    /// [`DaakgError::UnknownEntity`].
    pub fn upsert_triples(
        &self,
        global_id: u32,
        triples: &[DeltaTriple],
    ) -> Result<(), DaakgError> {
        let live = self.live_required()?;
        if triples.is_empty() {
            return Err(DaakgError::InvalidConfig {
                context: "upsert_triples",
                reason: "at least one triple is required".into(),
            });
        }
        let _serial = lock_recover(&live.upsert_lock);
        // Exclude a concurrent fold for the whole read → re-finetune →
        // replace unit (lock order: upsert_lock before fold_lock; no path
        // takes them in the reverse order). Without this, a fold could
        // clone the entry, publish the folded snapshot with the OLD
        // embedding, and then drain the replacement and delete its freshly
        // written segment — silently losing an acknowledged update.
        let _fold = lock_recover(&live.fold_lock);
        let cur = self.registry.current();
        let (base_n, pending) = live.buffer.pending();
        let pos = (global_id as usize)
            .checked_sub(base_n)
            .filter(|&p| p < pending.len())
            .ok_or_else(|| DaakgError::UnknownEntity {
                kg: "delta".into(),
                id: global_id,
                bound: base_n + pending.len(),
            })?;
        let mut merged = pending[pos].triples.clone();
        merged.extend_from_slice(triples);
        let raw = self.warm_start(&cur, base_n, &pending, global_id, &merged, &live.cfg)?;
        let entry = DeltaEntry {
            global_id,
            raw,
            triples: merged,
        };
        if let Some(dir) = self.store_dir() {
            delta::write_segment(dir, &entry)?;
        }
        live.buffer.replace(entry)
    }

    /// Synchronously fold all pending delta entries into a new published
    /// snapshot (what the background compactor does on its tick).
    /// Returns the publication, or `None` when nothing was pending.
    pub fn compact_now(&self) -> Result<Option<VersionedSnapshot>, DaakgError> {
        let live = self.live_required()?;
        let _guard = lock_recover(&live.fold_lock);
        fold_once(
            &self.registry,
            &self.durable,
            &live.buffer,
            &live.stats,
            self.serving.index.as_ref(),
        )
    }

    fn live_required(&self) -> Result<&LiveState, DaakgError> {
        self.live.as_ref().ok_or(DaakgError::InvalidConfig {
            context: "live",
            reason: "live updates are not enabled (call enable_live / Pipeline::live first)".into(),
        })
    }

    /// Resolve each triple's neighbor to its raw embedding row (base
    /// corpus or an earlier pending delta row) and warm-start the new
    /// row's embedding against the frozen published tables.
    fn warm_start(
        &self,
        cur: &VersionedSnapshot,
        base_n: usize,
        pending: &[DeltaEntry],
        global_id: u32,
        triples: &[DeltaTriple],
        cfg: &LiveConfig,
    ) -> Result<Vec<f32>, DaakgError> {
        let rows: Vec<&[f32]> = triples
            .iter()
            .map(|t| {
                let nb = t.neighbor as usize;
                if nb < base_n {
                    Ok(cur.snapshot.ents2.row(nb))
                } else if nb < base_n + pending.len() && (nb as u32) < global_id {
                    Ok(pending[nb - base_n].raw.as_slice())
                } else {
                    Err(DaakgError::UnknownEntity {
                        kg: "delta".into(),
                        id: t.neighbor,
                        bound: base_n + pending.len(),
                    })
                }
            })
            .collect::<Result<_, _>>()?;
        let positives = Tensor::from_rows(&rows);
        warm_start_row_observed(
            &cur.snapshot.ents2,
            &positives,
            global_id as u64,
            &cfg.warm,
            &self.telem().warm_start,
        )
    }

    /// A training publish supersedes the pending delta: the retrained
    /// snapshot re-derives every row from the KGs, so delta rows trained
    /// against the *previous* tables no longer extend it coherently.
    /// Re-anchor the buffer at the fresh publication — under the fold
    /// lock, so an in-flight fold can never commit (and drain the buffer)
    /// against an anchor this supersession just invalidated — and return
    /// the dropped entries. Superseded entities re-enter through the KGs
    /// at the next retrain, or through fresh upserts; their segment files
    /// are retired by the caller only after the superseding snapshot has
    /// durably persisted ([`AlignmentService::remove_segments`]).
    fn reanchor_live(&self, published: &VersionedSnapshot) -> Vec<DeltaEntry> {
        let Some(live) = &self.live else {
            return Vec::new();
        };
        let _guard = lock_recover(&live.fold_lock);
        let n2 = published.snapshot.entity_counts().1;
        live.buffer.reanchor(published.version.get(), n2)
    }

    /// Best-effort removal of superseded delta segment files. Call only
    /// once the superseding snapshot is durably on disk; anything missed
    /// here is cleaned up by segment recovery at the next warm restart.
    fn remove_segments(&self, dropped: &[DeltaEntry]) {
        if let Some(dir) = self.store_dir() {
            for e in dropped {
                let _ = delta::remove_segment(dir, e.global_id);
            }
        }
    }
}

/// One compaction pass: fold every pending delta entry into a newly
/// published snapshot (serialized by the caller's fold lock).
///
/// The folded snapshot appends the **raw** delta rows to `ents2` —
/// snapshot construction then normalizes per-row, which is bitwise the
/// normalization the delta slab applied — so [`QueryMode::Exact`] answers
/// before and after the fold are bit-for-bit identical. `Approx` answers
/// may legitimately differ across a fold: pre-fold the delta is an
/// *exact* side scan merged into the IVF answer over the base corpus,
/// while post-fold the rebuilt IVF probes the union corpus
/// approximately, so a delta entity that was always merged pre-fold can
/// land in an unprobed list afterwards. Dangling-entity weights (Eq. 6)
/// are extended for the new rows; schema-level mean embeddings refresh at
/// the next full retrain (they aggregate entity evidence that did not
/// change for existing rows).
fn fold_once(
    registry: &SnapshotRegistry,
    durable: &PersistState,
    buffer: &DeltaBuffer,
    stats: &LiveStats,
    index: Option<&IvfConfig>,
) -> Result<Option<VersionedSnapshot>, DaakgError> {
    let cur = registry.current();
    let n2 = cur.snapshot.entity_counts().1;
    let anchor = cur.version.get();
    if buffer.anchor() != anchor {
        // A publish moved the registry under the pending delta without a
        // service-level reanchor (registry handles are shareable):
        // re-anchor and skip this pass. The dropped entries' segment files
        // are deliberately left in place — whether the superseding
        // snapshot is durable is unknowable here, and until it is, those
        // files are the only durable copies of the acknowledged upserts.
        // Recovery removes whatever a later persisted snapshot folded in.
        let _ = buffer.reanchor(anchor, n2);
        return Ok(None);
    }
    let Some(entries) = buffer.fold_candidates(anchor) else {
        return Ok(None);
    };
    let telem = &durable.telem;
    let count = entries.len();
    telem.event(EventKind::FoldStart {
        anchor,
        pending: count,
    });
    let mut snap = {
        let _span = telem.fold.span();
        fold_snapshot(&cur.snapshot, &entries)?
    };
    snap.set_index_config(index.cloned());
    // Compare-and-publish: if training published while the fold was being
    // built, the fold is based on a superseded corpus — drop it and let
    // the next pass re-anchor. Entries stay pending either way.
    let published = {
        let _span = telem.republish.span();
        registry.publish_if_current(snap, cur.version)
    };
    let Some(published) = published else {
        return Ok(None);
    };
    telem.snapshot_publish.incr();
    telem.event(EventKind::SnapshotPublish {
        version: published.version.get(),
    });
    let persisted = durable.persist(&published);
    // Commit before surfacing any persist failure: the publish stands
    // (readers already serve the folded corpus), so the buffer must
    // advance either way.
    buffer.fold_committed(count, published.version.get());
    telem.compactions.incr();
    telem.event(EventKind::FoldDone {
        version: published.version.get(),
        folded: count,
    });
    if persisted.is_ok() {
        // Retire segments only behind a successful persist: until the
        // folded snapshot is durably on disk, the segment files are the
        // only durable copies of the acknowledged upserts. On a persist
        // failure they stay — a restart then recovers the pre-fold
        // snapshot and replays them intact, and once a later snapshot
        // persists, recovery's id rule deletes the folded leftovers.
        // Removal itself is best-effort for the same reason.
        if let Some(store) = &durable.store {
            for e in &entries {
                let _ = delta::remove_segment(store.dir(), e.global_id);
            }
        }
    }
    stats.record(published.version.get());
    persisted?;
    Ok(Some(published))
}

/// Build the folded snapshot: `base` with the delta rows appended.
fn fold_snapshot(
    base: &AlignmentSnapshot,
    entries: &[DeltaEntry],
) -> Result<AlignmentSnapshot, DaakgError> {
    let dim = base.ents2.cols();
    let n2 = base.ents2.rows();
    let mut data = base.ents2.as_slice().to_vec();
    for e in entries {
        data.extend_from_slice(&e.raw);
    }
    let ents2 = Tensor::from_vec(n2 + entries.len(), dim, data);

    // Eq. 6 for the appended rows: w_e' = max_e clamp(S(e, e'), 0), with
    // S the cosine the engine serves — normalize the new rows exactly as
    // the slab/engine does and take the best clamped dot against every
    // (already normalized) mapped left query row.
    let mut stacked = Tensor::zeros(entries.len(), dim);
    for (i, e) in entries.iter().enumerate() {
        stacked.row_mut(i).copy_from_slice(&e.raw);
    }
    normalize_rows_cosine(&mut stacked);
    let queries = base.entity_engine().normalized_queries();
    let mut weights = base.weights.clone();
    for i in 0..entries.len() {
        let row = stacked.row(i);
        let mut best = 0.0f32;
        for q in 0..queries.rows() {
            let s: f32 = queries.row(q).iter().zip(row).map(|(a, b)| a * b).sum();
            if s > best {
                best = s;
            }
        }
        weights.right.push(best);
    }

    let parts = SnapshotParts {
        ents1: base.ents1.clone(),
        ents2,
        mapped_ents1: base.mapped_ents1.clone(),
        rels1: base.rels1.clone(),
        rels2: base.rels2.clone(),
        mapped_rels1: base.mapped_rels1.clone(),
        cls1: base.cls1.clone(),
        cls2: base.cls2.clone(),
        mapped_cls1: base.mapped_cls1.clone(),
        mean_rels1: base.mean_rels1.clone(),
        mean_rels2: base.mean_rels2.clone(),
        mapped_mean_rels1: base.mapped_mean_rels1.clone(),
        mean_cls1: base.mean_cls1.clone(),
        mean_cls2: base.mean_cls2.clone(),
        mapped_mean_cls1: base.mapped_mean_cls1.clone(),
        weights,
        use_mean_embeddings: base.use_mean_embeddings,
        use_class_embeddings: base.use_class_embeddings,
    };
    AlignmentSnapshot::from_parts(parts).map_err(|reason| DaakgError::InvalidConfig {
        context: "delta fold",
        reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JointConfig;
    use daakg_embed::EmbedConfig;
    use daakg_graph::kg::{example_dbpedia, example_wikidata};
    use daakg_graph::ElementPair;

    fn tiny_cfg() -> JointConfig {
        JointConfig {
            embed: EmbedConfig {
                dim: 8,
                class_dim: 4,
                epochs: 2,
                batch_size: 16,
                ..EmbedConfig::default()
            },
            align_epochs: 3,
            fine_tune_epochs: 1,
            ..JointConfig::default()
        }
    }

    fn example_service() -> AlignmentService {
        AlignmentService::new(
            tiny_cfg(),
            Arc::new(example_dbpedia()),
            Arc::new(example_wikidata()),
        )
        .unwrap()
    }

    fn example_labels(svc: &AlignmentService) -> LabeledMatches {
        let mut labels = LabeledMatches::new();
        for (a, b) in [("Michael Jackson", "Q2831"), ("UnitedStates", "USA")] {
            labels.push(ElementPair::Entity(
                svc.kg1().entity_by_name(a).unwrap(),
                svc.kg2().entity_by_name(b).unwrap(),
            ));
        }
        labels
    }

    /// Compile-time satellite: the service types must be shareable across
    /// threads (`&AlignmentService` is what reader threads hold).
    #[test]
    fn service_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AlignmentService>();
        assert_send_sync::<SnapshotRegistry>();
        assert_send_sync::<AlignmentSnapshot>();
        assert_send_sync::<VersionedSnapshot>();
        assert_send_sync::<Versioned<Vec<(u32, f32)>>>();
        assert_send_sync::<SnapshotVersion>();
    }

    #[test]
    fn initial_version_is_one_and_queries_answer() {
        let svc = example_service();
        assert_eq!(svc.version().get(), 1);
        let r = svc.rank(0).unwrap();
        assert_eq!(r.version.get(), 1);
        assert_eq!(r.value.len(), svc.kg2().num_entities());
        let t = svc.top_k(0, 3).unwrap();
        assert_eq!(t.value.len(), 3);
    }

    #[test]
    fn unknown_entities_are_typed_errors_not_panics() {
        let svc = example_service();
        let n = svc.kg1().num_entities() as u32;
        for res in [svc.rank(n), svc.top_k(n + 7, 3)] {
            match res {
                Err(DaakgError::UnknownEntity { id, bound, .. }) => {
                    assert!(id >= n);
                    assert_eq!(bound, n as usize);
                }
                other => panic!("expected UnknownEntity, got {other:?}"),
            }
        }
        let err = svc.batch_top_k(&[0, n], 2).unwrap_err();
        assert!(matches!(err, DaakgError::UnknownEntity { .. }));
    }

    #[test]
    fn training_publishes_monotone_versions_and_retains_history() {
        let svc = example_service();
        let labels = example_labels(&svc);
        let v2 = svc.train(&labels).unwrap();
        assert_eq!(v2.version.get(), 2);
        // The returned publication is pinned: usable even after later
        // publishes, and identical to what the registry retained.
        assert_eq!(v2.snapshot.entity_counts().0, svc.kg1().num_entities());
        let out = svc.align_rounds(&labels, 2).unwrap();
        assert_eq!(out.version.get(), 3);
        assert_eq!(out.value.len(), 2);
        let v4 = svc.fine_tune(&labels).unwrap();
        assert_eq!(v4.version.get(), 4);
        assert_eq!(svc.retained_versions(), 4);
        // Every retained version is still queryable.
        for v in 1..=4u64 {
            let pinned = svc.snapshot_at(SnapshotVersion(v)).unwrap();
            assert_eq!(pinned.version.get(), v);
            assert_eq!(pinned.snapshot.entity_counts().0, svc.kg1().num_entities());
        }
        assert!(svc.snapshot_at(SnapshotVersion(5)).is_none());
    }

    #[test]
    fn batch_top_k_matches_per_query_answers() {
        let svc = example_service();
        let labels = example_labels(&svc);
        svc.train(&labels).unwrap();
        let queries: Vec<u32> = (0..svc.kg1().num_entities() as u32).collect();
        let batch = svc.batch_top_k(&queries, 3).unwrap();
        assert_eq!(batch.value.len(), queries.len());
        for (&q, got) in queries.iter().zip(&batch.value) {
            let single = svc
                .snapshot_at(batch.version)
                .unwrap()
                .snapshot
                .top_k_entities(q, 3);
            assert_eq!(got, &single);
        }
    }

    #[test]
    fn prune_keeps_newest_versions_only() {
        let mut svc = example_service();
        let labels = example_labels(&svc);
        for _ in 0..3 {
            svc.align_rounds(&labels, 1).unwrap();
        }
        assert_eq!(svc.retained_versions(), 4);
        svc.prune(2);
        assert_eq!(svc.retained_versions(), 2);
        assert!(svc.snapshot_at(SnapshotVersion(1)).is_none());
        assert!(svc.snapshot_at(SnapshotVersion(4)).is_some());
        // Current still answers after pruning.
        assert_eq!(svc.version().get(), 4);
        svc.rank(0).unwrap();
        // Prune below 1 still keeps the current version.
        svc.prune(0);
        assert_eq!(svc.retained_versions(), 1);
        assert_eq!(svc.current().version.get(), 4);
    }

    /// Readers running concurrently with publishers must only ever observe
    /// complete snapshots (self-consistent matrices) at monotonically
    /// non-decreasing versions.
    #[test]
    fn concurrent_readers_observe_complete_monotone_snapshots() {
        let svc = example_service();
        let labels = example_labels(&svc);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for _ in 0..3 {
                readers.push(scope.spawn(|| {
                    let mut last = 0u64;
                    let mut observed = 0usize;
                    loop {
                        // Check `stop` only after at least one query: on a
                        // single-core box the writer can finish before this
                        // thread is first scheduled.
                        let done = stop.load(Ordering::Relaxed);
                        let cur = svc.current();
                        let v = cur.version.get();
                        assert!(v >= last, "version went backwards: {last} -> {v}");
                        last = v;
                        // Completeness: the grabbed snapshot must be fully
                        // built — consistent shapes and a working engine.
                        let (n1, n2) = cur.snapshot.entity_counts();
                        assert_eq!(n1, svc.kg1().num_entities());
                        assert_eq!(n2, svc.kg2().num_entities());
                        let top = cur.snapshot.top_k_entities(0, 2);
                        assert_eq!(top.len(), 2);
                        observed += 1;
                        if done {
                            break;
                        }
                    }
                    observed
                }));
            }
            for _ in 0..4 {
                svc.align_rounds(&labels, 1).unwrap();
            }
            stop.store(true, Ordering::Relaxed);
            for r in readers {
                assert!(r.join().unwrap() > 0, "reader never ran a query");
            }
        });
        assert_eq!(svc.version().get(), 5);
    }

    /// Shared reclamation works through `&self` (the `Arc`-sharing
    /// deployment): an at-publish retention policy bounds history, and the
    /// service keeps answering afterwards.
    #[test]
    fn shared_retention_bounds_history_on_a_shared_service() {
        let svc = example_service();
        let labels = example_labels(&svc);
        svc.set_retention(2);
        for _ in 0..4 {
            svc.align_rounds(&labels, 1).unwrap();
        }
        // No readers in flight: each publish reclaims down to 2.
        assert_eq!(svc.retained_versions(), 2);
        assert_eq!(svc.version().get(), 5);
        assert!(svc.snapshot_at(SnapshotVersion(5)).is_some());
        assert!(svc.snapshot_at(SnapshotVersion(1)).is_none());
        svc.rank(0).unwrap();
        // Explicit on-demand shared prune.
        assert_eq!(svc.prune_shared(1), 1);
        assert_eq!(svc.retained_versions(), 1);
    }

    /// Stress the quiescence protocol: readers hammer `current()` while a
    /// writer publishes with a tight retention policy; every grabbed
    /// snapshot must stay fully usable and history stays bounded.
    #[test]
    fn shared_pruning_never_invalidates_in_flight_readers() {
        let svc = example_service();
        let labels = example_labels(&svc);
        svc.set_retention(2);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for _ in 0..3 {
                readers.push(scope.spawn(|| {
                    let mut grabs = 0usize;
                    loop {
                        let done = stop.load(Ordering::Relaxed);
                        let cur = svc.current();
                        // Use the grabbed snapshot after more publishes may
                        // have pruned its version from history: the held
                        // Arc must keep it alive and consistent.
                        let top = cur.snapshot.top_k_entities(0, 2);
                        assert_eq!(top.len(), 2);
                        assert!(top[0].1 >= top[1].1);
                        grabs += 1;
                        if done {
                            break;
                        }
                    }
                    grabs
                }));
            }
            for _ in 0..6 {
                svc.align_rounds(&labels, 1).unwrap();
            }
            stop.store(true, Ordering::Relaxed);
            for r in readers {
                assert!(r.join().unwrap() > 0);
            }
        });
        assert_eq!(svc.version().get(), 7);
        // Bounded: retention-2 plus at most a few transiently-skipped
        // prunes (the quiescence wait is best-effort under live readers).
        assert!(
            svc.retained_versions() <= 4,
            "history not bounded: {}",
            svc.retained_versions()
        );
        let before = svc.retained_versions();
        assert_eq!(svc.prune_shared(1), before - 1);
        assert_eq!(svc.retained_versions(), 1);
    }

    fn example_indexed_service() -> AlignmentService {
        AlignmentService::with_serving(
            tiny_cfg(),
            ServingConfig::with_index(3),
            Arc::new(example_dbpedia()),
            Arc::new(example_wikidata()),
        )
        .unwrap()
    }

    #[test]
    fn serving_config_validation_rejects_bad_compositions() {
        assert!(ServingConfig::default().validate().is_ok());
        assert!(ServingConfig::with_index(4).validate().is_ok());
        let bad_nlist = ServingConfig::with_index(0);
        assert!(matches!(
            bad_nlist.validate(),
            Err(DaakgError::InvalidConfig { .. })
        ));
        let approx_without_index = ServingConfig {
            index: None,
            mode: daakg_index::QueryMode::Approx { nprobe: 2 },
            ..ServingConfig::default()
        };
        assert!(approx_without_index.validate().is_err());
        let zero_probe = ServingConfig {
            mode: daakg_index::QueryMode::Approx { nprobe: 0 },
            ..ServingConfig::with_index(4)
        };
        assert!(zero_probe.validate().is_err());
        // The same violations surface at service construction.
        assert!(AlignmentService::with_serving(
            tiny_cfg(),
            approx_without_index,
            Arc::new(example_dbpedia()),
            Arc::new(example_wikidata()),
        )
        .is_err());
    }

    #[test]
    fn approx_queries_without_an_index_are_typed_errors() {
        let svc = example_service();
        for res in [
            svc.query(0, QueryOptions::top_k(3).approx(2))
                .map(|v| v.value),
            svc.query(0, QueryOptions::rank().approx(2))
                .map(|v| v.value),
        ] {
            assert!(matches!(res, Err(DaakgError::InvalidConfig { .. })));
        }
        let err = svc
            .query_batch(&[0, 1], QueryOptions::top_k(2).approx(2))
            .unwrap_err();
        assert!(matches!(err, DaakgError::InvalidConfig { .. }));
        // And nprobe = 0 is rejected even with an index present.
        let svc = example_indexed_service();
        assert!(svc.query(0, QueryOptions::top_k(3).approx(0)).is_err());
    }

    #[test]
    fn full_probe_approx_reproduces_exact_answers_across_versions() {
        use daakg_index::QueryMode;
        let svc = example_indexed_service();
        let labels = example_labels(&svc);
        svc.train(&labels).unwrap();
        let nlist = svc
            .current()
            .snapshot
            .ivf_index()
            .expect("index configured")
            .nlist();
        let full = QueryMode::Approx { nprobe: nlist };
        let n1 = svc.kg1().num_entities();
        let n2 = svc.kg2().num_entities();
        for e1 in 0..n1 as u32 {
            for k in [0usize, 1, 3, n2, n2 + 5] {
                let exact = svc.top_k(e1, k).unwrap();
                let approx = svc
                    .query(e1, QueryOptions::top_k(k).with_mode(full))
                    .unwrap();
                assert_eq!(exact.version, approx.version);
                assert_eq!(exact.value, approx.value, "e1={e1} k={k}");
            }
        }
        let queries: Vec<u32> = (0..n1 as u32).collect();
        let exact = svc.batch_top_k(&queries, 4).unwrap();
        let approx = svc
            .query_batch(&queries, QueryOptions::top_k(4).with_mode(full))
            .unwrap();
        assert_eq!(exact.value, approx.value);
        // Partial probes stay within the exact candidate universe and
        // carry exact scores for everything they return.
        let partial = svc.query(0, QueryOptions::top_k(n2).approx(1)).unwrap();
        let exact_all = svc.rank(0).unwrap();
        for (id, s) in &partial.value {
            let (_, es) = exact_all.value.iter().find(|(e, _)| e == id).unwrap();
            assert_eq!(s.to_bits(), es.to_bits());
        }
    }

    #[test]
    fn default_mode_approx_serves_plain_queries_through_the_index() {
        use daakg_index::QueryMode;
        let svc = AlignmentService::with_serving(
            tiny_cfg(),
            ServingConfig {
                mode: QueryMode::Approx { nprobe: 3 },
                ..ServingConfig::with_index(3)
            },
            Arc::new(example_dbpedia()),
            Arc::new(example_wikidata()),
        )
        .unwrap();
        // nprobe == nlist: the default-mode plain calls must equal the
        // explicit exact answers.
        let exact = svc
            .query(0, QueryOptions::top_k(4).with_mode(QueryMode::Exact))
            .unwrap();
        let plain = svc.top_k(0, 4).unwrap();
        assert_eq!(exact.value, plain.value);
    }

    #[test]
    fn each_version_builds_its_index_once_and_keeps_it() {
        let svc = example_indexed_service();
        let labels = example_labels(&svc);
        svc.train(&labels).unwrap();
        svc.align_rounds(&labels, 1).unwrap();
        for v in 1..=3u64 {
            let pinned = svc.snapshot_at(SnapshotVersion(v)).unwrap();
            let first = Arc::clone(pinned.snapshot.ivf_index().expect("index configured"));
            let second = Arc::clone(pinned.snapshot.ivf_index().unwrap());
            assert!(
                Arc::ptr_eq(&first, &second),
                "version {v} rebuilt its index"
            );
            // Re-grabbing the same version sees the same built index (the
            // registry shares one snapshot per version).
            let again = svc.snapshot_at(SnapshotVersion(v)).unwrap();
            assert!(Arc::ptr_eq(&first, again.snapshot.ivf_index().unwrap()));
        }
        // Distinct versions own distinct indexes.
        let i2 = Arc::clone(
            svc.snapshot_at(SnapshotVersion(2))
                .unwrap()
                .snapshot
                .ivf_index()
                .unwrap(),
        );
        let i3 = Arc::clone(
            svc.snapshot_at(SnapshotVersion(3))
                .unwrap()
                .snapshot
                .ivf_index()
                .unwrap(),
        );
        assert!(!Arc::ptr_eq(&i2, &i3));
    }

    #[test]
    fn snapshot_at_checked_diagnoses_pruned_vs_never_published() {
        let mut svc = example_service();
        let labels = example_labels(&svc);
        for _ in 0..3 {
            svc.align_rounds(&labels, 1).unwrap();
        }
        svc.prune(2);
        // Version 1 existed but fell out of retention.
        match svc.snapshot_at_checked(SnapshotVersion::of(1)) {
            Err(DaakgError::UnknownVersion {
                requested: 1,
                latest: 4,
                pruned: true,
            }) => {}
            other => panic!("expected pruned UnknownVersion, got {other:?}"),
        }
        // Version 9 was never published.
        match svc.snapshot_at_checked(SnapshotVersion::of(9)) {
            Err(DaakgError::UnknownVersion {
                requested: 9,
                latest: 4,
                pruned: false,
            }) => {}
            other => panic!("expected never-published UnknownVersion, got {other:?}"),
        }
        // Retained versions resolve.
        assert_eq!(
            svc.snapshot_at_checked(SnapshotVersion::of(4))
                .unwrap()
                .version
                .get(),
            4
        );
    }

    #[test]
    fn open_on_a_fresh_directory_persists_the_initial_version() {
        let td = daakg_store::TestDir::new("svc-fresh");
        let svc = AlignmentService::open(
            tiny_cfg(),
            ServingConfig::default(),
            Arc::new(example_dbpedia()),
            Arc::new(example_wikidata()),
            td.path(),
        )
        .unwrap();
        assert!(svc.is_durable());
        assert_eq!(svc.store_dir().unwrap(), td.path());
        assert_eq!(svc.version().get(), 1);
        let report = svc.recovery().unwrap();
        assert!(report.loaded.is_empty());
        assert!(report.skipped.is_empty());
        // v1 is on disk immediately.
        let reg = DurableRegistry::open(td.path()).unwrap();
        assert_eq!(reg.versions().unwrap(), vec![1]);
        assert!(reg.load(1).unwrap().bitwise_eq(&svc.current().snapshot));
    }

    #[test]
    fn warm_restart_restores_versions_and_resumes_numbering() {
        let td = daakg_store::TestDir::new("svc-restart");
        let open = || {
            AlignmentService::open(
                tiny_cfg(),
                ServingConfig::default(),
                Arc::new(example_dbpedia()),
                Arc::new(example_wikidata()),
                td.path(),
            )
            .unwrap()
        };
        let answers = {
            let svc = open();
            let labels = example_labels(&svc);
            svc.train(&labels).unwrap();
            svc.align_rounds(&labels, 1).unwrap();
            assert_eq!(svc.version().get(), 3);
            svc.batch_top_k(&[0, 1, 2], 3).unwrap()
        }; // drop = process "exit"
        let svc = open();
        assert_eq!(svc.version().get(), 3);
        let report = svc.recovery().unwrap();
        assert_eq!(report.loaded, vec![1, 2, 3]);
        assert!(report.skipped.is_empty());
        // Restored answers are bitwise identical to pre-restart ones.
        let restored = svc.batch_top_k(&[0, 1, 2], 3).unwrap();
        assert_eq!(restored.version.get(), 3);
        for (a, b) in answers.value.iter().zip(&restored.value) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.0, y.0);
                assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
        // Numbering resumes monotonically: next publish is v4, on disk.
        let labels = example_labels(&svc);
        let v4 = svc.train(&labels).unwrap();
        assert_eq!(v4.version.get(), 4);
        let reg = DurableRegistry::open(td.path()).unwrap();
        assert_eq!(reg.versions().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn warm_restart_skips_corrupt_newest_and_republishes_over_it() {
        let td = daakg_store::TestDir::new("svc-corrupt");
        let open = || {
            AlignmentService::open(
                tiny_cfg(),
                ServingConfig::default(),
                Arc::new(example_dbpedia()),
                Arc::new(example_wikidata()),
                td.path(),
            )
            .unwrap()
        };
        {
            let svc = open();
            let labels = example_labels(&svc);
            svc.train(&labels).unwrap();
            svc.align_rounds(&labels, 1).unwrap();
        }
        // Corrupt the newest version on disk.
        daakg_store::fault::flip_bit(&td.path().join("v0000000003.snap"), 64, 5).unwrap();
        let svc = open();
        // Degraded to the newest intact version...
        assert_eq!(svc.version().get(), 2);
        let report = svc.recovery().unwrap();
        assert_eq!(report.loaded, vec![1, 2]);
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].0, 3);
        assert!(matches!(report.skipped[0].1, DaakgError::Corrupt { .. }));
        assert!(report.manifest_was_stale());
        svc.rank(0).unwrap();
        // ...and the next publish reclaims version 3, atomically replacing
        // the corrupt file with an intact one.
        let labels = example_labels(&svc);
        let v3 = svc.train(&labels).unwrap();
        assert_eq!(v3.version.get(), 3);
        let reg = DurableRegistry::open(td.path()).unwrap();
        assert_eq!(reg.versions().unwrap(), vec![1, 2, 3]);
        assert!(reg.load(3).unwrap().bitwise_eq(&v3.snapshot));
    }

    #[test]
    fn prune_with_store_garbage_collects_snapshot_files() {
        let td = daakg_store::TestDir::new("svc-gc");
        let mut svc = AlignmentService::open(
            tiny_cfg(),
            ServingConfig::default(),
            Arc::new(example_dbpedia()),
            Arc::new(example_wikidata()),
            td.path(),
        )
        .unwrap();
        let labels = example_labels(&svc);
        for _ in 0..3 {
            svc.align_rounds(&labels, 1).unwrap();
        }
        let deleted = svc.prune_with_store(2).unwrap();
        assert_eq!(deleted, vec![1, 2]);
        assert_eq!(svc.retained_versions(), 2);
        let reg = DurableRegistry::open(td.path()).unwrap();
        assert_eq!(reg.versions().unwrap(), vec![3, 4]);
        // Non-durable services GC nothing but still prune memory.
        let mut plain = example_service();
        plain.align_rounds(&labels, 1).unwrap();
        assert_eq!(plain.prune_with_store(1).unwrap(), Vec::<u64>::new());
        assert_eq!(plain.retained_versions(), 1);
    }

    /// A failing disk degrades durability, never in-memory serving: the
    /// persist error propagates (after bounded retries) and is recorded
    /// in [`AlignmentService::health`], while the publish stands and
    /// queries keep answering; a recovered disk clears the degradation.
    #[test]
    fn failing_disk_degrades_durability_not_serving() {
        let td = daakg_store::TestDir::new("svc-health");
        let svc = AlignmentService::open(
            tiny_cfg(),
            ServingConfig::default(),
            Arc::new(example_dbpedia()),
            Arc::new(example_wikidata()),
            td.path(),
        )
        .unwrap();
        let fresh = svc.health();
        assert_eq!(fresh, ServiceHealth::default());
        // Fault injection that works regardless of privileges: occupy the
        // next version's tmp path with a *directory*, so the atomic-write
        // protocol's File::create fails (EISDIR) on every attempt.
        let blocker = td.path().join("v0000000002.snap.tmp");
        std::fs::create_dir(&blocker).unwrap();
        let labels = example_labels(&svc);
        let err = svc.train(&labels).expect_err("persist must fail");
        assert!(matches!(err, DaakgError::IoAt { .. }));
        // The publish stands: in-memory serving moved to v2 and answers.
        assert_eq!(svc.version().get(), 2);
        assert_eq!(svc.top_k(0, 2).unwrap().version.get(), 2);
        // Health records the degradation: transient IO was retried with
        // backoff (3 attempts = 2 retries), then counted as a failure.
        let health = svc.health();
        assert!(health.durability_degraded);
        assert_eq!(health.persist_failures, 1);
        assert_eq!(health.persist_retries, 2);
        let message = health.last_persist_error.expect("error recorded");
        assert!(message.contains("v0000000002.snap"), "got: {message}");
        assert!(!health.degrade_engaged);
        // Disk "recovers": the next publish persists and clears the flag.
        std::fs::remove_dir(&blocker).unwrap();
        svc.train(&labels).expect("persist works again");
        let health = svc.health();
        assert!(!health.durability_degraded);
        assert_eq!(health.last_persist_error, None);
        assert_eq!(health.persist_failures, 1);
        // Disk state: v1 (initial), v3 (recovered publish); v2 was the
        // durability casualty — memory-only, by design.
        let reg = DurableRegistry::open(td.path()).unwrap();
        assert_eq!(reg.versions().unwrap(), vec![1, 3]);
    }

    /// Registry-level satellite: versions stay dense and strictly monotone
    /// under *concurrent* publishers.
    #[test]
    fn concurrent_publishes_yield_dense_monotone_versions() {
        let svc = example_service();
        let initial = svc.current();
        let registry = SnapshotRegistry::new((*initial.snapshot).clone());
        let per_thread = 16;
        let threads = 4;
        let mut all: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::with_capacity(per_thread);
                        for _ in 0..per_thread {
                            let v = registry.publish((*initial.snapshot).clone());
                            mine.push(v.get());
                        }
                        mine
                    })
                })
                .collect();
            let mut all = Vec::new();
            for h in handles {
                let mine = h.join().unwrap();
                // Per-thread monotonicity.
                assert!(mine.windows(2).all(|w| w[0] < w[1]));
                all.extend(mine);
            }
            all
        });
        all.sort_unstable();
        // Dense: exactly versions 2..=1+threads*per_thread, no gaps/dupes.
        let expect: Vec<u64> = (2..=(1 + threads * per_thread) as u64).collect();
        assert_eq!(all, expect);
        assert_eq!(registry.version().get(), *expect.last().unwrap());
        assert_eq!(registry.retained(), 1 + threads * per_thread);
    }

    // -- live updates --------------------------------------------------

    /// A live config whose compactor never runs on its own: folds happen
    /// only through `compact_now`, keeping the tests deterministic.
    fn manual_live() -> LiveConfig {
        LiveConfig {
            compact_after: 10_000,
            tick: std::time::Duration::from_secs(3600),
            ..LiveConfig::default()
        }
    }

    fn triple(rel: u32, neighbor: u32) -> DeltaTriple {
        DeltaTriple {
            rel,
            neighbor,
            outgoing: true,
        }
    }

    fn assert_bitwise(a: &[(u32, f32)], b: &[(u32, f32)], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.0, y.0, "{what}: id at {i}");
            assert_eq!(x.1.to_bits(), y.1.to_bits(), "{what}: score bits at {i}");
        }
    }

    /// The exactness contract: merged base ∪ delta answers are bitwise
    /// what the *folded* snapshot — the union corpus scanned by the
    /// standard engine — produces, across `rank`, `top_k`, and
    /// `batch_top_k` shapes, for k at and beyond every boundary.
    #[test]
    fn live_merged_answers_are_bitwise_the_folded_union() {
        let mut svc = example_service();
        svc.train(&example_labels(&svc)).unwrap();
        svc.enable_live(manual_live()).unwrap();
        let n2 = svc.kg2().num_entities();
        // Three new right-KG entities; the third anchors on a pending
        // delta neighbor, exercising delta-on-delta warm starts.
        let a = svc.upsert_entity(&[triple(0, 0), triple(1, 2)]).unwrap();
        assert_eq!(a as usize, n2);
        svc.upsert_entity(&[triple(0, 1)]).unwrap();
        let c = svc.upsert_entity(&[triple(1, a), triple(0, 3)]).unwrap();
        assert_eq!(c as usize, n2 + 2);
        let union_n = n2 + 3;
        let queries: Vec<u32> = (0..svc.kg1().num_entities() as u32).collect();
        let ks = [Some(0), Some(5), Some(union_n), Some(union_n + 3), None];
        let opts_of = |k: Option<usize>| match k {
            Some(k) => QueryOptions::top_k(k),
            None => QueryOptions::rank(),
        };
        let pre: Vec<_> = ks
            .iter()
            .map(|&k| {
                let single = svc.query(0, opts_of(k)).unwrap();
                assert_eq!(single.deltas_merged, 3, "k={k:?}");
                let batch = svc.query_batch(&queries, opts_of(k)).unwrap();
                assert_eq!(batch.deltas_merged, 3, "k={k:?}");
                assert_bitwise(&batch.value[0], &single.value, "batch[0] vs single");
                (single, batch)
            })
            .collect();
        // New entities are queryable pre-fold: the full ranking sees all
        // union_n candidates.
        assert_eq!(pre.last().unwrap().0.value.len(), union_n);
        // Fold: the published snapshot IS the union corpus.
        let published = svc.compact_now().unwrap().expect("entries were pending");
        assert_eq!(published.snapshot.entity_counts().1, union_n);
        assert_eq!(svc.live_health().unwrap().delta_depth, 0);
        assert!(svc.compact_now().unwrap().is_none(), "nothing left to fold");
        for (&k, (pre_single, pre_batch)) in ks.iter().zip(&pre) {
            let single = svc.query(0, opts_of(k)).unwrap();
            assert_eq!(single.deltas_merged, 0, "folded: no deltas left");
            assert_bitwise(&pre_single.value, &single.value, "single");
            let batch = svc.query_batch(&queries, opts_of(k)).unwrap();
            for (qi, (pre_r, post_r)) in pre_batch.value.iter().zip(&batch.value).enumerate() {
                assert_bitwise(pre_r, post_r, &format!("batch q={qi} k={k:?}"));
            }
        }
    }

    #[test]
    fn live_segments_warm_restart_and_survive_torn_writes() {
        let td = daakg_store::TestDir::new("live-segments");
        let open = || {
            let mut svc = AlignmentService::open(
                tiny_cfg(),
                ServingConfig::default(),
                Arc::new(example_dbpedia()),
                Arc::new(example_wikidata()),
                td.path(),
            )
            .unwrap();
            svc.enable_live(manual_live()).unwrap();
            svc
        };
        let (pre, ids) = {
            let svc = open();
            let i0 = svc.upsert_entity(&[triple(0, 0)]).unwrap();
            let i1 = svc.upsert_entity(&[triple(0, 1)]).unwrap();
            let i2 = svc.upsert_entity(&[triple(1, i0)]).unwrap();
            (svc.query(0, QueryOptions::rank()).unwrap(), [i0, i1, i2])
        };
        // Clean warm restart: every segment replays, answers are bitwise
        // what the previous process served.
        {
            let svc = open();
            let rec = svc.live_recovery().unwrap();
            assert_eq!(rec.replayed, 3);
            assert!(rec.skipped.is_empty(), "{:?}", rec.skipped);
            let post = svc.query(0, QueryOptions::rank()).unwrap();
            assert_eq!(post.deltas_merged, 3);
            assert_bitwise(&pre.value, &post.value, "restart");
        }
        // Torn write on the middle segment: replay stops at the last
        // intact prefix with a typed Corrupt diagnostic; the torn file
        // and everything after it are removed so their ids can be
        // re-issued safely.
        let seg1 = td.path().join(delta::segment_name(ids[1]));
        let bytes = std::fs::read(&seg1).unwrap();
        std::fs::write(&seg1, &bytes[..bytes.len() / 2]).unwrap();
        {
            let svc = open();
            let rec = svc.live_recovery().unwrap();
            assert_eq!(rec.replayed, 1, "only the intact prefix replays");
            assert!(
                rec.skipped
                    .iter()
                    .any(|(id, e)| *id == ids[1] && matches!(e, DaakgError::Corrupt { .. })),
                "torn segment must surface as Corrupt: {:?}",
                rec.skipped
            );
            let post = svc.query(0, QueryOptions::rank()).unwrap();
            assert_eq!(post.deltas_merged, 1);
            assert_eq!(
                post.value.len(),
                svc.kg2().num_entities() + 1,
                "exactly the intact prefix is queryable"
            );
            // The re-issued id lands on the first removed slot.
            assert_eq!(svc.upsert_entity(&[triple(0, 2)]).unwrap(), ids[1]);
        }
    }

    #[test]
    fn retraining_supersedes_pending_deltas() {
        let mut svc = example_service();
        svc.enable_live(manual_live()).unwrap();
        let id = svc.upsert_entity(&[triple(0, 0)]).unwrap();
        assert_eq!(svc.live_health().unwrap().delta_depth, 1);
        assert_eq!(svc.query(0, QueryOptions::rank()).unwrap().deltas_merged, 1);
        // A full retrain replaces the embedding tables the delta rows
        // were warm-started against: the pending entries are dropped,
        // not folded into the fresh publication.
        svc.train(&example_labels(&svc)).unwrap();
        let health = svc.live_health().unwrap();
        assert_eq!(health.delta_depth, 0);
        assert_eq!(health.upserts, 1, "accepted-upsert count is monotonic");
        let post = svc.query(0, QueryOptions::rank()).unwrap();
        assert_eq!(post.deltas_merged, 0);
        assert_eq!(post.value.len(), svc.kg2().num_entities());
        // The id is re-issued for the next upsert against the new tables.
        assert_eq!(svc.upsert_entity(&[triple(0, 0)]).unwrap(), id);
    }

    #[test]
    fn live_misuse_is_typed_errors() {
        let mut svc = example_service();
        // Not enabled yet: upserts and compaction are typed errors.
        assert!(matches!(
            svc.upsert_entity(&[triple(0, 0)]),
            Err(DaakgError::InvalidConfig { .. })
        ));
        assert!(matches!(
            svc.compact_now(),
            Err(DaakgError::InvalidConfig { .. })
        ));
        svc.enable_live(manual_live()).unwrap();
        // Double-enable is rejected.
        assert!(matches!(
            svc.enable_live(manual_live()),
            Err(DaakgError::InvalidConfig { .. })
        ));
        // Empty triple sets are rejected.
        assert!(matches!(
            svc.upsert_entity(&[]),
            Err(DaakgError::InvalidConfig { .. })
        ));
        // Unknown triple neighbors are bounds-checked.
        let err = svc.upsert_entity(&[triple(0, 10_000)]).unwrap_err();
        assert!(matches!(err, DaakgError::UnknownEntity { .. }), "{err}");
        // upsert_triples targets pending entities only.
        let err = svc.upsert_triples(0, &[triple(0, 0)]).unwrap_err();
        assert!(matches!(err, DaakgError::UnknownEntity { .. }), "{err}");
        // Invalid configs are rejected up front.
        let mut fresh = example_service();
        assert!(matches!(
            fresh.enable_live(LiveConfig {
                compact_after: 0,
                ..LiveConfig::default()
            }),
            Err(DaakgError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn upsert_triples_extends_a_pending_entity_deterministically() {
        let mut svc = example_service();
        svc.enable_live(manual_live()).unwrap();
        // One entity upserted with the full triple set in one call...
        let all_at_once = svc.upsert_entity(&[triple(0, 0), triple(1, 2)]).unwrap();
        let reference = svc.query(0, QueryOptions::rank()).unwrap();
        // ...must be bitwise the same as arriving incrementally: the
        // warm start depends only on the final triple set.
        let mut svc2 = example_service();
        svc2.enable_live(manual_live()).unwrap();
        let grown = svc2.upsert_entity(&[triple(0, 0)]).unwrap();
        assert_eq!(grown, all_at_once);
        svc2.upsert_triples(grown, &[triple(1, 2)]).unwrap();
        let incremental = svc2.query(0, QueryOptions::rank()).unwrap();
        assert_bitwise(&reference.value, &incremental.value, "incremental");
    }

    #[test]
    fn live_health_reports_depth_compactions_and_lag() {
        let mut svc = example_service();
        assert!(svc.live_health().is_none());
        assert!(svc.health().live.is_none());
        // Threshold above the upsert count: no background nudge fires,
        // so the pre-fold counters are deterministic.
        svc.enable_live(LiveConfig {
            compact_after: 4,
            tick: std::time::Duration::from_secs(3600),
            ..LiveConfig::default()
        })
        .unwrap();
        assert_eq!(svc.live_health().unwrap(), LiveHealth::default());
        svc.upsert_entity(&[triple(0, 0)]).unwrap();
        svc.upsert_entity(&[triple(0, 1)]).unwrap();
        svc.upsert_entity(&[triple(0, 2)]).unwrap();
        let health = svc.health().live.unwrap();
        assert_eq!(health.delta_depth, 3);
        assert_eq!(health.upserts, 3);
        assert_eq!(health.compaction_lag, 0, "under one full fold behind");
        let published = svc.compact_now().unwrap().unwrap();
        let health = svc.live_health().unwrap();
        assert_eq!(health.delta_depth, 0);
        assert_eq!(health.compactions, 1);
        assert_eq!(health.compaction_lag, 0);
        assert_eq!(health.compactor_panics, 0);
        assert_eq!(health.last_compacted_version, Some(published.version.get()));
    }

    #[test]
    fn background_compactor_folds_past_the_threshold() {
        let mut svc = example_service();
        svc.enable_live(LiveConfig {
            compact_after: 2,
            tick: std::time::Duration::from_millis(5),
            ..LiveConfig::default()
        })
        .unwrap();
        let n2 = svc.kg2().num_entities();
        svc.upsert_entity(&[triple(0, 0)]).unwrap();
        svc.upsert_entity(&[triple(0, 1)]).unwrap();
        // The threshold nudge (or the next tick) folds both entries into
        // a published snapshot without any explicit compact_now.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let health = svc.live_health().unwrap();
            if health.compactions >= 1 && health.delta_depth == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "compactor never folded: {health:?}"
            );
            std::thread::yield_now();
        }
        let post = svc.query(0, QueryOptions::rank()).unwrap();
        assert_eq!(post.deltas_merged, 0);
        assert_eq!(post.value.len(), n2 + 2, "folded corpus serves plainly");
    }

    /// A fold whose persist fails must NOT retire the folded delta
    /// segments: until the folded snapshot is durably on disk they are
    /// the only durable copies of the acknowledged upserts. The publish
    /// still stands in memory; a restart recovers the pre-fold snapshot
    /// and replays the surviving segments, bitwise.
    #[test]
    fn failed_fold_persist_keeps_segments_and_restart_replays_them() {
        let td = daakg_store::TestDir::new("live-fold-persist");
        let open = || {
            let mut svc = AlignmentService::open(
                tiny_cfg(),
                ServingConfig::default(),
                Arc::new(example_dbpedia()),
                Arc::new(example_wikidata()),
                td.path(),
            )
            .unwrap();
            svc.enable_live(manual_live()).unwrap();
            svc
        };
        let pre = {
            let svc = open();
            let i0 = svc.upsert_entity(&[triple(0, 0)]).unwrap();
            let i1 = svc.upsert_entity(&[triple(0, 1)]).unwrap();
            let pre = svc.query(0, QueryOptions::rank()).unwrap();
            assert_eq!(pre.deltas_merged, 2);
            // Block the fold's persist (directory at the tmp path, as in
            // failing_disk_degrades_durability_not_serving).
            let blocker = td.path().join("v0000000002.snap.tmp");
            std::fs::create_dir(&blocker).unwrap();
            let err = svc.compact_now().expect_err("fold persist must fail");
            assert!(matches!(err, DaakgError::IoAt { .. }), "{err}");
            // The publish stands: readers serve the folded corpus, and
            // Exact answers are unchanged across the fold...
            assert_eq!(svc.version().get(), 2);
            let folded = svc.query(0, QueryOptions::rank()).unwrap();
            assert_eq!(folded.deltas_merged, 0);
            assert_bitwise(&pre.value, &folded.value, "fold");
            assert!(svc.health().durability_degraded);
            // ...but the segment files survive the failed persist.
            for id in [i0, i1] {
                assert!(
                    td.path().join(delta::segment_name(id)).exists(),
                    "segment {id} must stay on disk"
                );
            }
            std::fs::remove_dir(&blocker).unwrap();
            pre
        };
        // Restart: the store only ever persisted v1, so recovery loads
        // the pre-fold snapshot and the replay restores both upserts.
        let svc = open();
        let rec = svc.live_recovery().unwrap();
        assert_eq!(rec.replayed, 2);
        assert!(rec.skipped.is_empty(), "{:?}", rec.skipped);
        let post = svc.query(0, QueryOptions::rank()).unwrap();
        assert_eq!(post.deltas_merged, 2);
        assert_bitwise(&pre.value, &post.value, "replay");
    }

    /// A retrain whose persist fails superseded the pending delta in
    /// memory, but no durable snapshot supersedes the segments — so they
    /// must stay on disk and replay on top of the recovered pre-retrain
    /// snapshot. Only a successfully persisted retrain retires them.
    #[test]
    fn failed_retrain_persist_keeps_superseded_segments_for_replay() {
        let td = daakg_store::TestDir::new("live-retrain-persist");
        let open = || {
            let mut svc = AlignmentService::open(
                tiny_cfg(),
                ServingConfig::default(),
                Arc::new(example_dbpedia()),
                Arc::new(example_wikidata()),
                td.path(),
            )
            .unwrap();
            svc.enable_live(manual_live()).unwrap();
            svc
        };
        let ids = {
            let svc = open();
            let i0 = svc.upsert_entity(&[triple(0, 0)]).unwrap();
            let i1 = svc.upsert_entity(&[triple(1, i0)]).unwrap();
            let blocker = td.path().join("v0000000002.snap.tmp");
            std::fs::create_dir(&blocker).unwrap();
            let labels = example_labels(&svc);
            let err = svc.train(&labels).expect_err("retrain persist must fail");
            assert!(matches!(err, DaakgError::IoAt { .. }), "{err}");
            // In memory the retrain supersedes the pending delta...
            assert_eq!(svc.live_health().unwrap().delta_depth, 0);
            assert_eq!(svc.query(0, QueryOptions::rank()).unwrap().deltas_merged, 0);
            // ...but without a durable superseding snapshot the segment
            // files are not retired.
            for id in [i0, i1] {
                assert!(
                    td.path().join(delta::segment_name(id)).exists(),
                    "segment {id} must stay on disk"
                );
            }
            std::fs::remove_dir(&blocker).unwrap();
            [i0, i1]
        };
        // Restart: disk holds only the pre-retrain v1, which is exactly
        // the snapshot the segments extend — the acknowledged upserts
        // are back.
        let svc = open();
        let rec = svc.live_recovery().unwrap();
        assert_eq!(rec.replayed, 2);
        assert!(rec.skipped.is_empty(), "{:?}", rec.skipped);
        let post = svc.query(0, QueryOptions::rank()).unwrap();
        assert_eq!(post.deltas_merged, 2);
        assert_eq!(post.value.len(), svc.kg2().num_entities() + 2);
        // A retrain that persists successfully retires them for good.
        svc.train(&example_labels(&svc)).unwrap();
        for id in ids {
            assert!(
                !td.path().join(delta::segment_name(id)).exists(),
                "segment {id} must be retired after a persisted retrain"
            );
        }
    }

    /// Slabs anchor to the snapshot *version*, so a publish that keeps
    /// the right-entity count unchanged (the typical retrain) can never
    /// merge delta rows warm-started against the superseded tables —
    /// even in the window before any service-level reanchor runs.
    #[test]
    fn same_count_publish_never_merges_stale_delta_rows() {
        let mut svc = example_service();
        svc.enable_live(manual_live()).unwrap();
        svc.upsert_entity(&[triple(0, 0)]).unwrap();
        assert_eq!(svc.query(0, QueryOptions::rank()).unwrap().deltas_merged, 1);
        // Publish a same-count snapshot directly through the registry —
        // the widest version of the publish→reanchor window.
        let cur = svc.current();
        svc.registry.publish_pinned((*cur.snapshot).clone());
        let post = svc.query(0, QueryOptions::rank()).unwrap();
        assert_eq!(post.deltas_merged, 0, "stale slab must not merge");
        assert_eq!(post.value.len(), svc.kg2().num_entities());
    }

    /// `upsert_triples` holds the fold lock, so an extend can never be
    /// acknowledged while a concurrent fold drains the entry it
    /// extended: every `Ok` extend is in the folded corpus. Verified by
    /// racing extends against `compact_now` and comparing the folded
    /// answers against a service given the same final triple set up
    /// front (warm starts are deterministic in the triple set).
    #[test]
    fn upsert_triples_racing_a_fold_never_loses_acknowledged_triples() {
        for round in 0..8u32 {
            let mut svc = example_service();
            svc.enable_live(manual_live()).unwrap();
            let id = svc.upsert_entity(&[triple(0, 0)]).unwrap();
            let svc_ref = &svc;
            let landed = std::thread::scope(|scope| {
                let extender = scope.spawn(move || {
                    let mut landed = Vec::new();
                    for i in 0..6u32 {
                        if (round + i) % 3 == 0 {
                            std::thread::yield_now();
                        }
                        match svc_ref.upsert_triples(id, &[triple(1, i)]) {
                            Ok(()) => landed.push(triple(1, i)),
                            // The fold landed first: the entity is no
                            // longer pending, the extend is a typed
                            // error and nothing was acknowledged.
                            Err(DaakgError::UnknownEntity { .. }) => break,
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                    landed
                });
                scope
                    .spawn(move || svc_ref.compact_now().unwrap())
                    .join()
                    .unwrap();
                extender.join().unwrap()
            });
            svc.compact_now().unwrap();
            let mut reference = example_service();
            reference.enable_live(manual_live()).unwrap();
            let mut triples = vec![triple(0, 0)];
            triples.extend(landed);
            reference.upsert_entity(&triples).unwrap();
            reference.compact_now().unwrap();
            let got = svc.query(0, QueryOptions::rank()).unwrap();
            let want = reference.query(0, QueryOptions::rank()).unwrap();
            assert_eq!(got.deltas_merged, 0);
            assert_bitwise(&want.value, &got.value, "race round");
        }
    }

    // -- telemetry -----------------------------------------------------

    /// Satellite: a fresh service's health must read exactly as the
    /// all-zero default, for plain and live-enabled builds — including
    /// after a no-op `compact_now` (nothing pending folds nothing, so
    /// nothing may count).
    #[test]
    fn fresh_service_health_is_default() {
        assert_eq!(example_service().health(), ServiceHealth::default());
        let mut svc = example_service();
        svc.enable_live(manual_live()).unwrap();
        assert!(svc.compact_now().unwrap().is_none(), "nothing pending");
        let want = ServiceHealth {
            live: Some(LiveHealth::default()),
            ..ServiceHealth::default()
        };
        assert_eq!(svc.health(), want);
    }

    /// The default-enabled telemetry surface: the initial publication is
    /// counted and journaled, queries land in the stage histograms, and
    /// both exposition formats render the cells.
    #[test]
    fn telemetry_records_stages_counters_and_journal() {
        let svc = example_indexed_service();
        let t = svc.telemetry();
        assert!(t.is_enabled());
        let counter = |name: &str| {
            t.registry()
                .counters()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v)
        };
        assert_eq!(counter("snapshot_publish_total"), Some(1));
        let publishes: Vec<_> = t
            .journal()
            .events()
            .into_iter()
            .filter(|e| matches!(e.kind, daakg_telemetry::EventKind::SnapshotPublish { .. }))
            .collect();
        assert_eq!(publishes.len(), 1, "initial publication journaled");

        // An exact and an approx query populate their stage histograms.
        svc.query(0, QueryOptions::top_k(3)).unwrap();
        svc.query(
            0,
            QueryOptions::top_k(3).with_mode(QueryMode::Approx { nprobe: 3 }),
        )
        .unwrap();
        let hist = |name: &str| {
            t.registry()
                .histograms()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.count())
                .unwrap_or(0)
        };
        assert_eq!(hist("stage_exact_scan_ns"), 1);
        assert_eq!(hist("stage_ivf_probe_ns"), 1);
        assert_eq!(hist("stage_ivf_scan_ns"), 1);

        let text = t.render_prometheus();
        assert!(text.contains("daakg_snapshot_publish_total 1"), "{text}");
        assert!(
            text.contains("daakg_stage_exact_scan_seconds_count 1"),
            "{text}"
        );
        let json = t.render_json();
        assert!(json.contains("\"snapshot_publish_total\""), "{json}");
        assert!(json.contains("\"snapshot_publish\""), "{json}");
    }

    /// Disabled telemetry goes fully dark — no cells, empty exposition —
    /// while serving itself (and the health surface, backed by private
    /// always-on cells) keeps working.
    #[test]
    fn disabled_telemetry_serves_identically_and_keeps_health() {
        let enabled = example_service();
        let disabled = AlignmentService::with_serving(
            tiny_cfg(),
            ServingConfig {
                telemetry: TelemetryConfig::disabled(),
                ..ServingConfig::default()
            },
            Arc::new(example_dbpedia()),
            Arc::new(example_wikidata()),
        )
        .unwrap();
        assert!(!disabled.telemetry().is_enabled());
        let want = enabled.query(0, QueryOptions::top_k(3)).unwrap();
        let got = disabled.query(0, QueryOptions::top_k(3)).unwrap();
        assert_bitwise(&want.value, &got.value, "telemetry must not perturb");
        assert!(disabled.telemetry().registry().counters().is_empty());
        assert!(disabled.telemetry().registry().histograms().is_empty());
        assert!(disabled.telemetry().journal().events().is_empty());
        assert_eq!(disabled.health(), ServiceHealth::default());
    }

    /// Health stays live with telemetry disabled: a failing disk is
    /// still observable through `health()` even though exposition is
    /// dark — the health cells come from a private always-on registry.
    #[test]
    fn disabled_telemetry_still_reports_persist_faults() {
        let td = daakg_store::TestDir::new("svc-telem-dark");
        let svc = AlignmentService::open(
            tiny_cfg(),
            ServingConfig {
                telemetry: TelemetryConfig::disabled(),
                ..ServingConfig::default()
            },
            Arc::new(example_dbpedia()),
            Arc::new(example_wikidata()),
            td.path(),
        )
        .unwrap();
        let blocker = td.path().join("v0000000002.snap.tmp");
        std::fs::create_dir(&blocker).unwrap();
        let labels = example_labels(&svc);
        svc.train(&labels).expect_err("persist must fail");
        let health = svc.health();
        assert!(health.durability_degraded);
        assert_eq!(health.persist_failures, 1);
        assert_eq!(health.persist_retries, 2);
        assert!(health.last_persist_error.is_some());
        // Exposition stays dark: the failure is *not* in the public
        // registry or journal.
        assert!(svc.telemetry().registry().counters().is_empty());
        assert!(svc.telemetry().journal().events().is_empty());
    }

    /// The full live lifecycle lands in the journal in causal order:
    /// publish (v1) → fold start → publish (v2) → fold done, with
    /// strictly monotonic sequence numbers and timestamps.
    #[test]
    fn journal_orders_fold_lifecycle_causally() {
        use daakg_telemetry::EventKind as K;
        let mut svc = example_service();
        svc.enable_live(manual_live()).unwrap();
        svc.upsert_entity(&[triple(0, 0)]).unwrap();
        let published = svc.compact_now().unwrap().expect("one entry folds");
        assert_eq!(published.version.get(), 2);
        let events = svc.telemetry().journal().events();
        let names: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            names,
            vec![
                "snapshot_publish",
                "fold_start",
                "snapshot_publish",
                "fold_done"
            ],
            "causal order"
        );
        assert!(
            events
                .windows(2)
                .all(|w| w[0].seq < w[1].seq && w[0].at_ns <= w[1].at_ns),
            "monotonic seq + time"
        );
        match (&events[1].kind, &events[3].kind) {
            (K::FoldStart { anchor, pending }, K::FoldDone { version, folded }) => {
                assert_eq!(*anchor, 1);
                assert_eq!(*pending, 1);
                assert_eq!(*version, 2);
                assert_eq!(*folded, 1);
            }
            other => panic!("unexpected fold events: {other:?}"),
        }
        // The fold also landed in the maintenance-stage histograms.
        let hist = |name: &str| {
            svc.telemetry()
                .registry()
                .histograms()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.count())
                .unwrap_or(0)
        };
        assert_eq!(hist("stage_fold_ns"), 1);
        assert_eq!(hist("stage_republish_ns"), 1);
        assert_eq!(hist("stage_warm_start_ns"), 1);
        assert_eq!(hist("stage_delta_merge_ns"), 0, "no query ran");
    }

    /// A retrain that supersedes pending deltas journals the
    /// supersession with the dropped count.
    #[test]
    fn retrain_supersession_is_journaled() {
        use daakg_telemetry::EventKind as K;
        let mut svc = example_service();
        svc.enable_live(manual_live()).unwrap();
        svc.upsert_entity(&[triple(0, 0)]).unwrap();
        svc.upsert_entity(&[triple(0, 1)]).unwrap();
        let labels = example_labels(&svc);
        let published = svc.train(&labels).unwrap();
        let superseded: Vec<_> = svc
            .telemetry()
            .journal()
            .events()
            .into_iter()
            .filter_map(|e| match e.kind {
                K::RetrainSupersede { version, dropped } => Some((version, dropped)),
                _ => None,
            })
            .collect();
        assert_eq!(superseded, vec![(published.version.get(), 2)]);
    }
}

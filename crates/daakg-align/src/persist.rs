//! Durable persistence of [`AlignmentSnapshot`]s: the snapshot codec on
//! the `daakg-store` section format, and [`DurableRegistry`] — the
//! on-disk counterpart of the in-memory `SnapshotRegistry` that
//! `AlignmentService::open` warm-restarts from.
//!
//! # What is persisted
//!
//! A snapshot file carries every cached matrix of the alignment round
//! (entity / relation / class / mean slabs, mapped variants), the entity
//! weights, the ablation flags, and — when serving configured an index —
//! the IVF configuration **plus the built index itself** (forced to build
//! at save time), so a warm restart neither re-trains nor re-clusters.
//! The entity-similarity engine is *not* stored: it is a pure function of
//! `(mapped_ents1, ents2)` and is rebuilt deterministically on load,
//! which is what makes loaded services answer bitwise-identically.
//!
//! # Recovery semantics
//!
//! [`DurableRegistry::recover`] scans the directory (the `MANIFEST` is
//! advisory only), removes stale `*.tmp` files from torn writes, and
//! loads versions newest→oldest. A file that fails checksum or structural
//! validation is *skipped with a typed diagnostic* and left on disk for
//! forensics — recovery degrades to the newest intact version instead of
//! refusing to start, and the skipped version number is simply republished
//! (atomically overwriting the corrupt file) as training resumes.

use crate::snapshot::{AlignmentSnapshot, SnapshotParts};
use crate::weights::EntityWeights;
use daakg_autograd::Tensor;
use daakg_graph::DaakgError;
use daakg_index::{IvfConfig, IvfIndex};
use daakg_store::store::VersionStore;
use daakg_store::{SectionReader, SectionWriter};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Payload-kind discriminator of snapshot files (`b"ASN1"` LE).
pub const FILE_KIND_SNAPSHOT: u32 = u32::from_le_bytes(*b"ASN1");

/// The `(tag, accessor)` table of tensor sections — one place so encode
/// and decode can never drift apart.
const TENSOR_TAGS: [&str; 15] = [
    "ents1", "ents2", "mapents1", "rels1", "rels2", "maprels1", "cls1", "cls2", "mapcls1",
    "mrels1", "mrels2", "mapmrel1", "mcls1", "mcls2", "mapmcls1",
];

fn tensor_fields(s: &AlignmentSnapshot) -> [&Tensor; 15] {
    [
        &s.ents1,
        &s.ents2,
        &s.mapped_ents1,
        &s.rels1,
        &s.rels2,
        &s.mapped_rels1,
        &s.cls1,
        &s.cls2,
        &s.mapped_cls1,
        &s.mean_rels1,
        &s.mean_rels2,
        &s.mapped_mean_rels1,
        &s.mean_cls1,
        &s.mean_cls2,
        &s.mapped_mean_cls1,
    ]
}

/// Serialize a snapshot to a standalone checksummed file image. When the
/// snapshot carries an index configuration, the index is built now (if it
/// was not already) and persisted alongside the slabs.
pub fn encode_snapshot(snap: &AlignmentSnapshot) -> Vec<u8> {
    let mut w = SectionWriter::new(FILE_KIND_SNAPSHOT);
    for (tag, t) in TENSOR_TAGS.iter().zip(tensor_fields(snap)) {
        w.f32s(tag, t.rows(), t.cols(), t.as_slice());
    }
    w.f32s("wleft", snap.weights.left.len(), 1, &snap.weights.left);
    w.f32s("wright", snap.weights.right.len(), 1, &snap.weights.right);
    w.bytes(
        "flags",
        &[
            snap.use_mean_embeddings as u8,
            snap.use_class_embeddings as u8,
        ],
    );
    if let Some(cfg) = snap.index_config() {
        w.u64s(
            "ivfcfg",
            &[cfg.nlist as u64, cfg.max_iters as u64, cfg.seed],
        );
        let index = snap.ivf_index().expect("config present implies an index");
        index.write_sections(&mut w);
    }
    w.finish()
}

/// Parse and validate a snapshot image. Every structural or semantic
/// inconsistency is a typed [`DaakgError::Corrupt`] naming `path` and the
/// failing section; this function never panics on untrusted bytes. The
/// persisted IVF index (if any) is primed into the snapshot's lazy cell,
/// so approximate queries serve the saved index without re-clustering.
pub fn decode_snapshot(path: &Path, bytes: Vec<u8>) -> Result<AlignmentSnapshot, DaakgError> {
    let r = SectionReader::parse(path, bytes, FILE_KIND_SNAPSHOT)?;
    let mut tensors = Vec::with_capacity(TENSOR_TAGS.len());
    for tag in TENSOR_TAGS {
        let s = r.f32s(tag)?;
        tensors.push(Tensor::from_vec(s.rows, s.cols, s.data));
    }
    let mut it = tensors.into_iter();
    let mut next = || it.next().expect("15 tensors decoded above");
    let flags = r.bytes("flags")?;
    if flags.len() != 2 {
        return Err(r.corrupt(
            "flags",
            format!("expected 2 flag bytes, found {}", flags.len()),
        ));
    }
    let parts = SnapshotParts {
        ents1: next(),
        ents2: next(),
        mapped_ents1: next(),
        rels1: next(),
        rels2: next(),
        mapped_rels1: next(),
        cls1: next(),
        cls2: next(),
        mapped_cls1: next(),
        mean_rels1: next(),
        mean_rels2: next(),
        mapped_mean_rels1: next(),
        mean_cls1: next(),
        mean_cls2: next(),
        mapped_mean_cls1: next(),
        weights: EntityWeights {
            left: r.f32s("wleft")?.data,
            right: r.f32s("wright")?.data,
        },
        use_mean_embeddings: flags[0] != 0,
        use_class_embeddings: flags[1] != 0,
    };
    let mut snap =
        AlignmentSnapshot::from_parts(parts).map_err(|reason| r.corrupt("snapshot", reason))?;
    if r.has("ivfcfg") {
        let cfg = r.u64s("ivfcfg")?;
        if cfg.len() != 3 {
            return Err(r.corrupt("ivfcfg", format!("expected 3 words, found {}", cfg.len())));
        }
        let cfg = IvfConfig {
            nlist: cfg[0] as usize,
            max_iters: cfg[1] as usize,
            seed: cfg[2],
        };
        cfg.validate()
            .map_err(|e| r.corrupt("ivfcfg", e.to_string()))?;
        let index = IvfIndex::read_sections(&r)?;
        let (_, n2) = snap.entity_counts();
        if index.num_vectors() != n2 {
            return Err(r.corrupt(
                "ivfids",
                format!(
                    "index covers {} vectors but the snapshot holds {n2} right entities",
                    index.num_vectors()
                ),
            ));
        }
        snap.set_index_config(Some(cfg));
        snap.prime_index(Arc::new(index));
    }
    Ok(snap)
}

/// What [`DurableRegistry::recover`] found and did: the versions loaded,
/// the versions skipped (with their typed load errors, newest first in
/// scan order), the torn `*.tmp` files removed, and what the advisory
/// manifest claimed.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Versions loaded intact, ascending.
    pub loaded: Vec<u64>,
    /// Versions present on disk but skipped, each with the typed error
    /// explaining why (checksum mismatch, truncation, semantic
    /// inconsistency, I/O failure).
    pub skipped: Vec<(u64, DaakgError)>,
    /// Stale `*.tmp` files from torn writes, removed during recovery.
    pub removed_tmp: Vec<PathBuf>,
    /// The version the `MANIFEST` claimed was newest (`None` when
    /// missing or malformed). Advisory: recovery never trusts it.
    pub manifest_latest: Option<u64>,
}

impl RecoveryReport {
    /// The newest intact version, if any survived.
    pub fn latest_intact(&self) -> Option<u64> {
        self.loaded.last().copied()
    }

    /// Whether the manifest disagreed with what recovery actually found
    /// (missing, malformed, stale, or pointing at a corrupt file).
    pub fn manifest_was_stale(&self) -> bool {
        self.manifest_latest != self.latest_intact()
    }
}

/// The on-disk registry of published snapshot versions: one immutable,
/// checksummed file per version, written crash-safely (tmp → fsync →
/// atomic rename → dir fsync, `MANIFEST` last).
#[derive(Debug, Clone)]
pub struct DurableRegistry {
    store: VersionStore,
}

impl DurableRegistry {
    /// Open (creating if needed) a snapshot directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, DaakgError> {
        Ok(Self {
            store: VersionStore::open(dir)?,
        })
    }

    /// The directory versions are stored in.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// Attach store-stage latency spans: every subsequent [`DurableRegistry::save`]
    /// records its byte-write and fsync+rename durations separately.
    /// No-op handles (the default) cost nothing.
    pub fn set_spans(&mut self, spans: daakg_store::StoreSpans) {
        self.store.set_spans(spans);
    }

    /// Atomically persist `snap` as `version`. A crash at any byte
    /// boundary leaves previously committed versions intact.
    pub fn save(&self, version: u64, snap: &AlignmentSnapshot) -> Result<(), DaakgError> {
        self.store.save(version, &encode_snapshot(snap))
    }

    /// Load and validate one version.
    pub fn load(&self, version: u64) -> Result<AlignmentSnapshot, DaakgError> {
        let path = self.store.version_path(version);
        let bytes = std::fs::read(&path).map_err(|e| DaakgError::io_at(&path, e))?;
        decode_snapshot(&path, bytes)
    }

    /// Committed versions on disk, ascending (torn `*.tmp` files are not
    /// versions).
    pub fn versions(&self) -> Result<Vec<u64>, DaakgError> {
        self.store.versions()
    }

    /// Delete on-disk versions beyond the newest `keep` (clamped to keep
    /// at least one). Returns the versions removed.
    pub fn gc(&self, keep: usize) -> Result<Vec<u64>, DaakgError> {
        self.store.gc(keep)
    }

    /// Scan the directory and load every intact version, newest→oldest,
    /// skipping corrupt or torn files with typed diagnostics and removing
    /// stale `*.tmp` leftovers. Returns the intact `(version, snapshot)`
    /// pairs ascending plus the [`RecoveryReport`]. Corrupt files are
    /// left in place for forensics; their version numbers are reclaimed
    /// when the resumed service republishes them.
    ///
    /// Only directory-level I/O failures abort recovery; per-file damage
    /// never does (graceful degradation — an empty result with every
    /// version in `skipped` means "start fresh").
    pub fn recover(&self) -> Result<(Vec<(u64, AlignmentSnapshot)>, RecoveryReport), DaakgError> {
        let mut report = RecoveryReport {
            removed_tmp: self.store.remove_stale_tmp()?,
            manifest_latest: self.store.manifest_latest(),
            ..RecoveryReport::default()
        };
        let mut entries = Vec::new();
        for &version in self.store.versions()?.iter().rev() {
            match self.load(version) {
                Ok(snap) => entries.push((version, snap)),
                Err(err) => report.skipped.push((version, err)),
            }
        }
        entries.reverse();
        report.loaded = entries.iter().map(|(v, _)| *v).collect();
        Ok((entries, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JointConfig;
    use crate::joint::JointModel;
    use daakg_embed::EmbedConfig;
    use daakg_graph::kg::{example_dbpedia, example_wikidata};
    use daakg_store::fault;
    use daakg_store::TestDir;

    fn tiny_snapshot(indexed: bool) -> AlignmentSnapshot {
        let kg1 = example_dbpedia();
        let kg2 = example_wikidata();
        let cfg = JointConfig {
            embed: EmbedConfig {
                dim: 8,
                class_dim: 4,
                epochs: 2,
                batch_size: 16,
                ..EmbedConfig::default()
            },
            align_epochs: 2,
            ..JointConfig::default()
        };
        let model = JointModel::new(cfg, &kg1, &kg2).unwrap();
        let mut snap = model.snapshot(&kg1, &kg2);
        if indexed {
            snap.set_index_config(Some(IvfConfig::new(3)));
        }
        snap
    }

    #[test]
    fn roundtrip_is_bitwise_with_and_without_index() {
        for indexed in [false, true] {
            let snap = tiny_snapshot(indexed);
            let bytes = encode_snapshot(&snap);
            let loaded = decode_snapshot(Path::new("mem"), bytes).unwrap();
            assert!(loaded.bitwise_eq(&snap), "indexed={indexed}");
            assert!(snap.bitwise_eq(&loaded), "symmetry");
            // Rankings agree bitwise on both paths.
            let (n1, _) = snap.entity_counts();
            for e1 in 0..n1 as u32 {
                let a = snap.top_k_entities(e1, 4);
                let b = loaded.top_k_entities(e1, 4);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.0, y.0);
                    assert_eq!(x.1.to_bits(), y.1.to_bits());
                }
            }
        }
    }

    #[test]
    fn persisted_index_is_primed_not_rebuilt_and_byte_identical() {
        let snap = tiny_snapshot(true);
        let original_index = Arc::clone(snap.ivf_index().unwrap());
        let loaded = decode_snapshot(Path::new("mem"), encode_snapshot(&snap)).unwrap();
        // The loaded snapshot's index is served from the persisted bytes:
        // byte-identical to the index that was saved.
        let primed = loaded.ivf_index().unwrap();
        assert_eq!(primed.to_bytes(), original_index.to_bytes());
        // And a lazily re-built index (config reset discards the primed
        // one) reproduces the same bytes — determinism of the build.
        let mut rebuilt = loaded.clone();
        rebuilt.set_index_config(Some(IvfConfig::new(3)));
        assert_eq!(
            rebuilt.ivf_index().unwrap().to_bytes(),
            original_index.to_bytes()
        );
    }

    #[test]
    fn registry_saves_loads_and_recovers_in_version_order() {
        let td = TestDir::new("align-registry");
        let reg = DurableRegistry::open(td.path()).unwrap();
        let snap = tiny_snapshot(false);
        for v in 1..=3 {
            reg.save(v, &snap).unwrap();
        }
        assert_eq!(reg.versions().unwrap(), vec![1, 2, 3]);
        assert!(reg.load(2).unwrap().bitwise_eq(&snap));
        let (entries, report) = reg.recover().unwrap();
        assert_eq!(report.loaded, vec![1, 2, 3]);
        assert!(report.skipped.is_empty());
        assert_eq!(report.manifest_latest, Some(3));
        assert!(!report.manifest_was_stale());
        assert_eq!(entries.len(), 3);
        assert!(entries.iter().all(|(_, s)| s.bitwise_eq(&snap)));
        // GC keeps the newest files.
        assert_eq!(reg.gc(1).unwrap(), vec![1, 2]);
        assert_eq!(reg.versions().unwrap(), vec![3]);
    }

    #[test]
    fn recovery_skips_corrupt_newest_and_falls_back() {
        let td = TestDir::new("align-fallback");
        let reg = DurableRegistry::open(td.path()).unwrap();
        let snap = tiny_snapshot(true);
        reg.save(1, &snap).unwrap();
        reg.save(2, &snap).unwrap();
        // Corrupt the newest file and leave a torn tmp beside it.
        let v2 = td.path().join("v0000000002.snap");
        fault::flip_bit(&v2, 100, 2).unwrap();
        fault::tear_tmp_write(td.path(), "v0000000003.snap", b"partial", 4).unwrap();
        let (entries, report) = reg.recover().unwrap();
        assert_eq!(report.loaded, vec![1]);
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].0, 2);
        assert!(matches!(report.skipped[0].1, DaakgError::Corrupt { .. }));
        assert_eq!(report.removed_tmp.len(), 1);
        // Manifest said 2, but 2 is corrupt: stale.
        assert!(report.manifest_was_stale());
        assert_eq!(entries.len(), 1);
        assert!(entries[0].1.bitwise_eq(&snap));
        // The corrupt file stays on disk for forensics.
        assert!(v2.exists());
    }

    #[test]
    fn missing_version_load_is_a_typed_io_error_with_path() {
        let td = TestDir::new("align-missing");
        let reg = DurableRegistry::open(td.path()).unwrap();
        let err = reg.load(9).unwrap_err();
        match err {
            DaakgError::IoAt { ref path, .. } => {
                assert!(path.to_string_lossy().contains("v0000000009.snap"))
            }
            other => panic!("expected IoAt, got {other:?}"),
        }
    }
}

//! A tape-free snapshot of the joint alignment model: every similarity
//! function `S(·, ·)` of Sect. 4.2, evaluated over cached matrices.
//!
//! Downstream modules (inference power, active learning, evaluation) only
//! ever talk to the model through a snapshot, which makes them independent
//! of training internals and cheap to query.

use crate::batched::BatchedSimilarity;
use crate::mapping::{map_matrix, map_names};
use crate::mean_embed::{mean_class_embeddings, mean_relation_embeddings, Side};
use crate::weights::EntityWeights;
use daakg_autograd::tensor::cosine;
use daakg_autograd::{ParamStore, Tensor};
use daakg_embed::{EntityClassModel, KgEmbedding};
use daakg_graph::{ElementPair, KnowledgeGraph};
use daakg_index::{IvfConfig, IvfIndex};
use std::sync::{Arc, OnceLock};

/// Cached matrices of one alignment round.
#[derive(Debug, Clone)]
pub struct AlignmentSnapshot {
    /// Encoded entities of `G` (`n₁ × d`).
    pub ents1: Tensor,
    /// Encoded entities of `G'` (`n₂ × d`).
    pub ents2: Tensor,
    /// `ents1 · A_ent`: left entities transported into the right space.
    pub mapped_ents1: Tensor,
    /// Relation representations of `G` (base relations).
    pub rels1: Tensor,
    /// Relation representations of `G'`.
    pub rels2: Tensor,
    /// `rels1 · A_rel`.
    pub mapped_rels1: Tensor,
    /// Class embeddings of `G` (`[w_c | b_c]` per class; zero rows when the
    /// class-embedding ablation is off).
    pub cls1: Tensor,
    /// Class embeddings of `G'`.
    pub cls2: Tensor,
    /// `cls1 · A_cls`.
    pub mapped_cls1: Tensor,
    /// Mean relation embeddings `r̄` of `G` (entity space).
    pub mean_rels1: Tensor,
    /// Mean relation embeddings of `G'`.
    pub mean_rels2: Tensor,
    /// `mean_rels1 · A_ent` (the paper maps mean embeddings with `A_ent`).
    pub mapped_mean_rels1: Tensor,
    /// Mean class embeddings `c̄` of `G`.
    pub mean_cls1: Tensor,
    /// Mean class embeddings of `G'`.
    pub mean_cls2: Tensor,
    /// `mean_cls1 · A_ent`.
    pub mapped_mean_cls1: Tensor,
    /// Entity weights of the round (Eq. 6).
    pub weights: EntityWeights,
    /// Whether mean embeddings participate in `S` (Table 5 ablation).
    pub use_mean_embeddings: bool,
    /// Whether dedicated class embeddings participate in `S`.
    pub use_class_embeddings: bool,
    /// Batched entity-similarity engine over `(mapped_ents1, ents2)`,
    /// pre-normalized once at snapshot construction.
    entity_engine: BatchedSimilarity,
    /// IVF configuration for approximate entity search, when serving
    /// enabled it (see [`AlignmentSnapshot::set_index_config`]).
    index_cfg: Option<IvfConfig>,
    /// The lazily-built IVF index. A `OnceLock` so the build happens at
    /// most once per snapshot no matter how many readers race the first
    /// approximate query, and clones of the snapshot (all sharing the
    /// same published version) share the built index through the `Arc`.
    index_cell: OnceLock<Arc<IvfIndex>>,
}

/// The owned pieces [`AlignmentSnapshot::from_parts`] reassembles a
/// snapshot from — exactly the public cached matrices plus weights and
/// ablation flags (the entity engine is derived, the index travels
/// separately through [`AlignmentSnapshot::prime_index`]).
pub(crate) struct SnapshotParts {
    pub ents1: Tensor,
    pub ents2: Tensor,
    pub mapped_ents1: Tensor,
    pub rels1: Tensor,
    pub rels2: Tensor,
    pub mapped_rels1: Tensor,
    pub cls1: Tensor,
    pub cls2: Tensor,
    pub mapped_cls1: Tensor,
    pub mean_rels1: Tensor,
    pub mean_rels2: Tensor,
    pub mapped_mean_rels1: Tensor,
    pub mean_cls1: Tensor,
    pub mean_cls2: Tensor,
    pub mapped_mean_cls1: Tensor,
    pub weights: EntityWeights,
    pub use_mean_embeddings: bool,
    pub use_class_embeddings: bool,
}

impl AlignmentSnapshot {
    /// Build a snapshot from the current parameters.
    ///
    /// `ec1` / `ec2` are the entity-class models (ignored when
    /// `use_class_embeddings` is false).
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        kg1: &KnowledgeGraph,
        kg2: &KnowledgeGraph,
        model1: &dyn KgEmbedding,
        model2: &dyn KgEmbedding,
        ec1: &EntityClassModel,
        ec2: &EntityClassModel,
        store: &ParamStore,
        weights: EntityWeights,
        use_mean_embeddings: bool,
        use_class_embeddings: bool,
    ) -> Self {
        let ents1 = model1.entity_matrix(store, "g1.");
        let ents2 = model2.entity_matrix(store, "g2.");
        let a_ent = store.get(map_names::A_ENT);
        let mapped_ents1 = map_matrix(&ents1, a_ent);

        let rels1 = model1.relation_matrix(store, "g1.");
        let rels2 = model2.relation_matrix(store, "g2.");
        let a_rel = store.get(map_names::A_REL);
        let mapped_rels1 = map_matrix(&rels1, a_rel);

        let (cls1, cls2, mapped_cls1) = if use_class_embeddings {
            let c1 = ec1.class_matrix(store, "g1.");
            let c2 = ec2.class_matrix(store, "g2.");
            let a_cls = store.get(map_names::A_CLS);
            let m1 = map_matrix(&c1, a_cls);
            (c1, c2, m1)
        } else {
            let d = 2 * ec1.class_dim().max(1);
            (
                Tensor::zeros(kg1.num_classes(), d),
                Tensor::zeros(kg2.num_classes(), d),
                Tensor::zeros(kg1.num_classes(), d),
            )
        };

        let mean_rels1 = mean_relation_embeddings(kg1, &ents1, &weights, Side::Left);
        let mean_rels2 = mean_relation_embeddings(kg2, &ents2, &weights, Side::Right);
        let mapped_mean_rels1 = map_matrix(&mean_rels1, a_ent);
        let mean_cls1 = mean_class_embeddings(kg1, &ents1, &weights, Side::Left);
        let mean_cls2 = mean_class_embeddings(kg2, &ents2, &weights, Side::Right);
        let mapped_mean_cls1 = map_matrix(&mean_cls1, a_ent);

        let entity_engine = BatchedSimilarity::new(&mapped_ents1, &ents2);

        Self {
            ents1,
            ents2,
            mapped_ents1,
            rels1,
            rels2,
            mapped_rels1,
            cls1,
            cls2,
            mapped_cls1,
            mean_rels1,
            mean_rels2,
            mapped_mean_rels1,
            mean_cls1,
            mean_cls2,
            mapped_mean_cls1,
            weights,
            use_mean_embeddings,
            use_class_embeddings,
            entity_engine,
            index_cfg: None,
            index_cell: OnceLock::new(),
        }
    }

    /// Reassemble a snapshot from persisted slabs (the [`crate::persist`]
    /// codec's constructor). The entity engine is rebuilt by normalizing
    /// `(mapped_ents1, ents2)` exactly as [`AlignmentSnapshot::build`]
    /// does — normalization is a pure function of the slabs, so
    /// bitwise-equal inputs yield a bitwise-equal engine and therefore
    /// bitwise-identical rankings. Shape inconsistencies return a reason
    /// string (the codec wraps it into a typed corruption error) instead
    /// of panicking.
    pub(crate) fn from_parts(p: SnapshotParts) -> Result<Self, String> {
        if p.mapped_ents1.rows() != p.ents1.rows() {
            return Err(format!(
                "mapped_ents1 holds {} rows but ents1 holds {}",
                p.mapped_ents1.rows(),
                p.ents1.rows()
            ));
        }
        if p.mapped_ents1.cols() != p.ents2.cols() {
            return Err(format!(
                "mapped_ents1 width {} disagrees with ents2 width {}",
                p.mapped_ents1.cols(),
                p.ents2.cols()
            ));
        }
        if p.weights.left.len() != p.ents1.rows() || p.weights.right.len() != p.ents2.rows() {
            return Err(format!(
                "weights hold {}/{} entries for {}/{} entities",
                p.weights.left.len(),
                p.weights.right.len(),
                p.ents1.rows(),
                p.ents2.rows()
            ));
        }
        let entity_engine = BatchedSimilarity::new(&p.mapped_ents1, &p.ents2);
        Ok(Self {
            ents1: p.ents1,
            ents2: p.ents2,
            mapped_ents1: p.mapped_ents1,
            rels1: p.rels1,
            rels2: p.rels2,
            mapped_rels1: p.mapped_rels1,
            cls1: p.cls1,
            cls2: p.cls2,
            mapped_cls1: p.mapped_cls1,
            mean_rels1: p.mean_rels1,
            mean_rels2: p.mean_rels2,
            mapped_mean_rels1: p.mapped_mean_rels1,
            mean_cls1: p.mean_cls1,
            mean_cls2: p.mean_cls2,
            mapped_mean_cls1: p.mapped_mean_cls1,
            weights: p.weights,
            use_mean_embeddings: p.use_mean_embeddings,
            use_class_embeddings: p.use_class_embeddings,
            entity_engine,
            index_cfg: None,
            index_cell: OnceLock::new(),
        })
    }

    /// Seed the lazy index cell with an already-built (persisted) index,
    /// so the first approximate query serves the exact index that was
    /// saved instead of re-clustering. A no-op if an index was already
    /// built or primed for this snapshot.
    pub(crate) fn prime_index(&self, index: Arc<IvfIndex>) {
        let _ = self.index_cell.set(index);
    }

    /// Whether `other` is bit-for-bit the same served state: every cached
    /// matrix, the entity weights, the ablation flags and the index
    /// configuration compared on exact bit patterns (`f32::to_bits`, so
    /// `NaN`s and signed zeros count too). This is the equality the
    /// durability tests assert across save/load cycles — it implies
    /// bitwise-identical answers from every query path.
    pub fn bitwise_eq(&self, other: &Self) -> bool {
        fn teq(a: &Tensor, b: &Tensor) -> bool {
            a.shape() == b.shape()
                && a.as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        }
        fn veq(a: &[f32], b: &[f32]) -> bool {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        }
        teq(&self.ents1, &other.ents1)
            && teq(&self.ents2, &other.ents2)
            && teq(&self.mapped_ents1, &other.mapped_ents1)
            && teq(&self.rels1, &other.rels1)
            && teq(&self.rels2, &other.rels2)
            && teq(&self.mapped_rels1, &other.mapped_rels1)
            && teq(&self.cls1, &other.cls1)
            && teq(&self.cls2, &other.cls2)
            && teq(&self.mapped_cls1, &other.mapped_cls1)
            && teq(&self.mean_rels1, &other.mean_rels1)
            && teq(&self.mean_rels2, &other.mean_rels2)
            && teq(&self.mapped_mean_rels1, &other.mapped_mean_rels1)
            && teq(&self.mean_cls1, &other.mean_cls1)
            && teq(&self.mean_cls2, &other.mean_cls2)
            && teq(&self.mapped_mean_cls1, &other.mapped_mean_cls1)
            && veq(&self.weights.left, &other.weights.left)
            && veq(&self.weights.right, &other.weights.right)
            && self.use_mean_embeddings == other.use_mean_embeddings
            && self.use_class_embeddings == other.use_class_embeddings
            && self.index_cfg == other.index_cfg
    }

    /// Configure (or clear) approximate entity search for this snapshot.
    /// The index itself is built lazily — on the first
    /// [`AlignmentSnapshot::ivf_index`] call — and exactly once; setting a
    /// new configuration discards any previously built index.
    ///
    /// `AlignmentService` calls this on every snapshot it publishes, so an
    /// index travels atomically with its version: every reader of version
    /// `v` shares the same index, and no live version is ever re-indexed.
    pub fn set_index_config(&mut self, cfg: Option<IvfConfig>) {
        self.index_cfg = cfg;
        self.index_cell = OnceLock::new();
    }

    /// The IVF configuration this snapshot carries, if any.
    pub fn index_config(&self) -> Option<&IvfConfig> {
        self.index_cfg.as_ref()
    }

    /// The snapshot's IVF index over the normalized right-entity matrix,
    /// or `None` when no index is configured. The first call (per
    /// snapshot) builds the index; concurrent callers block on that one
    /// build and then share the result — an `Arc` so callers can pin it
    /// beyond the snapshot borrow.
    pub fn ivf_index(&self) -> Option<&Arc<IvfIndex>> {
        let cfg = self.index_cfg.as_ref()?;
        Some(self.index_cell.get_or_init(|| {
            Arc::new(IvfIndex::build(
                self.entity_engine.normalized_candidates(),
                cfg,
            ))
        }))
    }

    /// Approximate top-`k` right entities for a left entity: scan the
    /// `nprobe` most-similar inverted lists of the snapshot's index.
    /// Scores are exact cosines over the probed candidates, and
    /// `nprobe == nlist` reproduces [`AlignmentSnapshot::top_k_entities`]
    /// exactly. `None` when no index is configured.
    pub fn top_k_entities_approx(
        &self,
        e1: u32,
        k: usize,
        nprobe: usize,
    ) -> Option<Vec<(u32, f32)>> {
        self.top_k_entities_approx_observed(e1, k, nprobe, &daakg_index::SearchSpans::default())
    }

    /// [`AlignmentSnapshot::top_k_entities_approx`] with stage telemetry:
    /// the centroid probe and the inverted-list scan are timed into
    /// `spans` separately. The answer is bitwise identical; no-op handles
    /// cost nothing.
    pub fn top_k_entities_approx_observed(
        &self,
        e1: u32,
        k: usize,
        nprobe: usize,
        spans: &daakg_index::SearchSpans,
    ) -> Option<Vec<(u32, f32)>> {
        let index = self.ivf_index()?;
        Some(index.search_observed(self.entity_engine.normalized_query(e1), k, nprobe, spans))
    }

    /// Approximate ranking of *all* candidates in the probed lists for a
    /// left entity — the `Approx`-mode analogue of
    /// [`AlignmentSnapshot::rank_entities`] (the tail the probe never
    /// scanned is absent rather than approximated). `None` when no index
    /// is configured.
    pub fn rank_entities_approx(&self, e1: u32, nprobe: usize) -> Option<Vec<(u32, f32)>> {
        self.top_k_entities_approx(e1, self.ents2.rows(), nprobe)
    }

    /// [`AlignmentSnapshot::rank_entities_approx`] with stage telemetry
    /// (see [`AlignmentSnapshot::top_k_entities_approx_observed`]).
    pub fn rank_entities_approx_observed(
        &self,
        e1: u32,
        nprobe: usize,
        spans: &daakg_index::SearchSpans,
    ) -> Option<Vec<(u32, f32)>> {
        self.top_k_entities_approx_observed(e1, self.ents2.rows(), nprobe, spans)
    }

    /// Entity similarity `S(e, e') = cos(A_ent·e, e')` (Eq. 4).
    #[inline]
    pub fn sim_entity(&self, e1: u32, e2: u32) -> f32 {
        cosine(
            self.mapped_ents1.row(e1 as usize),
            self.ents2.row(e2 as usize),
        )
    }

    /// Relation similarity
    /// `S(r, r') = max(cos(A_rel·r, r'), cos(A_ent·r̄, r̄'))`.
    pub fn sim_relation(&self, r1: u32, r2: u32) -> f32 {
        let direct = cosine(
            self.mapped_rels1.row(r1 as usize),
            self.rels2.row(r2 as usize),
        );
        if !self.use_mean_embeddings {
            return direct;
        }
        let via_mean = cosine(
            self.mapped_mean_rels1.row(r1 as usize),
            self.mean_rels2.row(r2 as usize),
        );
        direct.max(via_mean)
    }

    /// Class similarity
    /// `S(c, c') = max(cos(A_cls·c, c'), cos(A_ent·c̄, c̄'))`.
    pub fn sim_class(&self, c1: u32, c2: u32) -> f32 {
        let direct = if self.use_class_embeddings {
            cosine(
                self.mapped_cls1.row(c1 as usize),
                self.cls2.row(c2 as usize),
            )
        } else {
            f32::NEG_INFINITY
        };
        let via_mean = if self.use_mean_embeddings || !self.use_class_embeddings {
            cosine(
                self.mapped_mean_cls1.row(c1 as usize),
                self.mean_cls2.row(c2 as usize),
            )
        } else {
            f32::NEG_INFINITY
        };
        let s = direct.max(via_mean);
        if s == f32::NEG_INFINITY {
            0.0
        } else {
            s
        }
    }

    /// Similarity of an arbitrary element pair.
    pub fn sim(&self, pair: ElementPair) -> f32 {
        match pair {
            ElementPair::Entity(l, r) => self.sim_entity(l.raw(), r.raw()),
            ElementPair::Relation(l, r) => self.sim_relation(l.raw(), r.raw()),
            ElementPair::Class(l, r) => self.sim_class(l.raw(), r.raw()),
        }
    }

    /// The batched entity-similarity engine (pre-normalized matrices).
    ///
    /// Exposed so callers that rank many queries — evaluation sweeps,
    /// semi-supervised mining — can use the block-scoring entry points
    /// directly instead of going through per-query methods.
    pub fn entity_engine(&self) -> &BatchedSimilarity {
        &self.entity_engine
    }

    /// Rank all right entities for a left entity, descending.
    ///
    /// Served by the batched engine: normalization was paid once at
    /// snapshot construction and the score loop is branch-free. For top-k
    /// consumers prefer [`AlignmentSnapshot::top_k_entities`], which skips
    /// the full sort.
    pub fn rank_entities(&self, e1: u32) -> Vec<(u32, f32)> {
        self.entity_engine.rank_all(e1)
    }

    /// Best `k` right entities for a left entity, descending — bounded-heap
    /// selection, `O(n log k)` after the batched score pass.
    pub fn top_k_entities(&self, e1: u32, k: usize) -> Vec<(u32, f32)> {
        self.entity_engine.top_k(e1, k)
    }

    /// Best `k` right entities for *each* query, scoring whole query blocks
    /// with one matmul per block.
    pub fn top_k_entities_block(&self, queries: &[u32], k: usize) -> Vec<Vec<(u32, f32)>> {
        self.entity_engine.top_k_block(queries, k)
    }

    /// Reference implementation of [`AlignmentSnapshot::rank_entities`]:
    /// per-candidate cosine (recomputing norms) plus a full stable sort.
    /// Retained as the correctness oracle for the batched path; the bench
    /// harness also times it as the baseline.
    pub fn rank_entities_naive(&self, e1: u32) -> Vec<(u32, f32)> {
        let mut v: Vec<(u32, f32)> = (0..self.ents2.rows() as u32)
            .map(|e2| (e2, self.sim_entity(e1, e2)))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }

    /// Rank a restricted candidate set for a left entity, descending.
    pub fn rank_entity_candidates(&self, e1: u32, candidates: &[u32]) -> Vec<(u32, f32)> {
        self.entity_engine.rank_candidates(e1, candidates)
    }

    /// Rank all right relations for a left relation, descending.
    pub fn rank_relations(&self, r1: u32) -> Vec<(u32, f32)> {
        let mut v: Vec<(u32, f32)> = (0..self.rels2.rows() as u32)
            .map(|r2| (r2, self.sim_relation(r1, r2)))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }

    /// Rank all right classes for a left class, descending.
    pub fn rank_classes(&self, c1: u32) -> Vec<(u32, f32)> {
        let mut v: Vec<(u32, f32)> = (0..self.cls2.rows().max(self.mean_cls2.rows()) as u32)
            .map(|c2| (c2, self.sim_class(c1, c2)))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }

    /// Number of left / right entities.
    pub fn entity_counts(&self) -> (usize, usize) {
        (self.ents1.rows(), self.ents2.rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::init_mappings;
    use daakg_embed::TransE;
    use daakg_graph::kg::{example_dbpedia, example_wikidata};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build_snapshot() -> AlignmentSnapshot {
        let kg1 = example_dbpedia();
        let kg2 = example_wikidata();
        let m1 = TransE::new(&kg1, 8);
        let m2 = TransE::new(&kg2, 8);
        let ec1 = EntityClassModel::new(kg1.num_classes(), 8, 4);
        let ec2 = EntityClassModel::new(kg2.num_classes(), 8, 4);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        m1.init_params(&mut rng, &mut store, "g1.");
        m2.init_params(&mut rng, &mut store, "g2.");
        ec1.init_params(&mut rng, &mut store, "g1.");
        ec2.init_params(&mut rng, &mut store, "g2.");
        init_mappings(&mut rng, &mut store, 8, 8, 8);
        let weights = EntityWeights::uniform(kg1.num_entities(), kg2.num_entities());
        AlignmentSnapshot::build(
            &kg1, &kg2, &m1, &m2, &ec1, &ec2, &store, weights, true, true,
        )
    }

    #[test]
    fn shapes_are_consistent() {
        let kg1 = example_dbpedia();
        let s = build_snapshot();
        assert_eq!(s.ents1.rows(), kg1.num_entities());
        assert_eq!(s.mapped_ents1.shape(), s.ents1.shape());
        assert_eq!(s.mean_rels1.rows(), s.rels1.rows());
        assert_eq!(s.cls1.rows(), kg1.num_classes());
        assert_eq!(s.mean_cls1.rows(), kg1.num_classes());
    }

    #[test]
    fn similarities_are_bounded() {
        let s = build_snapshot();
        let (n1, n2) = s.entity_counts();
        for e1 in 0..n1 as u32 {
            for e2 in 0..n2 as u32 {
                let v = s.sim_entity(e1, e2);
                assert!((-1.0..=1.0).contains(&v), "cos out of range: {v}");
            }
        }
        let r = s.sim_relation(0, 0);
        assert!((-1.0..=1.0).contains(&r));
        let c = s.sim_class(0, 0);
        assert!((-1.0..=1.0).contains(&c));
    }

    #[test]
    fn rankings_are_descending_and_complete() {
        let s = build_snapshot();
        let ranked = s.rank_entities(0);
        assert_eq!(ranked.len(), s.entity_counts().1);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let sub = s.rank_entity_candidates(0, &[1, 3, 5]);
        assert_eq!(sub.len(), 3);
    }

    #[test]
    fn batched_ranking_matches_naive_oracle() {
        let s = build_snapshot();
        for e1 in 0..6u32 {
            let fast = s.rank_entities(e1);
            let slow = s.rank_entities_naive(e1);
            assert_eq!(fast.len(), slow.len());
            for (rank, (f, n)) in fast.iter().zip(&slow).enumerate() {
                // Same candidate at each rank, or an fp-tolerance tie swap.
                assert!(
                    f.0 == n.0 || (f.1 - n.1).abs() < 1e-5,
                    "query {e1} rank {rank}: batched {f:?} vs naive {n:?}"
                );
                assert!((f.1 - n.1).abs() < 1e-5);
            }
            let top = s.top_k_entities(e1, 4);
            assert_eq!(top.len(), 4);
            for (t, f) in top.iter().zip(&fast) {
                assert!(t.0 == f.0 || (t.1 - f.1).abs() < 1e-5);
            }
        }
        let block = s.top_k_entities_block(&[0, 1, 2, 3, 4, 5], 4);
        assert_eq!(block.len(), 6);
        for (q, ranking) in block.iter().enumerate() {
            let single = s.top_k_entities(q as u32, 4);
            assert_eq!(ranking, &single);
        }
    }

    #[test]
    fn sim_dispatches_by_pair_kind() {
        use daakg_graph::{ClassId, EntityId, RelationId};
        let s = build_snapshot();
        let pe = s.sim(ElementPair::Entity(EntityId::new(0), EntityId::new(0)));
        let pr = s.sim(ElementPair::Relation(
            RelationId::new(0),
            RelationId::new(0),
        ));
        let pc = s.sim(ElementPair::Class(ClassId::new(0), ClassId::new(0)));
        assert_eq!(pe, s.sim_entity(0, 0));
        assert_eq!(pr, s.sim_relation(0, 0));
        assert_eq!(pc, s.sim_class(0, 0));
    }

    #[test]
    fn ivf_index_is_lazy_shared_and_full_probe_exact() {
        let mut s = build_snapshot();
        // No config: approximate paths are absent, not panicking.
        assert!(s.ivf_index().is_none());
        assert!(s.top_k_entities_approx(0, 3, 1).is_none());

        s.set_index_config(Some(daakg_index::IvfConfig::new(3)));
        let first = Arc::clone(s.ivf_index().expect("configured"));
        let second = Arc::clone(s.ivf_index().expect("configured"));
        assert!(Arc::ptr_eq(&first, &second), "index built exactly once");
        // Clones share the already-built index.
        let clone = s.clone();
        assert!(Arc::ptr_eq(&first, clone.ivf_index().unwrap()));

        // Full probe reproduces the exact engine, scores bitwise equal.
        let (n1, n2) = s.entity_counts();
        for e1 in 0..n1 as u32 {
            for k in [1usize, 4, n2] {
                let exact = s.top_k_entities(e1, k);
                let approx = s.top_k_entities_approx(e1, k, first.nlist()).unwrap();
                assert_eq!(exact.len(), approx.len());
                for (x, a) in exact.iter().zip(&approx) {
                    assert_eq!(x.0, a.0, "e1={e1} k={k}");
                    assert_eq!(x.1.to_bits(), a.1.to_bits(), "e1={e1} k={k}");
                }
            }
            let full = s.rank_entities_approx(e1, first.nlist()).unwrap();
            assert_eq!(full.len(), n2);
        }
        // Partial probes return exact scores for whatever they surface.
        let probed = s.top_k_entities_approx(0, n2, 1).unwrap();
        assert!(!probed.is_empty() && probed.len() <= n2);

        // Reconfiguring discards the built index.
        s.set_index_config(Some(daakg_index::IvfConfig::new(2)));
        assert!(!Arc::ptr_eq(&first, s.ivf_index().unwrap()));
        s.set_index_config(None);
        assert!(s.ivf_index().is_none());
    }

    #[test]
    fn mean_embeddings_can_raise_relation_similarity() {
        let mut s = build_snapshot();
        s.use_mean_embeddings = false;
        let without = s.sim_relation(0, 0);
        s.use_mean_embeddings = true;
        let with = s.sim_relation(0, 0);
        assert!(with >= without);
    }
}

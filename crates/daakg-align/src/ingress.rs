//! The micro-batching ingress: coalesce concurrent single queries into
//! batched kernel dispatches.
//!
//! A single [`ShardedService::query`](crate::ShardedService::query) pays
//! the full scatter-gather dispatch cost alone — panel gather, per-shard
//! scan setup, merge — while the batched kernel amortizes all of it
//! across a 4-query × 16-candidate register tile. Under heavy
//! single-query traffic that difference is the whole throughput story,
//! so the ingress queues incoming queries and a dedicated worker drains
//! them under a **time/size window** ([`IngressConfig`]): a batch is
//! dispatched as soon as `max_batch` queries are pending, or `max_wait`
//! after the oldest pending query arrived, whichever comes first.
//!
//! Each drained batch is grouped by [`QueryOptions`] (concurrent traffic
//! is usually uniform, so one group is the common case) and every group
//! runs as **one** coherent
//! [`query_batch`](crate::ShardedService::query_batch) dispatch — all
//! answers of a group carry the same snapshot version. Waiting callers
//! are then woken with their slice of the batch.
//!
//! Tuning: `max_wait` is the latency floor a lone query pays when no
//! traffic arrives to share its batch, and `max_batch` bounds how much
//! sharing a dispatch can exploit. Size `max_batch` near the expected
//! number of concurrent callers — a window much larger than the
//! concurrency level just waits out `max_wait` without ever filling.

use crate::service::{Ranking, Versioned};
use crate::shard::ShardCore;
use daakg_graph::DaakgError;
use daakg_index::QueryOptions;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The coalescing window of the micro-batching ingress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngressConfig {
    /// Dispatch as soon as this many queries are pending (`1..=65536`).
    pub max_batch: usize,
    /// Dispatch at the latest this long after the oldest pending query
    /// arrived (at most 1 s — the window is a latency floor under light
    /// traffic, not a scheduling period).
    pub max_wait: Duration,
}

impl Default for IngressConfig {
    /// 64 queries / 200 µs — sized for the batched kernel's panel width
    /// and for sub-millisecond worst-case queueing latency.
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::from_micros(200),
        }
    }
}

impl IngressConfig {
    /// Validate the window.
    pub fn validate(&self) -> Result<(), DaakgError> {
        if self.max_batch == 0 {
            return Err(DaakgError::invalid(
                "IngressConfig",
                "max_batch must be at least 1",
            ));
        }
        if self.max_batch > 65536 {
            return Err(DaakgError::invalid(
                "IngressConfig",
                format!("max_batch {} exceeds the 65536 maximum", self.max_batch),
            ));
        }
        if self.max_wait > Duration::from_secs(1) {
            return Err(DaakgError::invalid(
                "IngressConfig",
                format!(
                    "max_wait {:?} exceeds the 1 s maximum — the window is \
                     a queueing delay every lone query pays",
                    self.max_wait
                ),
            ));
        }
        Ok(())
    }
}

/// Dispatch counters of a running ingress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngressStats {
    /// Queries admitted through the ingress.
    pub queries: u64,
    /// Batched kernel dispatches issued (`queries / batches` is the mean
    /// coalescing factor).
    pub batches: u64,
}

/// One waiting caller's answer slot.
struct ResponseSlot {
    result: Mutex<Option<Result<Versioned<Ranking>, DaakgError>>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, result: Result<Versioned<Ranking>, DaakgError>) {
        *self.result.lock().expect("slot mutex poisoned") = Some(result);
        self.ready.notify_one();
    }

    fn wait(&self) -> Result<Versioned<Ranking>, DaakgError> {
        let mut guard = self.result.lock().expect("slot mutex poisoned");
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self.ready.wait(guard).expect("slot mutex poisoned");
        }
    }
}

struct PendingQuery {
    e1: u32,
    opts: QueryOptions,
    slot: Arc<ResponseSlot>,
}

struct IngressQueue {
    pending: VecDeque<PendingQuery>,
    shutdown: bool,
}

struct IngressShared {
    queue: Mutex<IngressQueue>,
    /// Signaled on every enqueue and on shutdown.
    arrived: Condvar,
    queries: AtomicU64,
    batches: AtomicU64,
}

/// The running ingress: a queue, a worker thread, and the window
/// configuration. Dropping it shuts the worker down after draining every
/// pending query (no caller is left blocked).
pub struct Ingress {
    shared: Arc<IngressShared>,
    cfg: IngressConfig,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Ingress {
    /// Spawn the worker over the scatter-gather core. `cfg` must already
    /// be validated.
    pub(crate) fn start(cfg: IngressConfig, core: Arc<ShardCore>) -> Self {
        let shared = Arc::new(IngressShared {
            queue: Mutex::new(IngressQueue {
                pending: VecDeque::new(),
                shutdown: false,
            }),
            arrived: Condvar::new(),
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("daakg-ingress".into())
            .spawn(move || worker_loop(cfg, worker_shared, core))
            .expect("spawn ingress worker");
        Self {
            shared,
            cfg,
            worker: Some(worker),
        }
    }

    pub(crate) fn config(&self) -> IngressConfig {
        self.cfg
    }

    pub(crate) fn stats(&self) -> IngressStats {
        IngressStats {
            queries: self.shared.queries.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
        }
    }

    /// Enqueue one (pre-validated) query and block until its batch is
    /// answered.
    pub(crate) fn submit(
        &self,
        e1: u32,
        opts: QueryOptions,
    ) -> Result<Versioned<Ranking>, DaakgError> {
        let slot = Arc::new(ResponseSlot::new());
        {
            let mut queue = self.shared.queue.lock().expect("ingress queue poisoned");
            queue.pending.push_back(PendingQuery {
                e1,
                opts,
                slot: Arc::clone(&slot),
            });
        }
        self.shared.queries.fetch_add(1, Ordering::Relaxed);
        self.shared.arrived.notify_one();
        slot.wait()
    }
}

impl Drop for Ingress {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("ingress queue poisoned");
            queue.shutdown = true;
        }
        self.shared.arrived.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn worker_loop(cfg: IngressConfig, shared: Arc<IngressShared>, core: Arc<ShardCore>) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("ingress queue poisoned");
            // Sleep until traffic (or shutdown) arrives.
            while queue.pending.is_empty() {
                if queue.shutdown {
                    return;
                }
                queue = shared.arrived.wait(queue).expect("ingress queue poisoned");
            }
            // The window opens with the oldest pending query: collect
            // until the batch fills or `max_wait` elapses. Shutdown
            // short-circuits the wait but still drains what's queued.
            let deadline = Instant::now() + cfg.max_wait;
            while queue.pending.len() < cfg.max_batch && !queue.shutdown {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = shared
                    .arrived
                    .wait_timeout(queue, deadline - now)
                    .expect("ingress queue poisoned");
                queue = guard;
            }
            let take = queue.pending.len().min(cfg.max_batch);
            queue.pending.drain(..take).collect::<Vec<_>>()
        };
        shared.batches.fetch_add(1, Ordering::Relaxed);
        dispatch(&core, batch);
    }
}

/// Run one drained batch: group by options, one coherent
/// `query_batch` per group, distribute the slices to the waiting
/// callers.
fn dispatch(core: &ShardCore, batch: Vec<PendingQuery>) {
    let mut rest = batch;
    while !rest.is_empty() {
        let opts = rest[0].opts;
        let (group, others): (Vec<_>, Vec<_>) = rest.into_iter().partition(|p| p.opts == opts);
        rest = others;
        let queries: Vec<u32> = group.iter().map(|p| p.e1).collect();
        match core.query_batch(&queries, opts) {
            Ok(answered) => {
                let version = answered.version;
                for (pending, value) in group.into_iter().zip(answered.value) {
                    pending.slot.fill(Ok(Versioned { version, value }));
                }
            }
            // Queries are validated before enqueue, so a batch failure is
            // exceptional; re-dispatching individually gives every caller
            // its own typed error (DaakgError is not Clone).
            Err(_) => {
                for pending in group {
                    pending.slot.fill(core.query(pending.e1, pending.opts));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingress_config_is_validated() {
        assert!(IngressConfig::default().validate().is_ok());
        let zero = IngressConfig {
            max_batch: 0,
            ..IngressConfig::default()
        };
        assert!(matches!(
            zero.validate(),
            Err(DaakgError::InvalidConfig { .. })
        ));
        let huge = IngressConfig {
            max_batch: 1 << 20,
            ..IngressConfig::default()
        };
        assert!(huge.validate().is_err());
        let slow = IngressConfig {
            max_wait: Duration::from_secs(5),
            ..IngressConfig::default()
        };
        assert!(slow.validate().is_err());
    }

    #[test]
    fn response_slot_roundtrips() {
        let slot = Arc::new(ResponseSlot::new());
        let waiter = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.wait())
        };
        slot.fill(Ok(Versioned {
            version: crate::service::SnapshotVersion::of(7),
            value: vec![(1, 0.5)],
        }));
        let got = waiter.join().expect("waiter").expect("ok");
        assert_eq!(got.version.get(), 7);
        assert_eq!(got.value, vec![(1, 0.5)]);
    }
}

//! The micro-batching ingress: coalesce concurrent single queries into
//! batched kernel dispatches — with admission control, deadlines, panic
//! isolation, and graceful degradation.
//!
//! A single [`ShardedService::query`](crate::ShardedService::query) pays
//! the full scatter-gather dispatch cost alone — panel gather, per-shard
//! scan setup, merge — while the batched kernel amortizes all of it
//! across a 4-query × 16-candidate register tile. Under heavy
//! single-query traffic that difference is the whole throughput story,
//! so the ingress queues incoming queries and a dedicated worker drains
//! them under a **time/size window** ([`IngressConfig`]): a batch is
//! dispatched as soon as `max_batch` queries are pending, or `max_wait`
//! after the oldest pending query arrived, whichever comes first.
//!
//! Each drained batch is grouped by
//! [`QueryOptions::coalesces_with`] (concurrent traffic is usually
//! uniform, so one group is the common case) and every group runs as
//! **one** coherent
//! [`query_batch`](crate::ShardedService::query_batch) dispatch — all
//! answers of a group carry the same snapshot version. Waiting callers
//! are then woken with their slice of the batch.
//!
//! # Overload resilience
//!
//! The queue is **bounded** ([`IngressConfig::max_queue`]): admissions
//! beyond capacity fail fast with
//! [`DaakgError::Overloaded`] instead of growing an unbounded backlog
//! whose every entry waits longer than the last. Queries may carry a
//! **deadline** ([`QueryOptions::deadline`]); one still queued when its
//! deadline elapses is shed at dequeue with
//! [`DaakgError::DeadlineExceeded`] — no kernel time is burned on an
//! answer nobody is waiting for. An opt-in [`DegradePolicy`] trades
//! exactness for capacity under pressure: when the queue depth crosses
//! the policy's high watermark, index-carrying `Exact` queries are
//! served as reduced-`nprobe` `Approx` until depth falls back below the
//! low watermark (hysteresis), and every answer is stamped with the
//! [`QueryMode`] actually served.
//!
//! # Fault isolation
//!
//! A query that panics inside the execution engine is caught at the
//! dispatch boundary ([`std::panic::catch_unwind`]): its waiter receives
//! a typed [`DaakgError::Panicked`], while the worker thread and every
//! other in-flight query survive — peers in the same batch still get
//! their bitwise-exact answers. Lock poisoning anywhere in the ingress
//! is recovered, never cascaded into client threads; a waiter that
//! observes an unfillable slot gets a typed error, not a hang. Dropping
//! the ingress drains the queue (pending queries get real answers) and
//! wakes anything left with [`DaakgError::Shutdown`].
//!
//! Tuning: `max_wait` is the latency floor a lone query pays when no
//! traffic arrives to share its batch, and `max_batch` bounds how much
//! sharing a dispatch can exploit. Size `max_batch` near the expected
//! number of concurrent callers — a window much larger than the
//! concurrency level just waits out `max_wait` without ever filling.
//! Size `max_queue` for the worst queueing delay you are willing to
//! serve: at saturation the last admitted query waits roughly
//! `max_queue / throughput`.

use crate::service::{Ranking, Served, Versioned};
use crate::shard::ShardCore;
use daakg_graph::DaakgError;
use daakg_index::{QueryMode, QueryOptions};
use daakg_telemetry::{Counter, EventJournal, EventKind, Gauge, HistogramHandle, Telemetry};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Recover a possibly-poisoned mutex: a panic elsewhere must not
/// cascade into this thread. Every ingress lock site goes through here —
/// the protected state (a queue of pending queries, an answer slot) is
/// valid at every await point, so the poison flag carries no information
/// beyond "some thread panicked", which the dispatch boundary already
/// converts to a typed error.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Render a caught panic payload for the typed error.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Opt-in graceful degradation under queue pressure.
///
/// When the pending-queue depth reaches `high_watermark` at a drain, the
/// ingress enters degraded mode: `Exact` queries on an index-carrying
/// service are served as `Approx { nprobe }` — cheaper, sublinear scans
/// that drain the backlog faster — until depth falls to `low_watermark`
/// (hysteresis, so the mode does not flap around one threshold). Every
/// answer is stamped with the [`QueryMode`] actually served
/// ([`Served::served`]), so the bitwise-exactness guarantee is only ever
/// relaxed for callers who configured this policy, and visibly so.
///
/// Degradation never engages unless a policy is explicitly configured
/// ([`IngressConfig::degrade`]), and never affects services without an
/// IVF index (there is no cheaper mode to fall back to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Enter degraded mode when the queue depth reaches this many
    /// pending queries (`1..=max_queue`).
    pub high_watermark: usize,
    /// Leave degraded mode when the depth falls back to this many
    /// (`<= high_watermark`).
    pub low_watermark: usize,
    /// The `nprobe` served in place of `Exact` while degraded (`>= 1`;
    /// smaller is cheaper and less exact).
    pub nprobe: usize,
}

impl DegradePolicy {
    /// Validate the watermarks against the queue bound.
    pub fn validate(&self, max_queue: usize) -> Result<(), DaakgError> {
        if self.nprobe == 0 {
            return Err(DaakgError::invalid(
                "DegradePolicy",
                "nprobe must be at least 1",
            ));
        }
        if self.high_watermark == 0 {
            return Err(DaakgError::invalid(
                "DegradePolicy",
                "high_watermark must be at least 1",
            ));
        }
        if self.low_watermark > self.high_watermark {
            return Err(DaakgError::invalid(
                "DegradePolicy",
                format!(
                    "low_watermark {} exceeds high_watermark {} — hysteresis \
                     needs low <= high",
                    self.low_watermark, self.high_watermark
                ),
            ));
        }
        if self.high_watermark > max_queue {
            return Err(DaakgError::invalid(
                "DegradePolicy",
                format!(
                    "high_watermark {} exceeds max_queue {} — the queue can \
                     never reach it, so the policy would never engage",
                    self.high_watermark, max_queue
                ),
            ));
        }
        Ok(())
    }
}

/// The coalescing window and overload envelope of the micro-batching
/// ingress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngressConfig {
    /// Dispatch as soon as this many queries are pending (`1..=65536`).
    pub max_batch: usize,
    /// Dispatch at the latest this long after the oldest pending query
    /// arrived (at most 1 s — the window is a latency floor under light
    /// traffic, not a scheduling period).
    pub max_wait: Duration,
    /// Admission bound: with this many queries already pending, further
    /// submissions fail fast with [`DaakgError::Overloaded`]
    /// (`max_batch..=1048576`). Bounding the queue bounds the worst
    /// queueing delay an admitted query can see.
    pub max_queue: usize,
    /// Opt-in graceful degradation under queue pressure; `None` (the
    /// default) never degrades.
    pub degrade: Option<DegradePolicy>,
}

impl Default for IngressConfig {
    /// 64 queries / 200 µs / 8192 queue slots, no degradation — sized
    /// for the batched kernel's panel width, sub-millisecond worst-case
    /// coalescing latency, and a queue deep enough that admission only
    /// rejects under sustained overload.
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            max_queue: 8192,
            degrade: None,
        }
    }
}

impl IngressConfig {
    /// Validate the window.
    pub fn validate(&self) -> Result<(), DaakgError> {
        if self.max_batch == 0 {
            return Err(DaakgError::invalid(
                "IngressConfig",
                "max_batch must be at least 1",
            ));
        }
        if self.max_batch > 65536 {
            return Err(DaakgError::invalid(
                "IngressConfig",
                format!("max_batch {} exceeds the 65536 maximum", self.max_batch),
            ));
        }
        if self.max_wait > Duration::from_secs(1) {
            return Err(DaakgError::invalid(
                "IngressConfig",
                format!(
                    "max_wait {:?} exceeds the 1 s maximum — the window is \
                     a queueing delay every lone query pays",
                    self.max_wait
                ),
            ));
        }
        if self.max_queue < self.max_batch {
            return Err(DaakgError::invalid(
                "IngressConfig",
                format!(
                    "max_queue {} is below max_batch {} — the queue must \
                     hold at least one full batch",
                    self.max_queue, self.max_batch
                ),
            ));
        }
        if self.max_queue > 1 << 20 {
            return Err(DaakgError::invalid(
                "IngressConfig",
                format!(
                    "max_queue {} exceeds the 1048576 maximum — an \
                     unbounded backlog is the failure mode this bound \
                     exists to prevent",
                    self.max_queue
                ),
            ));
        }
        if let Some(policy) = &self.degrade {
            policy.validate(self.max_queue)?;
        }
        Ok(())
    }
}

/// Dispatch and resilience counters of a running ingress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngressStats {
    /// Queries admitted through the ingress.
    pub queries: u64,
    /// Batched kernel dispatches issued (`queries / batches` is the mean
    /// coalescing factor).
    pub batches: u64,
    /// Admissions rejected with [`DaakgError::Overloaded`] (queue at
    /// capacity).
    pub shed: u64,
    /// Queries shed with [`DaakgError::DeadlineExceeded`] — at admission
    /// (already-elapsed deadline) or at dequeue.
    pub expired: u64,
    /// `Exact` queries served as reduced-`nprobe` `Approx` by an engaged
    /// [`DegradePolicy`].
    pub degraded: u64,
    /// Queries whose answer was a caught panic
    /// ([`DaakgError::Panicked`]) — the worker survives each one.
    pub panics: u64,
    /// High-water mark of the pending-queue depth.
    pub max_depth: u64,
}

/// An answer plus the [`QueryMode`] it was actually served under.
type ServedResult = Result<(Versioned<Ranking>, QueryMode), DaakgError>;

/// One waiting caller's answer slot. The payload carries the
/// [`QueryMode`] actually served so degradation is observable per
/// answer.
struct ResponseSlot {
    result: Mutex<Option<ServedResult>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, result: ServedResult) {
        *lock_recover(&self.result) = Some(result);
        self.ready.notify_one();
    }

    /// Block until the slot is filled. A poisoned slot whose result was
    /// never set means the filling thread died mid-fill — the waiter
    /// gets a typed error instead of inheriting the panic or hanging.
    fn wait(&self) -> ServedResult {
        let mut observed_poison = self.result.is_poisoned();
        let mut guard = lock_recover(&self.result);
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            if observed_poison {
                return Err(DaakgError::Panicked {
                    context: "ingress response slot",
                    message: "the thread filling this answer slot panicked mid-fill".into(),
                });
            }
            match self.ready.wait(guard) {
                Ok(next) => guard = next,
                Err(poisoned) => {
                    observed_poison = true;
                    guard = poisoned.into_inner();
                }
            }
        }
    }
}

/// A submitted-but-unanswered query: the handle an open-loop caller
/// holds between [`ShardedService::submit`](crate::ShardedService::submit)
/// and collecting the answer. Admission already succeeded — the query is
/// queued (or answered); waiting cannot return
/// [`DaakgError::Overloaded`].
pub struct PendingAnswer {
    slot: Arc<ResponseSlot>,
}

impl PendingAnswer {
    pub(crate) fn filled(result: Result<(Versioned<Ranking>, QueryMode), DaakgError>) -> Self {
        let slot = Arc::new(ResponseSlot::new());
        slot.fill(result);
        Self { slot }
    }

    /// Block until the answer arrives.
    pub fn wait(self) -> Result<Versioned<Ranking>, DaakgError> {
        self.slot.wait().map(|(answer, _)| answer)
    }

    /// Block until the answer arrives, keeping the [`QueryMode`] it was
    /// actually served under (see [`DegradePolicy`]).
    pub fn wait_served(self) -> Result<Served<Ranking>, DaakgError> {
        self.slot.wait().map(|(answer, served)| Served {
            version: answer.version,
            value: answer.value,
            deltas_merged: answer.deltas_merged,
            served,
        })
    }
}

struct PendingQuery {
    e1: u32,
    opts: QueryOptions,
    /// Submission instant — deadlines are measured from here.
    enqueued: Instant,
    slot: Arc<ResponseSlot>,
}

impl Drop for PendingQuery {
    /// Liveness backstop: a pending query dropped without an answer
    /// (worker death outside the dispatch boundary, a queue discarded at
    /// shutdown) wakes its waiter with a typed shutdown error instead of
    /// leaving it blocked forever. After a normal `fill` this is a no-op
    /// (the slot already holds — or already delivered — its answer).
    fn drop(&mut self) {
        let mut guard = lock_recover(&self.slot.result);
        if guard.is_none() {
            *guard = Some(Err(DaakgError::Shutdown { context: "ingress" }));
            drop(guard);
            self.slot.ready.notify_one();
        }
    }
}

struct IngressQueue {
    pending: VecDeque<PendingQuery>,
    shutdown: bool,
}

/// The ingress's registry handles and journal: every stat counter is a
/// lock-free registry cell (pure-counting paths never take a lock —
/// `lock_recover` guards only the pending queue and answer slots), the
/// two stage histograms split queue wait from batch execution, and
/// lifecycle transitions (shed / expired / degrade engage + recover) are
/// journaled as structured events.
struct IngressMetrics {
    queries: Counter,
    batches: Counter,
    shed: Counter,
    expired: Counter,
    degraded: Counter,
    panics: Counter,
    /// High-water mark of the pending-queue depth.
    max_depth: Gauge,
    /// 1 while the [`DegradePolicy`] is engaged (exposition mirror of
    /// the functional flag in [`IngressShared::degrade_engaged`]).
    degrade_engaged: Gauge,
    /// Admission → dequeue wait per query.
    queue_wait: HistogramHandle,
    /// Batched dispatch execution per drained batch.
    execute: HistogramHandle,
    journal: EventJournal,
}

impl IngressMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        let reg = telemetry.registry();
        Self {
            queries: reg.counter("ingress_queries_total"),
            batches: reg.counter("ingress_batches_total"),
            shed: reg.counter("ingress_shed_total"),
            expired: reg.counter("ingress_expired_total"),
            degraded: reg.counter("ingress_degraded_total"),
            panics: reg.counter("ingress_panics_total"),
            max_depth: reg.gauge("ingress_queue_depth_max"),
            degrade_engaged: reg.gauge("ingress_degrade_engaged"),
            queue_wait: reg.histogram("stage_ingress_queue_wait_ns"),
            execute: reg.histogram("stage_ingress_execute_ns"),
            journal: telemetry.journal().clone(),
        }
    }
}

struct IngressShared {
    queue: Mutex<IngressQueue>,
    /// Signaled on every enqueue and on shutdown.
    arrived: Condvar,
    metrics: IngressMetrics,
    /// Whether the [`DegradePolicy`] is currently engaged. Kept as a
    /// plain atomic (not a registry cell) because it *drives* dispatch
    /// decisions — it must work even with telemetry disabled.
    degrade_engaged: AtomicBool,
}

/// What the ingress worker dispatches against. `ShardCore` in
/// production; chaos tests inject backends that panic or stall on
/// command.
pub(crate) trait IngressBackend: Send + Sync + 'static {
    fn query(&self, e1: u32, opts: QueryOptions) -> Result<Versioned<Ranking>, DaakgError>;
    fn query_batch(
        &self,
        queries: &[u32],
        opts: QueryOptions,
    ) -> Result<Versioned<Vec<Ranking>>, DaakgError>;
    /// Whether an IVF index is configured — the precondition for
    /// degrading `Exact` to `Approx`.
    fn has_index(&self) -> bool;
}

impl IngressBackend for ShardCore {
    fn query(&self, e1: u32, opts: QueryOptions) -> Result<Versioned<Ranking>, DaakgError> {
        ShardCore::query(self, e1, opts)
    }

    fn query_batch(
        &self,
        queries: &[u32],
        opts: QueryOptions,
    ) -> Result<Versioned<Vec<Ranking>>, DaakgError> {
        ShardCore::query_batch(self, queries, opts)
    }

    fn has_index(&self) -> bool {
        ShardCore::has_index(self)
    }
}

/// The running ingress: a queue, a worker thread, and the window
/// configuration. Dropping it shuts the worker down after draining every
/// pending query — drained queries get real answers, anything left is
/// woken with [`DaakgError::Shutdown`]; no caller is left blocked.
pub struct Ingress {
    shared: Arc<IngressShared>,
    cfg: IngressConfig,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Ingress {
    /// Spawn the worker over the dispatch backend, recording into
    /// `telemetry`'s registry and journal. `cfg` must already be
    /// validated.
    pub(crate) fn start<B: IngressBackend>(
        cfg: IngressConfig,
        backend: Arc<B>,
        telemetry: &Telemetry,
    ) -> Self {
        let shared = Arc::new(IngressShared {
            queue: Mutex::new(IngressQueue {
                pending: VecDeque::new(),
                shutdown: false,
            }),
            arrived: Condvar::new(),
            metrics: IngressMetrics::new(telemetry),
            degrade_engaged: AtomicBool::new(false),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("daakg-ingress".into())
            .spawn(move || worker_loop(cfg, worker_shared, backend))
            .expect("spawn ingress worker");
        Self {
            shared,
            cfg,
            worker: Some(worker),
        }
    }

    pub(crate) fn config(&self) -> IngressConfig {
        self.cfg
    }

    /// A point-in-time read of the registry-backed counters. With
    /// telemetry disabled every cell is a no-op, so the stats read as
    /// all-zero — degradation itself (the functional
    /// [`Ingress::degrade_engaged`] flag) keeps working regardless.
    pub(crate) fn stats(&self) -> IngressStats {
        let m = &self.shared.metrics;
        IngressStats {
            queries: m.queries.get(),
            batches: m.batches.get(),
            shed: m.shed.get(),
            expired: m.expired.get(),
            degraded: m.degraded.get(),
            panics: m.panics.get(),
            max_depth: m.max_depth.get(),
        }
    }

    /// Whether the [`DegradePolicy`] is currently engaged.
    pub(crate) fn degrade_engaged(&self) -> bool {
        self.shared.degrade_engaged.load(Ordering::Relaxed)
    }

    /// Admit one (pre-validated) query without blocking for its answer.
    /// Fails fast with [`DaakgError::Overloaded`] at capacity, with
    /// [`DaakgError::DeadlineExceeded`] when the deadline is already
    /// elapsed at admission, and with [`DaakgError::Shutdown`] after
    /// shutdown began.
    pub(crate) fn submit_ticket(
        &self,
        e1: u32,
        opts: QueryOptions,
    ) -> Result<PendingAnswer, DaakgError> {
        let now = Instant::now();
        if let Some(deadline) = opts.deadline {
            // A zero (or otherwise pre-elapsed) deadline can never be
            // met: shed at admission without touching the queue.
            if deadline.is_zero() {
                self.shared.metrics.expired.incr();
                self.shared
                    .metrics
                    .journal
                    .record(EventKind::DeadlineExpired);
                return Err(DaakgError::DeadlineExceeded {
                    deadline,
                    waited: Duration::ZERO,
                });
            }
        }
        let slot = Arc::new(ResponseSlot::new());
        {
            let mut queue = lock_recover(&self.shared.queue);
            if queue.shutdown {
                return Err(DaakgError::Shutdown { context: "ingress" });
            }
            let depth = queue.pending.len();
            if depth >= self.cfg.max_queue {
                drop(queue);
                self.shared.metrics.shed.incr();
                self.shared
                    .metrics
                    .journal
                    .record(EventKind::QueryShed { depth });
                return Err(DaakgError::Overloaded {
                    queued: depth,
                    capacity: self.cfg.max_queue,
                });
            }
            queue.pending.push_back(PendingQuery {
                e1,
                opts,
                enqueued: now,
                slot: Arc::clone(&slot),
            });
            self.shared.metrics.max_depth.record_max(depth as u64 + 1);
        }
        self.shared.metrics.queries.incr();
        self.shared.arrived.notify_one();
        Ok(PendingAnswer { slot })
    }

    /// Enqueue one (pre-validated) query and block until its batch is
    /// answered.
    pub(crate) fn submit(
        &self,
        e1: u32,
        opts: QueryOptions,
    ) -> Result<(Versioned<Ranking>, QueryMode), DaakgError> {
        self.submit_ticket(e1, opts)?.slot.wait()
    }
}

impl Drop for Ingress {
    fn drop(&mut self) {
        {
            let mut queue = lock_recover(&self.shared.queue);
            queue.shutdown = true;
        }
        self.shared.arrived.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        // The worker drains the queue before exiting, answering every
        // pending query for real. Anything still here means the worker
        // died (pure defense — it catches query panics): dropping the
        // entries wakes those waiters with a typed shutdown error via
        // the `PendingQuery` drop backstop.
        lock_recover(&self.shared.queue).pending.clear();
    }
}

fn worker_loop<B: IngressBackend>(cfg: IngressConfig, shared: Arc<IngressShared>, backend: Arc<B>) {
    loop {
        let batch = {
            let mut queue = lock_recover(&shared.queue);
            // Sleep until traffic (or shutdown) arrives.
            while queue.pending.is_empty() {
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .arrived
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            // The window opens with the oldest pending query: collect
            // until the batch fills or `max_wait` elapses. Shutdown
            // short-circuits the wait but still drains what's queued.
            let deadline = Instant::now() + cfg.max_wait;
            while queue.pending.len() < cfg.max_batch && !queue.shutdown {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                queue = shared
                    .arrived
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
            // Watermark check with hysteresis, on the depth the drain
            // observes: engage at `high`, disengage at `low`, hold the
            // previous state in between.
            if let Some(policy) = &cfg.degrade {
                let depth = queue.pending.len();
                let engaged = shared.degrade_engaged.load(Ordering::Relaxed);
                if !engaged && depth >= policy.high_watermark {
                    shared.degrade_engaged.store(true, Ordering::Relaxed);
                    shared.metrics.degrade_engaged.set(1);
                    shared
                        .metrics
                        .journal
                        .record(EventKind::DegradeEngage { depth });
                } else if engaged && depth <= policy.low_watermark {
                    shared.degrade_engaged.store(false, Ordering::Relaxed);
                    shared.metrics.degrade_engaged.set(0);
                    shared
                        .metrics
                        .journal
                        .record(EventKind::DegradeRecover { depth });
                }
            }
            let take = queue.pending.len().min(cfg.max_batch);
            queue.pending.drain(..take).collect::<Vec<_>>()
        };
        // Shed what already missed its deadline — dead work would only
        // delay the live queries behind it.
        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for pending in batch {
            let waited = now.duration_since(pending.enqueued);
            shared.metrics.queue_wait.record_duration(waited);
            match pending.opts.deadline {
                Some(deadline) if waited >= deadline => {
                    shared.metrics.expired.incr();
                    shared.metrics.journal.record(EventKind::DeadlineExpired);
                    pending
                        .slot
                        .fill(Err(DaakgError::DeadlineExceeded { deadline, waited }));
                }
                _ => live.push(pending),
            }
        }
        if live.is_empty() {
            continue;
        }
        shared.metrics.batches.incr();
        let degrade_nprobe = match &cfg.degrade {
            Some(policy)
                if shared.degrade_engaged.load(Ordering::Relaxed) && backend.has_index() =>
            {
                Some(policy.nprobe)
            }
            _ => None,
        };
        let _execute = shared.metrics.execute.span();
        dispatch(backend.as_ref(), live, degrade_nprobe, &shared);
    }
}

/// Run one drained batch: group by kernel-relevant options, one coherent
/// `query_batch` per group, distribute the slices to the waiting
/// callers. Panics inside the backend are caught here — the offending
/// query's waiter gets a typed error, peers get their real answers, and
/// the worker loop above never observes the unwind.
fn dispatch<B: IngressBackend + ?Sized>(
    backend: &B,
    batch: Vec<PendingQuery>,
    degrade_nprobe: Option<usize>,
    shared: &IngressShared,
) {
    let mut rest = batch;
    while !rest.is_empty() {
        let opts = rest[0].opts;
        let (group, others): (Vec<_>, Vec<_>) =
            rest.into_iter().partition(|p| p.opts.coalesces_with(&opts));
        rest = others;
        let mut effective = opts;
        if let Some(nprobe) = degrade_nprobe {
            if effective.mode == QueryMode::Exact {
                effective.mode = QueryMode::Approx { nprobe };
                shared.metrics.degraded.add(group.len() as u64);
            }
        }
        let served = effective.mode;
        let queries: Vec<u32> = group.iter().map(|p| p.e1).collect();
        match catch_unwind(AssertUnwindSafe(|| {
            backend.query_batch(&queries, effective)
        })) {
            Ok(Ok(answered)) => {
                let version = answered.version;
                let deltas_merged = answered.deltas_merged;
                for (pending, value) in group.into_iter().zip(answered.value) {
                    pending.slot.fill(Ok((
                        Versioned {
                            version,
                            value,
                            deltas_merged,
                        },
                        served,
                    )));
                }
            }
            // A batch error (queries are validated before enqueue, so
            // this is exceptional) or a caught batch panic: re-dispatch
            // individually so every caller gets its own typed outcome —
            // the poisonous query its panic/error, its peers their real
            // answers.
            Ok(Err(_)) | Err(_) => {
                for pending in group {
                    let result = match catch_unwind(AssertUnwindSafe(|| {
                        backend.query(pending.e1, effective)
                    })) {
                        Ok(answer) => answer.map(|versioned| (versioned, served)),
                        Err(payload) => {
                            shared.metrics.panics.incr();
                            Err(DaakgError::Panicked {
                                context: "ingress batch",
                                message: panic_message(payload),
                            })
                        }
                    };
                    pending.slot.fill(result);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::SnapshotVersion;

    #[test]
    fn ingress_config_is_validated() {
        assert!(IngressConfig::default().validate().is_ok());
        let zero = IngressConfig {
            max_batch: 0,
            ..IngressConfig::default()
        };
        assert!(matches!(
            zero.validate(),
            Err(DaakgError::InvalidConfig { .. })
        ));
        let huge = IngressConfig {
            max_batch: 1 << 20,
            ..IngressConfig::default()
        };
        assert!(huge.validate().is_err());
        let slow = IngressConfig {
            max_wait: Duration::from_secs(5),
            ..IngressConfig::default()
        };
        assert!(slow.validate().is_err());
        let shallow = IngressConfig {
            max_batch: 64,
            max_queue: 32,
            ..IngressConfig::default()
        };
        assert!(shallow.validate().is_err());
        let bottomless = IngressConfig {
            max_queue: 1 << 21,
            ..IngressConfig::default()
        };
        assert!(bottomless.validate().is_err());
    }

    #[test]
    fn degrade_policy_is_validated() {
        let ok = DegradePolicy {
            high_watermark: 100,
            low_watermark: 10,
            nprobe: 2,
        };
        assert!(ok.validate(8192).is_ok());
        assert!(IngressConfig {
            degrade: Some(ok),
            ..IngressConfig::default()
        }
        .validate()
        .is_ok());
        let zero_probe = DegradePolicy { nprobe: 0, ..ok };
        assert!(zero_probe.validate(8192).is_err());
        let zero_high = DegradePolicy {
            high_watermark: 0,
            low_watermark: 0,
            ..ok
        };
        assert!(zero_high.validate(8192).is_err());
        let inverted = DegradePolicy {
            high_watermark: 10,
            low_watermark: 20,
            ..ok
        };
        assert!(inverted.validate(8192).is_err());
        let unreachable = DegradePolicy {
            high_watermark: 9000,
            ..ok
        };
        assert!(unreachable.validate(8192).is_err());
    }

    #[test]
    fn response_slot_roundtrips() {
        let slot = Arc::new(ResponseSlot::new());
        let waiter = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.wait())
        };
        slot.fill(Ok((
            Versioned {
                version: SnapshotVersion::of(7),
                value: vec![(1, 0.5)],
                deltas_merged: 0,
            },
            QueryMode::Exact,
        )));
        let (got, served) = waiter.join().expect("waiter").expect("ok");
        assert_eq!(got.version.get(), 7);
        assert_eq!(got.value, vec![(1, 0.5)]);
        assert_eq!(served, QueryMode::Exact);
    }

    /// Satellite: a waiter observing a poisoned, never-filled slot gets
    /// a typed error — the panic does not cascade into the client
    /// thread, and the client does not hang.
    #[test]
    fn poisoned_unfilled_slot_yields_typed_error_not_panic_or_hang() {
        let slot = Arc::new(ResponseSlot::new());
        // Poison the result mutex: a thread panics while holding it,
        // without ever setting a result (a filler dying mid-fill).
        let poisoner = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || {
                let _guard = slot.result.lock().unwrap();
                panic!("injected: filler dies mid-fill");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(slot.result.is_poisoned());
        match slot.wait() {
            Err(DaakgError::Panicked { context, .. }) => {
                assert_eq!(context, "ingress response slot");
            }
            other => panic!("expected typed Panicked error, got {other:?}"),
        }
        // A poisoned slot that *was* filled still delivers its answer.
        let slot = Arc::new(ResponseSlot::new());
        let poisoner = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || {
                let _guard = slot.result.lock().unwrap();
                panic!("injected");
            })
        };
        assert!(poisoner.join().is_err());
        slot.fill(Ok((
            Versioned {
                version: SnapshotVersion::of(3),
                value: vec![(2, 1.0)],
                deltas_merged: 0,
            },
            QueryMode::Exact,
        )));
        let (got, _) = slot.wait().expect("filled slot delivers despite poison");
        assert_eq!(got.version.get(), 3);
    }

    /// A backend whose behavior the chaos tests script: panics on listed
    /// ids, optionally stalls until released, answers `(e1, e1 as f32)`.
    struct ChaosBackend {
        version: u64,
        panic_on: Vec<u32>,
        has_index: bool,
        /// When present, `query_batch`/`query` block until this gate is
        /// opened — lets tests pile up a queue deterministically.
        gate: Option<Arc<(Mutex<bool>, Condvar)>>,
    }

    impl ChaosBackend {
        fn answering(version: u64) -> Self {
            Self {
                version,
                panic_on: Vec::new(),
                has_index: false,
                gate: None,
            }
        }

        fn gated() -> (Self, Arc<(Mutex<bool>, Condvar)>) {
            let gate = Arc::new((Mutex::new(false), Condvar::new()));
            let backend = Self {
                gate: Some(Arc::clone(&gate)),
                ..Self::answering(1)
            };
            (backend, gate)
        }

        fn wait_gate(&self) {
            if let Some(gate) = &self.gate {
                let (open, released) = &**gate;
                let mut open = open.lock().unwrap();
                while !*open {
                    open = released.wait(open).unwrap();
                }
            }
        }

        fn answer(&self, e1: u32) -> Ranking {
            if self.panic_on.contains(&e1) {
                panic!("injected panic on query {e1}");
            }
            vec![(e1, e1 as f32)]
        }
    }

    fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
        let (open, released) = &**gate;
        *open.lock().unwrap() = true;
        released.notify_all();
    }

    impl IngressBackend for ChaosBackend {
        fn query(&self, e1: u32, _opts: QueryOptions) -> Result<Versioned<Ranking>, DaakgError> {
            self.wait_gate();
            Ok(Versioned {
                version: SnapshotVersion::of(self.version),
                value: self.answer(e1),
                deltas_merged: 0,
            })
        }

        fn query_batch(
            &self,
            queries: &[u32],
            _opts: QueryOptions,
        ) -> Result<Versioned<Vec<Ranking>>, DaakgError> {
            self.wait_gate();
            Ok(Versioned {
                version: SnapshotVersion::of(self.version),
                value: queries.iter().map(|&q| self.answer(q)).collect(),
                deltas_merged: 0,
            })
        }

        fn has_index(&self) -> bool {
            self.has_index
        }
    }

    /// Tentpole chaos property: a panicking query becomes a typed error
    /// to its own waiter; the worker thread survives; every peer in the
    /// same batch still gets its exact answer.
    #[test]
    fn panicking_query_is_isolated_to_its_own_waiter() {
        let backend = Arc::new(ChaosBackend {
            panic_on: vec![5],
            ..ChaosBackend::answering(1)
        });
        let ingress = Arc::new(Ingress::start(
            IngressConfig {
                max_batch: 16,
                max_wait: Duration::from_millis(5),
                ..IngressConfig::default()
            },
            backend,
            &Telemetry::default(),
        ));
        let waiters: Vec<_> = (0..10u32)
            .map(|q| {
                let ingress = Arc::clone(&ingress);
                std::thread::spawn(move || (q, ingress.submit(q, QueryOptions::rank())))
            })
            .collect();
        for waiter in waiters {
            let (q, outcome) = waiter.join().expect("client thread survives");
            if q == 5 {
                match outcome {
                    Err(DaakgError::Panicked { context, message }) => {
                        assert_eq!(context, "ingress batch");
                        assert!(message.contains("injected panic on query 5"));
                    }
                    other => panic!("query 5 expected Panicked, got {other:?}"),
                }
            } else {
                let (answer, served) = outcome.expect("peer gets its answer");
                assert_eq!(answer.value, vec![(q, q as f32)], "peer q={q}");
                assert_eq!(served, QueryMode::Exact);
            }
        }
        assert!(ingress.stats().panics >= 1);
        // The worker survived: the ingress keeps serving.
        let (after, _) = ingress
            .submit(2, QueryOptions::rank())
            .expect("still alive");
        assert_eq!(after.value, vec![(2, 2.0)]);
        assert_eq!(ingress.stats().panics, 1);
    }

    /// Admission control: with the worker stalled and the queue full,
    /// further submissions fail fast with `Overloaded`; nothing hangs.
    #[test]
    fn full_queue_rejects_admissions_with_overloaded() {
        let (backend, gate) = ChaosBackend::gated();
        let cfg = IngressConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            max_queue: 4,
            degrade: None,
        };
        let ingress = Arc::new(Ingress::start(
            cfg,
            Arc::new(backend),
            &Telemetry::default(),
        ));
        // First query occupies the worker (stalled at the gate).
        let first = {
            let ingress = Arc::clone(&ingress);
            std::thread::spawn(move || ingress.submit(0, QueryOptions::rank()))
        };
        // Wait until the worker picked it up (queue drained to empty).
        while ingress.stats().batches == 0 {
            std::thread::yield_now();
        }
        // Fill the queue to capacity, then one more: rejected.
        let queued: Vec<_> = (1..=4u32)
            .map(|q| {
                let ingress = Arc::clone(&ingress);
                std::thread::spawn(move || ingress.submit(q, QueryOptions::rank()))
            })
            .collect();
        while ingress.stats().queries < 5 {
            std::thread::yield_now();
        }
        match ingress.submit_ticket(9, QueryOptions::rank()) {
            Err(DaakgError::Overloaded { queued, capacity }) => {
                assert_eq!(queued, 4);
                assert_eq!(capacity, 4);
            }
            other => panic!(
                "expected Overloaded, got {:?}",
                other.map(|_| "PendingAnswer")
            ),
        }
        let stats = ingress.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.max_depth, 4);
        open_gate(&gate);
        first.join().unwrap().expect("first answered");
        for waiter in queued {
            waiter
                .join()
                .unwrap()
                .expect("queued answered after release");
        }
    }

    /// Deadline semantics: zero deadlines shed at admission, queued
    /// queries whose deadline lapses shed at dequeue, and deadlines
    /// longer than the waiting time answer normally.
    #[test]
    fn deadlines_shed_at_admission_and_dequeue() {
        // Zero deadline: typed shed at admission, nothing enqueued.
        let ingress = Ingress::start(
            IngressConfig::default(),
            Arc::new(ChaosBackend::answering(1)),
            &Telemetry::default(),
        );
        match ingress.submit(0, QueryOptions::rank().with_deadline(Duration::ZERO)) {
            Err(DaakgError::DeadlineExceeded { deadline, waited }) => {
                assert!(deadline.is_zero());
                assert!(waited.is_zero());
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let stats = ingress.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.queries, 0);
        drop(ingress);

        // Queued past its deadline: shed at dequeue once the stalled
        // worker gets back to the queue.
        let (backend, gate) = ChaosBackend::gated();
        let cfg = IngressConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            ..IngressConfig::default()
        };
        let ingress = Arc::new(Ingress::start(
            cfg,
            Arc::new(backend),
            &Telemetry::default(),
        ));
        let first = {
            let ingress = Arc::clone(&ingress);
            std::thread::spawn(move || ingress.submit(0, QueryOptions::rank()))
        };
        while ingress.stats().batches == 0 {
            std::thread::yield_now();
        }
        let doomed = {
            let ingress = Arc::clone(&ingress);
            std::thread::spawn(move || {
                ingress.submit(
                    1,
                    QueryOptions::rank().with_deadline(Duration::from_millis(1)),
                )
            })
        };
        while ingress.stats().queries < 2 {
            std::thread::yield_now();
        }
        // Hold the gate well past the 1 ms deadline, then release.
        std::thread::sleep(Duration::from_millis(20));
        open_gate(&gate);
        first.join().unwrap().expect("undeadlined query answered");
        match doomed.join().unwrap() {
            Err(DaakgError::DeadlineExceeded { deadline, waited }) => {
                assert_eq!(deadline, Duration::from_millis(1));
                assert!(waited >= deadline);
            }
            other => panic!("expected dequeue-time DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(ingress.stats().expired, 1);

        // Deadline comfortably above the wait: answers normally.
        let (answer, _) = ingress
            .submit(
                3,
                QueryOptions::rank().with_deadline(Duration::from_secs(30)),
            )
            .expect("loose deadline answers");
        assert_eq!(answer.value, vec![(3, 3.0)]);
    }

    /// Degradation engages at the high watermark, stamps answers with
    /// the mode actually served, and disengages at the low watermark
    /// (hysteresis) — and only for index-carrying backends.
    #[test]
    fn degradation_engages_with_hysteresis_and_stamps_served_mode() {
        let (mut backend, gate) = ChaosBackend::gated();
        backend.has_index = true;
        let cfg = IngressConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            max_queue: 1024,
            degrade: Some(DegradePolicy {
                high_watermark: 4,
                low_watermark: 1,
                nprobe: 1,
            }),
        };
        let ingress = Arc::new(Ingress::start(
            cfg,
            Arc::new(backend),
            &Telemetry::default(),
        ));
        // Stall the worker on a first query, then pile 8 Exact queries
        // behind it: the next drain observes depth 8, past the high
        // watermark, and engages degradation.
        let first = {
            let ingress = Arc::clone(&ingress);
            std::thread::spawn(move || ingress.submit(100, QueryOptions::rank()))
        };
        while ingress.stats().batches == 0 {
            std::thread::yield_now();
        }
        let waiters: Vec<_> = (0..8u32)
            .map(|q| {
                let ingress = Arc::clone(&ingress);
                std::thread::spawn(move || ingress.submit(q, QueryOptions::rank()))
            })
            .collect();
        while ingress.stats().queries < 9 {
            std::thread::yield_now();
        }
        open_gate(&gate);
        // The stalled query was dispatched before pressure built: Exact.
        let (_, first_served) = first.join().unwrap().expect("first answered");
        assert_eq!(first_served, QueryMode::Exact);
        let mut degraded_answers = 0;
        for waiter in waiters {
            let (answer, served) = waiter.join().unwrap().expect("answered");
            assert_eq!(answer.value.len(), 1);
            if served == (QueryMode::Approx { nprobe: 1 }) {
                degraded_answers += 1;
            } else {
                assert_eq!(served, QueryMode::Exact);
            }
        }
        assert!(
            degraded_answers > 0,
            "high watermark crossed but nothing was served degraded"
        );
        assert_eq!(ingress.stats().degraded, degraded_answers);
        // Light traffic drains the queue below the low watermark: the
        // policy disengages and answers are Exact again.
        let mut disengaged = false;
        for q in 0..20u32 {
            let (_, served) = ingress.submit(q, QueryOptions::rank()).expect("answered");
            if served == QueryMode::Exact {
                disengaged = true;
                break;
            }
        }
        assert!(
            disengaged,
            "policy never disengaged after the queue drained"
        );
        assert!(!ingress.degrade_engaged());
    }

    /// Without an index there is no cheaper mode: the policy may engage
    /// but every answer stays Exact.
    #[test]
    fn degradation_never_downgrades_indexless_backends() {
        let (backend, gate) = ChaosBackend::gated();
        assert!(!backend.has_index);
        let cfg = IngressConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            max_queue: 1024,
            degrade: Some(DegradePolicy {
                high_watermark: 2,
                low_watermark: 1,
                nprobe: 1,
            }),
        };
        let ingress = Arc::new(Ingress::start(
            cfg,
            Arc::new(backend),
            &Telemetry::default(),
        ));
        let first = {
            let ingress = Arc::clone(&ingress);
            std::thread::spawn(move || ingress.submit(100, QueryOptions::rank()))
        };
        while ingress.stats().batches == 0 {
            std::thread::yield_now();
        }
        let waiters: Vec<_> = (0..6u32)
            .map(|q| {
                let ingress = Arc::clone(&ingress);
                std::thread::spawn(move || ingress.submit(q, QueryOptions::rank()))
            })
            .collect();
        while ingress.stats().queries < 7 {
            std::thread::yield_now();
        }
        open_gate(&gate);
        first.join().unwrap().expect("first answered");
        for waiter in waiters {
            let (_, served) = waiter.join().unwrap().expect("answered");
            assert_eq!(served, QueryMode::Exact);
        }
        assert_eq!(ingress.stats().degraded, 0);
    }

    /// Shutdown semantics: dropping the ingress with queries in flight
    /// drains them — every outstanding waiter gets a real answer within
    /// the drain window. No hangs, no lost answers. The worker is
    /// stalled behind a gate when shutdown begins, so the drain window
    /// genuinely overlaps outstanding waiters.
    #[test]
    fn drop_under_load_drains_every_outstanding_ticket() {
        let (backend, gate) = ChaosBackend::gated();
        let cfg = IngressConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            ..IngressConfig::default()
        };
        let ingress = Ingress::start(cfg, Arc::new(backend), &Telemetry::default());
        let tickets: Vec<_> = (0..8u32)
            .map(|q| {
                (
                    q,
                    ingress
                        .submit_ticket(q, QueryOptions::rank())
                        .expect("admitted"),
                )
            })
            .collect();
        // Release the stalled worker shortly after shutdown begins;
        // `drop` blocks joining the worker until then.
        let opener = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            open_gate(&gate);
        });
        drop(ingress);
        opener.join().expect("opener");
        for (q, ticket) in tickets {
            let answer = ticket.wait().expect("drained ticket gets its real answer");
            assert_eq!(answer.value, vec![(q, q as f32)], "q={q}");
        }
    }

    /// Submissions after shutdown began fail with a typed shutdown
    /// error, and a pending query discarded without an answer wakes its
    /// waiter typed instead of hanging it.
    #[test]
    fn shutdown_is_typed_never_a_hang() {
        let ingress = Ingress::start(
            IngressConfig::default(),
            Arc::new(ChaosBackend::answering(1)),
            &Telemetry::default(),
        );
        // Force the shutdown flag the way Drop does, then submit.
        lock_recover(&ingress.shared.queue).shutdown = true;
        match ingress.submit_ticket(0, QueryOptions::rank()) {
            Err(DaakgError::Shutdown { context }) => assert_eq!(context, "ingress"),
            other => panic!(
                "expected Shutdown, got {:?}",
                other.map(|_| "PendingAnswer")
            ),
        }
        // A PendingQuery dropped unanswered (the worker-death backstop)
        // delivers a typed shutdown error to its waiter.
        let slot = Arc::new(ResponseSlot::new());
        let pending = PendingQuery {
            e1: 0,
            opts: QueryOptions::rank(),
            enqueued: Instant::now(),
            slot: Arc::clone(&slot),
        };
        drop(pending);
        match slot.wait() {
            Err(DaakgError::Shutdown { context }) => assert_eq!(context, "ingress"),
            other => panic!("expected Shutdown from drop backstop, got {other:?}"),
        }
        // Un-wedge the flag so Drop's worker join terminates.
        lock_recover(&ingress.shared.queue).shutdown = false;
        drop(ingress);
    }
}

//! The service-side telemetry bundle: every stage histogram, lifecycle
//! counter, and health cell the serving/maintenance path records into,
//! pre-registered once at service construction so hot paths never touch
//! the registry's name map.
//!
//! # Metric taxonomy
//!
//! | kind | name | records |
//! |---|---|---|
//! | counter | `ingress_queries_total` | queries admitted through the ingress |
//! | counter | `ingress_batches_total` | batched kernel dispatches |
//! | counter | `ingress_shed_total` | admissions rejected at capacity |
//! | counter | `ingress_expired_total` | deadline sheds (admission + dequeue) |
//! | counter | `ingress_degraded_total` | `Exact` queries served `Approx` under degradation |
//! | counter | `ingress_panics_total` | caught dispatch panics |
//! | counter | `persist_failures_total` | publications whose persist failed after retries |
//! | counter | `persist_retries_total` | transient-IO persist retries |
//! | counter | `snapshot_publish_total` | snapshot publications (training + folds) |
//! | counter | `compactions_total` | delta folds committed |
//! | gauge | `ingress_queue_depth_max` | high-water mark of the pending queue |
//! | gauge | `ingress_degrade_engaged` | 1 while the [`crate::DegradePolicy`] is engaged |
//! | gauge | `durability_degraded` | 1 while the latest persist failed |
//! | histogram | `stage_ingress_queue_wait_ns` | admission → dequeue wait |
//! | histogram | `stage_ingress_execute_ns` | batched dispatch execution |
//! | histogram | `stage_shard_scan_ns` | one shard's scatter scan |
//! | histogram | `stage_shard_merge_ns` | scatter-gather merge |
//! | histogram | `stage_exact_scan_ns` | exhaustive (unsharded) scan |
//! | histogram | `stage_ivf_probe_ns` | IVF centroid probe |
//! | histogram | `stage_ivf_scan_ns` | IVF inverted-list scan |
//! | histogram | `stage_delta_merge_ns` | live delta-slab merge into an answer |
//! | histogram | `stage_warm_start_ns` | upsert warm-start fine-tune |
//! | histogram | `stage_fold_ns` | compaction fold (snapshot build) |
//! | histogram | `stage_republish_ns` | compaction compare-and-publish |
//! | histogram | `stage_persist_ns` | full persist (retries included) |
//! | histogram | `stage_store_write_ns` | store tmp-file byte write |
//! | histogram | `stage_store_fsync_ns` | store fsync + rename + dir-fsync |

use daakg_index::SearchSpans;
use daakg_store::StoreSpans;
use daakg_telemetry::{
    Counter, EventKind, Gauge, HistogramHandle, MetricsRegistry, Telemetry, TelemetryConfig,
};

/// Pre-registered handles for everything the service records.
///
/// Health cells (`durability_degraded`, `persist_failures`,
/// `persist_retries`) are minted from a private always-on registry when
/// telemetry is disabled, so [`crate::AlignmentService::health`] keeps
/// reporting persist faults either way — only *exposition* and the
/// hot-path stage histograms go dark when telemetry is off.
#[derive(Debug, Clone)]
pub(crate) struct ServiceTelemetry {
    pub telemetry: Telemetry,
    // Stage histograms.
    pub exact_scan: HistogramHandle,
    pub search: SearchSpans,
    pub delta_merge: HistogramHandle,
    pub warm_start: HistogramHandle,
    pub fold: HistogramHandle,
    pub republish: HistogramHandle,
    pub persist: HistogramHandle,
    pub store: StoreSpans,
    // Lifecycle counters.
    pub snapshot_publish: Counter,
    pub compactions: Counter,
    // Health cells (always live — see type docs).
    pub durability_degraded: Gauge,
    pub persist_failures: Counter,
    pub persist_retries: Counter,
}

impl ServiceTelemetry {
    pub fn new(config: TelemetryConfig) -> Self {
        let telemetry = Telemetry::new(config);
        let reg = telemetry.registry().clone();
        // Keep the health surface alive when exposition is off.
        let health = if reg.is_enabled() {
            reg.clone()
        } else {
            MetricsRegistry::new()
        };
        Self {
            exact_scan: reg.histogram("stage_exact_scan_ns"),
            search: SearchSpans {
                probe: reg.histogram("stage_ivf_probe_ns"),
                scan: reg.histogram("stage_ivf_scan_ns"),
            },
            delta_merge: reg.histogram("stage_delta_merge_ns"),
            warm_start: reg.histogram("stage_warm_start_ns"),
            fold: reg.histogram("stage_fold_ns"),
            republish: reg.histogram("stage_republish_ns"),
            persist: reg.histogram("stage_persist_ns"),
            store: StoreSpans {
                write: reg.histogram("stage_store_write_ns"),
                fsync: reg.histogram("stage_store_fsync_ns"),
            },
            snapshot_publish: reg.counter("snapshot_publish_total"),
            compactions: reg.counter("compactions_total"),
            durability_degraded: health.gauge("durability_degraded"),
            persist_failures: health.counter("persist_failures_total"),
            persist_retries: health.counter("persist_retries_total"),
            telemetry,
        }
    }

    /// Record a lifecycle event into the journal (no-op when disabled).
    pub fn event(&self, kind: EventKind) {
        self.telemetry.event(kind);
    }
}

impl Default for ServiceTelemetry {
    fn default() -> Self {
        Self::new(TelemetryConfig::default())
    }
}

//! The orchestrating joint alignment model (Sect. 4.2).
//!
//! [`JointModel`] owns the embedding models of both KGs, the entity-class
//! models, the mapping matrices and the parameter store, and drives the
//! training schedule:
//!
//! 1. **warm-up** — both KGs train their standalone embedding objectives
//!    (`O_er`, `O_ec`) with [`EmbedTrainer`];
//! 2. **alignment rounds** — each round builds an [`AlignmentSnapshot`],
//!    recomputes the dangling weights (Eq. 6), then optimizes the softmax
//!    alignment losses `O_ea`/`O_ra`/`O_ca` (Eq. 5, 8) over the labeled
//!    matches with sampled negatives, plus the semi-supervised loss
//!    `O_semi` (Eq. 10) over mined potential matches;
//! 3. **fine-tuning** — when new labels arrive (active learning), a short
//!    focal-loss pass (`(1−p)^γ·(−log p)`) concentrates on the freshly
//!    labeled, still-misclassified pairs.
//!
//! Semi-supervised mining uses the snapshot's batched top-k engine, so a
//! round costs one blocked matmul over the query block instead of a naive
//! `O(n²·d)` cosine sweep.

use crate::config::JointConfig;
use crate::losses::{semi_supervised_loss, softmax_pair_loss};
use crate::mapping::{init_mappings, map_names};
use crate::semi::{mine_potential_matches, PotentialMatch};
use crate::snapshot::AlignmentSnapshot;
use crate::weights::EntityWeights;
use daakg_autograd::{unique_rows, Adam, ParamStore, TapeSession, Var};
use daakg_embed::{build_model, EmbedTrainer, EntityClassModel, KgEmbedding, TrainMode};
use daakg_graph::{DaakgError, ElementPair, GoldAlignment, KnowledgeGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Labeled matches driving the supervised alignment losses: positive
/// element pairs per kind, stored as raw `(left, right)` indices.
#[derive(Debug, Clone, Default)]
pub struct LabeledMatches {
    /// Matched entity pairs.
    pub entities: Vec<(u32, u32)>,
    /// Matched relation pairs.
    pub relations: Vec<(u32, u32)>,
    /// Matched class pairs.
    pub classes: Vec<(u32, u32)>,
}

impl LabeledMatches {
    /// No labels.
    pub fn new() -> Self {
        Self::default()
    }

    /// All matches of a gold alignment (the fully-supervised setting).
    pub fn from_gold(gold: &GoldAlignment) -> Self {
        let mut out = Self::new();
        for (l, r) in gold.entity_matches() {
            out.entities.push((l.raw(), r.raw()));
        }
        for (l, r) in gold.relation_matches() {
            out.relations.push((l.raw(), r.raw()));
        }
        for (l, r) in gold.class_matches() {
            out.classes.push((l.raw(), r.raw()));
        }
        out
    }

    /// Record one labeled match of any kind.
    pub fn push(&mut self, pair: ElementPair) {
        match pair {
            ElementPair::Entity(l, r) => self.entities.push((l.raw(), r.raw())),
            ElementPair::Relation(l, r) => self.relations.push((l.raw(), r.raw())),
            ElementPair::Class(l, r) => self.classes.push((l.raw(), r.raw())),
        }
    }

    /// Total number of labeled pairs across kinds.
    pub fn len(&self) -> usize {
        self.entities.len() + self.relations.len() + self.classes.len()
    }

    /// True when no labels exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The joint alignment model: everything needed to train and snapshot.
pub struct JointModel {
    cfg: JointConfig,
    model1: Box<dyn KgEmbedding>,
    model2: Box<dyn KgEmbedding>,
    ec1: EntityClassModel,
    ec2: EntityClassModel,
    store: ParamStore,
    weights: EntityWeights,
    /// Potential matches mined in the latest round (for inspection).
    last_mined: Vec<PotentialMatch>,
}

impl JointModel {
    /// Build models for both KGs and initialize all parameters; rejects
    /// invalid configurations with a typed [`DaakgError`] instead of
    /// panicking.
    pub fn new(
        cfg: JointConfig,
        kg1: &KnowledgeGraph,
        kg2: &KnowledgeGraph,
    ) -> Result<Self, DaakgError> {
        cfg.validate()?;
        let dim = cfg.embed.dim;
        let model1 = build_model(cfg.embed.model, kg1, dim);
        let model2 = build_model(cfg.embed.model, kg2, dim);
        let ec1 = EntityClassModel::new(kg1.num_classes(), dim, cfg.embed.class_dim);
        let ec2 = EntityClassModel::new(kg2.num_classes(), dim, cfg.embed.class_dim);

        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.embed.seed);
        model1.init_params(&mut rng, &mut store, "g1.");
        model2.init_params(&mut rng, &mut store, "g2.");
        ec1.init_params(&mut rng, &mut store, "g1.");
        ec2.init_params(&mut rng, &mut store, "g2.");
        init_mappings(
            &mut rng,
            &mut store,
            dim,
            model1.relation_dim(),
            2 * cfg.embed.class_dim,
        );

        let weights = EntityWeights::uniform(kg1.num_entities(), kg2.num_entities());
        Ok(Self {
            cfg,
            model1,
            model2,
            ec1,
            ec2,
            store,
            weights,
            last_mined: Vec::new(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &JointConfig {
        &self.cfg
    }

    /// Read access to the parameter store.
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Potential matches mined during the latest training round.
    pub fn last_mined(&self) -> &[PotentialMatch] {
        &self.last_mined
    }

    /// A tape-free snapshot of the current model state.
    pub fn snapshot(&self, kg1: &KnowledgeGraph, kg2: &KnowledgeGraph) -> AlignmentSnapshot {
        AlignmentSnapshot::build(
            kg1,
            kg2,
            self.model1.as_ref(),
            self.model2.as_ref(),
            &self.ec1,
            &self.ec2,
            &self.store,
            self.weights.clone(),
            self.cfg.use_mean_embeddings,
            self.cfg.use_class_embeddings,
        )
    }

    /// Full training: embedding warm-up, then `align_epochs` alignment
    /// rounds over the labeled matches. Returns the final snapshot.
    pub fn train(
        &mut self,
        kg1: &KnowledgeGraph,
        kg2: &KnowledgeGraph,
        labels: &LabeledMatches,
    ) -> AlignmentSnapshot {
        // Phase 1: standalone embedding objectives for both KGs.
        let trainer =
            EmbedTrainer::new(self.cfg.embed).expect("JointConfig validated at construction");
        let mut opt = Adam::with_lr(self.cfg.embed.lr);
        let ec1 = self.cfg.use_class_embeddings.then_some(&self.ec1);
        let ec2 = self.cfg.use_class_embeddings.then_some(&self.ec2);
        trainer.train(
            self.model1.as_ref(),
            ec1,
            kg1,
            &mut self.store,
            "g1.",
            &mut opt,
        );
        trainer.train(
            self.model2.as_ref(),
            ec2,
            kg2,
            &mut self.store,
            "g2.",
            &mut opt,
        );

        // Phase 2: alignment rounds.
        let mut opt = Adam::with_lr(self.cfg.align_lr);
        let mut rng = StdRng::seed_from_u64(self.cfg.embed.seed ^ 0xA11C);
        for epoch in 0..self.cfg.align_epochs {
            // Refresh weights + mined pairs a few times per run, not every
            // epoch: snapshots cost a full encode of both KGs. Snapshots
            // read whole tables, so pending lazy rows catch up first.
            if epoch % 5 == 0 {
                opt.flush(&mut self.store);
                self.refresh_round_state(kg1, kg2);
            }
            self.alignment_step(kg2, labels, &mut opt, &mut rng, None);
        }
        opt.flush(&mut self.store);
        self.refresh_round_state(kg1, kg2);
        self.snapshot(kg1, kg2)
    }

    /// Run `epochs` alignment epochs over the labeled matches with a fresh
    /// optimizer, returning the loss per epoch. This is the core of the
    /// "alignment round" hot path (also driven by [`JointModel::train`])
    /// exposed for benchmarking and incremental training; round state is
    /// refreshed once at the start and lazily-deferred parameter rows are
    /// flushed before returning.
    pub fn align_rounds(
        &mut self,
        kg1: &KnowledgeGraph,
        kg2: &KnowledgeGraph,
        labels: &LabeledMatches,
        epochs: usize,
    ) -> Vec<f32> {
        let mut opt = Adam::with_lr(self.cfg.align_lr);
        let mut rng = StdRng::seed_from_u64(self.cfg.embed.seed ^ 0xA11C);
        self.refresh_round_state(kg1, kg2);
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            losses.push(self.alignment_step(kg2, labels, &mut opt, &mut rng, None));
        }
        opt.flush(&mut self.store);
        losses
    }

    /// Focal fine-tuning on (newly) labeled matches — the active-learning
    /// update path. Returns the refreshed snapshot.
    pub fn fine_tune(
        &mut self,
        kg1: &KnowledgeGraph,
        kg2: &KnowledgeGraph,
        labels: &LabeledMatches,
    ) -> AlignmentSnapshot {
        self.fine_tune_with_inferred(kg1, kg2, labels, &[], 1.0)
    }

    /// Active-learning update with inferred matches injected alongside the
    /// labels: entity pairs inferred with confidence at or above `accept`
    /// join the supervised set as hard positives for the focal pass, the
    /// rest join the semi-supervised mined set with their confidence as
    /// the soft label (Eq. 10). Returns the refreshed snapshot.
    ///
    /// `inferred` holds `(left, right, confidence)` raw entity pairs, as
    /// produced by the `daakg-infer` closure.
    pub fn fine_tune_with_inferred(
        &mut self,
        kg1: &KnowledgeGraph,
        kg2: &KnowledgeGraph,
        labels: &LabeledMatches,
        inferred: &[(u32, u32, f32)],
        accept: f32,
    ) -> AlignmentSnapshot {
        let mut augmented = labels.clone();
        let mut soft: Vec<(ElementPair, f32)> = self
            .last_mined
            .iter()
            .map(|m| (m.pair, m.soft_label))
            .collect();
        for &(l, r, c) in inferred {
            let pair =
                ElementPair::Entity(daakg_graph::EntityId::new(l), daakg_graph::EntityId::new(r));
            if c >= accept {
                augmented.entities.push((l, r));
            } else {
                soft.push((pair, c));
            }
        }
        // Re-mine so injected soft pairs obey the 1:1 conflict resolution.
        self.last_mined = mine_potential_matches(soft, 0.0);

        let mut opt = Adam::with_lr(self.cfg.align_lr);
        let mut rng = StdRng::seed_from_u64(self.cfg.embed.seed ^ 0xF0CA);
        let gamma = Some(self.cfg.focal_gamma);
        for _ in 0..self.cfg.fine_tune_epochs {
            self.alignment_step(kg2, &augmented, &mut opt, &mut rng, gamma);
        }
        opt.flush(&mut self.store);
        self.refresh_round_state(kg1, kg2);
        self.snapshot(kg1, kg2)
    }

    /// Rebuild the snapshot-derived round state: dangling-entity weights
    /// (Eq. 6) and, when enabled, the mined potential matches (Eq. 10).
    fn refresh_round_state(&mut self, kg1: &KnowledgeGraph, kg2: &KnowledgeGraph) {
        let snap = self.snapshot(kg1, kg2);
        let engine = snap.entity_engine();
        // Eq. 6 weights through the batched engine (block maxima).
        self.weights = EntityWeights::from_engine(engine);
        let queries: Vec<u32> = (0..kg1.num_entities() as u32).collect();

        self.last_mined = if self.cfg.use_semi_supervision {
            let top = snap.top_k_entities_block(&queries, 1);
            let scored = queries.iter().zip(top).filter_map(|(&q, mut best)| {
                best.pop().map(|(e2, s)| {
                    (
                        ElementPair::Entity(
                            daakg_graph::EntityId::new(q),
                            daakg_graph::EntityId::new(e2),
                        ),
                        s,
                    )
                })
            });
            mine_potential_matches(scored, self.cfg.semi_threshold)
        } else {
            Vec::new()
        };
    }

    /// One optimizer step of the alignment objective: softmax pair losses
    /// for all labeled kinds plus the semi-supervised term.
    ///
    /// Two constructions share identical sampling (all negatives are drawn
    /// **before** the tape is built, so the RNG sequence matches across
    /// modes):
    ///
    /// * **dense** (the retained oracle, also the fallback for encoder
    ///   models without raw tables): map the *whole* left table through the
    ///   mapping matrix, then gather pair rows — `O(n·d²)` per step;
    /// * **sparse** ([`TrainMode::Sparse`] + table models): gather only the
    ///   labeled/mined/negative rows via external gathers, map just those —
    ///   `O(pairs·k·d²)` per step — and apply sparse row-updates to the
    ///   embedding tables with lazy Adam.
    fn alignment_step(
        &mut self,
        kg2: &KnowledgeGraph,
        labels: &LabeledMatches,
        opt: &mut Adam,
        rng: &mut StdRng,
        focal_gamma: Option<f32>,
    ) -> f32 {
        let k = self.cfg.align_negatives;
        let use_classes = self.cfg.use_class_embeddings
            && !labels.classes.is_empty()
            && self.ec1.num_classes() > 0;

        // Presample every negative before building the tape.
        let ent_rows = (!labels.entities.is_empty())
            .then(|| PairRows::sample(&labels.entities, k, kg2.num_entities() as u32, rng));
        let rel_rows = (!labels.relations.is_empty()).then(|| {
            PairRows::sample(
                &labels.relations,
                k,
                self.model2.num_base_relations() as u32,
                rng,
            )
        });
        let cls_rows = use_classes
            .then(|| PairRows::sample(&labels.classes, k, self.ec2.num_classes() as u32, rng));

        // Mined potential matches feeding the semi-supervised term.
        let mut mined_l: Vec<u32> = Vec::new();
        let mut mined_r: Vec<u32> = Vec::new();
        let mut mined_soft: Vec<f32> = Vec::new();
        if ent_rows.is_some() {
            for m in &self.last_mined {
                if let Some((l, r)) = m.pair.as_entity() {
                    mined_l.push(l.raw());
                    mined_r.push(r.raw());
                    mined_soft.push(m.soft_label);
                }
            }
        }

        let tables = if self.cfg.embed.mode == TrainMode::Sparse {
            self.model1
                .table_params("g1.")
                .zip(self.model2.table_params("g2."))
        } else {
            None
        };

        // Lazy sparse-Adam rows the tape will read must be current first.
        if let Some((tp1, tp2)) = &tables {
            if let Some(rows) = &ent_rows {
                opt.refresh_rows(
                    &mut self.store,
                    &tp1.ent,
                    &unique_rows(&[&rows.left_once, &mined_l]),
                );
                opt.refresh_rows(
                    &mut self.store,
                    &tp2.ent,
                    &unique_rows(&[&rows.pos_rrows, &rows.neg_rrows, &mined_r]),
                );
            }
            if let Some(rows) = &rel_rows {
                opt.refresh_rows(&mut self.store, &tp1.rel, &unique_rows(&[&rows.left_once]));
                opt.refresh_rows(
                    &mut self.store,
                    &tp2.rel,
                    &unique_rows(&[&rows.pos_rrows, &rows.neg_rrows]),
                );
            }
        }

        let mut s = TapeSession::new();
        let mut losses: Vec<Var> = Vec::new();

        // --- entity alignment O_ea (Eq. 5) ---
        if let Some(rows) = &ent_rows {
            let a_ent = s.param(&self.store, map_names::A_ENT);
            match &tables {
                Some((tp1, tp2)) => {
                    let (pos, neg) =
                        rows.sparse_sims(&mut s, &self.store, &tp1.ent, &tp2.ent, a_ent);
                    losses.push(softmax_pair_loss(&mut s.graph, pos, neg, focal_gamma));

                    // --- semi-supervised O_semi (Eq. 10) ---
                    if !mined_l.is_empty() {
                        let ml = s.gather_param(&self.store, &tp1.ent, &mined_l);
                        let mm = s.graph.matmul(ml, a_ent);
                        let mr = s.gather_param(&self.store, &tp2.ent, &mined_r);
                        let sims = s.graph.cosine_rows(mm, mr);
                        losses.push(semi_supervised_loss(&mut s.graph, sims, &mined_soft));
                    }
                }
                None => {
                    let ents1 = self.model1.encode_entities(&mut s, &self.store, "g1.");
                    let ents2 = self.model2.encode_entities(&mut s, &self.store, "g2.");
                    let mapped = s.graph.matmul(ents1, a_ent);
                    let (pos, neg) = rows.sims_on_tape(&mut s, mapped, ents2);
                    losses.push(softmax_pair_loss(&mut s.graph, pos, neg, focal_gamma));

                    if !mined_l.is_empty() {
                        let l = s.graph.gather_rows(mapped, &mined_l);
                        let r = s.graph.gather_rows(ents2, &mined_r);
                        let sims = s.graph.cosine_rows(l, r);
                        losses.push(semi_supervised_loss(&mut s.graph, sims, &mined_soft));
                    }
                }
            }
        }

        // --- relation alignment O_ra (Eq. 8) ---
        if let Some(rows) = &rel_rows {
            let a_rel = s.param(&self.store, map_names::A_REL);
            match &tables {
                Some((tp1, tp2)) => {
                    let (pos, neg) =
                        rows.sparse_sims(&mut s, &self.store, &tp1.rel, &tp2.rel, a_rel);
                    losses.push(softmax_pair_loss(&mut s.graph, pos, neg, focal_gamma));
                }
                None => {
                    let rels1 = self.model1.encode_relations(&mut s, &self.store, "g1.");
                    let rels2 = self.model2.encode_relations(&mut s, &self.store, "g2.");
                    let mapped = s.graph.matmul(rels1, a_rel);
                    let (pos, neg) = rows.sims_on_tape(&mut s, mapped, rels2);
                    losses.push(softmax_pair_loss(&mut s.graph, pos, neg, focal_gamma));
                }
            }
        }

        // --- class alignment O_ca ---
        //
        // Class matrices are small derived leaves (gradients train the
        // mapping matrix only), so the dense construction stays.
        if let Some(rows) = &cls_rows {
            let cls1 = class_matrix_on_tape(&mut s, &self.store, &self.ec1, "g1.");
            let cls2 = class_matrix_on_tape(&mut s, &self.store, &self.ec2, "g2.");
            let a_cls = s.param(&self.store, map_names::A_CLS);
            let mapped = s.graph.matmul(cls1, a_cls);
            let (pos, neg) = rows.sims_on_tape(&mut s, mapped, cls2);
            losses.push(softmax_pair_loss(&mut s.graph, pos, neg, focal_gamma));
        }

        let Some(total) = sum_losses(&mut s, losses) else {
            return 0.0;
        };
        let value = s.graph.value(total).item();
        s.backward(total);
        s.step(&mut self.store, opt);
        value
    }
}

/// Presampled row indices for the softmax pair loss: each labeled pair
/// contributes `align_negatives` rows pairing the positive similarity with
/// a sampled-negative similarity. Sampling happens before the tape exists,
/// so the dense and sparse constructions consume the RNG identically.
struct PairRows {
    /// Left row per pair-negative slot (`left_once[rep[i]]`, expanded).
    lrows: Vec<u32>,
    /// Left row of each labeled pair, once.
    left_once: Vec<u32>,
    /// Expansion map: slot `i` belongs to pair `rep[i]`.
    rep: Vec<u32>,
    pos_rrows: Vec<u32>,
    neg_rrows: Vec<u32>,
}

impl PairRows {
    fn sample(pairs: &[(u32, u32)], negatives: usize, num_right: u32, rng: &mut StdRng) -> Self {
        let k = negatives.max(1);
        let mut lrows = Vec::with_capacity(pairs.len() * k);
        let mut left_once = Vec::with_capacity(pairs.len());
        let mut rep = Vec::with_capacity(pairs.len() * k);
        let mut pos_rrows = Vec::with_capacity(pairs.len() * k);
        let mut neg_rrows = Vec::with_capacity(pairs.len() * k);
        for (p, &(l, r)) in pairs.iter().enumerate() {
            left_once.push(l);
            for _ in 0..k {
                lrows.push(l);
                rep.push(p as u32);
                pos_rrows.push(r);
                // Rejection-sample a right element different from the match.
                let mut neg = rng.gen_range(0..num_right);
                for _ in 0..8 {
                    if neg != r {
                        break;
                    }
                    neg = rng.gen_range(0..num_right);
                }
                neg_rrows.push(neg);
            }
        }
        Self {
            lrows,
            left_once,
            rep,
            pos_rrows,
            neg_rrows,
        }
    }

    /// The dense-construction similarity columns: gather the presampled
    /// rows from the mapped left matrix and the right matrix on the tape.
    fn sims_on_tape(&self, s: &mut TapeSession, mapped_left: Var, right: Var) -> (Var, Var) {
        let l = s.graph.gather_rows(mapped_left, &self.lrows);
        let rp = s.graph.gather_rows(right, &self.pos_rrows);
        let rn = s.graph.gather_rows(right, &self.neg_rrows);
        let pos = s.graph.cosine_rows(l, rp);
        let l2 = s.graph.gather_rows(mapped_left, &self.lrows);
        let neg = s.graph.cosine_rows(l2, rn);
        (pos, neg)
    }

    /// The sparse-construction similarity columns: map each pair's left
    /// row through the mapping matrix **once**, expand to the pair×k
    /// slots via a cheap tape gather, and cosine against externally
    /// gathered right rows. Same math as [`PairRows::sims_on_tape`] over a
    /// fully mapped table, at `O(pairs·d²)` instead of `O(n·d²)` — and
    /// without the k-fold redundant mapping of repeated left rows.
    fn sparse_sims(
        &self,
        s: &mut TapeSession,
        store: &ParamStore,
        left_table: &str,
        right_table: &str,
        a_map: Var,
    ) -> (Var, Var) {
        let l_raw = s.gather_param(store, left_table, &self.left_once);
        let mapped_once = s.graph.matmul(l_raw, a_map);
        let mapped = s.graph.gather_rows(mapped_once, &self.rep);
        let rp = s.gather_param(store, right_table, &self.pos_rrows);
        let rn = s.gather_param(store, right_table, &self.neg_rrows);
        let pos = s.graph.cosine_rows(mapped, rp);
        let neg = s.graph.cosine_rows(mapped, rn);
        (pos, neg)
    }
}

/// Put the dedicated class-embedding matrix `[w_c | b_c]` on the tape.
fn class_matrix_on_tape(
    s: &mut TapeSession,
    store: &ParamStore,
    ec: &EntityClassModel,
    prefix: &str,
) -> Var {
    // The class matrix is a direct function of the stored class parameters;
    // re-materialize it as a leaf per step (cheap: `n_c × 2d_c`), exactly
    // how the snapshot path consumes it. Gradients flow to the mapping
    // matrix; the class tables themselves train through `O_ec`.
    let m = ec.class_matrix(store, prefix);
    s.graph.leaf(m)
}

/// Sum a list of scalar losses on the tape; `None` when empty.
fn sum_losses(s: &mut TapeSession, losses: Vec<Var>) -> Option<Var> {
    let mut iter = losses.into_iter();
    let first = iter.next()?;
    Some(iter.fold(first, |acc, l| s.graph.add(acc, l)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use daakg_embed::EmbedConfig;
    use daakg_graph::kg::{example_dbpedia, example_wikidata};
    use daakg_graph::{ClassId, EntityId, RelationId};

    fn tiny_cfg() -> JointConfig {
        JointConfig {
            embed: EmbedConfig {
                dim: 8,
                class_dim: 4,
                epochs: 3,
                batch_size: 16,
                ..EmbedConfig::default()
            },
            align_epochs: 6,
            fine_tune_epochs: 2,
            ..JointConfig::default()
        }
    }

    fn example_labels(kg1: &KnowledgeGraph, kg2: &KnowledgeGraph) -> LabeledMatches {
        // Gold matches of the paper's Fig. 1 running example.
        let mut labels = LabeledMatches::new();
        for (a, b) in [
            ("Michael Jackson", "Q2831"),
            ("Gary_Indiana", "Gary"),
            ("LosAngeles", "LosAngeles"),
            ("UnitedStates", "USA"),
        ] {
            let (l, r) = (
                kg1.entity_by_name(a).unwrap(),
                kg2.entity_by_name(b).unwrap(),
            );
            labels.push(ElementPair::Entity(l, r));
        }
        for (a, b) in [
            ("spouse", "spouse"),
            ("country", "country"),
            ("birthPlace", "place of birth"),
        ] {
            let (l, r) = (
                kg1.relation_by_name(a).unwrap(),
                kg2.relation_by_name(b).unwrap(),
            );
            labels.push(ElementPair::Relation(l, r));
        }
        for (a, b) in [("Person", "human"), ("City", "city of the United States")] {
            let (l, r) = (kg1.class_by_name(a).unwrap(), kg2.class_by_name(b).unwrap());
            labels.push(ElementPair::Class(l, r));
        }
        labels
    }

    #[test]
    fn labeled_matches_collects_by_kind() {
        let mut m = LabeledMatches::new();
        assert!(m.is_empty());
        m.push(ElementPair::Entity(EntityId::new(0), EntityId::new(1)));
        m.push(ElementPair::Relation(
            RelationId::new(2),
            RelationId::new(3),
        ));
        m.push(ElementPair::Class(ClassId::new(4), ClassId::new(5)));
        assert_eq!(m.len(), 3);
        assert_eq!(m.entities, vec![(0, 1)]);
        assert_eq!(m.relations, vec![(2, 3)]);
        assert_eq!(m.classes, vec![(4, 5)]);
    }

    #[test]
    fn train_raises_labeled_pair_similarity() {
        let kg1 = example_dbpedia();
        let kg2 = example_wikidata();
        let labels = example_labels(&kg1, &kg2);
        assert!(!labels.is_empty());

        let mut model = JointModel::new(tiny_cfg(), &kg1, &kg2).unwrap();
        let before = model.snapshot(&kg1, &kg2);
        let snap = model.train(&kg1, &kg2, &labels);

        let (l, r) = labels.entities[0];
        let sim_before = before.sim_entity(l, r);
        let sim_after = snap.sim_entity(l, r);
        assert!(
            sim_after > sim_before - 1e-3,
            "training degraded the labeled pair: {sim_before} -> {sim_after}"
        );
        // The labeled pair should rank near the top for its query.
        let top = snap.top_k_entities(l, 3);
        assert!(
            top.iter().any(|&(e2, _)| e2 == r),
            "labeled match not in top-3: {top:?}"
        );
    }

    #[test]
    fn fine_tune_runs_and_snapshots() {
        let kg1 = example_dbpedia();
        let kg2 = example_wikidata();
        let labels = example_labels(&kg1, &kg2);
        let mut model = JointModel::new(tiny_cfg(), &kg1, &kg2).unwrap();
        model.train(&kg1, &kg2, &labels);
        let snap = model.fine_tune(&kg1, &kg2, &labels);
        let (n1, n2) = snap.entity_counts();
        assert_eq!(n1, kg1.num_entities());
        assert_eq!(n2, kg2.num_entities());
        // Weights were refreshed from a real snapshot: all in [0, 1].
        for w in snap.weights.left.iter().chain(&snap.weights.right) {
            assert!((0.0..=1.0 + 1e-5).contains(w), "weight out of range: {w}");
        }
    }

    #[test]
    fn semi_supervision_toggle_controls_mining() {
        let kg1 = example_dbpedia();
        let kg2 = example_wikidata();
        let labels = example_labels(&kg1, &kg2);
        let mut cfg = tiny_cfg();
        cfg.use_semi_supervision = false;
        let mut model = JointModel::new(cfg, &kg1, &kg2).unwrap();
        model.train(&kg1, &kg2, &labels);
        assert!(model.last_mined().is_empty());
    }

    #[test]
    fn fine_tune_with_inferred_injects_hard_and_soft_labels() {
        let kg1 = example_dbpedia();
        let kg2 = example_wikidata();
        let labels = example_labels(&kg1, &kg2);
        let mut model = JointModel::new(tiny_cfg(), &kg1, &kg2).unwrap();
        model.train(&kg1, &kg2, &labels);

        // Inject one confident inferred pair (hard label) and one weak one
        // (soft label); the update must run and refresh the snapshot.
        let (l, r) = labels.entities[1];
        let weak = labels.entities[2];
        let inferred = vec![(l, r, 0.9f32), (weak.0, weak.1, 0.2f32)];
        let snap = model.fine_tune_with_inferred(&kg1, &kg2, &labels, &inferred, 0.5);
        assert_eq!(snap.entity_counts().0, kg1.num_entities());
        let sim = snap.sim_entity(l, r);
        assert!((-1.0..=1.0).contains(&sim));
    }

    #[test]
    fn sparse_alignment_rounds_track_the_dense_oracle() {
        let kg1 = example_dbpedia();
        let kg2 = example_wikidata();
        let labels = example_labels(&kg1, &kg2);
        let run = |mode: daakg_embed::TrainMode| {
            let mut cfg = tiny_cfg();
            cfg.embed.mode = mode;
            let mut model = JointModel::new(cfg, &kg1, &kg2).unwrap();
            model.align_rounds(&kg1, &kg2, &labels, 8)
        };
        let dense = run(daakg_embed::TrainMode::Dense);
        let sparse = run(daakg_embed::TrainMode::Sparse);
        assert_eq!(dense.len(), sparse.len());
        // Same sampling, same math, different gather/matmul association:
        // the loss trajectories must track each other closely.
        for (e, (d, s)) in dense.iter().zip(&sparse).enumerate() {
            assert!(
                (d - s).abs() <= 0.05 * d.abs().max(1.0),
                "epoch {e}: dense loss {d} vs sparse loss {s}"
            );
        }
    }

    #[test]
    fn empty_labels_train_without_panicking() {
        let kg1 = example_dbpedia();
        let kg2 = example_wikidata();
        let mut model = JointModel::new(tiny_cfg(), &kg1, &kg2).unwrap();
        let snap = model.train(&kg1, &kg2, &LabeledMatches::new());
        assert_eq!(snap.entity_counts().0, kg1.num_entities());
    }
}

//! Alignment-probability calibration with temperature scaling (Eq. 11–12).
//!
//! Raw cosine similarities are not calibrated probabilities. The paper
//! formulates alignment as a bidirectional classification problem: entity
//! `e` is classified over the candidates `E'` with a temperature-scaled
//! softmax, and the alignment probability of a pair is the *minimum* of the
//! two directional probabilities — the conservative estimate that keeps
//! likely non-matches out of active learning.

/// `Pr[e' | e]` (Eq. 11): softmax of the pair's similarity over the
/// candidate similarities of `e`, with temperature `z`.
///
/// `pair_sim` must be one of the entries in `candidate_sims`
/// (conceptually; numerically it is treated as its own logit).
pub fn directional_probability(pair_sim: f32, candidate_sims: &[f32], z: f32) -> f32 {
    assert!(z > 0.0, "temperature must be positive");
    if candidate_sims.is_empty() {
        return 1.0;
    }
    // Shift by max for numerical stability.
    let max = candidate_sims.iter().copied().fold(pair_sim, f32::max);
    let denom: f32 = candidate_sims.iter().map(|&s| ((s - max) / z).exp()).sum();
    let num = ((pair_sim - max) / z).exp();
    num / denom.max(f32::MIN_POSITIVE)
}

/// `Pr[y*(q) = 1] = min(Pr[e'|e], Pr[e|e'])` (Eq. 12).
pub fn alignment_probability(
    pair_sim: f32,
    left_to_right_sims: &[f32],
    right_to_left_sims: &[f32],
    z: f32,
) -> f32 {
    let fwd = directional_probability(pair_sim, left_to_right_sims, z);
    let bwd = directional_probability(pair_sim, right_to_left_sims, z);
    fwd.min(bwd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_candidate_approaches_one() {
        // pair at 0.95, everything else at 0.1: with Z=0.05 the softmax is
        // nearly one-hot.
        let sims = vec![0.95, 0.1, 0.1, 0.05];
        let p = directional_probability(0.95, &sims, 0.05);
        assert!(p > 0.99, "p = {p}");
    }

    #[test]
    fn ambiguous_candidates_split_mass() {
        let sims = vec![0.9, 0.9];
        let p = directional_probability(0.9, &sims, 0.05);
        assert!((p - 0.5).abs() < 1e-5);
    }

    #[test]
    fn lower_temperature_is_more_discriminatory() {
        let sims = vec![0.9, 0.7];
        let sharp = directional_probability(0.9, &sims, 0.05);
        let soft = directional_probability(0.9, &sims, 1.0);
        assert!(sharp > soft);
        assert!(soft > 0.5); // still favours the best candidate
    }

    #[test]
    fn bidirectional_takes_the_minimum() {
        // Forward is confident; backward is ambiguous.
        let fwd = vec![0.9, 0.1];
        let bwd = vec![0.9, 0.9];
        let p = alignment_probability(0.9, &fwd, &bwd, 0.05);
        let p_bwd = directional_probability(0.9, &bwd, 0.05);
        assert!((p - p_bwd).abs() < 1e-6);
    }

    #[test]
    fn empty_candidates_yield_certainty() {
        assert_eq!(directional_probability(0.5, &[], 0.1), 1.0);
    }

    #[test]
    fn probabilities_are_valid() {
        let sims: Vec<f32> = (0..50).map(|i| (i as f32) / 50.0).collect();
        for &s in &sims {
            let p = directional_probability(s, &sims, 0.1);
            assert!((0.0..=1.0).contains(&p));
        }
        // Probabilities over the full candidate set sum to one.
        let total: f32 = sims
            .iter()
            .map(|&s| directional_probability(s, &sims, 0.1))
            .sum();
        assert!((total - 1.0).abs() < 1e-4);
    }
}

//! Dangling-entity weights (Eq. 6): `w_e = max_{e'∈E'} S(e, e')`.
//!
//! Dangling entities — those with no counterpart in the other KG — receive
//! low weights because nothing on the other side is similar to them; the
//! weights then soft-remove their triples from the mean-embedding
//! computations (Eq. 7, 9).

use daakg_autograd::tensor::cosine;
use daakg_autograd::Tensor;

/// Entity weights for both directions.
#[derive(Debug, Clone, Default)]
pub struct EntityWeights {
    /// `w_e` for each entity of the left KG.
    pub left: Vec<f32>,
    /// `w_{e'}` for each entity of the right KG.
    pub right: Vec<f32>,
}

impl EntityWeights {
    /// Uniform weights of 1.0 (used before the first alignment round).
    pub fn uniform(n_left: usize, n_right: usize) -> Self {
        Self {
            left: vec![1.0; n_left],
            right: vec![1.0; n_right],
        }
    }

    /// Compute `w_e = max_{e'} cos(A_ent·e, e')` and symmetrically
    /// `w_{e'} = max_e cos(A_ent·e, e')` from the mapped left entity matrix
    /// and the right entity matrix.
    ///
    /// Negative similarities are clamped to zero so weights stay valid
    /// convex-combination coefficients.
    pub fn compute(mapped_left: &Tensor, right: &Tensor) -> Self {
        let n1 = mapped_left.rows();
        let n2 = right.rows();
        let mut left = vec![0.0f32; n1];
        let mut right_w = vec![0.0f32; n2];
        for i in 0..n1 {
            let a = mapped_left.row(i);
            for j in 0..n2 {
                let s = cosine(a, right.row(j));
                if s > left[i] {
                    left[i] = s;
                }
                if s > right_w[j] {
                    right_w[j] = s;
                }
            }
        }
        Self {
            left,
            right: right_w,
        }
    }

    /// Like [`EntityWeights::compute`], but only over the candidate pairs of
    /// a blocked pool: `candidates` lists `(left, right)` index pairs. Pairs
    /// outside the pool cannot contribute, mirroring how the pipeline
    /// restricts all O(n²) work to the pool (Sect. 6.1).
    pub fn compute_over_pairs(
        n_left: usize,
        n_right: usize,
        mapped_left: &Tensor,
        right: &Tensor,
        candidates: impl IntoIterator<Item = (u32, u32)>,
    ) -> Self {
        let mut w = Self {
            left: vec![0.0; n_left],
            right: vec![0.0; n_right],
        };
        for (i, j) in candidates {
            let s = cosine(mapped_left.row(i as usize), right.row(j as usize)).max(0.0);
            if s > w.left[i as usize] {
                w.left[i as usize] = s;
            }
            if s > w.right[j as usize] {
                w.right[j as usize] = s;
            }
        }
        w
    }

    /// The pairwise triple weight `min(w_e, w_{e'})` used in Eq. (7) — here
    /// for two entities of the *same* KG side (`left`).
    pub fn triple_weight_left(&self, head: u32, tail: u32) -> f32 {
        self.left[head as usize].min(self.left[tail as usize])
    }

    /// As [`Self::triple_weight_left`] for the right KG.
    pub fn triple_weight_right(&self, head: u32, tail: u32) -> f32 {
        self.right[head as usize].min(self.right[tail as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_entities_get_high_weight() {
        // Left entity 0 is identical to right entity 1; left entity 1 is
        // orthogonal to everything on the right (dangling).
        let mapped_left = Tensor::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]);
        let right = Tensor::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0]]);
        let w = EntityWeights::compute(&mapped_left, &right);
        assert!((w.left[0] - 1.0).abs() < 1e-6);
        assert!(w.left[1].abs() < 1e-6);
        assert!((w.right[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_weights() {
        let w = EntityWeights::uniform(3, 2);
        assert_eq!(w.left, vec![1.0; 3]);
        assert_eq!(w.right, vec![1.0; 2]);
        assert_eq!(w.triple_weight_left(0, 2), 1.0);
    }

    #[test]
    fn triple_weight_is_min() {
        let w = EntityWeights {
            left: vec![0.9, 0.2],
            right: vec![0.5, 0.7],
        };
        assert!((w.triple_weight_left(0, 1) - 0.2).abs() < 1e-6);
        assert!((w.triple_weight_right(0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn pool_restricted_weights_ignore_outside_pairs() {
        let mapped_left = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let right = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        // Pool contains only the cross pair (0, 1): similarity 0.
        let w = EntityWeights::compute_over_pairs(2, 2, &mapped_left, &right, [(0u32, 1u32)]);
        assert_eq!(w.left[0], 0.0);
        assert_eq!(w.left[1], 0.0); // not in pool at all
        let w2 = EntityWeights::compute_over_pairs(2, 2, &mapped_left, &right, [(0, 0), (1, 1)]);
        assert!((w2.left[0] - 1.0).abs() < 1e-6);
        assert!((w2.right[1] - 1.0).abs() < 1e-6);
    }
}

//! Dangling-entity weights (Eq. 6): `w_e = max_{e'∈E'} S(e, e')`.
//!
//! Dangling entities — those with no counterpart in the other KG — receive
//! low weights because nothing on the other side is similar to them; the
//! weights then soft-remove their triples from the mean-embedding
//! computations (Eq. 7, 9).

use daakg_autograd::tensor::cosine;
use daakg_autograd::Tensor;

/// Entity weights for both directions.
#[derive(Debug, Clone, Default)]
pub struct EntityWeights {
    /// `w_e` for each entity of the left KG.
    pub left: Vec<f32>,
    /// `w_{e'}` for each entity of the right KG.
    pub right: Vec<f32>,
}

impl EntityWeights {
    /// Uniform weights of 1.0 (used before the first alignment round).
    pub fn uniform(n_left: usize, n_right: usize) -> Self {
        Self {
            left: vec![1.0; n_left],
            right: vec![1.0; n_right],
        }
    }

    /// Compute `w_e = max_{e'} cos(A_ent·e, e')` and symmetrically
    /// `w_{e'} = max_e cos(A_ent·e, e')` from the mapped left entity matrix
    /// and the right entity matrix.
    ///
    /// Negative similarities are clamped to zero so weights stay valid
    /// convex-combination coefficients.
    pub fn compute(mapped_left: &Tensor, right: &Tensor) -> Self {
        let n1 = mapped_left.rows();
        let n2 = right.rows();
        let mut left = vec![0.0f32; n1];
        let mut right_w = vec![0.0f32; n2];
        for (i, lw) in left.iter_mut().enumerate() {
            let a = mapped_left.row(i);
            for (j, rw) in right_w.iter_mut().enumerate() {
                let s = cosine(a, right.row(j));
                if s > *lw {
                    *lw = s;
                }
                if s > *rw {
                    *rw = s;
                }
            }
        }
        Self {
            left,
            right: right_w,
        }
    }

    /// [`EntityWeights::compute`] served by a pre-normalized
    /// [`BatchedSimilarity`](crate::batched::BatchedSimilarity) engine:
    /// row maxima of the similarity matrix give `w_e`, column maxima give
    /// `w_{e'}`, computed block-by-block so no `n₁ × n₂` matrix is ever
    /// materialized. This is the production path of Eq. 6 — `compute`
    /// remains the naive reference.
    pub fn from_engine(engine: &crate::batched::BatchedSimilarity) -> Self {
        let n1 = engine.num_queries();
        let n2 = engine.num_candidates();
        let mut left = vec![0.0f32; n1];
        let mut right = vec![0.0f32; n2];
        let queries: Vec<u32> = (0..n1 as u32).collect();
        for chunk in queries.chunks(64) {
            let block = engine.score_block(chunk);
            for (bi, &q) in chunk.iter().enumerate() {
                for (j, &s) in block.row(bi).iter().enumerate() {
                    // Negative similarities clamp to zero, as in `compute`.
                    let s = s.max(0.0);
                    if s > left[q as usize] {
                        left[q as usize] = s;
                    }
                    if s > right[j] {
                        right[j] = s;
                    }
                }
            }
        }
        Self { left, right }
    }

    /// Like [`EntityWeights::compute`], but only over the candidate pairs of
    /// a blocked pool: `candidates` lists `(left, right)` index pairs. Pairs
    /// outside the pool cannot contribute, mirroring how the pipeline
    /// restricts all O(n²) work to the pool (Sect. 6.1).
    pub fn compute_over_pairs(
        n_left: usize,
        n_right: usize,
        mapped_left: &Tensor,
        right: &Tensor,
        candidates: impl IntoIterator<Item = (u32, u32)>,
    ) -> Self {
        let mut w = Self {
            left: vec![0.0; n_left],
            right: vec![0.0; n_right],
        };
        for (i, j) in candidates {
            let s = cosine(mapped_left.row(i as usize), right.row(j as usize)).max(0.0);
            if s > w.left[i as usize] {
                w.left[i as usize] = s;
            }
            if s > w.right[j as usize] {
                w.right[j as usize] = s;
            }
        }
        w
    }

    /// The pairwise triple weight `min(w_e, w_{e'})` used in Eq. (7) — here
    /// for two entities of the *same* KG side (`left`).
    pub fn triple_weight_left(&self, head: u32, tail: u32) -> f32 {
        self.left[head as usize].min(self.left[tail as usize])
    }

    /// As [`Self::triple_weight_left`] for the right KG.
    pub fn triple_weight_right(&self, head: u32, tail: u32) -> f32 {
        self.right[head as usize].min(self.right[tail as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_engine_matches_naive_compute() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let mk = |rows: usize, rng: &mut StdRng| {
            let data = (0..rows * 6).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            Tensor::from_vec(rows, 6, data)
        };
        // More rows than one 64-query block so the chunking is exercised.
        let mapped_left = mk(130, &mut rng);
        let right = mk(70, &mut rng);
        let naive = EntityWeights::compute(&mapped_left, &right);
        let engine = crate::batched::BatchedSimilarity::new(&mapped_left, &right);
        let fast = EntityWeights::from_engine(&engine);
        assert_eq!(naive.left.len(), fast.left.len());
        assert_eq!(naive.right.len(), fast.right.len());
        for (a, b) in naive
            .left
            .iter()
            .zip(&fast.left)
            .chain(naive.right.iter().zip(&fast.right))
        {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn matched_entities_get_high_weight() {
        // Left entity 0 is identical to right entity 1; left entity 1 is
        // orthogonal to everything on the right (dangling).
        let mapped_left = Tensor::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]);
        let right = Tensor::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0]]);
        let w = EntityWeights::compute(&mapped_left, &right);
        assert!((w.left[0] - 1.0).abs() < 1e-6);
        assert!(w.left[1].abs() < 1e-6);
        assert!((w.right[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_weights() {
        let w = EntityWeights::uniform(3, 2);
        assert_eq!(w.left, vec![1.0; 3]);
        assert_eq!(w.right, vec![1.0; 2]);
        assert_eq!(w.triple_weight_left(0, 2), 1.0);
    }

    #[test]
    fn triple_weight_is_min() {
        let w = EntityWeights {
            left: vec![0.9, 0.2],
            right: vec![0.5, 0.7],
        };
        assert!((w.triple_weight_left(0, 1) - 0.2).abs() < 1e-6);
        assert!((w.triple_weight_right(0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn pool_restricted_weights_ignore_outside_pairs() {
        let mapped_left = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let right = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        // Pool contains only the cross pair (0, 1): similarity 0.
        let w = EntityWeights::compute_over_pairs(2, 2, &mapped_left, &right, [(0u32, 1u32)]);
        assert_eq!(w.left[0], 0.0);
        assert_eq!(w.left[1], 0.0); // not in pool at all
        let w2 = EntityWeights::compute_over_pairs(2, 2, &mapped_left, &right, [(0, 0), (1, 1)]);
        assert!((w2.left[0] - 1.0).abs() < 1e-6);
        assert!((w2.right[1] - 1.0).abs() < 1e-6);
    }
}

//! # daakg-infer
//!
//! Alignment inference for the DAAKG reproduction: derive new entity
//! matches from labeled ones by propagating through shared relation
//! structure, and score unlabeled candidate pairs by the *inference power*
//! their label would unlock.
//!
//! The engine implements the functionality-weighted one-hop closure of the
//! paper's reasoning rules, iterated to a fixpoint under a configurable
//! depth cap:
//!
//! * [`Functionality`] — per-relation `funct` / `funct⁻¹` statistics,
//! * [`RelationMatches`] — the relation alignment the rules fire through,
//! * [`InferenceEngine`] — the propagation engine
//!   ([`propagate`](InferenceEngine::propagate)) and the question scorer
//!   ([`inference_power`](InferenceEngine::inference_power)),
//! * [`KnownMatches`] — 1:1 bookkeeping of already-resolved pairs,
//! * [`EntitySim`] — the similarity oracle the closure consults; alignment
//!   snapshots and the batched similarity engine of `daakg-align` both
//!   implement it, so inference reuses the pre-normalized matrices paid
//!   for at snapshot construction.
//!
//! The optimized closure keeps an improvement frontier; the retained
//! [`closure_reference`](InferenceEngine::closure_reference) is the dense
//! naive oracle the bench harness verifies it against.

pub mod functionality;
pub mod propagate;

pub use functionality::Functionality;
pub use propagate::{InferenceEngine, InferredMatch};

use daakg_align::{AlignmentSnapshot, BatchedSimilarity, LabeledMatches};
use daakg_graph::{DaakgError, FxHashMap, FxHashSet};

/// Configuration of the inference closure.
#[derive(Debug, Clone, Copy)]
pub struct InferConfig {
    /// Maximum number of inference steps from a seed (depth cap of the
    /// fixpoint iteration).
    pub max_depth: u32,
    /// Derived pairs below this confidence are pruned (and not expanded).
    pub min_confidence: f32,
    /// Child pairs whose model similarity is below this gate are never
    /// derived. `-1.0` disables gating (cosines live in `[-1, 1]`).
    pub sim_gate: f32,
    /// Relation groups wider than this on either side are skipped — hub
    /// entities would otherwise produce quadratically many low-value
    /// candidates.
    pub max_fanout: usize,
}

impl Default for InferConfig {
    fn default() -> Self {
        Self {
            max_depth: 3,
            min_confidence: 0.05,
            sim_gate: 0.0,
            max_fanout: 32,
        }
    }
}

impl InferConfig {
    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), DaakgError> {
        let invalid = |reason: &str| DaakgError::invalid("InferConfig", reason);
        if self.max_depth == 0 {
            return Err(invalid("max_depth must be at least 1"));
        }
        if !self.min_confidence.is_finite() || self.min_confidence < 0.0 {
            return Err(invalid("min_confidence must be finite and non-negative"));
        }
        if !self.sim_gate.is_finite() {
            return Err(invalid("sim_gate must be finite"));
        }
        if self.max_fanout == 0 {
            return Err(invalid("max_fanout must be at least 1"));
        }
        Ok(())
    }
}

/// Entity-similarity oracle consulted by the inference closure.
pub trait EntitySim {
    /// Similarity of `(left, right)` in `[-1, 1]`.
    fn entity_sim(&self, left: u32, right: u32) -> f32;
}

impl EntitySim for AlignmentSnapshot {
    fn entity_sim(&self, left: u32, right: u32) -> f32 {
        self.sim_entity(left, right)
    }
}

impl EntitySim for BatchedSimilarity {
    fn entity_sim(&self, left: u32, right: u32) -> f32 {
        self.score(left, right)
    }
}

/// A constant similarity — handy for tests and structure-only propagation.
#[derive(Debug, Clone, Copy)]
pub struct UniformSim(pub f32);

impl EntitySim for UniformSim {
    fn entity_sim(&self, _left: u32, _right: u32) -> f32 {
        self.0
    }
}

/// The relation alignment used by the inference rules: a left-to-right map
/// over raw relation indices.
#[derive(Debug, Clone, Default)]
pub struct RelationMatches {
    l2r: FxHashMap<u32, u32>,
}

impl RelationMatches {
    /// No matched relations (inference derives nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(left, right)` raw relation index pairs. Later pairs
    /// overwrite earlier ones on the same left relation.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, u32)>) -> Self {
        Self {
            l2r: pairs.into_iter().collect(),
        }
    }

    /// The relation matches recorded in a set of labeled matches.
    pub fn from_labels(labels: &LabeledMatches) -> Self {
        Self::from_pairs(labels.relations.iter().copied())
    }

    /// Mine relation matches from a snapshot: each left relation maps to
    /// its top-1 right relation when the similarity clears `threshold`.
    pub fn from_snapshot(snap: &AlignmentSnapshot, num_left: usize, threshold: f32) -> Self {
        let mut out = Self::new();
        for r1 in 0..num_left as u32 {
            if let Some(&(r2, s)) = snap.rank_relations(r1).first() {
                if s >= threshold {
                    out.insert(r1, r2);
                }
            }
        }
        out
    }

    /// Record a relation match.
    pub fn insert(&mut self, left: u32, right: u32) {
        self.l2r.insert(left, right);
    }

    /// Right counterpart of a left relation, if matched.
    #[inline]
    pub fn forward(&self, left: u32) -> Option<u32> {
        self.l2r.get(&left).copied()
    }

    /// Number of matched relations.
    pub fn len(&self) -> usize {
        self.l2r.len()
    }

    /// True when no relations are matched.
    pub fn is_empty(&self) -> bool {
        self.l2r.is_empty()
    }
}

/// Already-resolved entity matches under the 1:1 restriction: a pair set
/// plus per-side claims, so both "is this pair known" and "is either
/// endpoint taken" are O(1).
#[derive(Debug, Clone, Default)]
pub struct KnownMatches {
    pairs: FxHashSet<(u32, u32)>,
    left: FxHashMap<u32, u32>,
    right: FxHashMap<u32, u32>,
}

impl KnownMatches {
    /// Nothing known.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(left, right)` pairs; conflicting later pairs are
    /// dropped (first claim wins).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut out = Self::new();
        for (l, r) in pairs {
            out.insert(l, r);
        }
        out
    }

    /// Record a match. Returns `false` (and records nothing) when either
    /// endpoint is already claimed by a different match.
    pub fn insert(&mut self, left: u32, right: u32) -> bool {
        if self.pairs.contains(&(left, right)) {
            return true;
        }
        if self.left.contains_key(&left) || self.right.contains_key(&right) {
            return false;
        }
        self.pairs.insert((left, right));
        self.left.insert(left, right);
        self.right.insert(right, left);
        true
    }

    /// True when the exact pair is known.
    #[inline]
    pub fn contains(&self, pair: (u32, u32)) -> bool {
        self.pairs.contains(&pair)
    }

    /// True when deriving `pair` is pointless: it is already known, or one
    /// of its endpoints is claimed by a different known match (1:1).
    #[inline]
    pub fn blocks(&self, pair: (u32, u32)) -> bool {
        self.pairs.contains(&pair)
            || self.left.contains_key(&pair.0)
            || self.right.contains_key(&pair.1)
    }

    /// The known counterpart of a left entity.
    #[inline]
    pub fn left_match(&self, left: u32) -> Option<u32> {
        self.left.get(&left).copied()
    }

    /// The known counterpart of a right entity.
    #[inline]
    pub fn right_match(&self, right: u32) -> Option<u32> {
        self.right.get(&right).copied()
    }

    /// Number of known matches.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when nothing is known.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(InferConfig::default().validate().is_ok());
        assert!(InferConfig {
            max_depth: 0,
            ..InferConfig::default()
        }
        .validate()
        .is_err());
        assert!(InferConfig {
            min_confidence: -0.1,
            ..InferConfig::default()
        }
        .validate()
        .is_err());
        assert!(InferConfig {
            sim_gate: f32::NAN,
            ..InferConfig::default()
        }
        .validate()
        .is_err());
        assert!(InferConfig {
            max_fanout: 0,
            ..InferConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn relation_matches_forward_lookup() {
        let rels = RelationMatches::from_pairs([(0, 5), (2, 1)]);
        assert_eq!(rels.forward(0), Some(5));
        assert_eq!(rels.forward(2), Some(1));
        assert_eq!(rels.forward(1), None);
        assert_eq!(rels.len(), 2);
        assert!(!rels.is_empty());
    }

    #[test]
    fn known_matches_enforce_one_to_one() {
        let mut k = KnownMatches::new();
        assert!(k.insert(0, 0));
        assert!(k.insert(0, 0), "re-inserting the same pair is fine");
        assert!(!k.insert(0, 1), "left endpoint already claimed");
        assert!(!k.insert(2, 0), "right endpoint already claimed");
        assert!(k.insert(1, 1));
        assert_eq!(k.len(), 2);
        assert!(k.contains((0, 0)));
        assert!(k.blocks((0, 3)), "claimed left blocks new pairs");
        assert!(k.blocks((3, 1)), "claimed right blocks new pairs");
        assert!(!k.blocks((3, 3)));
        assert_eq!(k.left_match(0), Some(0));
        assert_eq!(k.right_match(1), Some(1));
        assert_eq!(k.left_match(9), None);
    }

    #[test]
    fn uniform_sim_is_constant() {
        let s = UniformSim(0.25);
        assert_eq!(s.entity_sim(0, 0), 0.25);
        assert_eq!(s.entity_sim(7, 3), 0.25);
    }
}

//! Relation functionality statistics.
//!
//! The functionality of a relation measures how close it is to a function
//! of its head: `funct(r) = |distinct heads of r| / |triples of r|`. When
//! `funct(r) = 1` every head occurs once, so knowing a head (almost)
//! determines the tail — exactly the situation in which a matched head
//! pair lets the tails be inferred. The inverse functionality
//! `funct⁻¹(r) = |distinct tails| / |triples|` plays the symmetric role
//! for head inference from matched tails.

use daakg_graph::{FxHashSet, KnowledgeGraph, RelationId};

/// Per-relation functionality and inverse functionality of one KG.
#[derive(Debug, Clone)]
pub struct Functionality {
    funct: Vec<f32>,
    inv_funct: Vec<f32>,
}

impl Functionality {
    /// Compute both statistics for every relation of `kg`.
    ///
    /// Relations with no triples get functionality 1.0 (vacuously
    /// functional), keeping the propagation weights well-defined.
    pub fn of(kg: &KnowledgeGraph) -> Self {
        let mut funct = Vec::with_capacity(kg.num_relations());
        let mut inv_funct = Vec::with_capacity(kg.num_relations());
        for r in kg.relations() {
            let mut heads: FxHashSet<u32> = FxHashSet::default();
            let mut tails: FxHashSet<u32> = FxHashSet::default();
            let mut n = 0usize;
            for t in kg.triples_with_relation(r) {
                heads.insert(t.head.raw());
                tails.insert(t.tail.raw());
                n += 1;
            }
            if n == 0 {
                funct.push(1.0);
                inv_funct.push(1.0);
            } else {
                funct.push(heads.len() as f32 / n as f32);
                inv_funct.push(tails.len() as f32 / n as f32);
            }
        }
        Self { funct, inv_funct }
    }

    /// `funct(r)`: distinct heads over triples, in `(0, 1]`.
    #[inline]
    pub fn funct(&self, r: RelationId) -> f32 {
        self.funct[r.index()]
    }

    /// `funct⁻¹(r)`: distinct tails over triples, in `(0, 1]`.
    #[inline]
    pub fn inv_funct(&self, r: RelationId) -> f32 {
        self.inv_funct[r.index()]
    }

    /// Number of relations covered.
    pub fn len(&self) -> usize {
        self.funct.len()
    }

    /// True when the KG has no relations.
    pub fn is_empty(&self) -> bool {
        self.funct.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daakg_graph::kg::example_dbpedia;
    use daakg_graph::KgBuilder;

    #[test]
    fn functional_relation_scores_one() {
        // birthPlace in the example: one triple, one head, one tail.
        let kg = example_dbpedia();
        let f = Functionality::of(&kg);
        let bp = kg.relation_by_name("birthPlace").unwrap();
        assert_eq!(f.funct(bp), 1.0);
        assert_eq!(f.inv_funct(bp), 1.0);
        assert_eq!(f.len(), kg.num_relations());
    }

    #[test]
    fn multi_valued_relation_scores_below_one() {
        // spouse: two triples sharing the head Michael Jackson.
        let kg = example_dbpedia();
        let f = Functionality::of(&kg);
        let spouse = kg.relation_by_name("spouse").unwrap();
        assert_eq!(f.funct(spouse), 0.5);
        assert_eq!(f.inv_funct(spouse), 1.0);
        // country: two heads, one shared tail.
        let country = kg.relation_by_name("country").unwrap();
        assert_eq!(f.funct(country), 1.0);
        assert_eq!(f.inv_funct(country), 0.5);
    }

    #[test]
    fn empty_relation_defaults_to_one() {
        let mut b = KgBuilder::new("t");
        b.relation("unused");
        b.entity("a");
        let kg = b.build();
        let f = Functionality::of(&kg);
        let r = kg.relation_by_name("unused").unwrap();
        assert_eq!(f.funct(r), 1.0);
        assert_eq!(f.inv_funct(r), 1.0);
    }
}

//! Functionality-weighted match propagation and inference power.
//!
//! Given a set of labeled entity matches (the *seeds*) and a relation
//! alignment, one inference step derives new candidate matches through
//! shared relation structure: if `(e, e')` match, `(e, r, t) ∈ G`,
//! `(e', r', t') ∈ G'` and `(r, r')` are aligned, then `(t, t')` is a
//! candidate match whose confidence is the parent confidence discounted by
//! how *functional* `r` and `r'` are and how similar `t` and `t'` already
//! look to the model. The step is iterated to a fixpoint under a depth cap
//! — the one-hop closure of the paper's reasoning rules.
//!
//! The same machinery scores unlabeled questions: the **inference power**
//! of a candidate pair is the total confidence of the *new* matches its
//! closure would unlock, which is what the active-learning selector
//! maximizes per question asked.

use crate::functionality::Functionality;
use crate::{EntitySim, InferConfig, KnownMatches, RelationMatches};
use daakg_graph::{EntityId, FxHashMap, FxHashSet, KnowledgeGraph, RelationId};

/// One inferred match with its derivation confidence and depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferredMatch {
    /// Left entity (raw index into `G`).
    pub left: u32,
    /// Right entity (raw index into `G'`).
    pub right: u32,
    /// Max-product derivation confidence in `(0, 1]`.
    pub confidence: f32,
    /// Number of inference steps of the best derivation.
    pub depth: u32,
}

/// The alignment inference engine over one KG pair.
///
/// Construction precomputes both relation functionality tables; every
/// closure query after that is a bounded breadth-first relaxation over the
/// adjacency lists of the two graphs.
pub struct InferenceEngine<'a> {
    kg1: &'a KnowledgeGraph,
    kg2: &'a KnowledgeGraph,
    funct1: Functionality,
    funct2: Functionality,
    cfg: InferConfig,
}

impl<'a> InferenceEngine<'a> {
    /// Build the engine for a KG pair; rejects invalid configurations with
    /// a typed [`DaakgError`](daakg_graph::DaakgError) instead of panicking.
    pub fn new(
        kg1: &'a KnowledgeGraph,
        kg2: &'a KnowledgeGraph,
        cfg: InferConfig,
    ) -> Result<Self, daakg_graph::DaakgError> {
        cfg.validate()?;
        Ok(Self {
            kg1,
            kg2,
            funct1: Functionality::of(kg1),
            funct2: Functionality::of(kg2),
            cfg,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &InferConfig {
        &self.cfg
    }

    /// Functionality tables of the left / right KG.
    pub fn functionality(&self) -> (&Functionality, &Functionality) {
        (&self.funct1, &self.funct2)
    }

    /// Propagate the labeled `seeds` through relation structure to a
    /// fixpoint and return every *inferred* match (the seeds themselves are
    /// excluded), sorted by descending confidence.
    pub fn propagate(
        &self,
        seeds: &[(u32, u32)],
        rels: &RelationMatches,
        sim: &dyn EntitySim,
    ) -> Vec<InferredMatch> {
        self.closure(seeds, &KnownMatches::new(), rels, sim)
    }

    /// Inference power of labeling `pair` as a match: the total confidence
    /// of the new matches its closure would unlock, skipping everything in
    /// `known` (already labeled or already inferred, so not *new*).
    pub fn inference_power(
        &self,
        pair: (u32, u32),
        known: &KnownMatches,
        rels: &RelationMatches,
        sim: &dyn EntitySim,
    ) -> f32 {
        self.closure(&[pair], known, rels, sim)
            .iter()
            .map(|m| m.confidence)
            .sum()
    }

    /// The depth-capped closure of `seeds`, skipping pairs blocked by
    /// `known` (already present, or claiming an entity `known` has matched
    /// under the 1:1 restriction).
    ///
    /// Confidence semantics: `conf(q) = max` over derivation paths of
    /// length ≤ `max_depth` of the product of per-step weights, where one
    /// step from `(e, e')` to `(t, t')` via the matched relations `(r, r')`
    /// weighs `funct(r) · funct(r') · (1 + S(t, t')) / 2` (forward; the
    /// backward step uses the inverse functionalities). Pairs below
    /// `min_confidence` are pruned, pairs whose similarity is below
    /// `sim_gate` are never derived, and relation groups wider than
    /// `max_fanout` on either side are skipped (hub protection).
    pub fn closure(
        &self,
        seeds: &[(u32, u32)],
        known: &KnownMatches,
        rels: &RelationMatches,
        sim: &dyn EntitySim,
    ) -> Vec<InferredMatch> {
        let seed_set: FxHashSet<(u32, u32)> = seeds.iter().copied().collect();
        // Best (confidence, depth) per derived pair.
        let mut best: FxHashMap<(u32, u32), (f32, u32)> = FxHashMap::default();
        // Pairs whose confidence improved last level, to expand next.
        let mut frontier: Vec<((u32, u32), f32)> = seeds.iter().map(|&p| (p, 1.0f32)).collect();

        for depth in 1..=self.cfg.max_depth {
            let mut improved: FxHashMap<(u32, u32), f32> = FxHashMap::default();
            for &(pair, conf) in &frontier {
                self.expand(pair, conf, rels, sim, &mut |child, c| {
                    if c < self.cfg.min_confidence
                        || seed_set.contains(&child)
                        || known.blocks(child)
                    {
                        return;
                    }
                    let cur = best.get(&child).map_or(f32::NEG_INFINITY, |&(b, _)| b);
                    if c > cur {
                        best.insert(child, (c, depth));
                        let e = improved.entry(child).or_insert(f32::NEG_INFINITY);
                        if c > *e {
                            *e = c;
                        }
                    }
                });
            }
            if improved.is_empty() {
                break;
            }
            frontier = improved.into_iter().collect();
            // Deterministic expansion order (hash maps iterate arbitrarily).
            frontier.sort_unstable_by_key(|&(pair, _)| pair);
        }

        let mut out: Vec<InferredMatch> = best
            .into_iter()
            .map(|((l, r), (confidence, depth))| InferredMatch {
                left: l,
                right: r,
                confidence,
                depth,
            })
            .collect();
        out.sort_unstable_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then((a.left, a.right).cmp(&(b.left, b.right)))
        });
        out
    }

    /// Reference implementation of [`InferenceEngine::closure`]: a
    /// level-synchronous dense relaxation that re-expands *every* derived
    /// pair at every level instead of tracking an improvement frontier.
    /// Retained as the correctness oracle for the optimized path — the
    /// bench `active_round` scenario verifies both agree exactly.
    pub fn closure_reference(
        &self,
        seeds: &[(u32, u32)],
        known: &KnownMatches,
        rels: &RelationMatches,
        sim: &dyn EntitySim,
    ) -> Vec<InferredMatch> {
        let seed_set: FxHashSet<(u32, u32)> = seeds.iter().copied().collect();
        let mut best: FxHashMap<(u32, u32), (f32, u32)> = FxHashMap::default();
        for depth in 1..=self.cfg.max_depth {
            // Expand seeds plus every pair derived so far, from scratch.
            let mut sources: Vec<((u32, u32), f32)> = seeds.iter().map(|&p| (p, 1.0f32)).collect();
            sources.extend(best.iter().map(|(&p, &(c, _))| (p, c)));
            let mut changed = false;
            let mut updates: Vec<((u32, u32), f32)> = Vec::new();
            for &(pair, conf) in &sources {
                self.expand(pair, conf, rels, sim, &mut |child, c| {
                    if c < self.cfg.min_confidence
                        || seed_set.contains(&child)
                        || known.blocks(child)
                    {
                        return;
                    }
                    updates.push((child, c));
                });
            }
            for (child, c) in updates {
                let cur = best.get(&child).map_or(f32::NEG_INFINITY, |&(b, _)| b);
                if c > cur {
                    best.insert(child, (c, depth));
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut out: Vec<InferredMatch> = best
            .into_iter()
            .map(|((l, r), (confidence, depth))| InferredMatch {
                left: l,
                right: r,
                confidence,
                depth,
            })
            .collect();
        out.sort_unstable_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then((a.left, a.right).cmp(&(b.left, b.right)))
        });
        out
    }

    /// One inference step from a matched pair: derive candidate child pairs
    /// through every aligned relation group, forward (out-edges, tails
    /// inferred, weighted by `funct`) and backward (in-edges, heads
    /// inferred, weighted by `funct⁻¹`).
    fn expand(
        &self,
        (e1, e2): (u32, u32),
        conf: f32,
        rels: &RelationMatches,
        sim: &dyn EntitySim,
        emit: &mut dyn FnMut((u32, u32), f32),
    ) {
        if e1 as usize >= self.kg1.num_entities() || e2 as usize >= self.kg2.num_entities() {
            return;
        }
        let out1 = self.kg1.out_edges(EntityId::new(e1));
        let out2 = self.kg2.out_edges(EntityId::new(e2));
        self.expand_side(out1, out2, conf, rels, sim, true, emit);
        let in1 = self.kg1.in_edges(EntityId::new(e1));
        let in2 = self.kg2.in_edges(EntityId::new(e2));
        self.expand_side(in1, in2, conf, rels, sim, false, emit);
    }

    #[allow(clippy::too_many_arguments)]
    fn expand_side(
        &self,
        edges1: &[(RelationId, EntityId)],
        edges2: &[(RelationId, EntityId)],
        conf: f32,
        rels: &RelationMatches,
        sim: &dyn EntitySim,
        forward: bool,
        emit: &mut dyn FnMut((u32, u32), f32),
    ) {
        for group1 in relation_runs(edges1) {
            let r1 = group1[0].0;
            let Some(r2_raw) = rels.forward(r1.raw()) else {
                continue;
            };
            let r2 = RelationId::new(r2_raw);
            let group2 = relation_run(edges2, r2);
            if group2.is_empty()
                || group1.len() > self.cfg.max_fanout
                || group2.len() > self.cfg.max_fanout
            {
                continue;
            }
            let w = if forward {
                self.funct1.funct(r1) * self.funct2.funct(r2)
            } else {
                self.funct1.inv_funct(r1) * self.funct2.inv_funct(r2)
            };
            if w <= 0.0 {
                continue;
            }
            for &(_, t1) in group1 {
                for &(_, t2) in group2 {
                    let s = sim.entity_sim(t1.raw(), t2.raw());
                    // NaN similarities are gated out too.
                    if s < self.cfg.sim_gate || s.is_nan() {
                        continue;
                    }
                    let gate = ((1.0 + s) * 0.5).clamp(0.0, 1.0);
                    emit((t1.raw(), t2.raw()), conf * w * gate);
                }
            }
        }
    }
}

/// Split a sorted `(relation, entity)` edge list into its per-relation runs.
fn relation_runs(
    edges: &[(RelationId, EntityId)],
) -> impl Iterator<Item = &[(RelationId, EntityId)]> {
    let mut rest = edges;
    std::iter::from_fn(move || {
        let first = rest.first()?.0;
        let len = rest.partition_point(|&(r, _)| r == first);
        let (run, tail) = rest.split_at(len);
        rest = tail;
        Some(run)
    })
}

/// The contiguous run of edges with relation `r` in a sorted edge list.
fn relation_run(edges: &[(RelationId, EntityId)], r: RelationId) -> &[(RelationId, EntityId)] {
    let lo = edges.partition_point(|&(er, _)| er < r);
    let hi = edges.partition_point(|&(er, _)| er <= r);
    &edges[lo..hi]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformSim;
    use daakg_graph::KgBuilder;

    /// Two mirrored chain KGs: `a0 -r-> a1 -r-> a2 -r-> a3` on each side,
    /// every relation perfectly functional.
    fn chain_pair(n: usize) -> (KnowledgeGraph, KnowledgeGraph) {
        let mut b1 = KgBuilder::new("left");
        let mut b2 = KgBuilder::new("right");
        for i in 0..n - 1 {
            b1.triple_by_name(&format!("a{i}"), "r", &format!("a{}", i + 1));
            b2.triple_by_name(&format!("b{i}"), "s", &format!("b{}", i + 1));
        }
        (b1.build(), b2.build())
    }

    fn chain_rels(kg1: &KnowledgeGraph, kg2: &KnowledgeGraph) -> RelationMatches {
        let r = kg1.relation_by_name("r").unwrap().raw();
        let s = kg2.relation_by_name("s").unwrap().raw();
        RelationMatches::from_pairs([(r, s)])
    }

    #[test]
    fn propagation_walks_the_chain_to_the_depth_cap() {
        let (kg1, kg2) = chain_pair(6);
        let rels = chain_rels(&kg1, &kg2);
        let cfg = InferConfig {
            max_depth: 3,
            min_confidence: 0.0,
            sim_gate: -1.0,
            max_fanout: 8,
        };
        let engine = InferenceEngine::new(&kg1, &kg2, cfg).unwrap();
        // Seeding (a0, b0) must infer (a1,b1), (a2,b2), (a3,b3) — and stop
        // at the depth cap before (a4, b4).
        let sim = UniformSim(1.0);
        let inferred = engine.propagate(&[(0, 0)], &rels, &sim);
        let pairs: Vec<(u32, u32)> = inferred.iter().map(|m| (m.left, m.right)).collect();
        assert_eq!(pairs, vec![(1, 1), (2, 2), (3, 3)]);
        // Perfectly functional chain at sim 1.0: confidence stays 1.0.
        for m in &inferred {
            assert!((m.confidence - 1.0).abs() < 1e-6, "{m:?}");
            assert_eq!(m.depth, m.left);
        }
    }

    #[test]
    fn backward_propagation_uses_in_edges() {
        let (kg1, kg2) = chain_pair(4);
        let rels = chain_rels(&kg1, &kg2);
        let engine = InferenceEngine::new(&kg1, &kg2, InferConfig::default()).unwrap();
        let sim = UniformSim(1.0);
        // Seed the chain *end*: matches must flow backwards through heads.
        let inferred = engine.propagate(&[(3, 3)], &rels, &sim);
        let pairs: Vec<(u32, u32)> = inferred.iter().map(|m| (m.left, m.right)).collect();
        assert!(pairs.contains(&(2, 2)), "{pairs:?}");
        assert!(pairs.contains(&(1, 1)), "{pairs:?}");
    }

    #[test]
    fn sim_gate_blocks_dissimilar_children() {
        let (kg1, kg2) = chain_pair(4);
        let rels = chain_rels(&kg1, &kg2);
        let cfg = InferConfig {
            sim_gate: 0.5,
            ..InferConfig::default()
        };
        let engine = InferenceEngine::new(&kg1, &kg2, cfg).unwrap();
        let inferred = engine.propagate(&[(0, 0)], &rels, &UniformSim(0.0));
        assert!(inferred.is_empty(), "gated pairs must not be derived");
    }

    #[test]
    fn confidence_decays_with_similarity_and_depth() {
        let (kg1, kg2) = chain_pair(5);
        let rels = chain_rels(&kg1, &kg2);
        let cfg = InferConfig {
            max_depth: 3,
            min_confidence: 0.0,
            sim_gate: -1.0,
            max_fanout: 8,
        };
        let engine = InferenceEngine::new(&kg1, &kg2, cfg).unwrap();
        let inferred = engine.propagate(&[(0, 0)], &rels, &UniformSim(0.0));
        // Gate factor (1+0)/2 = 0.5 per step on a fully functional chain.
        let by_pair: FxHashMap<(u32, u32), f32> = inferred
            .iter()
            .map(|m| ((m.left, m.right), m.confidence))
            .collect();
        assert!((by_pair[&(1, 1)] - 0.5).abs() < 1e-6);
        assert!((by_pair[&(2, 2)] - 0.25).abs() < 1e-6);
        assert!((by_pair[&(3, 3)] - 0.125).abs() < 1e-6);
    }

    #[test]
    fn min_confidence_prunes_the_tail() {
        let (kg1, kg2) = chain_pair(6);
        let rels = chain_rels(&kg1, &kg2);
        let cfg = InferConfig {
            max_depth: 5,
            min_confidence: 0.2,
            sim_gate: -1.0,
            max_fanout: 8,
        };
        let engine = InferenceEngine::new(&kg1, &kg2, cfg).unwrap();
        let inferred = engine.propagate(&[(0, 0)], &rels, &UniformSim(0.0));
        // 0.5, 0.25 survive; 0.125 < 0.2 is pruned (and cuts the chain).
        assert_eq!(inferred.len(), 2);
    }

    #[test]
    fn fanout_cap_skips_hub_relation_groups() {
        let mut b1 = KgBuilder::new("l");
        let mut b2 = KgBuilder::new("r");
        for i in 0..5 {
            b1.triple_by_name("hub", "r", &format!("t{i}"));
            b2.triple_by_name("hub2", "s", &format!("u{i}"));
        }
        let kg1 = b1.build();
        let kg2 = b2.build();
        let rels = RelationMatches::from_pairs([(0, 0)]);
        let cfg = InferConfig {
            max_fanout: 3,
            sim_gate: -1.0,
            min_confidence: 0.0,
            ..InferConfig::default()
        };
        let engine = InferenceEngine::new(&kg1, &kg2, cfg).unwrap();
        let hub = kg1.entity_by_name("hub").unwrap().raw();
        let hub2 = kg2.entity_by_name("hub2").unwrap().raw();
        let inferred = engine.propagate(&[(hub, hub2)], &rels, &UniformSim(1.0));
        assert!(inferred.is_empty(), "5-wide group exceeds the cap of 3");
    }

    #[test]
    fn known_matches_are_not_re_inferred() {
        let (kg1, kg2) = chain_pair(4);
        let rels = chain_rels(&kg1, &kg2);
        let engine = InferenceEngine::new(&kg1, &kg2, InferConfig::default()).unwrap();
        let mut known = KnownMatches::new();
        known.insert(1, 1);
        let sim = UniformSim(1.0);
        let inferred = engine.closure(&[(0, 0)], &known, &rels, &sim);
        assert!(
            !inferred.iter().any(|m| (m.left, m.right) == (1, 1)),
            "known pairs must be skipped"
        );
        // (1,1) blocked means nothing is expanded *through* it either:
        // the chain is cut and (2,2)/(3,3) stay underivable from (0,0).
        assert!(inferred.is_empty(), "{inferred:?}");
    }

    #[test]
    fn inference_power_counts_unlocked_confidence() {
        let (kg1, kg2) = chain_pair(5);
        let rels = chain_rels(&kg1, &kg2);
        let cfg = InferConfig {
            max_depth: 3,
            min_confidence: 0.0,
            sim_gate: -1.0,
            max_fanout: 8,
        };
        let engine = InferenceEngine::new(&kg1, &kg2, cfg).unwrap();
        let sim = UniformSim(1.0);
        let known = KnownMatches::new();
        // The chain head unlocks three downstream matches at conf 1.0 each.
        let p_head = engine.inference_power((0, 0), &known, &rels, &sim);
        assert!((p_head - 3.0).abs() < 1e-6, "{p_head}");
        // The tail pair unlocks the same three matches backwards through
        // the in-edges (inverse functionality is also 1.0 on a chain).
        let p_tail = engine.inference_power((4, 4), &known, &rels, &sim);
        assert!((p_tail - 3.0).abs() < 1e-6, "{p_tail}");
        // With everything already known, power drops to zero.
        let mut all_known = KnownMatches::new();
        for i in 0..5 {
            all_known.insert(i, i);
        }
        assert_eq!(engine.inference_power((0, 0), &all_known, &rels, &sim), 0.0);
    }

    #[test]
    fn optimized_closure_matches_reference() {
        // A denser random-ish pair: two relations, branching structure.
        let mut b1 = KgBuilder::new("l");
        let mut b2 = KgBuilder::new("r");
        for (h, r, t) in [
            ("a0", "p", "a1"),
            ("a0", "q", "a2"),
            ("a1", "p", "a3"),
            ("a2", "q", "a3"),
            ("a3", "p", "a4"),
            ("a1", "q", "a4"),
        ] {
            b1.triple_by_name(h, r, t);
        }
        for (h, r, t) in [
            ("b0", "p2", "b1"),
            ("b0", "q2", "b2"),
            ("b1", "p2", "b3"),
            ("b2", "q2", "b3"),
            ("b3", "p2", "b4"),
            ("b1", "q2", "b4"),
        ] {
            b2.triple_by_name(h, r, t);
        }
        let kg1 = b1.build();
        let kg2 = b2.build();
        let rels = RelationMatches::from_pairs([
            (
                kg1.relation_by_name("p").unwrap().raw(),
                kg2.relation_by_name("p2").unwrap().raw(),
            ),
            (
                kg1.relation_by_name("q").unwrap().raw(),
                kg2.relation_by_name("q2").unwrap().raw(),
            ),
        ]);
        let cfg = InferConfig {
            max_depth: 4,
            min_confidence: 0.01,
            sim_gate: -1.0,
            max_fanout: 16,
        };
        let engine = InferenceEngine::new(&kg1, &kg2, cfg).unwrap();
        let sim = UniformSim(0.4);
        let known = KnownMatches::new();
        let fast = engine.closure(&[(0, 0)], &known, &rels, &sim);
        let slow = engine.closure_reference(&[(0, 0)], &known, &rels, &sim);
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            assert_eq!((f.left, f.right), (s.left, s.right));
            assert_eq!(f.confidence, s.confidence, "{f:?} vs {s:?}");
        }
        assert!(!fast.is_empty());
    }
}

//! The workspace-wide typed error, [`DaakgError`].
//!
//! Every fallible public entry point across the DAAKG crates — config
//! validation, model construction, dataset IO, service queries — reports
//! failures through this one enum instead of `Result<_, String>` or a
//! panic, so callers can match on the failure kind and `?` propagates
//! cleanly through the whole pipeline.
//!
//! The enum lives in `daakg-graph` because that crate sits at the bottom
//! of the workspace graph: every API-bearing crate already depends on it.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors raised by the DAAKG public API.
#[derive(Debug)]
#[non_exhaustive]
pub enum DaakgError {
    /// A configuration failed validation. `context` names the config type
    /// or builder field; `reason` explains the constraint that failed.
    InvalidConfig {
        /// Which configuration (e.g. `"EmbedConfig"`, `"Pipeline"`).
        context: &'static str,
        /// The violated constraint, human-readable.
        reason: String,
    },
    /// Two matrices or embedding spaces that must agree in size do not.
    DimensionMismatch {
        /// What was being combined (e.g. `"BatchedSimilarity columns"`).
        context: &'static str,
        /// The dimension required by the left/first operand.
        expected: usize,
        /// The dimension actually found.
        got: usize,
    },
    /// An entity index outside the graph or snapshot it was used against.
    UnknownEntity {
        /// Which side/graph rejected the index (e.g. a KG name, `"left"`).
        kg: String,
        /// The offending raw entity index.
        id: u32,
        /// Number of entities that side actually holds.
        bound: usize,
    },
    /// A required input was never supplied (builder left a field unset).
    MissingInput {
        /// The missing field or argument (e.g. `"kg1"`).
        what: &'static str,
    },
    /// Underlying I/O failure.
    Io(io::Error),
    /// An I/O failure with the path it happened on — the store layer's
    /// replacement for a bare [`DaakgError::Io`], so operators learn *which*
    /// version file failed, not just that "permission denied" happened.
    IoAt {
        /// The file or directory the operation targeted.
        path: PathBuf,
        /// The underlying OS error.
        source: io::Error,
    },
    /// A persisted file failed structural or checksum validation. The file
    /// is intact on disk (nothing is deleted on load failure); `section`
    /// pinpoints the region that failed so fault triage does not start from
    /// a hex dump.
    Corrupt {
        /// The file that failed validation.
        path: PathBuf,
        /// Which region failed (e.g. `"header"`, `"footer"`, `"ents2"`).
        section: String,
        /// What exactly was wrong, human-readable.
        reason: String,
    },
    /// A snapshot version that is not materialized: either pruned out of
    /// the retention window or never published. Replaces the `None`
    /// ambiguity of `snapshot_at` for callers that need to distinguish the
    /// two cases.
    UnknownVersion {
        /// The version the caller asked for.
        requested: u64,
        /// The newest version the registry currently holds.
        latest: u64,
        /// `true` when the version existed but fell out of retention;
        /// `false` when it was never published.
        pruned: bool,
    },
    /// A malformed line in a dataset file, with its 1-based number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
    },
    /// A name referenced by an alignment that the KG does not contain.
    UnknownElement {
        /// 1-based line number.
        line: usize,
        /// The unresolvable element name.
        name: String,
    },
    /// Admission control rejected the query: the ingress queue was already
    /// at capacity when the query arrived. The caller should back off and
    /// retry; nothing was enqueued.
    Overloaded {
        /// Queue depth observed at admission time.
        queued: usize,
        /// The configured queue capacity (`IngressConfig::max_queue`).
        capacity: usize,
    },
    /// The query's deadline elapsed before a kernel ran it. The work was
    /// shed without burning compute; the caller decides whether to retry
    /// with a looser deadline.
    DeadlineExceeded {
        /// The deadline the caller attached to the query.
        deadline: std::time::Duration,
        /// How long the query had actually waited when it was shed.
        waited: std::time::Duration,
    },
    /// The serving component shut down while the request was in flight.
    /// Waiters are woken with this instead of hanging on a dead worker.
    Shutdown {
        /// Which component shut down (e.g. `"ingress"`).
        context: &'static str,
    },
    /// A query panicked inside the execution engine. The panic was caught
    /// at the dispatch boundary: the worker and all other in-flight
    /// queries survive, and only the offending query observes this error.
    Panicked {
        /// The dispatch boundary that caught the panic (e.g.
        /// `"ingress batch"`).
        context: &'static str,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl DaakgError {
    /// Shorthand for an [`DaakgError::InvalidConfig`] value.
    pub fn invalid(context: &'static str, reason: impl Into<String>) -> Self {
        Self::InvalidConfig {
            context,
            reason: reason.into(),
        }
    }

    /// Shorthand for an [`DaakgError::UnknownEntity`] value.
    pub fn unknown_entity(kg: impl Into<String>, id: u32, bound: usize) -> Self {
        Self::UnknownEntity {
            kg: kg.into(),
            id,
            bound,
        }
    }

    /// Shorthand for an [`DaakgError::IoAt`] value.
    pub fn io_at(path: impl Into<PathBuf>, source: io::Error) -> Self {
        Self::IoAt {
            path: path.into(),
            source,
        }
    }

    /// Shorthand for a [`DaakgError::Corrupt`] value.
    pub fn corrupt(
        path: impl Into<PathBuf>,
        section: impl Into<String>,
        reason: impl Into<String>,
    ) -> Self {
        Self::Corrupt {
            path: path.into(),
            section: section.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for DaakgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaakgError::InvalidConfig { context, reason } => {
                write!(f, "invalid {context}: {reason}")
            }
            DaakgError::DimensionMismatch {
                context,
                expected,
                got,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {got}"
            ),
            DaakgError::UnknownEntity { kg, id, bound } => {
                write!(f, "unknown entity {id} in {kg:?} (holds {bound} entities)")
            }
            DaakgError::MissingInput { what } => write!(f, "missing required input: {what}"),
            DaakgError::Io(e) => write!(f, "i/o error: {e}"),
            DaakgError::IoAt { path, source } => {
                write!(f, "i/o error at {}: {source}", path.display())
            }
            DaakgError::Corrupt {
                path,
                section,
                reason,
            } => write!(
                f,
                "corrupt file {} (section {section:?}): {reason}",
                path.display()
            ),
            DaakgError::UnknownVersion {
                requested,
                latest,
                pruned,
            } => write!(
                f,
                "unknown snapshot version {requested} ({}; latest is {latest})",
                if *pruned {
                    "pruned out of retention"
                } else {
                    "never published"
                }
            ),
            DaakgError::Parse { line, content } => {
                write!(f, "parse error at line {line}: {content:?}")
            }
            DaakgError::UnknownElement { line, name } => {
                write!(f, "unknown element {name:?} at line {line}")
            }
            DaakgError::Overloaded { queued, capacity } => write!(
                f,
                "overloaded: {queued} queries queued at capacity {capacity}; \
                 admission rejected"
            ),
            DaakgError::DeadlineExceeded { deadline, waited } => write!(
                f,
                "deadline exceeded: query waited {waited:?} against a \
                 {deadline:?} deadline and was shed before execution"
            ),
            DaakgError::Shutdown { context } => {
                write!(f, "{context} shut down while the request was in flight")
            }
            DaakgError::Panicked { context, message } => {
                write!(f, "query panicked in {context}: {message}")
            }
        }
    }
}

impl std::error::Error for DaakgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaakgError::Io(e) => Some(e),
            DaakgError::IoAt { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for DaakgError {
    fn from(e: io::Error) -> Self {
        DaakgError::Io(e)
    }
}

impl From<(PathBuf, io::Error)> for DaakgError {
    fn from((path, source): (PathBuf, io::Error)) -> Self {
        DaakgError::IoAt { path, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DaakgError::invalid("EmbedConfig", "dim must be positive");
        assert_eq!(e.to_string(), "invalid EmbedConfig: dim must be positive");
        let e = DaakgError::DimensionMismatch {
            context: "mapping",
            expected: 32,
            got: 16,
        };
        assert!(e.to_string().contains("expected 32, got 16"));
        let e = DaakgError::unknown_entity("DBpedia", 99, 10);
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("DBpedia"));
        let e = DaakgError::MissingInput { what: "kg1" };
        assert!(e.to_string().contains("kg1"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        use std::error::Error as _;
        let inner = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e: DaakgError = inner.into();
        assert!(e.to_string().contains("gone"));
        assert!(e.source().is_some());
        let e = DaakgError::Parse {
            line: 3,
            content: "bogus".into(),
        };
        assert!(e.source().is_none());
    }

    #[test]
    fn io_at_carries_the_path_and_chains() {
        use std::error::Error as _;
        let inner = io::Error::new(io::ErrorKind::PermissionDenied, "locked");
        let e: DaakgError = (PathBuf::from("/data/v1.snap"), inner).into();
        assert!(matches!(e, DaakgError::IoAt { .. }));
        assert!(e.to_string().contains("/data/v1.snap"));
        assert!(e.to_string().contains("locked"));
        assert!(e.source().is_some());
        let e = DaakgError::io_at("/data/MANIFEST", io::Error::other("boom"));
        assert!(e.to_string().contains("MANIFEST"));
    }

    #[test]
    fn corrupt_names_file_and_section() {
        let e = DaakgError::corrupt("/data/v2.snap", "ents2", "payload crc mismatch");
        assert!(e.to_string().contains("v2.snap"));
        assert!(e.to_string().contains("ents2"));
        assert!(e.to_string().contains("crc"));
    }

    #[test]
    fn overload_taxonomy_displays_are_informative() {
        let e = DaakgError::Overloaded {
            queued: 8192,
            capacity: 8192,
        };
        assert!(e.to_string().contains("8192"));
        assert!(e.to_string().contains("admission rejected"));
        let e = DaakgError::DeadlineExceeded {
            deadline: std::time::Duration::from_millis(5),
            waited: std::time::Duration::from_millis(7),
        };
        assert!(e.to_string().contains("5ms"));
        assert!(e.to_string().contains("shed"));
        let e = DaakgError::Shutdown { context: "ingress" };
        assert!(e.to_string().contains("ingress shut down"));
        let e = DaakgError::Panicked {
            context: "ingress batch",
            message: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
        assert!(e.to_string().contains("ingress batch"));
    }

    #[test]
    fn unknown_version_distinguishes_pruned_from_never_published() {
        let pruned = DaakgError::UnknownVersion {
            requested: 1,
            latest: 9,
            pruned: true,
        };
        assert!(pruned.to_string().contains("pruned"));
        let future = DaakgError::UnknownVersion {
            requested: 12,
            latest: 9,
            pruned: false,
        };
        assert!(future.to_string().contains("never published"));
    }
}

//! The indexed knowledge-graph container and its builder.

use crate::fxhash::FxHashMap;
use crate::ids::{ClassId, EntityId, RelationId};

/// A relational triple `(head, relation, tail)` between two entities.
///
/// Following Eq. (1) of the paper, reverse triples `(tail, r⁻¹, head)` are a
/// *modelling* device added by the embedding layer, not stored here; the
/// graph stores each asserted triple once.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Head entity.
    pub head: EntityId,
    /// Relation.
    pub rel: RelationId,
    /// Tail entity.
    pub tail: EntityId,
}

impl Triple {
    /// Construct a triple.
    #[inline]
    pub fn new(head: EntityId, rel: RelationId, tail: EntityId) -> Self {
        Self { head, rel, tail }
    }
}

/// A class-membership assertion `(entity, type, class)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TypeAssertion {
    /// The typed entity.
    pub entity: EntityId,
    /// The class it belongs to. One entity may belong to multiple classes.
    pub class: ClassId,
}

impl TypeAssertion {
    /// Construct a type assertion.
    #[inline]
    pub fn new(entity: EntityId, class: ClassId) -> Self {
        Self { entity, class }
    }
}

/// An immutable, fully indexed knowledge graph `G = (E, R, C, T)`.
///
/// Construct with [`KgBuilder`]. All neighbourhood queries are O(1) slice
/// lookups after construction; the adjacency lists are sorted for
/// deterministic iteration.
#[derive(Clone, Debug)]
pub struct KnowledgeGraph {
    name: String,
    entity_names: Vec<String>,
    relation_names: Vec<String>,
    class_names: Vec<String>,
    triples: Vec<Triple>,
    type_assertions: Vec<TypeAssertion>,

    /// Outgoing `(relation, tail)` pairs per entity.
    out_edges: Vec<Vec<(RelationId, EntityId)>>,
    /// Incoming `(relation, head)` pairs per entity.
    in_edges: Vec<Vec<(RelationId, EntityId)>>,
    /// Classes per entity (many-to-one problem: usually several).
    classes_of: Vec<Vec<ClassId>>,
    /// Instances per class.
    instances_of: Vec<Vec<EntityId>>,
    /// Triple indices grouped by relation.
    triples_by_rel: Vec<Vec<u32>>,
    /// Type-assertion indices grouped by class.
    types_by_class: Vec<Vec<u32>>,

    entity_lookup: FxHashMap<String, EntityId>,
    relation_lookup: FxHashMap<String, RelationId>,
    class_lookup: FxHashMap<String, ClassId>,
}

impl KnowledgeGraph {
    /// A builder for incremental construction.
    pub fn builder(name: impl Into<String>) -> KgBuilder {
        KgBuilder::new(name)
    }

    /// Human-readable name of this KG (e.g. `"DBpedia"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of entities `|E|`.
    #[inline]
    pub fn num_entities(&self) -> usize {
        self.entity_names.len()
    }

    /// Number of relations `|R|`.
    #[inline]
    pub fn num_relations(&self) -> usize {
        self.relation_names.len()
    }

    /// Number of classes `|C|`.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Number of relational triples `|T|` (excluding type assertions).
    #[inline]
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    /// Number of `(entity, type, class)` assertions `|T_type|`.
    #[inline]
    pub fn num_type_assertions(&self) -> usize {
        self.type_assertions.len()
    }

    /// Iterate over all entity ids.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.entity_names.len() as u32).map(EntityId::new)
    }

    /// Iterate over all relation ids.
    pub fn relations(&self) -> impl Iterator<Item = RelationId> + '_ {
        (0..self.relation_names.len() as u32).map(RelationId::new)
    }

    /// Iterate over all class ids.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.class_names.len() as u32).map(ClassId::new)
    }

    /// All relational triples.
    #[inline]
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// All type assertions.
    #[inline]
    pub fn type_assertions(&self) -> &[TypeAssertion] {
        &self.type_assertions
    }

    /// Name of an entity.
    #[inline]
    pub fn entity_name(&self, e: EntityId) -> &str {
        &self.entity_names[e.index()]
    }

    /// Name of a relation.
    #[inline]
    pub fn relation_name(&self, r: RelationId) -> &str {
        &self.relation_names[r.index()]
    }

    /// Name of a class.
    #[inline]
    pub fn class_name(&self, c: ClassId) -> &str {
        &self.class_names[c.index()]
    }

    /// Look up an entity by name.
    pub fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        self.entity_lookup.get(name).copied()
    }

    /// Look up a relation by name.
    pub fn relation_by_name(&self, name: &str) -> Option<RelationId> {
        self.relation_lookup.get(name).copied()
    }

    /// Look up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_lookup.get(name).copied()
    }

    /// Outgoing `(relation, tail)` edges of `e`, sorted.
    #[inline]
    pub fn out_edges(&self, e: EntityId) -> &[(RelationId, EntityId)] {
        &self.out_edges[e.index()]
    }

    /// Incoming `(relation, head)` edges of `e`, sorted.
    #[inline]
    pub fn in_edges(&self, e: EntityId) -> &[(RelationId, EntityId)] {
        &self.in_edges[e.index()]
    }

    /// Total degree (in + out, relational edges only).
    #[inline]
    pub fn degree(&self, e: EntityId) -> usize {
        self.out_edges[e.index()].len() + self.in_edges[e.index()].len()
    }

    /// Classes the entity belongs to, sorted.
    #[inline]
    pub fn classes_of(&self, e: EntityId) -> &[ClassId] {
        &self.classes_of[e.index()]
    }

    /// Instances of a class, sorted.
    #[inline]
    pub fn instances_of(&self, c: ClassId) -> &[EntityId] {
        &self.instances_of[c.index()]
    }

    /// Indices into [`Self::triples`] that use relation `r`.
    #[inline]
    pub fn triples_with_relation(&self, r: RelationId) -> impl Iterator<Item = &Triple> + '_ {
        self.triples_by_rel[r.index()]
            .iter()
            .map(move |&i| &self.triples[i as usize])
    }

    /// Number of triples using relation `r`.
    #[inline]
    pub fn relation_frequency(&self, r: RelationId) -> usize {
        self.triples_by_rel[r.index()].len()
    }

    /// Type assertions targeting class `c`.
    #[inline]
    pub fn assertions_of_class(&self, c: ClassId) -> impl Iterator<Item = &TypeAssertion> + '_ {
        self.types_by_class[c.index()]
            .iter()
            .map(move |&i| &self.type_assertions[i as usize])
    }

    /// Whether the triple `(h, r, t)` is asserted. O(deg(h)).
    pub fn has_triple(&self, head: EntityId, rel: RelationId, tail: EntityId) -> bool {
        self.out_edges[head.index()]
            .binary_search(&(rel, tail))
            .is_ok()
    }

    /// Whether `e` is asserted to belong to class `c`. O(log #classes(e)).
    pub fn has_type(&self, e: EntityId, c: ClassId) -> bool {
        self.classes_of[e.index()].binary_search(&c).is_ok()
    }

    /// Distinct relations appearing on the out- or in-edges of `e`.
    pub fn relation_signature(&self, e: EntityId) -> Vec<RelationId> {
        let mut rels: Vec<RelationId> = self.out_edges[e.index()]
            .iter()
            .chain(self.in_edges[e.index()].iter())
            .map(|&(r, _)| r)
            .collect();
        rels.sort_unstable();
        rels.dedup();
        rels
    }
}

/// Incremental builder for [`KnowledgeGraph`].
///
/// Elements are interned by name, so repeated `entity("x")` calls return the
/// same id. Triples and type assertions are deduplicated at build time.
#[derive(Debug, Default)]
pub struct KgBuilder {
    name: String,
    entity_names: Vec<String>,
    relation_names: Vec<String>,
    class_names: Vec<String>,
    entity_lookup: FxHashMap<String, EntityId>,
    relation_lookup: FxHashMap<String, RelationId>,
    class_lookup: FxHashMap<String, ClassId>,
    triples: Vec<Triple>,
    type_assertions: Vec<TypeAssertion>,
}

impl KgBuilder {
    /// Start an empty builder for a KG with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Intern an entity by name, returning its id.
    pub fn entity(&mut self, name: &str) -> EntityId {
        if let Some(&id) = self.entity_lookup.get(name) {
            return id;
        }
        let id = EntityId::new(self.entity_names.len() as u32);
        self.entity_names.push(name.to_owned());
        self.entity_lookup.insert(name.to_owned(), id);
        id
    }

    /// Intern a relation by name, returning its id.
    pub fn relation(&mut self, name: &str) -> RelationId {
        if let Some(&id) = self.relation_lookup.get(name) {
            return id;
        }
        let id = RelationId::new(self.relation_names.len() as u32);
        self.relation_names.push(name.to_owned());
        self.relation_lookup.insert(name.to_owned(), id);
        id
    }

    /// Intern a class by name, returning its id.
    pub fn class(&mut self, name: &str) -> ClassId {
        if let Some(&id) = self.class_lookup.get(name) {
            return id;
        }
        let id = ClassId::new(self.class_names.len() as u32);
        self.class_names.push(name.to_owned());
        self.class_lookup.insert(name.to_owned(), id);
        id
    }

    /// Add a triple by ids.
    pub fn triple(&mut self, head: EntityId, rel: RelationId, tail: EntityId) -> &mut Self {
        self.triples.push(Triple::new(head, rel, tail));
        self
    }

    /// Add a triple by names, interning all three elements.
    pub fn triple_by_name(&mut self, head: &str, rel: &str, tail: &str) -> &mut Self {
        let h = self.entity(head);
        let r = self.relation(rel);
        let t = self.entity(tail);
        self.triple(h, r, t)
    }

    /// Add a type assertion by ids.
    pub fn typing(&mut self, entity: EntityId, class: ClassId) -> &mut Self {
        self.type_assertions.push(TypeAssertion::new(entity, class));
        self
    }

    /// Add a type assertion by names.
    pub fn typing_by_name(&mut self, entity: &str, class: &str) -> &mut Self {
        let e = self.entity(entity);
        let c = self.class(class);
        self.typing(e, c)
    }

    /// Number of entities interned so far.
    pub fn num_entities(&self) -> usize {
        self.entity_names.len()
    }

    /// Number of triples added so far (pre-dedup).
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    /// Finalize: deduplicate, sort, and build all indexes.
    pub fn build(mut self) -> KnowledgeGraph {
        self.triples
            .sort_unstable_by_key(|t| (t.head, t.rel, t.tail));
        self.triples.dedup();
        self.type_assertions
            .sort_unstable_by_key(|a| (a.entity, a.class));
        self.type_assertions.dedup();

        let ne = self.entity_names.len();
        let nr = self.relation_names.len();
        let nc = self.class_names.len();

        let mut out_edges: Vec<Vec<(RelationId, EntityId)>> = vec![Vec::new(); ne];
        let mut in_edges: Vec<Vec<(RelationId, EntityId)>> = vec![Vec::new(); ne];
        let mut triples_by_rel: Vec<Vec<u32>> = vec![Vec::new(); nr];
        for (i, t) in self.triples.iter().enumerate() {
            out_edges[t.head.index()].push((t.rel, t.tail));
            in_edges[t.tail.index()].push((t.rel, t.head));
            triples_by_rel[t.rel.index()].push(i as u32);
        }
        for v in out_edges.iter_mut().chain(in_edges.iter_mut()) {
            v.sort_unstable();
            v.shrink_to_fit();
        }

        let mut classes_of: Vec<Vec<ClassId>> = vec![Vec::new(); ne];
        let mut instances_of: Vec<Vec<EntityId>> = vec![Vec::new(); nc];
        let mut types_by_class: Vec<Vec<u32>> = vec![Vec::new(); nc];
        for (i, a) in self.type_assertions.iter().enumerate() {
            classes_of[a.entity.index()].push(a.class);
            instances_of[a.class.index()].push(a.entity);
            types_by_class[a.class.index()].push(i as u32);
        }
        for v in classes_of.iter_mut() {
            v.sort_unstable();
            v.shrink_to_fit();
        }
        for v in instances_of.iter_mut() {
            v.sort_unstable();
            v.shrink_to_fit();
        }

        KnowledgeGraph {
            name: self.name,
            entity_names: self.entity_names,
            relation_names: self.relation_names,
            class_names: self.class_names,
            triples: self.triples,
            type_assertions: self.type_assertions,
            out_edges,
            in_edges,
            classes_of,
            instances_of,
            triples_by_rel,
            types_by_class,
            entity_lookup: self.entity_lookup,
            relation_lookup: self.relation_lookup,
            class_lookup: self.class_lookup,
        }
    }
}

/// Build the small running-example KG from Fig. 1(a) of the paper (DBpedia
/// side). Useful in unit tests and documentation examples.
pub fn example_dbpedia() -> KnowledgeGraph {
    let mut b = KgBuilder::new("DBpedia");
    b.triple_by_name("Michael Jackson", "birthPlace", "Gary_Indiana");
    b.triple_by_name("Michael Jackson", "deathPlace", "LosAngeles");
    b.triple_by_name("Michael Jackson", "spouse", "DebbieRowe");
    b.triple_by_name("Michael Jackson", "spouse", "LisaMariePresley");
    b.triple_by_name("Gary_Indiana", "country", "UnitedStates");
    b.triple_by_name("LosAngeles", "country", "UnitedStates");
    b.typing_by_name("Michael Jackson", "Person");
    b.typing_by_name("Gary_Indiana", "City");
    b.typing_by_name("LosAngeles", "City");
    b.typing_by_name("UnitedStates", "Populated place");
    b.build()
}

/// Build the small running-example KG from Fig. 1(b) of the paper (Wikidata
/// side).
pub fn example_wikidata() -> KnowledgeGraph {
    let mut b = KgBuilder::new("Wikidata");
    b.triple_by_name("Q2831", "place of birth", "Gary");
    b.triple_by_name("Q2831", "place of death", "LosAngeles");
    b.triple_by_name("Q2831", "spouse", "Debbie Rowe");
    b.triple_by_name("Q2831", "spouse", "Lisa Marie Presley");
    b.triple_by_name("Q2831", "father", "Joe Jackson");
    b.triple_by_name("Q2831", "mother", "Katherine Jackson");
    b.triple_by_name("Gary", "country", "USA");
    b.triple_by_name("LosAngeles", "country", "USA");
    b.triple_by_name("Q2831", "country of citizenship", "USA");
    b.typing_by_name("Q2831", "human");
    b.typing_by_name("Gary", "city of the United States");
    b.typing_by_name("LosAngeles", "city of the United States");
    b.typing_by_name("USA", "country");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_interns_by_name() {
        let mut b = KgBuilder::new("t");
        let a = b.entity("a");
        let a2 = b.entity("a");
        let c = b.entity("c");
        assert_eq!(a, a2);
        assert_ne!(a, c);
        assert_eq!(b.num_entities(), 2);
    }

    #[test]
    fn build_deduplicates_triples() {
        let mut b = KgBuilder::new("t");
        b.triple_by_name("a", "r", "b");
        b.triple_by_name("a", "r", "b");
        b.triple_by_name("a", "r", "c");
        let kg = b.build();
        assert_eq!(kg.num_triples(), 2);
    }

    #[test]
    fn indexes_are_consistent() {
        let kg = example_dbpedia();
        let mj = kg.entity_by_name("Michael Jackson").unwrap();
        let gary = kg.entity_by_name("Gary_Indiana").unwrap();
        let bp = kg.relation_by_name("birthPlace").unwrap();
        assert!(kg.has_triple(mj, bp, gary));
        assert!(!kg.has_triple(gary, bp, mj));
        // out edges of MJ = 4 triples
        assert_eq!(kg.out_edges(mj).len(), 4);
        assert_eq!(kg.in_edges(gary).len(), 1);
        assert_eq!(kg.degree(gary), 2); // one in (birthPlace), one out (country)
        let person = kg.class_by_name("Person").unwrap();
        assert!(kg.has_type(mj, person));
        assert_eq!(kg.instances_of(person), &[mj]);
        assert_eq!(kg.classes_of(mj), &[person]);
    }

    #[test]
    fn triples_with_relation_filters() {
        let kg = example_dbpedia();
        let spouse = kg.relation_by_name("spouse").unwrap();
        let spouses: Vec<_> = kg.triples_with_relation(spouse).collect();
        assert_eq!(spouses.len(), 2);
        assert_eq!(kg.relation_frequency(spouse), 2);
        for t in spouses {
            assert_eq!(t.rel, spouse);
        }
    }

    #[test]
    fn relation_signature_covers_both_directions() {
        let kg = example_dbpedia();
        let gary = kg.entity_by_name("Gary_Indiana").unwrap();
        let sig = kg.relation_signature(gary);
        let bp = kg.relation_by_name("birthPlace").unwrap();
        let country = kg.relation_by_name("country").unwrap();
        assert!(sig.contains(&bp));
        assert!(sig.contains(&country));
        assert_eq!(sig.len(), 2);
    }

    #[test]
    fn example_graphs_have_expected_shapes() {
        let d = example_dbpedia();
        let w = example_wikidata();
        assert_eq!(d.num_entities(), 6);
        assert_eq!(w.num_relations(), 7);
        assert!(w.num_entities() > d.num_entities()); // dangling Joe/Katherine
        assert_eq!(d.num_type_assertions(), 4);
    }

    #[test]
    fn empty_graph_is_valid() {
        let kg = KgBuilder::new("empty").build();
        assert_eq!(kg.num_entities(), 0);
        assert_eq!(kg.num_triples(), 0);
        assert_eq!(kg.entities().count(), 0);
    }
}

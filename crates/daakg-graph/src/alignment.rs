//! Gold-standard and predicted alignments between two KGs.

use crate::fxhash::{fx_map, FxHashMap};
use crate::ids::{ClassId, EntityId, RelationId};
use crate::pair::{ElementPair, Label, PairKind};

/// The gold alignment between two KGs: the complete set of true matches at
/// the entity, relation and class level.
///
/// Benchmarks in the paper (OpenEA) assume 1:1 alignment — each element
/// matches at most one element of the other KG — and all deep methods exploit
/// this restriction (Sect. 7.2). The same invariant is enforced here.
#[derive(Clone, Debug, Default)]
pub struct GoldAlignment {
    entity_l2r: FxHashMap<EntityId, EntityId>,
    entity_r2l: FxHashMap<EntityId, EntityId>,
    relation_l2r: FxHashMap<RelationId, RelationId>,
    relation_r2l: FxHashMap<RelationId, RelationId>,
    class_l2r: FxHashMap<ClassId, ClassId>,
    class_r2l: FxHashMap<ClassId, ClassId>,
}

impl GoldAlignment {
    /// An empty gold alignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an entity match `(e, e')`. Panics if either side already has
    /// a different counterpart (1:1 violation).
    pub fn add_entity(&mut self, left: EntityId, right: EntityId) {
        let prev = self.entity_l2r.insert(left, right);
        assert!(
            prev.is_none() || prev == Some(right),
            "1:1 violation: {left} already matched"
        );
        let prev = self.entity_r2l.insert(right, left);
        assert!(
            prev.is_none() || prev == Some(left),
            "1:1 violation: {right} already matched"
        );
    }

    /// Register a relation match.
    pub fn add_relation(&mut self, left: RelationId, right: RelationId) {
        let prev = self.relation_l2r.insert(left, right);
        assert!(prev.is_none() || prev == Some(right));
        let prev = self.relation_r2l.insert(right, left);
        assert!(prev.is_none() || prev == Some(left));
    }

    /// Register a class match.
    pub fn add_class(&mut self, left: ClassId, right: ClassId) {
        let prev = self.class_l2r.insert(left, right);
        assert!(prev.is_none() || prev == Some(right));
        let prev = self.class_r2l.insert(right, left);
        assert!(prev.is_none() || prev == Some(left));
    }

    /// Gold counterpart of a left entity.
    #[inline]
    pub fn entity_match(&self, left: EntityId) -> Option<EntityId> {
        self.entity_l2r.get(&left).copied()
    }

    /// Gold counterpart of a right entity.
    #[inline]
    pub fn entity_match_rev(&self, right: EntityId) -> Option<EntityId> {
        self.entity_r2l.get(&right).copied()
    }

    /// Gold counterpart of a left relation.
    #[inline]
    pub fn relation_match(&self, left: RelationId) -> Option<RelationId> {
        self.relation_l2r.get(&left).copied()
    }

    /// Gold counterpart of a right relation.
    #[inline]
    pub fn relation_match_rev(&self, right: RelationId) -> Option<RelationId> {
        self.relation_r2l.get(&right).copied()
    }

    /// Gold counterpart of a left class.
    #[inline]
    pub fn class_match(&self, left: ClassId) -> Option<ClassId> {
        self.class_l2r.get(&left).copied()
    }

    /// Gold counterpart of a right class.
    #[inline]
    pub fn class_match_rev(&self, right: ClassId) -> Option<ClassId> {
        self.class_r2l.get(&right).copied()
    }

    /// Number of entity matches.
    #[inline]
    pub fn num_entity_matches(&self) -> usize {
        self.entity_l2r.len()
    }

    /// Number of relation matches.
    #[inline]
    pub fn num_relation_matches(&self) -> usize {
        self.relation_l2r.len()
    }

    /// Number of class matches.
    #[inline]
    pub fn num_class_matches(&self) -> usize {
        self.class_l2r.len()
    }

    /// Total number of matches at all three levels.
    #[inline]
    pub fn num_matches(&self) -> usize {
        self.num_entity_matches() + self.num_relation_matches() + self.num_class_matches()
    }

    /// True oracle label of an arbitrary element pair.
    pub fn label(&self, pair: ElementPair) -> Label {
        let is_match = match pair {
            ElementPair::Entity(l, r) => self.entity_match(l) == Some(r),
            ElementPair::Relation(l, r) => self.relation_match(l) == Some(r),
            ElementPair::Class(l, r) => self.class_match(l) == Some(r),
        };
        Label::from_bool(is_match)
    }

    /// All entity matches in deterministic (sorted-by-left) order.
    pub fn entity_matches(&self) -> Vec<(EntityId, EntityId)> {
        let mut v: Vec<_> = self.entity_l2r.iter().map(|(&l, &r)| (l, r)).collect();
        v.sort_unstable();
        v
    }

    /// All relation matches in deterministic order.
    pub fn relation_matches(&self) -> Vec<(RelationId, RelationId)> {
        let mut v: Vec<_> = self.relation_l2r.iter().map(|(&l, &r)| (l, r)).collect();
        v.sort_unstable();
        v
    }

    /// All class matches in deterministic order.
    pub fn class_matches(&self) -> Vec<(ClassId, ClassId)> {
        let mut v: Vec<_> = self.class_l2r.iter().map(|(&l, &r)| (l, r)).collect();
        v.sort_unstable();
        v
    }

    /// All matches as [`ElementPair`]s, entities first, then relations, then
    /// classes, each block sorted.
    pub fn all_matches(&self) -> Vec<ElementPair> {
        let mut v = Vec::with_capacity(self.num_matches());
        v.extend(
            self.entity_matches()
                .into_iter()
                .map(|(l, r)| ElementPair::Entity(l, r)),
        );
        v.extend(
            self.relation_matches()
                .into_iter()
                .map(|(l, r)| ElementPair::Relation(l, r)),
        );
        v.extend(
            self.class_matches()
                .into_iter()
                .map(|(l, r)| ElementPair::Class(l, r)),
        );
        v
    }
}

/// A predicted alignment: for each source element, a ranked list of candidate
/// counterparts with similarity scores in descending order.
///
/// Produced by alignment models; consumed by `daakg-eval` for H@k / MRR and
/// greedy-matching F1.
#[derive(Clone, Debug, Default)]
pub struct AlignmentResult {
    /// Ranked candidates per left entity.
    pub entity_rankings: FxHashMap<EntityId, Vec<(EntityId, f32)>>,
    /// Ranked candidates per left relation.
    pub relation_rankings: FxHashMap<RelationId, Vec<(RelationId, f32)>>,
    /// Ranked candidates per left class.
    pub class_rankings: FxHashMap<ClassId, Vec<(ClassId, f32)>>,
}

impl AlignmentResult {
    /// An empty result.
    pub fn new() -> Self {
        Self {
            entity_rankings: fx_map(),
            relation_rankings: fx_map(),
            class_rankings: fx_map(),
        }
    }

    /// Insert a ranking for a left entity. Candidates are sorted by
    /// descending score internally.
    pub fn push_entity_ranking(&mut self, left: EntityId, mut cands: Vec<(EntityId, f32)>) {
        cands.sort_by(|a, b| b.1.total_cmp(&a.1));
        self.entity_rankings.insert(left, cands);
    }

    /// Insert a ranking for a left relation.
    pub fn push_relation_ranking(&mut self, left: RelationId, mut cands: Vec<(RelationId, f32)>) {
        cands.sort_by(|a, b| b.1.total_cmp(&a.1));
        self.relation_rankings.insert(left, cands);
    }

    /// Insert a ranking for a left class.
    pub fn push_class_ranking(&mut self, left: ClassId, mut cands: Vec<(ClassId, f32)>) {
        cands.sort_by(|a, b| b.1.total_cmp(&a.1));
        self.class_rankings.insert(left, cands);
    }

    /// Number of ranked source elements of the given kind.
    pub fn len(&self, kind: PairKind) -> usize {
        match kind {
            PairKind::Entity => self.entity_rankings.len(),
            PairKind::Relation => self.relation_rankings.len(),
            PairKind::Class => self.class_rankings.len(),
        }
    }

    /// True if no rankings of any kind are present.
    pub fn is_empty(&self) -> bool {
        self.entity_rankings.is_empty()
            && self.relation_rankings.is_empty()
            && self.class_rankings.is_empty()
    }

    /// The top-1 entity prediction for a left entity.
    pub fn top_entity(&self, left: EntityId) -> Option<(EntityId, f32)> {
        self.entity_rankings
            .get(&left)
            .and_then(|v| v.first().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gold_alignment_is_bidirectional() {
        let mut g = GoldAlignment::new();
        g.add_entity(EntityId::new(0), EntityId::new(5));
        g.add_relation(RelationId::new(1), RelationId::new(2));
        g.add_class(ClassId::new(3), ClassId::new(4));
        assert_eq!(g.entity_match(EntityId::new(0)), Some(EntityId::new(5)));
        assert_eq!(g.entity_match_rev(EntityId::new(5)), Some(EntityId::new(0)));
        assert_eq!(g.entity_match(EntityId::new(9)), None);
        assert_eq!(g.num_matches(), 3);
    }

    #[test]
    #[should_panic(expected = "1:1 violation")]
    fn one_to_one_is_enforced() {
        let mut g = GoldAlignment::new();
        g.add_entity(EntityId::new(0), EntityId::new(5));
        g.add_entity(EntityId::new(0), EntityId::new(6));
    }

    #[test]
    fn labels_follow_gold() {
        let mut g = GoldAlignment::new();
        g.add_entity(EntityId::new(0), EntityId::new(5));
        assert_eq!(
            g.label(ElementPair::Entity(EntityId::new(0), EntityId::new(5))),
            Label::Match
        );
        assert_eq!(
            g.label(ElementPair::Entity(EntityId::new(0), EntityId::new(6))),
            Label::NonMatch
        );
        assert_eq!(
            g.label(ElementPair::Relation(
                RelationId::new(0),
                RelationId::new(0)
            )),
            Label::NonMatch
        );
    }

    #[test]
    fn all_matches_is_deterministic() {
        let mut g = GoldAlignment::new();
        g.add_entity(EntityId::new(2), EntityId::new(2));
        g.add_entity(EntityId::new(1), EntityId::new(1));
        g.add_class(ClassId::new(0), ClassId::new(0));
        let pairs = g.all_matches();
        assert_eq!(pairs.len(), 3);
        assert_eq!(
            pairs[0],
            ElementPair::Entity(EntityId::new(1), EntityId::new(1))
        );
        assert_eq!(pairs[2].kind(), PairKind::Class);
    }

    #[test]
    fn result_rankings_sorted_descending() {
        let mut r = AlignmentResult::new();
        r.push_entity_ranking(
            EntityId::new(0),
            vec![
                (EntityId::new(1), 0.1),
                (EntityId::new(2), 0.9),
                (EntityId::new(3), 0.5),
            ],
        );
        let ranked = &r.entity_rankings[&EntityId::new(0)];
        assert_eq!(ranked[0].0, EntityId::new(2));
        assert_eq!(ranked[2].0, EntityId::new(1));
        assert_eq!(
            r.top_entity(EntityId::new(0)),
            Some((EntityId::new(2), 0.9))
        );
        assert_eq!(r.len(PairKind::Entity), 1);
        assert!(!r.is_empty());
    }
}

//! # daakg-graph
//!
//! Knowledge-graph data model for the DAAKG reproduction.
//!
//! A knowledge graph is the quadruple `G = (E, R, C, T)` of Sect. 2.1 of the
//! paper: entities, relations, classes, and triples. Entities, relations and
//! classes are collectively called *elements*. A triple is
//! `(head, relation, tail)` where `head` and `tail` are entities; class
//! membership is stored separately as `(entity, type, class)` assertions,
//! mirroring the paper's treatment of the special `type` relation.
//!
//! This crate provides:
//!
//! * compact integer [`ids`] for entities / relations / classes,
//! * the indexed [`KnowledgeGraph`] container with O(1) neighbourhood access,
//! * [`pair`] types for element pairs and oracle labels,
//! * [`alignment`] gold-standard and predicted alignments,
//! * a fast, dependency-free [`fxhash`] hasher for the hot
//!   integer-keyed maps used throughout the workspace,
//! * plain-text [`io`] serialization for datasets,
//! * the workspace-wide typed error, [`DaakgError`] — every fallible
//!   public entry point across the DAAKG crates returns it.

pub mod alignment;
pub mod error;
pub mod fxhash;
pub mod ids;
pub mod io;
pub mod kg;
pub mod pair;
pub mod stats;

pub use alignment::{AlignmentResult, GoldAlignment};
pub use error::DaakgError;
pub use ids::{ClassId, ElementId, EntityId, RelationId};
pub use kg::{KgBuilder, KnowledgeGraph, Triple, TypeAssertion};
pub use pair::{ElementPair, Label, PairKind};
pub use stats::KgStats;

pub use fxhash::{FxHashMap, FxHashSet};

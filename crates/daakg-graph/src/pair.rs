//! Element pairs `q = (x, x')` across two KGs and their oracle labels.
//!
//! The left component always refers to an element of the first KG `G` and
//! the right component to an element of the second KG `G'` (Sect. 2.1). Only
//! same-kind pairs exist: entity–entity, relation–relation, class–class.

use crate::ids::{ClassId, ElementId, EntityId, RelationId};
use std::fmt;

/// The kind of an element pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PairKind {
    /// Entity–entity pair.
    Entity,
    /// Relation–relation pair.
    Relation,
    /// Class–class pair.
    Class,
}

impl fmt::Display for PairKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PairKind::Entity => write!(f, "entity"),
            PairKind::Relation => write!(f, "relation"),
            PairKind::Class => write!(f, "class"),
        }
    }
}

/// A pair of same-kind elements from two KGs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElementPair {
    /// `(e, e')` with `e ∈ E`, `e' ∈ E'`.
    Entity(EntityId, EntityId),
    /// `(r, r')` with `r ∈ R`, `r' ∈ R'`.
    Relation(RelationId, RelationId),
    /// `(c, c')` with `c ∈ C`, `c' ∈ C'`.
    Class(ClassId, ClassId),
}

impl ElementPair {
    /// The pair kind.
    #[inline]
    pub fn kind(self) -> PairKind {
        match self {
            ElementPair::Entity(..) => PairKind::Entity,
            ElementPair::Relation(..) => PairKind::Relation,
            ElementPair::Class(..) => PairKind::Class,
        }
    }

    /// The left element as a generic [`ElementId`].
    #[inline]
    pub fn left(self) -> ElementId {
        match self {
            ElementPair::Entity(l, _) => ElementId::Entity(l),
            ElementPair::Relation(l, _) => ElementId::Relation(l),
            ElementPair::Class(l, _) => ElementId::Class(l),
        }
    }

    /// The right element as a generic [`ElementId`].
    #[inline]
    pub fn right(self) -> ElementId {
        match self {
            ElementPair::Entity(_, r) => ElementId::Entity(r),
            ElementPair::Relation(_, r) => ElementId::Relation(r),
            ElementPair::Class(_, r) => ElementId::Class(r),
        }
    }

    /// The entity pair components, if this is an entity pair.
    #[inline]
    pub fn as_entity(self) -> Option<(EntityId, EntityId)> {
        match self {
            ElementPair::Entity(l, r) => Some((l, r)),
            _ => None,
        }
    }

    /// The relation pair components, if this is a relation pair.
    #[inline]
    pub fn as_relation(self) -> Option<(RelationId, RelationId)> {
        match self {
            ElementPair::Relation(l, r) => Some((l, r)),
            _ => None,
        }
    }

    /// The class pair components, if this is a class pair.
    #[inline]
    pub fn as_class(self) -> Option<(ClassId, ClassId)> {
        match self {
            ElementPair::Class(l, r) => Some((l, r)),
            _ => None,
        }
    }
}

impl fmt::Display for ElementPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.left(), self.right())
    }
}

/// The oracle label `y*(q)` of an element pair: `1` for a match, `-1` for a
/// non-match (Sect. 2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Label {
    /// `y*(q) = 1`: both elements refer to the same real-world thing.
    Match,
    /// `y*(q) = -1`: the elements refer to different things.
    NonMatch,
}

impl Label {
    /// The numeric label used by the paper: `+1.0` or `-1.0`.
    #[inline]
    pub fn value(self) -> f32 {
        match self {
            Label::Match => 1.0,
            Label::NonMatch => -1.0,
        }
    }

    /// True iff this is [`Label::Match`].
    #[inline]
    pub fn is_match(self) -> bool {
        matches!(self, Label::Match)
    }

    /// Construct from a boolean "is a match".
    #[inline]
    pub fn from_bool(is_match: bool) -> Self {
        if is_match {
            Label::Match
        } else {
            Label::NonMatch
        }
    }
}

/// A labeled element pair, the unit of supervision in active alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LabeledPair {
    /// The pair.
    pub pair: ElementPair,
    /// Its oracle label.
    pub label: Label,
}

impl LabeledPair {
    /// Construct a labeled pair.
    #[inline]
    pub fn new(pair: ElementPair, label: Label) -> Self {
        Self { pair, label }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_and_accessors() {
        let p = ElementPair::Entity(EntityId::new(1), EntityId::new(2));
        assert_eq!(p.kind(), PairKind::Entity);
        assert_eq!(p.as_entity(), Some((EntityId::new(1), EntityId::new(2))));
        assert_eq!(p.as_relation(), None);
        assert_eq!(p.left(), ElementId::Entity(EntityId::new(1)));
        assert_eq!(p.right(), ElementId::Entity(EntityId::new(2)));

        let r = ElementPair::Relation(RelationId::new(3), RelationId::new(4));
        assert_eq!(r.kind(), PairKind::Relation);
        assert_eq!(
            r.as_relation(),
            Some((RelationId::new(3), RelationId::new(4)))
        );

        let c = ElementPair::Class(ClassId::new(5), ClassId::new(6));
        assert_eq!(c.kind(), PairKind::Class);
        assert_eq!(c.as_class(), Some((ClassId::new(5), ClassId::new(6))));
        assert_eq!(format!("{c}"), "(c5, c6)");
    }

    #[test]
    fn label_values_match_paper_convention() {
        assert_eq!(Label::Match.value(), 1.0);
        assert_eq!(Label::NonMatch.value(), -1.0);
        assert!(Label::Match.is_match());
        assert!(!Label::NonMatch.is_match());
        assert_eq!(Label::from_bool(true), Label::Match);
        assert_eq!(Label::from_bool(false), Label::NonMatch);
    }

    #[test]
    fn pairs_are_usable_as_map_keys() {
        use crate::fxhash::fx_map;
        let mut m = fx_map::<ElementPair, f32>();
        let p = ElementPair::Class(ClassId::new(0), ClassId::new(1));
        m.insert(p, 0.5);
        assert_eq!(m[&p], 0.5);
    }
}

//! A dependency-free implementation of the FxHash algorithm used by rustc.
//!
//! The DAAKG pipeline keeps many maps keyed by small integer ids
//! ([`EntityId`](crate::EntityId) and friends). The standard library's
//! SipHash 1-3 is robust against HashDoS but needlessly slow for trusted
//! integer keys; FxHash is the conventional replacement (see the Rust
//! Performance Book, "Hashing"). We re-implement the ~20-line algorithm here
//! instead of pulling in an extra crate, per the workspace dependency policy.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the Fx hashing algorithm.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hashing algorithm.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Firefox/rustc "Fx" hasher: a multiply-and-rotate word hasher.
///
/// Not HashDoS-resistant; only use for trusted keys (all ids in this
/// workspace are produced internally).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.add_to_hash(word);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Convenience constructor for an empty [`FxHashMap`].
#[inline]
pub fn fx_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// Convenience constructor for an empty [`FxHashSet`].
#[inline]
pub fn fx_set<T>() -> FxHashSet<T> {
    FxHashSet::default()
}

/// Convenience constructor for an [`FxHashMap`] with pre-reserved capacity.
#[inline]
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_integers_hash_distinctly() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // Fx is not cryptographic, but small consecutive integers must not
        // collide for the map to behave.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_stream_matches_word_writes_for_padding() {
        // write(&[1,2,3]) must be deterministic and differ from write(&[1,2,4]).
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3]);
        let mut c = FxHasher::default();
        c.write(&[1, 2, 4]);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = fx_map();
        m.insert(7, "seven");
        m.insert(11, "eleven");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.get(&11), Some(&"eleven"));
        assert_eq!(m.get(&13), None);
    }

    #[test]
    fn long_byte_streams() {
        let data: Vec<u8> = (0..=255).collect();
        let mut a = FxHasher::default();
        a.write(&data);
        let mut b = FxHasher::default();
        b.write(&data[..128]);
        b.write(&data[128..]);
        // Chunked writes are allowed to differ from a single write (Hasher
        // contract does not require stream equivalence), but both must be
        // deterministic.
        let mut a2 = FxHasher::default();
        a2.write(&data);
        assert_eq!(a.finish(), a2.finish());
        let _ = b.finish();
    }
}

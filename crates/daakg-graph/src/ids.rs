//! Compact newtype ids for KG elements.
//!
//! Every element (entity, relation, class) of a
//! [`KnowledgeGraph`](crate::KnowledgeGraph) is addressed by a dense `u32` index, assigned in
//! insertion order by the builder. Using `u32` instead of `usize` halves the
//! size of hot index structures (per the Rust Performance Book's "Smaller
//! Integers" advice) while still supporting 4 B elements.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw dense index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw dense index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The raw index widened for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// Dense id of an entity within one KG.
    EntityId,
    "e"
);
id_type!(
    /// Dense id of a relation within one KG.
    RelationId,
    "r"
);
id_type!(
    /// Dense id of a class within one KG.
    ClassId,
    "c"
);

/// A typed reference to any element of a KG (Sect. 2.1 calls entities,
/// relations and classes uniformly *elements*).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElementId {
    /// An entity.
    Entity(EntityId),
    /// A relation.
    Relation(RelationId),
    /// A class.
    Class(ClassId),
}

impl ElementId {
    /// True if this element is an entity.
    #[inline]
    pub fn is_entity(self) -> bool {
        matches!(self, ElementId::Entity(_))
    }

    /// True if this element is a relation.
    #[inline]
    pub fn is_relation(self) -> bool {
        matches!(self, ElementId::Relation(_))
    }

    /// True if this element is a class.
    #[inline]
    pub fn is_class(self) -> bool {
        matches!(self, ElementId::Class(_))
    }

    /// The entity id, if this is an entity.
    #[inline]
    pub fn as_entity(self) -> Option<EntityId> {
        match self {
            ElementId::Entity(e) => Some(e),
            _ => None,
        }
    }

    /// The relation id, if this is a relation.
    #[inline]
    pub fn as_relation(self) -> Option<RelationId> {
        match self {
            ElementId::Relation(r) => Some(r),
            _ => None,
        }
    }

    /// The class id, if this is a class.
    #[inline]
    pub fn as_class(self) -> Option<ClassId> {
        match self {
            ElementId::Class(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElementId::Entity(e) => write!(f, "{e}"),
            ElementId::Relation(r) => write!(f, "{r}"),
            ElementId::Class(c) => write!(f, "{c}"),
        }
    }
}

impl From<EntityId> for ElementId {
    fn from(e: EntityId) -> Self {
        ElementId::Entity(e)
    }
}

impl From<RelationId> for ElementId {
    fn from(r: RelationId) -> Self {
        ElementId::Relation(r)
    }
}

impl From<ClassId> for ElementId {
    fn from(c: ClassId) -> Self {
        ElementId::Class(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let e = EntityId::new(42);
        assert_eq!(e.raw(), 42);
        assert_eq!(e.index(), 42usize);
        assert_eq!(format!("{e}"), "e42");
        assert_eq!(format!("{e:?}"), "e42");
    }

    #[test]
    fn element_id_dispatch() {
        let e: ElementId = EntityId::new(1).into();
        let r: ElementId = RelationId::new(2).into();
        let c: ElementId = ClassId::new(3).into();
        assert!(e.is_entity() && !e.is_relation() && !e.is_class());
        assert!(r.is_relation());
        assert!(c.is_class());
        assert_eq!(e.as_entity(), Some(EntityId::new(1)));
        assert_eq!(e.as_relation(), None);
        assert_eq!(r.as_relation(), Some(RelationId::new(2)));
        assert_eq!(c.as_class(), Some(ClassId::new(3)));
        assert_eq!(format!("{r}"), "r2");
    }

    #[test]
    fn ordering_is_by_raw_index() {
        assert!(EntityId::new(1) < EntityId::new(2));
        let mut v = vec![ClassId::new(3), ClassId::new(1), ClassId::new(2)];
        v.sort();
        assert_eq!(v, vec![ClassId::new(1), ClassId::new(2), ClassId::new(3)]);
    }
}

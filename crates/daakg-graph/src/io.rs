//! Plain-text serialization of KGs and gold alignments.
//!
//! The format mirrors the OpenEA distribution layout: one record per line,
//! fields separated by tabs.
//!
//! ```text
//! # kg <name>
//! T <head>\t<relation>\t<tail>
//! Y <entity>\t<class>
//! ```
//!
//! Alignments use `E`, `R`, `C` records with the two element names.

use crate::alignment::GoldAlignment;
use crate::error::DaakgError;
use crate::kg::{KgBuilder, KnowledgeGraph};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

/// Serialize a KG to the text format.
pub fn write_kg<W: Write>(kg: &KnowledgeGraph, mut w: W) -> Result<(), DaakgError> {
    let mut buf = String::new();
    writeln!(buf, "# kg {}", kg.name()).expect("write to string");
    for t in kg.triples() {
        writeln!(
            buf,
            "T {}\t{}\t{}",
            kg.entity_name(t.head),
            kg.relation_name(t.rel),
            kg.entity_name(t.tail)
        )
        .expect("write to string");
    }
    for a in kg.type_assertions() {
        writeln!(
            buf,
            "Y {}\t{}",
            kg.entity_name(a.entity),
            kg.class_name(a.class)
        )
        .expect("write to string");
    }
    w.write_all(buf.as_bytes())?;
    Ok(())
}

/// Parse a KG from the text format.
pub fn read_kg<R: Read>(r: R) -> Result<KnowledgeGraph, DaakgError> {
    let reader = BufReader::new(r);
    let mut builder = KgBuilder::new("unnamed");
    let mut name: Option<String> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# kg ") {
            name = Some(rest.to_owned());
            continue;
        }
        if let Some(rest) = line.strip_prefix("T ") {
            let mut parts = rest.split('\t');
            match (parts.next(), parts.next(), parts.next()) {
                (Some(h), Some(r), Some(t)) => {
                    builder.triple_by_name(h, r, t);
                }
                _ => {
                    return Err(DaakgError::Parse {
                        line: lineno,
                        content: line.to_owned(),
                    })
                }
            }
        } else if let Some(rest) = line.strip_prefix("Y ") {
            let mut parts = rest.split('\t');
            match (parts.next(), parts.next()) {
                (Some(e), Some(c)) => {
                    builder.typing_by_name(e, c);
                }
                _ => {
                    return Err(DaakgError::Parse {
                        line: lineno,
                        content: line.to_owned(),
                    })
                }
            }
        } else {
            return Err(DaakgError::Parse {
                line: lineno,
                content: line.to_owned(),
            });
        }
    }
    let mut kg_builder = builder;
    if let Some(n) = name {
        // Rebuild builder with the right name by swapping: KgBuilder has no
        // name setter, so we rebuild via the cheap route of constructing the
        // graph and renaming is not supported; instead keep a fresh builder.
        // Names only matter for display, so we tolerate "unnamed" only when
        // the header is absent.
        kg_builder = rename_builder(kg_builder, n);
    }
    Ok(kg_builder.build())
}

fn rename_builder(b: KgBuilder, name: String) -> KgBuilder {
    // KgBuilder is a plain struct in this crate, so we can rebuild it field
    // by field through its public API: re-intern everything into a new
    // builder with the requested name.
    let kg = b.build();
    let mut nb = KgBuilder::new(name);
    for t in kg.triples() {
        nb.triple_by_name(
            kg.entity_name(t.head),
            kg.relation_name(t.rel),
            kg.entity_name(t.tail),
        );
    }
    for a in kg.type_assertions() {
        nb.typing_by_name(kg.entity_name(a.entity), kg.class_name(a.class));
    }
    nb
}

/// Serialize a gold alignment, using element names from both KGs.
pub fn write_alignment<W: Write>(
    gold: &GoldAlignment,
    left: &KnowledgeGraph,
    right: &KnowledgeGraph,
    mut w: W,
) -> Result<(), DaakgError> {
    let mut buf = String::new();
    for (l, r) in gold.entity_matches() {
        writeln!(buf, "E {}\t{}", left.entity_name(l), right.entity_name(r))
            .expect("write to string");
    }
    for (l, r) in gold.relation_matches() {
        writeln!(
            buf,
            "R {}\t{}",
            left.relation_name(l),
            right.relation_name(r)
        )
        .expect("write to string");
    }
    for (l, r) in gold.class_matches() {
        writeln!(buf, "C {}\t{}", left.class_name(l), right.class_name(r))
            .expect("write to string");
    }
    w.write_all(buf.as_bytes())?;
    Ok(())
}

/// Parse a gold alignment against two already-loaded KGs.
pub fn read_alignment<R: Read>(
    r: R,
    left: &KnowledgeGraph,
    right: &KnowledgeGraph,
) -> Result<GoldAlignment, DaakgError> {
    let reader = BufReader::new(r);
    let mut gold = GoldAlignment::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (kind, rest) = line.split_at(2);
        let mut parts = rest.split('\t');
        let (a, b) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(DaakgError::Parse {
                    line: lineno,
                    content: line.to_owned(),
                })
            }
        };
        let unknown = |name: &str| DaakgError::UnknownElement {
            line: lineno,
            name: name.to_owned(),
        };
        match kind {
            "E " => {
                let l = left.entity_by_name(a).ok_or_else(|| unknown(a))?;
                let rr = right.entity_by_name(b).ok_or_else(|| unknown(b))?;
                gold.add_entity(l, rr);
            }
            "R " => {
                let l = left.relation_by_name(a).ok_or_else(|| unknown(a))?;
                let rr = right.relation_by_name(b).ok_or_else(|| unknown(b))?;
                gold.add_relation(l, rr);
            }
            "C " => {
                let l = left.class_by_name(a).ok_or_else(|| unknown(a))?;
                let rr = right.class_by_name(b).ok_or_else(|| unknown(b))?;
                gold.add_class(l, rr);
            }
            _ => {
                return Err(DaakgError::Parse {
                    line: lineno,
                    content: line.to_owned(),
                })
            }
        }
    }
    Ok(gold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kg::{example_dbpedia, example_wikidata};

    #[test]
    fn kg_roundtrip() {
        let kg = example_dbpedia();
        let mut buf = Vec::new();
        write_kg(&kg, &mut buf).unwrap();
        let kg2 = read_kg(&buf[..]).unwrap();
        assert_eq!(kg2.name(), "DBpedia");
        assert_eq!(kg2.num_entities(), kg.num_entities());
        assert_eq!(kg2.num_triples(), kg.num_triples());
        assert_eq!(kg2.num_type_assertions(), kg.num_type_assertions());
        // Semantic check: same triple set by names.
        for t in kg.triples() {
            let h = kg2.entity_by_name(kg.entity_name(t.head)).unwrap();
            let r = kg2.relation_by_name(kg.relation_name(t.rel)).unwrap();
            let tl = kg2.entity_by_name(kg.entity_name(t.tail)).unwrap();
            assert!(kg2.has_triple(h, r, tl));
        }
    }

    #[test]
    fn alignment_roundtrip() {
        let d = example_dbpedia();
        let w = example_wikidata();
        let mut gold = GoldAlignment::new();
        gold.add_entity(
            d.entity_by_name("Michael Jackson").unwrap(),
            w.entity_by_name("Q2831").unwrap(),
        );
        gold.add_relation(
            d.relation_by_name("birthPlace").unwrap(),
            w.relation_by_name("place of birth").unwrap(),
        );
        gold.add_class(
            d.class_by_name("Person").unwrap(),
            w.class_by_name("human").unwrap(),
        );
        let mut buf = Vec::new();
        write_alignment(&gold, &d, &w, &mut buf).unwrap();
        let gold2 = read_alignment(&buf[..], &d, &w).unwrap();
        assert_eq!(gold2.num_entity_matches(), 1);
        assert_eq!(gold2.num_relation_matches(), 1);
        assert_eq!(gold2.num_class_matches(), 1);
        assert_eq!(
            gold2.entity_match(d.entity_by_name("Michael Jackson").unwrap()),
            w.entity_by_name("Q2831")
        );
    }

    #[test]
    fn malformed_line_is_reported_with_position() {
        let data = b"T a\tb\tc\nbogus line\n";
        let err = read_kg(&data[..]).unwrap_err();
        match err {
            DaakgError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn unknown_alignment_element_is_reported() {
        let d = example_dbpedia();
        let w = example_wikidata();
        let data = b"E NoSuchEntity\tQ2831\n";
        let err = read_alignment(&data[..], &d, &w).unwrap_err();
        assert!(matches!(err, DaakgError::UnknownElement { .. }));
    }
}

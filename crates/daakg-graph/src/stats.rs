//! Summary statistics of a KG, used by the Table 2 reproduction.

use crate::kg::KnowledgeGraph;
use std::fmt;

/// Counts describing a single KG, plus simple degree statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KgStats {
    /// `|E|`.
    pub entities: usize,
    /// `|R|`.
    pub relations: usize,
    /// `|C|`.
    pub classes: usize,
    /// `|T|` (relational triples).
    pub triples: usize,
    /// `|T_type|` (type assertions).
    pub type_assertions: usize,
    /// Mean relational degree over entities.
    pub mean_degree: f64,
    /// Maximum relational degree.
    pub max_degree: usize,
    /// Fraction of entities with at least one class.
    pub typed_fraction: f64,
}

impl KgStats {
    /// Compute statistics for a KG.
    pub fn of(kg: &KnowledgeGraph) -> Self {
        let n = kg.num_entities();
        let mut total_degree = 0usize;
        let mut max_degree = 0usize;
        let mut typed = 0usize;
        for e in kg.entities() {
            let d = kg.degree(e);
            total_degree += d;
            max_degree = max_degree.max(d);
            if !kg.classes_of(e).is_empty() {
                typed += 1;
            }
        }
        KgStats {
            entities: n,
            relations: kg.num_relations(),
            classes: kg.num_classes(),
            triples: kg.num_triples(),
            type_assertions: kg.num_type_assertions(),
            mean_degree: if n == 0 {
                0.0
            } else {
                total_degree as f64 / n as f64
            },
            max_degree,
            typed_fraction: if n == 0 { 0.0 } else { typed as f64 / n as f64 },
        }
    }
}

impl fmt::Display for KgStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|E|={} |R|={} |C|={} |T|={} |T_type|={} deg(mean)={:.2} deg(max)={} typed={:.1}%",
            self.entities,
            self.relations,
            self.classes,
            self.triples,
            self.type_assertions,
            self.mean_degree,
            self.max_degree,
            100.0 * self.typed_fraction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kg::example_dbpedia;

    #[test]
    fn stats_of_example() {
        let kg = example_dbpedia();
        let s = KgStats::of(&kg);
        assert_eq!(s.entities, 6);
        assert_eq!(s.triples, 6);
        assert_eq!(s.type_assertions, 4);
        // Every triple contributes 2 to total degree.
        assert!((s.mean_degree - 12.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 4); // Michael Jackson: 4 out-edges
        assert!((s.typed_fraction - 4.0 / 6.0).abs() < 1e-12);
        let rendered = format!("{s}");
        assert!(rendered.contains("|E|=6"));
    }

    #[test]
    fn stats_of_empty() {
        let kg = crate::kg::KgBuilder::new("e").build();
        let s = KgStats::of(&kg);
        assert_eq!(s.entities, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(s.typed_fraction, 0.0);
    }
}
